/**
 * @file
 * Paper Table II: qualitative feature matrix of the evaluated
 * network designs — whether they require high-radix routers,
 * whether the router port count scales with the network size, and
 * whether the network scale is reconfigurable. Printed from the
 * topologies' own feature flags plus measured radix at two scales
 * as evidence.
 */

#include <memory>

#include "bench_util.hpp"
#include "topos/factory.hpp"

int
main(int argc, char **argv)
{
    using namespace sf;
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Table II",
                  "topology features and requirements", effort);

    bench::row({"topology", "high-radix?", "port-scaling?",
                "reconfig?", "p@256", "p@1024"}, 13);
    for (const auto kind :
         {topos::TopoKind::ODM, topos::TopoKind::AFB,
          topos::TopoKind::S2, topos::TopoKind::SF}) {
        const auto small = topos::makeTopology(kind, 256,
                                               bench::kSeed, 2);
        const auto large = topos::makeTopology(kind, 1024,
                                               bench::kSeed, 2);
        const auto f = small->features();
        bench::row({topos::kindName(kind),
                    f.requiresHighRadix ? "Yes" : "No",
                    f.portCountScales ? "Yes" : "No",
                    f.reconfigurable ? "Yes" : "No",
                    bench::fmt("%d", small->routerPorts()),
                    bench::fmt("%d", large->routerPorts())},
                   13);
    }
    std::printf("\npaper Table II: ODM no/no/no, AFB yes/yes/no, "
                "S2-ideal no/no/no,\nSF no/no/yes. (ODM's p@ "
                "columns show ports including its parallel\nlinks;"
                " the paper counts its base radix.)\n");
    return 0;
}

/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * Table II feature-matrix experiment(s) — the same grid `sfx run 'table2_features'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("table2_features", argc, argv);
}

/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * routing microbenchmark experiment(s) — the same grid `sfx run 'micro_routing'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("micro_routing", argc, argv);
}

/**
 * @file
 * Microbenchmarks (google-benchmark) for the paper's routing-
 * overhead claims (Section III-B): forwarding decisions cost a
 * fixed, small number of distance computations, independent of the
 * network scale; routing state stays bounded at p(p+1) entries;
 * topology construction and reconfiguration are cheap.
 */

#include <benchmark/benchmark.h>

#include "core/string_figure.hpp"
#include "net/rng.hpp"

namespace {

using namespace sf;

core::SFParams
paramsFor(std::size_t n)
{
    core::SFParams params;
    params.numNodes = n;
    params.routerPorts = n <= 128 ? 4 : 8;
    params.seed = 2019;
    return params;
}

/** Forwarding decision latency vs network scale. */
void
BM_GreedyDecision(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const core::StringFigure topo(paramsFor(n));
    Rng rng(7);
    std::vector<LinkId> out;
    for (auto _ : state) {
        const auto s = static_cast<NodeId>(rng.below(n));
        const auto t = static_cast<NodeId>(rng.below(n));
        if (s == t)
            continue;
        out.clear();
        topo.routeCandidates(s, t, false, out);
        benchmark::DoNotOptimize(out);
    }
    state.counters["tableEntriesMax"] = static_cast<double>(
        topo.tables().maxEntriesSeen());
}
BENCHMARK(BM_GreedyDecision)->Arg(64)->Arg(256)->Arg(1296);

/** Adaptive (widened) first-hop decision. */
void
BM_AdaptiveFirstHop(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const core::StringFigure topo(paramsFor(n));
    Rng rng(7);
    std::vector<LinkId> out;
    for (auto _ : state) {
        const auto s = static_cast<NodeId>(rng.below(n));
        const auto t = static_cast<NodeId>(rng.below(n));
        if (s == t)
            continue;
        out.clear();
        topo.routeCandidates(s, t, true, out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_AdaptiveFirstHop)->Arg(256)->Arg(1296);

/** Full end-to-end greedy walk (latency of a routed path). */
void
BM_RoutedWalk(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const core::StringFigure topo(paramsFor(n));
    Rng rng(11);
    for (auto _ : state) {
        const auto s = static_cast<NodeId>(rng.below(n));
        const auto t = static_cast<NodeId>(rng.below(n));
        if (s == t)
            continue;
        benchmark::DoNotOptimize(net::routedHops(topo, s, t));
    }
}
BENCHMARK(BM_RoutedWalk)->Arg(256)->Arg(1296);

/** Offline topology construction across scales. */
void
BM_TopologyBuild(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        const auto data = core::buildTopology(paramsFor(n));
        benchmark::DoNotOptimize(data.graph.numLinks());
        ++seed;
    }
}
BENCHMARK(BM_TopologyBuild)->Arg(128)->Arg(1296)
    ->Unit(benchmark::kMillisecond);

/** One gate + ungate reconfiguration round trip. */
void
BM_ReconfigRoundTrip(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    core::StringFigure topo(paramsFor(n));
    Rng rng(13);
    for (auto _ : state) {
        const auto u = static_cast<NodeId>(rng.below(n));
        if (!topo.reconfig().canGate(u))
            continue;
        topo.gate(u);
        topo.ungate(u);
    }
    state.counters["tableRebuilds"] = static_cast<double>(
        topo.reconfig().stats().tableRebuilds);
}
BENCHMARK(BM_ReconfigRoundTrip)->Arg(256)->Arg(1296)
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Paper Fig 10: saturation injection rate (percent of full
 * injection) across network sizes for the uniform-random, hotspot,
 * and tornado traffic patterns, for every evaluated design.
 *
 * Paper reference shape: the meshes (DM/ODM) saturate first and
 * their saturation point decays as the network grows (ODM slightly
 * edges SF only at the smallest scale); the random/butterfly
 * designs hold roughly flat; hotspot saturation collapses with N
 * for every design (single-ejector bound); tornado barely
 * saturates the geometric designs.
 */

#include <memory>

#include "bench_util.hpp"
#include "sim/simulator.hpp"
#include "topos/factory.hpp"

int
main(int argc, char **argv)
{
    using namespace sf;
    using sim::TrafficPattern;
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Fig 10",
                  "saturation injection rate (%) vs number of "
                  "memory nodes",
                  effort);

    std::vector<std::size_t> sizes{16, 64, 256, 1024};
    if (effort == bench::Effort::Quick)
        sizes = {16, 64, 256};
    if (effort == bench::Effort::Full)
        sizes = {16, 32, 64, 128, 256, 512, 1024};

    sim::SimConfig cfg;
    cfg.seed = bench::kSeed;
    sim::RunPhases phases;
    phases.warmup = 800;
    phases.measure = 2000;
    phases.drainLimit = 12000;
    const double tolerance =
        effort == bench::Effort::Full ? 0.07 : 0.12;

    for (const auto pattern :
         {TrafficPattern::UniformRandom, TrafficPattern::Hotspot,
          TrafficPattern::Tornado}) {
        std::printf("\n--- %s ---\n",
                    sim::patternName(pattern).c_str());
        bench::row({"nodes", "DM", "ODM", "FB", "AFB", "S2", "SF"});
        for (const std::size_t n : sizes) {
            std::vector<std::string> cells{bench::fmt("%zu", n)};
            for (const auto kind : topos::kAllKinds) {
                if (!topos::supported(kind, n)) {
                    cells.push_back("-");
                    continue;
                }
                const auto topo =
                    topos::makeTopology(kind, n, bench::kSeed);
                const double sat = sim::findSaturationRate(
                    *topo, pattern, cfg, phases, tolerance);
                cells.push_back(bench::fmt("%.1f", 100.0 * sat));
                std::fflush(stdout);
            }
            bench::row(cells);
        }
    }
    std::printf("\nRates are packet injections per node per cycle, "
                "x100. The paper plots\nthe same metric; compare "
                "shapes (who decays, who holds) rather than\n"
                "absolute percentages — router microarchitectures "
                "differ.\n");
    return 0;
}

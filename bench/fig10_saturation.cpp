/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * Fig 10 saturation experiment(s) — the same grid `sfx run 'fig10_saturation'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("fig10_saturation", argc, argv);
}

/**
 * @file
 * Paper Fig 12: real-workload system throughput and dynamic memory
 * energy on a large memory network.
 *
 *  (a) throughput normalised to DM — paper: SF achieves the best or
 *      near-best across workloads, 1.3x ODM on average; S2-ideal
 *      close behind.
 *  (b) dynamic memory energy normalised to AFB — paper: SF lowest,
 *      36% below AFB on average; S2-ideal similarly low.
 *
 * The paper runs 1024 live nodes (down-scaled from 1296) with 8 TB
 * of data. Default effort replays on 256 nodes; --full uses 1024.
 */

#include <cmath>
#include <map>
#include <memory>

#include "bench_util.hpp"
#include "topos/factory.hpp"
#include "workloads/generators.hpp"
#include "workloads/replay.hpp"

int
main(int argc, char **argv)
{
    using namespace sf;
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Fig 12",
                  "workload throughput (vs DM) and dynamic energy "
                  "(vs AFB)",
                  effort);

    const std::size_t n =
        effort == bench::Effort::Full ? 1024 : 256;
    const std::size_t ops = effort == bench::Effort::Quick
                                ? 10000
                                : (effort == bench::Effort::Full
                                       ? 100000
                                       : 30000);
    std::printf("nodes: %zu, trace length: %zu DRAM ops, 4 sockets"
                "\n\n",
                n, ops);

    const std::vector<topos::TopoKind> kinds{
        topos::TopoKind::DM, topos::TopoKind::ODM,
        topos::TopoKind::AFB, topos::TopoKind::S2,
        topos::TopoKind::SF};

    sim::SimConfig sim_cfg;
    sim_cfg.seed = bench::kSeed;
    wl::ReplayConfig cfg;

    struct Cell {
        double ipc = 0.0;
        double energy = 0.0;
    };
    std::map<std::string, std::map<std::string, Cell>> results;

    for (const wl::Workload w : wl::kAllWorkloads) {
        const auto trace = wl::generateTrace(w, bench::kSeed, ops);
        for (const auto kind : kinds) {
            auto topo = topos::makeTopology(kind, n, bench::kSeed);
            const auto r =
                wl::replayTrace(trace, *topo, sim_cfg, cfg);
            results[wl::workloadName(w)]
                   [topos::kindName(kind)] =
                Cell{r.ipc, r.networkPj + r.dramPj};
            std::fflush(stdout);
        }
    }

    const auto geomean = [&](const std::string &kind,
                             bool energy_vs_afb) {
        double log_sum = 0.0;
        int count = 0;
        for (const auto &[workload, cells] : results) {
            const auto &base = cells.at(energy_vs_afb ? "AFB"
                                                      : "DM");
            const auto &cell = cells.at(kind);
            const double ratio =
                energy_vs_afb
                    ? cell.energy / base.energy
                    : cell.ipc / base.ipc;
            log_sum += std::log(ratio);
            ++count;
        }
        return std::exp(log_sum / count);
    };

    std::printf("(a) throughput normalised to DM (higher is "
                "better)\n");
    bench::row({"workload", "ODM", "AFB", "S2", "SF"}, 11);
    for (const wl::Workload w : wl::kAllWorkloads) {
        const auto &cells = results[wl::workloadName(w)];
        const double dm = cells.at("DM").ipc;
        bench::row({wl::workloadName(w),
                    bench::fmt("%.2f", cells.at("ODM").ipc / dm),
                    bench::fmt("%.2f", cells.at("AFB").ipc / dm),
                    bench::fmt("%.2f", cells.at("S2").ipc / dm),
                    bench::fmt("%.2f", cells.at("SF").ipc / dm)},
                   11);
    }
    bench::row({"geomean", bench::fmt("%.2f", geomean("ODM", false)),
                bench::fmt("%.2f", geomean("AFB", false)),
                bench::fmt("%.2f", geomean("S2", false)),
                bench::fmt("%.2f", geomean("SF", false))},
               11);

    std::printf("\n(b) network + DRAM dynamic energy normalised to "
                "AFB (lower is better)\n");
    bench::row({"workload", "DM", "ODM", "S2", "SF"}, 11);
    for (const wl::Workload w : wl::kAllWorkloads) {
        const auto &cells = results[wl::workloadName(w)];
        const double afb = cells.at("AFB").energy;
        bench::row({wl::workloadName(w),
                    bench::fmt("%.2f", cells.at("DM").energy / afb),
                    bench::fmt("%.2f",
                               cells.at("ODM").energy / afb),
                    bench::fmt("%.2f", cells.at("S2").energy / afb),
                    bench::fmt("%.2f",
                               cells.at("SF").energy / afb)},
                   11);
    }
    bench::row({"geomean", bench::fmt("%.2f", geomean("DM", true)),
                bench::fmt("%.2f", geomean("ODM", true)),
                bench::fmt("%.2f", geomean("S2", true)),
                bench::fmt("%.2f", geomean("SF", true))},
               11);

    std::printf("\npaper reference: SF throughput ~1.3x ODM "
                "(geomean), best or near-best\nper workload; SF "
                "energy ~0.64x AFB, S2 similar. Energy here is "
                "network\n+ DRAM dynamic energy, as in the paper's "
                "Fig 12(b).\n");
    return 0;
}

/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * Fig 12 workload experiment(s) — the same grid `sfx run 'fig12_workloads'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("fig12_workloads", argc, argv);
}

/**
 * @file
 * Paper Fig 9(a): average routed hop count of every evaluated
 * network design as the node count grows from 16 to 1296, using
 * each design's own routing (XY on meshes, minimal-adaptive on
 * FB/AFB, greediest on S2/SF). Router ports follow Fig 8's policy.
 *
 * Paper reference points: DM/ODM grow superlinearly past 128 nodes
 * (avg ~ (2/3) * sqrt(N)); FB stays lowest (high radix); SF reaches
 * 4.75 avg hops at 1024 and 4.96 at 1296 with <= 8 ports, with
 * 10th/90th percentiles of 4 and 5 hops.
 */

#include <memory>

#include "bench_util.hpp"
#include "core/string_figure.hpp"
#include "net/paths.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "topos/factory.hpp"

namespace {

/** Average routed hops over sampled pairs (all pairs when small). */
double
averageRoutedHops(const sf::net::Topology &topo, sf::Rng &rng)
{
    const std::size_t n = topo.numNodes();
    double sum = 0.0;
    std::size_t count = 0;
    if (n <= 256) {
        for (sf::NodeId s = 0; s < n; ++s) {
            for (sf::NodeId t = 0; t < n; ++t) {
                if (s == t)
                    continue;
                sum += sf::net::routedHops(topo, s, t);
                ++count;
            }
        }
    } else {
        for (int i = 0; i < 40000; ++i) {
            const auto s = static_cast<sf::NodeId>(rng.below(n));
            const auto t = static_cast<sf::NodeId>(rng.below(n));
            if (s == t)
                continue;
            sum += sf::net::routedHops(topo, s, t);
            ++count;
        }
    }
    return sum / static_cast<double>(count);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sf;
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Fig 9(a)",
                  "average routed hop count vs number of memory "
                  "nodes",
                  effort);

    std::vector<std::size_t> sizes{16, 17, 32, 61, 64,
                                   113, 128, 256, 512, 1024, 1296};
    if (effort == bench::Effort::Quick)
        sizes = {16, 64, 256, 1024};

    std::printf("(a) average shortest path length — the metric the "
                "paper plots\n");
    bench::row({"nodes", "DM", "ODM", "FB", "AFB", "S2", "SF",
                "SF-ports"});
    for (const std::size_t n : sizes) {
        std::vector<std::string> cells{bench::fmt("%zu", n)};
        for (const auto kind : topos::kAllKinds) {
            if (!topos::supported(kind, n)) {
                cells.push_back("-");
                continue;
            }
            const int odm_mult =
                kind == topos::TopoKind::ODM ? 1 : 0;
            const auto topo =
                topos::makeTopology(kind, n, bench::kSeed,
                                    odm_mult);
            cells.push_back(bench::fmt(
                "%.2f",
                net::allPairsStats(topo->graph()).average));
        }
        cells.push_back(bench::fmt(
            "%d", topos::randomTopologyPorts(n)));
        bench::row(cells);
    }

    std::printf("\n(b) average routed hops under each design's own "
                "routing\n    (XY on meshes = shortest; greediest "
                "on S2/SF carries stretch; the\n    S2 vs SF gap "
                "shows the paper's two-hop table entries at "
                "work)\n");
    bench::row({"nodes", "DM", "ODM", "FB", "AFB", "S2", "SF"});
    for (const std::size_t n : sizes) {
        std::vector<std::string> cells{bench::fmt("%zu", n)};
        for (const auto kind : topos::kAllKinds) {
            if (!topos::supported(kind, n)) {
                cells.push_back("-");
                continue;
            }
            const int odm_mult =
                kind == topos::TopoKind::ODM ? 1 : 0;
            const auto topo =
                topos::makeTopology(kind, n, bench::kSeed,
                                    odm_mult);
            Rng rng(bench::kSeed + n);
            cells.push_back(bench::fmt(
                "%.2f", averageRoutedHops(*topo, rng)));
        }
        bench::row(cells);
    }

    // Percentile detail for the largest SF instances (paper text).
    std::printf("\nSF percentiles (paper: p10 = 4, p90 = 5 beyond "
                "1000 nodes):\n");
    for (const std::size_t n : {1024u, 1296u}) {
        core::SFParams params;
        params.numNodes = n;
        params.routerPorts = 8;
        params.seed = bench::kSeed;
        const core::StringFigure sf_net(params);
        const auto stats = net::allPairsStats(sf_net.graph());
        std::printf("  N=%zu: avg %.2f, p10 %u, p90 %u, diameter "
                    "%u\n",
                    n, stats.average, stats.p10, stats.p90,
                    stats.diameter);
    }
    std::printf("\npaper reference: SF avg 4.75 @ 1024 and 4.96 @ "
                "1296; DM/ODM superlinear\n(~2/3 of the mesh "
                "dimension); FB lowest via high-radix routers.\n");
    return 0;
}

/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * Fig 9(a) hop-count experiment(s) — the same grid `sfx run 'fig09a_hop_counts'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("fig09a_hop_counts", argc, argv);
}

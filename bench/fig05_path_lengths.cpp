/**
 * @file
 * Paper Fig 5: average shortest path length of Jellyfish, S2, and
 * String Figure as the network grows (100..1200 nodes) — the
 * "sufficiently uniform random graph" evidence. All three use the
 * same per-node wire budget (8-port routers). The paper's claim:
 * String Figure tracks Jellyfish/S2 closely with the same bounds.
 */

#include <memory>

#include "bench_util.hpp"
#include "core/string_figure.hpp"
#include "net/paths.hpp"
#include "topos/jellyfish.hpp"
#include "topos/space_shuffle.hpp"

int
main(int argc, char **argv)
{
    using namespace sf;
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Fig 5",
                  "avg shortest path length vs network size "
                  "(Jellyfish / S2 / SF, p = 8)",
                  effort);

    const int seeds = effort == bench::Effort::Quick
                          ? 1
                          : (effort == bench::Effort::Full ? 5 : 3);
    bench::row({"nodes", "Jellyfish", "S2", "SF", "SF-p10",
                "SF-p90", "SF-diam"});

    for (const std::size_t n : {100u, 200u, 400u, 800u, 1200u}) {
        double jf_avg = 0.0;
        double s2_avg = 0.0;
        double sf_avg = 0.0;
        double sf_p10 = 0.0;
        double sf_p90 = 0.0;
        double sf_diam = 0.0;
        for (int s = 0; s < seeds; ++s) {
            const std::uint64_t seed = bench::kSeed + s;
            // Jellyfish with degree 8 = the same wire budget as the
            // random-topology memory networks.
            const topos::Jellyfish jf(n, 8, seed);
            jf_avg += net::allPairsStats(jf.graph()).average;

            const topos::SpaceShuffle s2(n, 8, seed);
            s2_avg += net::allPairsStats(s2.graph()).average;

            core::SFParams params;
            params.numNodes = n;
            params.routerPorts = 8;
            params.seed = seed;
            const core::StringFigure sf_net(params);
            const auto stats = net::allPairsStats(sf_net.graph());
            sf_avg += stats.average;
            sf_p10 += stats.p10;
            sf_p90 += stats.p90;
            sf_diam += stats.diameter;
        }
        const double k = seeds;
        bench::row({bench::fmt("%zu", n),
                    bench::fmt("%.2f", jf_avg / k),
                    bench::fmt("%.2f", s2_avg / k),
                    bench::fmt("%.2f", sf_avg / k),
                    bench::fmt("%.1f", sf_p10 / k),
                    bench::fmt("%.1f", sf_p90 / k),
                    bench::fmt("%.1f", sf_diam / k)});
    }

    std::printf(
        "\npaper reference (Fig 5, read off the plot): all three "
        "curves overlap,\nrising from ~3 hops at 100 nodes to ~4.5-5"
        " at 1200; SF within the same\nbounds as Jellyfish/S2. "
        "Paper Section VI: SF 10%%/90%% percentiles are\n4 and 5 "
        "hops beyond one thousand nodes.\n"
        "note: Jellyfish wires are bidirectional; S2/SF here use the"
        " paper's\nunidirectional wiring (one direction per wire), "
        "which costs ~0.5-1 hop.\n");
    return 0;
}

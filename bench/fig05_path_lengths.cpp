/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * Fig 5 path-length experiment(s) — the same grid `sfx run 'fig05_path_lengths'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("fig05_path_lengths", argc, argv);
}

/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * routing-table experiment(s) — the same grid `sfx run 'ablation_two_hop,ablation_coord_bits'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("ablation_two_hop,ablation_coord_bits", argc, argv);
}

/**
 * @file
 * Paper Section III-B sensitivity: the value of two-hop routing
 * table entries ("based on our sensitivity studies ... we compute
 * MD with both one- and two-hop neighbor information"), plus the
 * cost of quantising table coordinates to few bits (the hardware
 * stores 7-bit coordinates).
 */

#include "bench_util.hpp"
#include "core/string_figure.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"

namespace {

double
averageRoutedHops(const sf::core::StringFigure &topo, int samples,
                  sf::Rng &rng)
{
    const std::size_t n = topo.numNodes();
    double sum = 0.0;
    int count = 0;
    for (int i = 0; i < samples; ++i) {
        const auto s = static_cast<sf::NodeId>(rng.below(n));
        const auto t = static_cast<sf::NodeId>(rng.below(n));
        if (s == t)
            continue;
        const int hops = sf::net::routedHops(topo, s, t);
        if (hops > 0) {
            sum += hops;
            ++count;
        }
    }
    return count ? sum / count : -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sf;
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Ablation: routing table",
                  "two-hop lookahead entries and coordinate "
                  "precision",
                  effort);
    const int samples =
        effort == bench::Effort::Full ? 60000 : 20000;

    std::printf("(a) one-hop-only vs one+two-hop tables\n");
    bench::row({"nodes", "hops-1hop", "hops-2hop", "entries-1hop",
                "entries-2hop"}, 13);
    std::vector<std::size_t> sizes{64, 256, 1024};
    if (effort == bench::Effort::Quick)
        sizes = {64, 256};
    for (const std::size_t n : sizes) {
        double hops[2];
        std::size_t entries[2];
        for (const bool two_hop : {false, true}) {
            core::SFParams params;
            params.numNodes = n;
            params.routerPorts = n <= 128 ? 4 : 8;
            params.seed = bench::kSeed;
            params.twoHopTable = two_hop;
            const core::StringFigure topo(params);
            Rng rng(bench::kSeed + n);
            hops[two_hop] = averageRoutedHops(topo, samples, rng);
            // A one-hop-only router needs only the one-hop rows.
            std::size_t max_entries = 0;
            for (NodeId u = 0; u < n; ++u) {
                std::size_t count = 0;
                for (const auto &e :
                     topo.tables().table(u).entries())
                    count += (two_hop || e.hops == 1) ? 1 : 0;
                max_entries = std::max(max_entries, count);
            }
            entries[two_hop] = max_entries;
        }
        bench::row({bench::fmt("%zu", n),
                    bench::fmt("%.2f", hops[0]),
                    bench::fmt("%.2f", hops[1]),
                    bench::fmt("%zu", entries[0]),
                    bench::fmt("%zu", entries[1])},
                   13);
    }

    std::printf("\n(b) coordinate quantisation (256 nodes, p=8; "
                "exact = double)\n");
    bench::row({"bits", "avg-hops", "fallback-hops/pkt",
                "delivered"}, 18);
    for (const int bits : {0, 10, 8, 7, 6, 5}) {
        core::SFParams params;
        params.numNodes = 256;
        params.routerPorts = 8;
        params.seed = bench::kSeed;
        params.coordBits = bits;
        const core::StringFigure topo(params);
        Rng rng(bench::kSeed);
        double sum = 0.0;
        int delivered = 0;
        int total = 0;
        for (int i = 0; i < samples; ++i) {
            const auto s = static_cast<NodeId>(rng.below(256));
            const auto t = static_cast<NodeId>(rng.below(256));
            if (s == t)
                continue;
            ++total;
            const int hops = net::routedHops(topo, s, t);
            if (hops > 0) {
                sum += hops;
                ++delivered;
            }
        }
        bench::row(
            {bits == 0 ? "exact" : bench::fmt("%d", bits),
             bench::fmt("%.2f", sum / std::max(delivered, 1)),
             bench::fmt("%.4f",
                        static_cast<double>(topo.fallbackCount()) /
                            std::max(total, 1)),
             bench::fmt("%.1f%%", 100.0 * delivered / total)},
            18);
    }
    std::printf("\nTakeaway: two-hop entries buy shorter routed "
                "paths for a bounded table\n(paper bound p(p+1)); "
                "7-bit coordinates (the paper's hardware width) "
                "stay\nnear-exact until slots collide, then the "
                "escape path absorbs ties.\n");
    return 0;
}

/**
 * @file
 * Paper Fig 9(b): normalised energy-delay product of real
 * workloads when part of the String Figure memory network is
 * power-gated off. The paper reports improving (decreasing) EDP as
 * more of the network gates.
 *
 * The savable component is the powered-on routers' background
 * (SerDes/clock) energy — the per-bit constants of Table I alone
 * cannot decrease by gating. The harness therefore sweeps the
 * background-energy knob, including 0 (pure Table I constants), so
 * the dependence is explicit; see DESIGN.md substitutions.
 */

#include <map>
#include <memory>

#include "bench_util.hpp"
#include "core/string_figure.hpp"
#include "workloads/generators.hpp"
#include "workloads/replay.hpp"

int
main(int argc, char **argv)
{
    using namespace sf;
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Fig 9(b)",
                  "normalised EDP vs fraction of memory nodes "
                  "power-gated (SF)",
                  effort);

    const std::size_t n =
        effort == bench::Effort::Full ? 1296 : 324;
    const std::size_t ops = effort == bench::Effort::Quick
                                ? 10000
                                : (effort == bench::Effort::Full
                                       ? 100000
                                       : 30000);
    const std::vector<double> gate_fractions{0.0, 0.1, 0.2, 0.3};
    std::printf("nodes: %zu, trace length: %zu ops; EDP normalised"
                " to 0%% gated\n",
                n, ops);

    sim::SimConfig sim_cfg;
    sim_cfg.seed = bench::kSeed;

    std::vector<wl::Workload> workloads(wl::kAllWorkloads.begin(),
                                        wl::kAllWorkloads.end());
    if (effort == bench::Effort::Quick)
        workloads = {wl::Workload::SparkGrep, wl::Workload::Redis,
                     wl::Workload::MatMul};

    for (const double idle_pj : {10.0, 0.0}) {
        std::printf("\n--- background energy %.0f pJ/node/cycle ---"
                    "\n",
                    idle_pj);
        std::vector<std::string> header{"workload"};
        for (const double f : gate_fractions)
            header.push_back(bench::fmt("%.0f%%", 100.0 * f));
        header.push_back("live@30%");
        bench::row(header, 11);

        for (const wl::Workload w : workloads) {
            const auto trace =
                wl::generateTrace(w, bench::kSeed, ops);
            std::vector<std::string> cells{wl::workloadName(w)};
            double base_edp = 0.0;
            std::size_t live_final = 0;
            for (const double f : gate_fractions) {
                core::SFParams params;
                params.numNodes = n;
                params.routerPorts = 8;
                params.seed = bench::kSeed;
                core::StringFigure topo(params);
                wl::ReplayConfig cfg;
                cfg.energy.idlePjPerNodeCycle = idle_pj;
                const std::size_t target =
                    f == 0.0 ? 0
                             : static_cast<std::size_t>(
                                   n * (1.0 - f));
                const auto r = wl::replayTrace(trace, topo,
                                               sim_cfg, cfg,
                                               target);
                if (base_edp == 0.0)
                    base_edp = r.edpJouleSeconds;
                cells.push_back(bench::fmt(
                    "%.3f", r.edpJouleSeconds / base_edp));
                live_final = topo.reconfig().numAlive();
                std::fflush(stdout);
            }
            cells.push_back(bench::fmt("%zu", live_final));
            bench::row(cells, 11);
        }
    }
    std::printf(
        "\npaper reference: EDP improves (falls) as more nodes "
        "gate, across\nworkloads. Two mechanisms contribute: the "
        "smaller live network has\nshorter paths (less pJ/bit/hop "
        "transport — visible even at 0 background\nenergy), and "
        "powered-off routers stop burning background energy.\n"
        "'live@30%%' shows the achieved live count: the victim "
        "search refuses\nunrepairable holes, so deep targets can "
        "fall short of the request.\n");
    return 0;
}

/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * Fig 9(b) power-gating EDP experiment(s) — the same grid `sfx run 'fig09b_power_gating_edp'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("fig09b_power_gating_edp", argc, argv);
}

/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * reconfiguration experiment(s) — the same grid `sfx run 'ablation_reconfig_repair,ablation_reconfig_envelope'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("ablation_reconfig_repair,ablation_reconfig_envelope", argc, argv);
}

/**
 * @file
 * Reconfiguration ablation (paper Section III-C design choices):
 *
 *  (a) Repair-wire inventory: the paper's space-0 shortcuts only
 *      (faithful) vs spare wires in every space (our extension that
 *      preserves the loop-freedom proof under gating). Measures
 *      ring holes, escape-path reliance, and routed path quality as
 *      the network scales down.
 *  (b) Down-scaling envelope: how far sequential gating can shrink
 *      the network while every ring stays repairable.
 */

#include "bench_util.hpp"
#include "core/string_figure.hpp"
#include "net/paths.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"

namespace {

using namespace sf;

struct Probe {
    double avgHops = 0.0;
    double delivered = 0.0;
    std::uint64_t fallbackHops = 0;
};

Probe
probeRouting(const core::StringFigure &topo, int samples, Rng &rng)
{
    Probe probe;
    const std::size_t n = topo.numNodes();
    int delivered = 0;
    int total = 0;
    double sum = 0.0;
    for (int i = 0; i < samples; ++i) {
        const auto s = static_cast<NodeId>(rng.below(n));
        const auto t = static_cast<NodeId>(rng.below(n));
        if (s == t || !topo.nodeAlive(s) || !topo.nodeAlive(t))
            continue;
        ++total;
        const int hops = net::routedHops(topo, s, t);
        if (hops > 0) {
            sum += hops;
            ++delivered;
        }
    }
    probe.avgHops = delivered ? sum / delivered : -1.0;
    probe.delivered = total ? 100.0 * delivered / total : 0.0;
    probe.fallbackHops = topo.fallbackCount();
    return probe;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Ablation: reconfiguration",
                  "repair-wire inventory and down-scaling envelope",
                  effort);
    const std::size_t n =
        effort == bench::Effort::Quick ? 128 : 256;
    const int samples =
        effort == bench::Effort::Full ? 40000 : 15000;

    std::printf("(a) repair modes while scaling %zu nodes down\n"
                "    ('live' is what the victim search achieved: "
                "the faithful shortcut\n    inventory can repair "
                "almost no ring off space 0, so it refuses most\n"
                "    victims — the headline result of this "
                "ablation)\n",
                n);
    bench::row({"target", "mode", "live", "holes", "avg-hops",
                "escape-hops", "delivered"}, 12);
    for (const double fraction : {0.1, 0.25, 0.4}) {
        for (const auto mode :
             {core::RepairMode::AllSpaces,
              core::RepairMode::ShortcutsOnly}) {
            core::SFParams params;
            params.numNodes = n;
            params.routerPorts = 8;
            params.seed = bench::kSeed;
            params.repairMode = mode;
            core::StringFigure topo(params);
            Rng rng(bench::kSeed + static_cast<int>(fraction * 100));
            topo.reduceTo(
                static_cast<std::size_t>(n * (1.0 - fraction)),
                rng);
            Rng probe_rng(bench::kSeed);
            const auto probe = probeRouting(topo, samples,
                                            probe_rng);
            bench::row(
                {bench::fmt("%zu", static_cast<std::size_t>(
                                       n * (1.0 - fraction))),
                 mode == core::RepairMode::AllSpaces
                     ? "all-spaces" : "shortcuts",
                 bench::fmt("%zu", topo.reconfig().numAlive()),
                 bench::fmt("%d", topo.reconfig().currentHoles()),
                 bench::fmt("%.2f", probe.avgHops),
                 bench::fmt("%llu",
                            static_cast<unsigned long long>(
                                probe.fallbackHops)),
                 bench::fmt("%.1f%%", probe.delivered)},
                12);
        }
    }

    std::printf("\n(b) down-scaling envelope (sequential random "
                "gating, all-spaces wires)\n");
    bench::row({"nodes", "requested", "achieved", "achieved%"},
               12);
    for (const std::size_t size : {128u, 256u, 1024u}) {
        if (effort == bench::Effort::Quick && size > 256)
            break;
        core::SFParams params;
        params.numNodes = size;
        params.routerPorts = 8;
        params.seed = bench::kSeed;
        core::StringFigure topo(params);
        Rng rng(bench::kSeed);
        topo.reduceTo(8, rng);  // request an extreme reduction
        const std::size_t live = topo.reconfig().numAlive();
        bench::row({bench::fmt("%zu", size), "8",
                    bench::fmt("%zu", live),
                    bench::fmt("%.0f%%",
                               100.0 * static_cast<double>(live) /
                                   size)},
                   12);
    }
    std::printf("\nTakeaway: the faithful shortcut inventory leaves"
                " ring holes off space 0\nand leans on the escape "
                "path; all-space spares keep greedy routing\n"
                "self-sufficient. Sequential gating bottoms out "
                "near ~60-65%% live —\ndeeper static reductions "
                "need the regenerate-per-scale flow the paper\n"
                "uses for S2-ideal (see DESIGN.md).\n");
    return 0;
}

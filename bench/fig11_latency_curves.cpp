/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * Fig 11 latency-curve experiment(s) — the same grid `sfx run 'fig11_latency_curves'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("fig11_latency_curves", argc, argv);
}

/**
 * @file
 * Paper Fig 11: average packet latency vs injection rate curves
 * per traffic pattern, one curve per network design. The paper's
 * observations: S2-ideal and SF scale well (flat curves until a
 * sharp knee); SF runs slightly above S2-ideal on down-scaled
 * networks but below AFB at large scale; meshes knee earliest.
 */

#include <memory>

#include "bench_util.hpp"
#include "sim/simulator.hpp"
#include "topos/factory.hpp"

int
main(int argc, char **argv)
{
    using namespace sf;
    using sim::TrafficPattern;
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Fig 11",
                  "avg packet latency (cycles) vs injection rate",
                  effort);

    std::vector<std::size_t> sizes{64, 256};
    if (effort == bench::Effort::Full)
        sizes = {64, 256, 1024};
    std::vector<TrafficPattern> patterns{
        TrafficPattern::UniformRandom, TrafficPattern::Tornado,
        TrafficPattern::Opposite, TrafficPattern::Complement};
    if (effort == bench::Effort::Quick)
        patterns = {TrafficPattern::UniformRandom};

    sim::SimConfig cfg;
    cfg.seed = bench::kSeed;
    sim::RunPhases phases;
    phases.warmup = 800;
    phases.measure = 2500;
    phases.drainLimit = 15000;

    const std::vector<double> rates{0.005, 0.01, 0.02, 0.03,
                                    0.045, 0.06, 0.08, 0.10};

    for (const std::size_t n : sizes) {
        for (const auto pattern : patterns) {
            std::printf("\n--- %zu nodes, %s (latency in cycles; "
                        "'sat' = saturated) ---\n",
                        n, sim::patternName(pattern).c_str());
            std::vector<std::string> header{"rate"};
            std::vector<std::unique_ptr<net::Topology>> topos_at_n;
            for (const auto kind : topos::kAllKinds) {
                if (!topos::supported(kind, n))
                    continue;
                header.push_back(topos::kindName(kind));
                topos_at_n.push_back(
                    topos::makeTopology(kind, n, bench::kSeed));
            }
            bench::row(header);
            for (const double rate : rates) {
                std::vector<std::string> cells{
                    bench::fmt("%.3f", rate)};
                for (const auto &topo : topos_at_n) {
                    const auto r = sim::runSynthetic(
                        *topo, pattern, rate, cfg, phases);
                    cells.push_back(
                        r.saturated
                            ? "sat"
                            : bench::fmt("%.1f",
                                         r.avgTotalLatency));
                }
                bench::row(cells);
                std::fflush(stdout);
            }
        }
    }
    std::printf("\npaper reference shape: flat latency then a sharp"
                " knee; meshes knee at the\nlowest rates, S2/SF "
                "stay flat well past them at scale.\n");
    return 0;
}

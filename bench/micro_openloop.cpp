/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the open-loop
 * generator + histogram hot-path rows — the same grid
 * `sfx run 'micro_openloop'` executes, with --jobs/--out/--effort
 * available here too. One row per arrival process x load point on
 * the 1024-node String Figure network; wall clock is
 * machine-dependent, but measured_packets / p99 are deterministic
 * and double as generator-determinism evidence across reruns.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("micro_openloop", argc, argv);
}

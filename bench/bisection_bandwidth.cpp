/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * bisection-bandwidth experiment(s) — the same grid `sfx run 'bisection_bandwidth'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("bisection_bandwidth", argc, argv);
}

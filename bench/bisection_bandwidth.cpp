/**
 * @file
 * Paper Section V methodology: empirical minimum bisection
 * bandwidth. For the random topologies (S2, SF) the paper computes
 * max-flow across 50 random balanced partitions, takes the
 * minimum, and averages over 20 generated topologies; baselines
 * are then matched to it (ODM gains parallel links; AFB thins FB).
 * This harness reproduces those numbers and prints the derived ODM
 * link multiplier per scale.
 */

#include <memory>

#include "bench_util.hpp"
#include "net/bisection.hpp"
#include "topos/factory.hpp"

int
main(int argc, char **argv)
{
    using namespace sf;
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Bisection",
                  "empirical min bisection bandwidth "
                  "(flows, unit-capacity links)",
                  effort);

    const int partitions =
        effort == bench::Effort::Full ? 50 : 12;
    const int instances = effort == bench::Effort::Full
                              ? 20
                              : (effort == bench::Effort::Quick
                                     ? 2 : 5);
    std::printf("partitions per instance: %d, instances averaged: "
                "%d (paper: 50 / 20)\n\n",
                partitions, instances);

    std::vector<std::size_t> sizes{64, 256, 1024};
    if (effort == bench::Effort::Quick)
        sizes = {64, 256};

    bench::row({"nodes", "DM", "FB", "AFB", "S2", "SF",
                "ODM-mult"});
    for (const std::size_t n : sizes) {
        std::vector<std::string> cells{bench::fmt("%zu", n)};
        for (const auto kind :
             {topos::TopoKind::DM, topos::TopoKind::FB,
              topos::TopoKind::AFB, topos::TopoKind::S2,
              topos::TopoKind::SF}) {
            if (!topos::supported(kind, n)) {
                cells.push_back("-");
                continue;
            }
            const bool random_topology =
                kind == topos::TopoKind::S2 ||
                kind == topos::TopoKind::SF;
            const int reps = random_topology ? instances : 1;
            double sum = 0.0;
            for (int i = 0; i < reps; ++i) {
                const auto topo = topos::makeTopology(
                    kind, n, bench::kSeed + i);
                Rng rng(bench::kSeed * 31 + i);
                sum += static_cast<double>(
                    net::minBisectionBandwidth(topo->graph(), rng,
                                               partitions));
            }
            cells.push_back(bench::fmt("%.0f", sum / reps));
            std::fflush(stdout);
        }
        cells.push_back(bench::fmt(
            "%d", topos::matchOdmMultiplier(n, bench::kSeed)));
        bench::row(cells);
    }
    std::printf("\nSF/S2 wires are unidirectional (one unit of "
                "flow per wire); mesh and\nbutterfly wires are "
                "bidirectional pairs. The ODM multiplier is the\n"
                "parallel-link factor that matches the mesh to SF, "
                "used by every other\nharness when it builds "
                "ODM.\n");
    return 0;
}

/**
 * @file
 * Paper Section IV/VI sensitivity: uni- vs bi-directional wires.
 * The paper reports unidirectional networks perform almost the
 * same as bidirectional ones and the gap shrinks with scale, which
 * justifies choosing the cheaper unidirectional wiring.
 */

#include "bench_util.hpp"
#include "core/string_figure.hpp"
#include "net/paths.hpp"
#include "sim/simulator.hpp"

int
main(int argc, char **argv)
{
    using namespace sf;
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Ablation: wiring",
                  "unidirectional vs bidirectional String Figure",
                  effort);

    std::vector<std::size_t> sizes{64, 256, 1024};
    if (effort == bench::Effort::Quick)
        sizes = {64, 256};

    sim::SimConfig cfg;
    cfg.seed = bench::kSeed;
    sim::RunPhases phases;
    phases.warmup = 800;
    phases.measure = 2000;
    phases.drainLimit = 12000;

    bench::row({"nodes", "hops-uni", "hops-bi", "gap%",
                "sat-uni", "sat-bi"}, 11);
    for (const std::size_t n : sizes) {
        double hops[2];
        double sat[2];
        for (const auto mode : {core::LinkMode::Unidirectional,
                                core::LinkMode::Bidirectional}) {
            core::SFParams params;
            params.numNodes = n;
            params.routerPorts = n <= 128 ? 4 : 8;
            params.seed = bench::kSeed;
            params.linkMode = mode;
            const core::StringFigure topo(params);
            const int index =
                mode == core::LinkMode::Unidirectional ? 0 : 1;
            hops[index] = net::allPairsStats(topo.graph()).average;
            sat[index] = sim::findSaturationRate(
                topo, sim::TrafficPattern::UniformRandom, cfg,
                phases, 0.12);
            std::fflush(stdout);
        }
        bench::row({bench::fmt("%zu", n),
                    bench::fmt("%.2f", hops[0]),
                    bench::fmt("%.2f", hops[1]),
                    bench::fmt("%.1f",
                               100.0 * (hops[0] - hops[1]) /
                                   hops[1]),
                    bench::fmt("%.3f", sat[0]),
                    bench::fmt("%.3f", sat[1])},
                   11);
    }
    std::printf("\npaper reference: the uni/bi discrepancy "
                "diminishes as the network\ngrows; String Figure "
                "ships unidirectional wires for the lower cost.\n");
    return 0;
}

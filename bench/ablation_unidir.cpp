/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * wiring-direction experiment(s) — the same grid `sfx run 'ablation_unidir'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("ablation_unidir", argc, argv);
}

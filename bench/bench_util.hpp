/**
 * @file
 * Shared helpers for the benchmark harnesses: --quick/--full mode
 * selection, table formatting, and the common seed.
 *
 * Every harness prints the paper artefact it regenerates, the
 * configuration, our measured series, and the paper's reference
 * values where the text states them. EXPERIMENTS.md records the
 * comparison.
 */

#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace sf::bench {

/** Effort level parsed from argv. */
enum class Effort { Quick, Default, Full };

inline Effort
parseEffort(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            return Effort::Quick;
        if (std::strcmp(argv[i], "--full") == 0)
            return Effort::Full;
    }
    return Effort::Default;
}

/** Common deterministic seed for all harnesses. */
inline constexpr std::uint64_t kSeed = 2019;

/** Print the standard harness banner. */
inline void
banner(const char *artefact, const char *description, Effort effort)
{
    std::printf("==================================================="
                "=========\n");
    std::printf("%s: %s\n", artefact, description);
    std::printf("effort: %s   (use --quick / --full to change)\n",
                effort == Effort::Quick
                    ? "quick"
                    : (effort == Effort::Full ? "full" : "default"));
    std::printf("==================================================="
                "=========\n");
}

/** Print one row of right-padded cells. */
inline void
row(const std::vector<std::string> &cells, int width = 10)
{
    for (const auto &cell : cells)
        std::printf("%-*s", width, cell.c_str());
    std::printf("\n");
}

/** Format helper. */
inline std::string
fmt(const char *format, ...)
{
    char buffer[128];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buffer, sizeof buffer, format, args);
    va_end(args);
    return buffer;
}

} // namespace sf::bench

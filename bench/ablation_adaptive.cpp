/**
 * @file
 * Ablations on the two remaining design knobs:
 *
 *  (a) Adaptive first-hop routing (paper Section III-B): divert the
 *      first hop to a lightly loaded progress-making port vs pure
 *      greediest. Measured as saturation throughput.
 *  (b) Balanced coordinates (paper Fig 4's BalancedCoordinateGen):
 *      evenly spaced ring slots vs i.i.d. uniform coordinates,
 *      which skew per-link load.
 */

#include "bench_util.hpp"
#include "core/string_figure.hpp"
#include "net/paths.hpp"
#include "sim/simulator.hpp"

int
main(int argc, char **argv)
{
    using namespace sf;
    const auto effort = bench::parseEffort(argc, argv);
    bench::banner("Ablation: adaptivity & balance",
                  "first-hop adaptive routing and balanced "
                  "coordinates",
                  effort);

    const std::size_t n =
        effort == bench::Effort::Quick ? 64 : 256;
    sim::SimConfig base_cfg;
    base_cfg.seed = bench::kSeed;
    sim::RunPhases phases;
    phases.warmup = 800;
    phases.measure = 2000;
    phases.drainLimit = 12000;

    std::printf("(a) adaptive vs deterministic greediest "
                "(%zu nodes, saturation rate)\n",
                n);
    bench::row({"pattern", "adaptive", "greedy-only"}, 13);
    for (const auto pattern :
         {sim::TrafficPattern::UniformRandom,
          sim::TrafficPattern::Tornado,
          sim::TrafficPattern::Hotspot}) {
        core::SFParams params;
        params.numNodes = n;
        params.routerPorts = n <= 128 ? 4 : 8;
        params.seed = bench::kSeed;
        const core::StringFigure topo(params);
        double sat[2];
        for (const bool adaptive : {true, false}) {
            sim::SimConfig cfg = base_cfg;
            cfg.adaptive = adaptive;
            sat[adaptive ? 0 : 1] = sim::findSaturationRate(
                topo, pattern, cfg, phases, 0.12);
            std::fflush(stdout);
        }
        bench::row({sim::patternName(pattern),
                    bench::fmt("%.3f", sat[0]),
                    bench::fmt("%.3f", sat[1])},
                   13);
    }

    std::printf("\n(b) balanced vs uniform-random coordinates "
                "(%zu nodes)\n", n);
    bench::row({"coords", "avg-hops", "diameter", "sat-uniform"},
               13);
    for (const auto mode : {core::CoordMode::Balanced,
                            core::CoordMode::UniformRandom}) {
        core::SFParams params;
        params.numNodes = n;
        params.routerPorts = n <= 128 ? 4 : 8;
        params.seed = bench::kSeed;
        params.coordMode = mode;
        const core::StringFigure topo(params);
        const auto stats = net::allPairsStats(topo.graph());
        const double sat = sim::findSaturationRate(
            topo, sim::TrafficPattern::UniformRandom, base_cfg,
            phases, 0.12);
        bench::row({mode == core::CoordMode::Balanced
                        ? "balanced" : "uniform",
                    bench::fmt("%.2f", stats.average),
                    bench::fmt("%u", stats.diameter),
                    bench::fmt("%.3f", sat)},
                   13);
        std::fflush(stdout);
    }
    std::printf("\nTakeaway: adaptivity helps most when load "
                "concentrates (tornado);\nbalanced slots avoid the "
                "long-arc links that make i.i.d. coordinates\n"
                "congestion-prone (the paper's 'imbalanced "
                "connections' concern).\n");
    return 0;
}

/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * adaptive-routing and coordinate-balance experiment(s) — the same grid `sfx run 'ablation_adaptive,ablation_balance'`
 * executes, with --jobs/--out/--effort available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("ablation_adaptive,ablation_balance", argc, argv);
}

/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * cycle-engine hot-path benchmark — the same grid
 * `sfx run 'micro_simulator'` executes, with --jobs/--out/--effort
 * available here too. Each load point carries one row per
 * route-plane shard count (n1024/uniform/high/s2, ...), so the
 * report records the sharded engine's scaling curve; rows own
 * their pools, so --jobs 1 still exercises every shard count.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("micro_simulator", argc, argv);
}

/**
 * @file
 * Thin wrapper over the sf::exp registry: runs the
 * cycle-engine hot-path benchmark — the same grid
 * `sfx run 'micro_simulator'` executes, with --jobs/--out/--effort
 * available here too.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::benchMain("micro_simulator", argc, argv);
}

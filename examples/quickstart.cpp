/**
 * @file
 * Quickstart: build a String Figure memory network, inspect it,
 * route packets, simulate some traffic, and reconfigure it.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/string_figure.hpp"
#include "net/paths.hpp"
#include "sim/simulator.hpp"

int
main()
{
    using namespace sf;

    // 1. Build a 64-node network with 8-port routers. Any node
    //    count works: String Figure has no power-of-two rule.
    core::SFParams params;
    params.numNodes = 64;
    params.routerPorts = 8;
    params.seed = 42;
    core::StringFigure network(params);

    std::printf("== topology ==\n%s\n",
                network.graph().summary().c_str());
    std::printf("virtual spaces: %d\n",
                network.spaces().numSpaces());
    std::printf("shortcut wires fabricated: %zu (enabled: %zu)\n",
                network.data().stats.shortcutWires,
                network.data().stats.shortcutsEnabled);

    // 2. Shortest paths vs greedy routed paths.
    const auto stats = net::allPairsStats(network.graph());
    std::printf("\n== path lengths ==\n");
    std::printf("shortest: avg %.2f, diameter %u\n", stats.average,
                stats.diameter);
    double routed_sum = 0.0;
    int routed_pairs = 0;
    for (NodeId s = 0; s < 64; ++s) {
        for (NodeId t = 0; t < 64; ++t) {
            if (s == t)
                continue;
            routed_sum += net::routedHops(network, s, t);
            ++routed_pairs;
        }
    }
    std::printf("greediest-routed: avg %.2f\n",
                routed_sum / routed_pairs);

    // 3. Simulate uniform random traffic.
    sim::SimConfig cfg;
    cfg.seed = 42;
    const auto run = sim::runSynthetic(
        network, sim::TrafficPattern::UniformRandom, 0.03, cfg);
    std::printf("\n== simulation (injection 0.03 pkt/node/cycle) "
                "==\n");
    std::printf("avg packet latency: %.1f cycles (%.1f ns)\n",
                run.avgTotalLatency,
                run.avgTotalLatency * sim::SimConfig::kNsPerCycle);
    std::printf("avg hops: %.2f, accepted %.3f flits/node/cycle\n",
                run.avgHops, run.acceptedLoad);

    // 4. Elastic scaling: gate a node, route around it, restore it.
    std::printf("\n== reconfiguration ==\n");
    const NodeId victim = 13;
    const auto result = network.gate(victim);
    std::printf("gated node %u: %d spare wires enabled, %d holes\n",
                victim, result.closuresEnabled, result.holes);
    std::printf("13 unreachable now; 12 -> 14 still routes in %d "
                "hops\n",
                net::routedHops(network, 12, 14));
    network.ungate(victim);
    std::printf("restored node %u; 12 -> 13 routes in %d hops\n",
                victim, net::routedHops(network, 12, 13));
    return 0;
}

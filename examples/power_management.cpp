/**
 * @file
 * Power management: run an in-memory workload while the power
 * manager dynamically shrinks the memory network, then report
 * throughput, energy, and EDP against the full-scale run — the
 * paper's Fig 9(b) scenario at example scale.
 */

#include <cstdio>

#include "core/string_figure.hpp"
#include "workloads/generators.hpp"
#include "workloads/replay.hpp"

int
main()
{
    using namespace sf;

    std::printf("generating memcached trace (20k DRAM ops)...\n");
    const wl::Trace trace =
        wl::generateTrace(wl::Workload::Memcached, 11, 20000);
    std::printf("  represents %llu instructions, L1 hit %.1f%%, "
                "L3 hit %.1f%%\n\n",
                static_cast<unsigned long long>(
                    trace.totalInstructions),
                100.0 * trace.l1HitRate, 100.0 * trace.l3HitRate);

    sim::SimConfig sim_cfg;
    wl::ReplayConfig cfg;

    std::printf("%-12s %-10s %-10s %-12s %-12s %-10s\n", "live",
                "cycles", "ipc", "energy(uJ)", "edp(nJ*s)",
                "reconfigs");
    double base_edp = 0.0;
    for (const std::size_t live : {128u, 112u, 96u, 80u}) {
        core::SFParams params;
        params.numNodes = 128;
        params.routerPorts = 4;
        params.seed = 11;
        core::StringFigure network(params);
        const std::size_t target = live == 128 ? 0 : live;
        const auto r = wl::replayTrace(trace, network, sim_cfg,
                                       cfg, target);
        if (base_edp == 0.0)
            base_edp = r.edpJouleSeconds;
        std::printf("%-12zu %-10llu %-10.4f %-12.2f %-12.3f %zu "
                    "gated\n",
                    live,
                    static_cast<unsigned long long>(
                        r.runtimeCycles),
                    r.ipc, r.totalPj * 1e-6,
                    r.edpJouleSeconds * 1e9,
                    128 - network.reconfig().numAlive());
    }
    std::printf("\nGating trades a little runtime for background-"
                "energy savings;\nsee bench/fig09b for the paper-"
                "scale sweep.\n");
    return 0;
}

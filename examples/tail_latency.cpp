/**
 * @file
 * Tail latency under open-loop load: drive a 64-node String Figure
 * network with Poisson and self-similar arrival processes at a few
 * offered loads and print the hockey-stick rows — latency
 * percentiles (p50/p95/p99/p999/max) vs load. The percentiles come
 * from fixed-size HDR-style log-bucket histograms recorded on the
 * simulator's allocation-free measure path.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/tail_latency
 */

#include <cstdio>

#include "sim/simulator.hpp"
#include "topos/factory.hpp"

int
main()
{
    using namespace sf;

    const auto topo =
        topos::makeTopology(topos::TopoKind::SF, 64, 42);
    sim::SimConfig cfg;
    cfg.seed = 42;

    const double rates[] = {0.01, 0.03, 0.045};
    for (const auto process : {sim::ArrivalProcess::Poisson,
                               sim::ArrivalProcess::SelfSimilar}) {
        std::printf("== %s arrivals ==\n",
                    sim::arrivalProcessName(process).c_str());
        std::printf("%9s %9s %6s %6s %6s %6s %6s  %s\n", "offered",
                    "accepted", "p50", "p95", "p99", "p999", "max",
                    "(cycles)");
        for (const double rate : rates) {
            sim::ArrivalConfig arrivals;
            arrivals.process = process;
            const auto r = sim::runOpenLoop(
                *topo, sim::TrafficPattern::UniformRandom,
                arrivals, rate, cfg,
                sim::RunPhases::openLoopQuick());
            std::printf(
                "%9.4f %9.4f %6llu %6llu %6llu %6llu %6llu%s\n",
                r.realizedLoad, r.acceptedLoad,
                static_cast<unsigned long long>(r.tailTotal.p50),
                static_cast<unsigned long long>(r.tailTotal.p95),
                static_cast<unsigned long long>(r.tailTotal.p99),
                static_cast<unsigned long long>(r.tailTotal.p999),
                static_cast<unsigned long long>(r.tailTotal.max),
                r.saturated ? "  [saturated]" : "");
        }
        std::printf("\n");
    }
    return 0;
}

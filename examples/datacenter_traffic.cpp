/**
 * @file
 * Adversarial traffic: compare String Figure against the mesh
 * baseline under the classic patterns that break grids (tornado,
 * hotspot) — the workloads the paper's introduction motivates for
 * disaggregated memory pools shared by many sockets.
 */

#include <cstdio>
#include <memory>

#include "sim/simulator.hpp"
#include "topos/factory.hpp"

int
main()
{
    using namespace sf;
    using sim::TrafficPattern;

    const std::size_t n = 64;
    sim::SimConfig cfg;
    cfg.seed = 3;
    sim::RunPhases phases;
    phases.warmup = 800;
    phases.measure = 2000;
    phases.drainLimit = 12000;

    std::printf("64-node memory pool, saturation injection rate "
                "(pkt/node/cycle):\n\n");
    std::printf("%-12s", "pattern");
    for (const auto kind : {topos::TopoKind::DM, topos::TopoKind::ODM,
                            topos::TopoKind::S2,
                            topos::TopoKind::SF})
        std::printf(" %-8s", topos::kindName(kind).c_str());
    std::printf("\n");

    for (const auto pattern :
         {TrafficPattern::UniformRandom, TrafficPattern::Tornado,
          TrafficPattern::Hotspot}) {
        std::printf("%-12s", sim::patternName(pattern).c_str());
        for (const auto kind :
             {topos::TopoKind::DM, topos::TopoKind::ODM,
              topos::TopoKind::S2, topos::TopoKind::SF}) {
            // Shared immutable topology: all three patterns probe
            // the same instance, built once by the process-wide
            // cache.
            const auto topo = topos::cachedTopology(kind, n, 3);
            const double sat = sim::findSaturationRate(
                *topo, pattern, cfg, phases, 0.15);
            std::printf(" %-8.3f", sat);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\nRandom multi-space topologies sustain far higher "
                "loads than meshes\non adversarial patterns; see "
                "bench/fig10 for the full sweep.\n");
    return 0;
}

/**
 * @file
 * Capacity scaling: grow a server's memory pool one arbitrary step
 * at a time — the scenario that motivates String Figure's
 * "arbitrary network scale" goal. Rigid topologies force node
 * counts (squares, powers of two); String Figure takes any count
 * and keeps path lengths near-logarithmic with fixed-radix routers.
 */

#include <cstdio>

#include "core/string_figure.hpp"
#include "net/paths.hpp"
#include "topos/mesh.hpp"

int
main()
{
    using namespace sf;

    std::printf("%-8s %-8s %-12s %-10s %-10s\n", "nodes", "ports",
                "mesh-ok?", "avg-hops", "diameter");
    // A memory upgrade path with deliberately awkward counts:
    // 8 GB per node, so these are 136 GB ... 10.1 TB systems.
    for (const std::size_t n :
         {17u, 43u, 61u, 113u, 200u, 331u, 512u, 777u, 1296u}) {
        core::SFParams params;
        params.numNodes = n;
        params.routerPorts = n <= 128 ? 4 : 8;
        params.seed = 7;
        const core::StringFigure network(params);
        const auto stats = net::allPairsStats(network.graph());
        const bool mesh_ok =
            topos::MeshTopology::gridShape(n).first != 0;
        std::printf("%-8zu %-8d %-12s %-10.2f %-10u\n", n,
                    params.routerPorts, mesh_ok ? "yes" : "NO",
                    stats.average, stats.diameter);
    }
    std::printf("\nEvery configuration built with full router-port "
                "budgets;\nmesh baselines reject the counts marked "
                "NO outright.\n");
    return 0;
}

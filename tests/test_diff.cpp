/**
 * @file
 * Tests for sfx report diffing: metric deltas, the relative
 * tolerance gate, structural mismatches, the non-deterministic
 * experiment exemption, the structured --json rendering, and the
 * --bless baseline regeneration workflow.
 */

#include <gtest/gtest.h>

#include <limits>

#include "exp/diff.hpp"
#include "exp/report.hpp"
#include "test_util.hpp"

namespace {

using namespace sf::exp;

/** Minimal sf-exp-report-v1 document with one experiment. */
Json
report(double sat_n16, double sat_n64, bool deterministic = true)
{
    const auto run = [](const char *id, double value) {
        Json r = Json::object();
        r.set("id", id);
        r.set("seed", std::uint64_t{1});
        r.set("params", Json::object());
        Json m = Json::object();
        m.set("saturation_rate", value);
        m.set("design", "SF");
        r.set("metrics", std::move(m));
        return r;
    };
    Json e = Json::object();
    e.set("name", "fig10_saturation");
    e.set("deterministic", deterministic);
    Json runs = Json::array();
    runs.push(run("n16/SF", sat_n16));
    runs.push(run("n64/SF", sat_n64));
    e.set("runs", std::move(runs));
    Json doc = Json::object();
    doc.set("schema", "sf-exp-report-v1");
    Json exps = Json::array();
    exps.push(std::move(e));
    doc.set("experiments", std::move(exps));
    return doc;
}

TEST(Diff, IdenticalReportsAreClean)
{
    const Json a = report(0.5, 0.25);
    const ReportDiff d = diffReports(a, a);
    EXPECT_TRUE(d.clean());
    EXPECT_EQ(d.compared, 4u);
    EXPECT_TRUE(d.changed.empty());
    EXPECT_TRUE(renderDiff(d).empty());
}

TEST(Diff, RegressionBeyondToleranceGates)
{
    const Json a = report(0.50, 0.25);
    const Json b = report(0.40, 0.25); // -20% on n16
    const ReportDiff strict = diffReports(a, b);
    EXPECT_FALSE(strict.clean());
    EXPECT_EQ(strict.regressions, 1u);
    ASSERT_EQ(strict.changed.size(), 1u);
    EXPECT_EQ(strict.changed[0].run, "n16/SF");
    EXPECT_EQ(strict.changed[0].metric, "saturation_rate");
    EXPECT_NEAR(strict.changed[0].relDelta, -0.2, 1e-12);
    EXPECT_NE(renderDiff(strict).find("saturation_rate"),
              std::string::npos);

    // Within a generous tolerance the same delta passes (but is
    // still reported as changed).
    DiffOptions loose;
    loose.tolerance = 0.25;
    const ReportDiff ok = diffReports(a, b, loose);
    EXPECT_TRUE(ok.clean());
    EXPECT_EQ(ok.changed.size(), 1u);
}

/**
 * NaN must not defeat the gate: NaN != NaN used to report an
 * unchanged-NaN metric as changed on every diff, and a metric
 * *becoming* NaN compared false against every tolerance — the
 * worst possible regression sailed through CI.
 */
TEST(Diff, NanMetricsCompareEqualAndNanFlipsGate)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();

    // NaN -> NaN is an unchanged metric: clean, nothing reported.
    const ReportDiff same =
        diffReports(report(nan, 0.25), report(nan, 0.25));
    EXPECT_TRUE(same.clean());
    EXPECT_TRUE(same.changed.empty());
    EXPECT_EQ(same.compared, 4u);

    // number -> NaN is a deterministic regression that no
    // tolerance may excuse.
    DiffOptions loose;
    loose.tolerance = 1e9;
    const ReportDiff broke =
        diffReports(report(0.50, 0.25), report(nan, 0.25), loose);
    EXPECT_FALSE(broke.clean());
    EXPECT_EQ(broke.regressions, 1u);
    ASSERT_EQ(broke.changed.size(), 1u);
    EXPECT_EQ(broke.changed[0].run, "n16/SF");
    EXPECT_TRUE(broke.changed[0].regression);

    // NaN -> number gates too: the baseline no longer describes
    // the current code and must be re-blessed, not waved past.
    const ReportDiff fixed =
        diffReports(report(nan, 0.25), report(0.50, 0.25), loose);
    EXPECT_FALSE(fixed.clean());
    EXPECT_EQ(fixed.regressions, 1u);

    // Non-deterministic experiments stay exempt even for NaN
    // flips (wall-clock metrics may legitimately be absent-ish).
    const ReportDiff nd = diffReports(
        report(0.50, 0.25, /*deterministic=*/false),
        report(nan, 0.25, /*deterministic=*/false), loose);
    EXPECT_TRUE(nd.clean());
    EXPECT_EQ(nd.changed.size(), 1u);

    // The CLI shape: JSON has no NaN, so a report on disk carries
    // it as null (appendNumber); after a dump/parse round trip the
    // same semantics must hold — null-vs-null unchanged,
    // number-vs-null a deterministic regression, non-deterministic
    // exempt — rather than falling into the structural-drift path
    // that gates unconditionally.
    const auto rt = [](const Json &doc) {
        return Json::parse(doc.dump(2));
    };
    EXPECT_TRUE(
        diffReports(rt(report(nan, 0.25)), rt(report(nan, 0.25)))
            .clean());
    const ReportDiff disk_broke = diffReports(
        rt(report(0.50, 0.25)), rt(report(nan, 0.25)), loose);
    EXPECT_FALSE(disk_broke.clean());
    EXPECT_EQ(disk_broke.regressions, 1u);
    EXPECT_TRUE(disk_broke.structural.empty());
    const ReportDiff disk_nd = diffReports(
        rt(report(0.50, 0.25, false)), rt(report(nan, 0.25, false)),
        loose);
    EXPECT_TRUE(disk_nd.clean());
}

/** Mutable member lookup for test surgery on report documents. */
Json &
member(Json &obj, const char *key)
{
    for (auto &m : obj.asObject()) {
        if (m.first == key)
            return m.second;
    }
    throw std::runtime_error(std::string("missing key ") + key);
}

/**
 * Percentile metrics (p50/p95/p99/p999/max, and prefixed spins
 * like net_p99) are integral functions of the deterministic event
 * stream: there is no float noise for a tolerance to absorb, so
 * *any* drift gates no matter how loose the tolerance — while a
 * plain metric with the same relative delta still passes.
 */
TEST(Diff, PercentileMetricsExactCompareRegardlessOfTolerance)
{
    EXPECT_TRUE(isPercentileMetric("p50"));
    EXPECT_TRUE(isPercentileMetric("p999"));
    EXPECT_TRUE(isPercentileMetric("max"));
    EXPECT_TRUE(isPercentileMetric("net_p99"));
    EXPECT_TRUE(isPercentileMetric("latency_max"));
    EXPECT_FALSE(isPercentileMetric("p"));
    EXPECT_FALSE(isPercentileMetric("power"));
    EXPECT_FALSE(isPercentileMetric("saturation_rate"));
    EXPECT_FALSE(isPercentileMetric("maxima"));

    const auto doc = [](std::int64_t p99, double sat) {
        Json r = Json::object();
        r.set("id", "n64/SF");
        r.set("seed", std::uint64_t{1});
        r.set("params", Json::object());
        Json m = Json::object();
        m.set("p99", p99);
        m.set("saturation_rate", sat);
        r.set("metrics", std::move(m));
        Json e = Json::object();
        e.set("name", "hockey_stick");
        e.set("deterministic", true);
        Json runs = Json::array();
        runs.push(std::move(r));
        e.set("runs", std::move(runs));
        Json d = Json::object();
        d.set("schema", "sf-exp-report-v1");
        Json exps = Json::array();
        exps.push(std::move(e));
        d.set("experiments", std::move(exps));
        return d;
    };

    DiffOptions loose;
    loose.tolerance = 0.50;  // would excuse a 50% swing

    // Both metrics drift ~2%: the plain metric passes under the
    // loose tolerance, the percentile still gates.
    const ReportDiff d =
        diffReports(doc(100, 0.50), doc(102, 0.51), loose);
    EXPECT_FALSE(d.clean());
    EXPECT_EQ(d.regressions, 1u);
    ASSERT_EQ(d.changed.size(), 2u);
    for (const MetricDelta &delta : d.changed) {
        EXPECT_EQ(delta.regression, delta.metric == "p99")
            << delta.metric;
    }

    // Unchanged percentiles stay clean, and the non-deterministic
    // exemption still outranks the exact-compare rule.
    EXPECT_TRUE(
        diffReports(doc(100, 0.50), doc(100, 0.50), loose).clean());
    Json nd_a = doc(100, 0.50);
    Json nd_b = doc(102, 0.50);
    member(member(nd_a, "experiments").asArray()[0],
           "deterministic") = Json(false);
    member(member(nd_b, "experiments").asArray()[0],
           "deterministic") = Json(false);
    EXPECT_TRUE(diffReports(nd_a, nd_b, loose).clean());
}

/**
 * Reconvergence metrics from the elastic experiments (the per-wave
 * `ev<k>_blip` / `ev<k>_*_burst` / `ev<k>_reconverge` suffixes) are
 * deterministic degradation-window measurements, exact-compared
 * like percentiles: a longer blip or a bigger drop burst must gate
 * no matter how loose the tolerance.
 */
TEST(Diff, ReconvergenceMetricsExactCompareRegardlessOfTolerance)
{
    EXPECT_TRUE(isReconvergenceMetric("ev0_blip"));
    EXPECT_TRUE(isReconvergenceMetric("ev1_drop_burst"));
    EXPECT_TRUE(isReconvergenceMetric("ev2_esc_burst"));
    EXPECT_TRUE(isReconvergenceMetric("ev3_reconverge"));
    EXPECT_FALSE(isReconvergenceMetric("holes"));
    EXPECT_FALSE(isReconvergenceMetric("drops"));
    EXPECT_FALSE(isReconvergenceMetric("ev0_holes"));
    EXPECT_FALSE(isReconvergenceMetric("blipper"));
    EXPECT_FALSE(isReconvergenceMetric("bursts"));

    const auto doc = [](std::int64_t blip, std::int64_t holes) {
        Json r = Json::object();
        r.set("id", "n64/uniform/SF/fail/r0.0200");
        r.set("seed", std::uint64_t{1});
        r.set("params", Json::object());
        Json m = Json::object();
        m.set("ev0_blip", blip);
        m.set("holes", holes);
        r.set("metrics", std::move(m));
        Json e = Json::object();
        e.set("name", "elastic_serving");
        e.set("deterministic", true);
        Json runs = Json::array();
        runs.push(std::move(r));
        e.set("runs", std::move(runs));
        Json d = Json::object();
        d.set("schema", "sf-exp-report-v1");
        Json exps = Json::array();
        exps.push(std::move(e));
        d.set("experiments", std::move(exps));
        return d;
    };

    DiffOptions loose;
    loose.tolerance = 0.50;  // would excuse a 50% swing

    // Both metrics drift ~2%: the aggregate counter passes under
    // the loose tolerance, the reconvergence metric still gates.
    const ReportDiff d =
        diffReports(doc(100, 100), doc(102, 102), loose);
    EXPECT_FALSE(d.clean());
    EXPECT_EQ(d.regressions, 1u);
    ASSERT_EQ(d.changed.size(), 2u);
    for (const MetricDelta &delta : d.changed) {
        EXPECT_EQ(delta.regression, delta.metric == "ev0_blip")
            << delta.metric;
    }
    EXPECT_TRUE(
        diffReports(doc(100, 100), doc(100, 100), loose).clean());
}

TEST(Diff, NonDeterministicExperimentsNeverGate)
{
    const Json a = report(100.0, 200.0, false);
    const Json b = report(150.0, 50.0, false);
    const ReportDiff d = diffReports(a, b);
    EXPECT_TRUE(d.clean());
    EXPECT_EQ(d.changed.size(), 2u);
    EXPECT_FALSE(d.changed[0].regression);
    EXPECT_NE(renderDiff(d).find("non-deterministic"),
              std::string::npos);
}

TEST(Diff, StructuralMismatchesGate)
{
    const Json a = report(0.5, 0.25);

    // Remove one run: gates as "only in baseline".
    Json b = report(0.5, 0.25);
    member(member(b, "experiments").asArray()[0], "runs")
        .asArray()
        .pop_back();
    const ReportDiff d = diffReports(a, b);
    EXPECT_FALSE(d.clean());
    ASSERT_EQ(d.structural.size(), 1u);
    EXPECT_NE(d.structural[0].find("only in baseline"),
              std::string::npos);

    // A non-numeric metric flip is structural too.
    Json c = report(0.5, 0.25);
    Json &run0 = member(member(c, "experiments").asArray()[0],
                        "runs")
                     .asArray()[0];
    member(member(run0, "metrics"), "design") = Json("DM");
    const ReportDiff flip = diffReports(a, c);
    EXPECT_FALSE(flip.clean());
    EXPECT_EQ(flip.structural.size(), 1u);
}

TEST(Diff, RejectsNonReports)
{
    EXPECT_THROW(diffReports(Json::parse("{}"), report(1, 1)),
                 JsonError);
    EXPECT_THROW(diffReports(report(1, 1), Json::parse("[1,2]")),
                 JsonError);
}

TEST(Diff, JsonRenderingCarriesTheWholeDiff)
{
    const Json a = report(0.50, 0.25);
    Json b = report(0.40, 0.25); // -20% regression on n16
    member(member(b, "experiments").asArray()[0], "runs")
        .asArray()
        .pop_back(); // plus one structural issue
    const ReportDiff diff = diffReports(a, b);

    const Json doc = diffToJson(diff);
    EXPECT_EQ(doc.at("schema").asString(), "sf-exp-diff-v1");
    EXPECT_EQ(doc.at("compared").asInt(), 2);
    EXPECT_EQ(doc.at("regressions").asInt(), 1);
    EXPECT_FALSE(doc.at("clean").asBool());
    const auto &changed = doc.at("changed").asArray();
    ASSERT_EQ(changed.size(), 1u);
    EXPECT_EQ(changed[0].at("experiment").asString(),
              "fig10_saturation");
    EXPECT_EQ(changed[0].at("run").asString(), "n16/SF");
    EXPECT_EQ(changed[0].at("metric").asString(),
              "saturation_rate");
    EXPECT_DOUBLE_EQ(changed[0].at("before").asDouble(), 0.50);
    EXPECT_DOUBLE_EQ(changed[0].at("after").asDouble(), 0.40);
    EXPECT_NEAR(changed[0].at("rel_delta").asDouble(), -0.2,
                1e-12);
    EXPECT_TRUE(changed[0].at("regression").asBool());
    ASSERT_EQ(doc.at("structural").asArray().size(), 1u);

    // A clean diff renders clean.
    const Json clean = diffToJson(diffReports(a, a));
    EXPECT_TRUE(clean.at("clean").asBool());
    EXPECT_TRUE(clean.at("changed").asArray().empty());

    // And the document round-trips byte-stably like any report.
    EXPECT_EQ(Json::parse(doc.dump(2)).dump(2), doc.dump(2));
}

// ------------------------------------------------- CLI round trips

using sf::test::callSfx;
using sf::test::TempDir;

/**
 * ROADMAP item "--bless mode": an intended metric change becomes
 * one command — the diff still prints, but the baseline file is
 * regenerated as a byte-exact copy of the candidate, after which
 * the strict gate passes again.
 */
TEST(Diff, BlessRegeneratesTheBaselineInPlace)
{
    TempDir dir;
    const std::string base = dir.file("baseline.json");
    const std::string cur = dir.file("current.json");
    writeFile(base, report(0.50, 0.25).dump(2) + "\n");
    writeFile(cur, report(0.40, 0.25).dump(2) + "\n");

    // The strict gate fails before blessing...
    EXPECT_EQ(callSfx({"sfx", "diff", base, cur}), 1);
    // ...blessing reports the drift but exits 0 and rewrites...
    EXPECT_EQ(callSfx({"sfx", "diff", base, cur, "--bless"}), 0);
    EXPECT_EQ(readFile(base), readFile(cur));
    // ...after which the gate is green again.
    EXPECT_EQ(callSfx({"sfx", "diff", base, cur}), 0);
}

TEST(Diff, JsonFlagPrintsTheStructuredDocument)
{
    TempDir dir;
    const std::string base = dir.file("baseline.json");
    const std::string cur = dir.file("current.json");
    writeFile(base, report(0.50, 0.25).dump(2) + "\n");
    writeFile(cur, report(0.40, 0.25).dump(2) + "\n");

    testing::internal::CaptureStdout();
    const int rc = callSfx({"sfx", "diff", base, cur, "--json"});
    const std::string out =
        testing::internal::GetCapturedStdout();
    EXPECT_EQ(rc, 1); // the gate still gates under --json

    const Json doc = Json::parse(out);
    EXPECT_EQ(doc.at("schema").asString(), "sf-exp-diff-v1");
    EXPECT_EQ(doc.at("regressions").asInt(), 1);
    EXPECT_FALSE(doc.at("clean").asBool());
}

} // namespace

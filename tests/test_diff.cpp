/**
 * @file
 * Tests for sfx report diffing: metric deltas, the relative
 * tolerance gate, structural mismatches, and the non-deterministic
 * experiment exemption.
 */

#include <gtest/gtest.h>

#include "exp/diff.hpp"

namespace {

using namespace sf::exp;

/** Minimal sf-exp-report-v1 document with one experiment. */
Json
report(double sat_n16, double sat_n64, bool deterministic = true)
{
    const auto run = [](const char *id, double value) {
        Json r = Json::object();
        r.set("id", id);
        r.set("seed", std::uint64_t{1});
        r.set("params", Json::object());
        Json m = Json::object();
        m.set("saturation_rate", value);
        m.set("design", "SF");
        r.set("metrics", std::move(m));
        return r;
    };
    Json e = Json::object();
    e.set("name", "fig10_saturation");
    e.set("deterministic", deterministic);
    Json runs = Json::array();
    runs.push(run("n16/SF", sat_n16));
    runs.push(run("n64/SF", sat_n64));
    e.set("runs", std::move(runs));
    Json doc = Json::object();
    doc.set("schema", "sf-exp-report-v1");
    Json exps = Json::array();
    exps.push(std::move(e));
    doc.set("experiments", std::move(exps));
    return doc;
}

TEST(Diff, IdenticalReportsAreClean)
{
    const Json a = report(0.5, 0.25);
    const ReportDiff d = diffReports(a, a);
    EXPECT_TRUE(d.clean());
    EXPECT_EQ(d.compared, 4u);
    EXPECT_TRUE(d.changed.empty());
    EXPECT_TRUE(renderDiff(d).empty());
}

TEST(Diff, RegressionBeyondToleranceGates)
{
    const Json a = report(0.50, 0.25);
    const Json b = report(0.40, 0.25); // -20% on n16
    const ReportDiff strict = diffReports(a, b);
    EXPECT_FALSE(strict.clean());
    EXPECT_EQ(strict.regressions, 1u);
    ASSERT_EQ(strict.changed.size(), 1u);
    EXPECT_EQ(strict.changed[0].run, "n16/SF");
    EXPECT_EQ(strict.changed[0].metric, "saturation_rate");
    EXPECT_NEAR(strict.changed[0].relDelta, -0.2, 1e-12);
    EXPECT_NE(renderDiff(strict).find("saturation_rate"),
              std::string::npos);

    // Within a generous tolerance the same delta passes (but is
    // still reported as changed).
    DiffOptions loose;
    loose.tolerance = 0.25;
    const ReportDiff ok = diffReports(a, b, loose);
    EXPECT_TRUE(ok.clean());
    EXPECT_EQ(ok.changed.size(), 1u);
}

TEST(Diff, NonDeterministicExperimentsNeverGate)
{
    const Json a = report(100.0, 200.0, false);
    const Json b = report(150.0, 50.0, false);
    const ReportDiff d = diffReports(a, b);
    EXPECT_TRUE(d.clean());
    EXPECT_EQ(d.changed.size(), 2u);
    EXPECT_FALSE(d.changed[0].regression);
    EXPECT_NE(renderDiff(d).find("non-deterministic"),
              std::string::npos);
}

/** Mutable member lookup for test surgery on report documents. */
Json &
member(Json &obj, const char *key)
{
    for (auto &m : obj.asObject()) {
        if (m.first == key)
            return m.second;
    }
    throw std::runtime_error(std::string("missing key ") + key);
}

TEST(Diff, StructuralMismatchesGate)
{
    const Json a = report(0.5, 0.25);

    // Remove one run: gates as "only in baseline".
    Json b = report(0.5, 0.25);
    member(member(b, "experiments").asArray()[0], "runs")
        .asArray()
        .pop_back();
    const ReportDiff d = diffReports(a, b);
    EXPECT_FALSE(d.clean());
    ASSERT_EQ(d.structural.size(), 1u);
    EXPECT_NE(d.structural[0].find("only in baseline"),
              std::string::npos);

    // A non-numeric metric flip is structural too.
    Json c = report(0.5, 0.25);
    Json &run0 = member(member(c, "experiments").asArray()[0],
                        "runs")
                     .asArray()[0];
    member(member(run0, "metrics"), "design") = Json("DM");
    const ReportDiff flip = diffReports(a, c);
    EXPECT_FALSE(flip.clean());
    EXPECT_EQ(flip.structural.size(), 1u);
}

TEST(Diff, RejectsNonReports)
{
    EXPECT_THROW(diffReports(Json::parse("{}"), report(1, 1)),
                 JsonError);
    EXPECT_THROW(diffReports(report(1, 1), Json::parse("[1,2]")),
                 JsonError);
}

} // namespace

/**
 * @file
 * Tests for the memory substrate: DRAM bank timing, address
 * interleaving, energy accounting, and the power manager.
 */

#include <gtest/gtest.h>

#include "core/string_figure.hpp"
#include "mem/address_map.hpp"
#include "mem/energy.hpp"
#include "mem/memory_node.hpp"
#include "mem/power_manager.hpp"
#include "sim/network.hpp"

namespace {

using namespace sf;
using namespace sf::mem;

TEST(DramTiming, NsToCycles)
{
    // 3.2 ns per cycle (312.5 MHz).
    EXPECT_EQ(DramTiming::toCycles(3.2), 1u);
    EXPECT_EQ(DramTiming::toCycles(6.0), 2u);   // ceil
    EXPECT_EQ(DramTiming::toCycles(12.0), 4u);
    EXPECT_EQ(DramTiming::toCycles(33.0), 11u);
}

TEST(MemoryNode, RowHitFasterThanMiss)
{
    MemoryNode node;
    const Cycle first = node.access(0, false, 0);      // row miss
    const Cycle second = node.access(64, false, first); // same row
    EXPECT_GT(first, 0u);
    EXPECT_LT(second - first, first);
    EXPECT_EQ(node.rowMisses(), 1u);
    EXPECT_EQ(node.rowHits(), 1u);
}

TEST(MemoryNode, BanksServeInParallel)
{
    MemoryNode node(DramTiming{}, 16, 2048);
    // Different banks: both start immediately.
    const Cycle a = node.access(0, false, 0);
    const Cycle b = node.access(2048, false, 0);  // next row/bank
    EXPECT_EQ(a, b);
    // Same bank, different row: queues behind and re-activates.
    const Cycle c = node.access(16 * 2048, false, 0);
    EXPECT_GT(c, a);
}

TEST(MemoryNode, FcfsPerBank)
{
    MemoryNode node(DramTiming{}, 1, 2048);
    const Cycle a = node.access(0, false, 0);
    const Cycle b = node.access(0, false, 0);  // same row, queued
    EXPECT_GT(b, a);
}

TEST(AddressMap, CoversAllNodesEvenly)
{
    core::SFParams p;
    p.numNodes = 16;
    p.routerPorts = 4;
    core::StringFigure topo(p);
    AddressMap map(topo, 4096);
    std::vector<int> hits(16, 0);
    for (std::uint64_t addr = 0; addr < 16 * 4096ull * 4;
         addr += 4096)
        ++hits[map.node(addr)];
    for (int h : hits)
        EXPECT_EQ(h, 4);
}

TEST(AddressMap, LocalAddrDenseWithinNode)
{
    core::SFParams p;
    p.numNodes = 8;
    p.routerPorts = 4;
    core::StringFigure topo(p);
    AddressMap map(topo, 4096);
    // Consecutive pages owned by node 0 map to consecutive local
    // pages.
    EXPECT_EQ(map.localAddr(0), 0u);
    EXPECT_EQ(map.localAddr(8 * 4096ull), 4096u);
    EXPECT_EQ(map.localAddr(8 * 4096ull + 100), 4196u);
}

TEST(AddressMap, RebuildAfterGating)
{
    core::SFParams p;
    p.numNodes = 32;
    p.routerPorts = 8;
    core::StringFigure topo(p);
    AddressMap map(topo);
    EXPECT_EQ(map.numNodes(), 32u);
    topo.gate(5);
    map.rebuild(topo);
    EXPECT_EQ(map.numNodes(), 31u);
    for (std::uint64_t addr = 0; addr < 64 * 4096ull; addr += 4096)
        EXPECT_NE(map.node(addr), 5u);
}

TEST(Energy, PerBitConstants)
{
    EnergyModel model;
    model.addNetwork(128, 3);  // 128 bits, 3 hops
    EXPECT_DOUBLE_EQ(model.networkPj(), 5.0 * 128 * 3);
    model.addDram(512);
    EXPECT_DOUBLE_EQ(model.dramPj(), 12.0 * 512);
    model.addBackground(100);
    EXPECT_DOUBLE_EQ(model.backgroundPj(), 10.0 * 100);
    EXPECT_DOUBLE_EQ(model.totalPj(), 5.0 * 128 * 3 + 12.0 * 512 +
                                          10.0 * 100);
}

TEST(Energy, EdpScalesWithDelay)
{
    EnergyModel model;
    model.addDram(1000);
    const double edp1 = model.edp(1000);
    const double edp2 = model.edp(2000);
    EXPECT_NEAR(edp2 / edp1, 2.0, 1e-9);
}

TEST(Energy, FlitHopsEquivalentToNetwork)
{
    EnergyModel a;
    EnergyModel b;
    a.addNetwork(128, 7);
    b.addFlitHops(7, 128);
    EXPECT_DOUBLE_EQ(a.networkPj(), b.networkPj());
}

TEST(PowerManager, GatesToTargetRespectingGranularity)
{
    core::SFParams p;
    p.numNodes = 64;
    p.routerPorts = 8;
    core::StringFigure topo(p);
    sim::SimConfig cfg;
    sim::NetworkModel net(topo, cfg);
    PowerParams params;
    params.reconfigGranularityNs = 320.0;  // 100 cycles, fast test
    PowerManager pm(topo, net, params, 3);
    pm.setTarget(56);

    Cycle cycle = 0;
    for (; cycle < 100000 && !pm.settled(); ++cycle) {
        pm.tick(cycle);
        net.step(cycle);
    }
    EXPECT_TRUE(pm.settled());
    EXPECT_EQ(topo.reconfig().numAlive(), 56u);
    EXPECT_EQ(pm.reconfigOps(), 8u);
    // 8 ops, one per granularity window at least.
    EXPECT_GE(cycle, 7u * 100u);
    EXPECT_EQ(pm.transitionCycles(),
              8u * params.sleepCycles());
}

TEST(PowerManager, WakesBackUp)
{
    core::SFParams p;
    p.numNodes = 64;
    p.routerPorts = 8;
    core::StringFigure topo(p);
    sim::SimConfig cfg;
    sim::NetworkModel net(topo, cfg);
    PowerParams params;
    params.reconfigGranularityNs = 64.0;
    PowerManager pm(topo, net, params, 3);
    pm.setTarget(48);
    Cycle cycle = 0;
    for (; cycle < 100000 && !pm.settled(); ++cycle) {
        pm.tick(cycle);
        net.step(cycle);
    }
    ASSERT_TRUE(pm.settled());
    pm.setTarget(64);
    for (; cycle < 200000 && !pm.settled(); ++cycle) {
        pm.tick(cycle);
        net.step(cycle);
    }
    EXPECT_TRUE(pm.settled());
    EXPECT_EQ(topo.reconfig().numAlive(), 64u);
    EXPECT_EQ(topo.reconfig().currentHoles(), 0);
}

TEST(PowerManager, RespectsProtectedNodes)
{
    core::SFParams p;
    p.numNodes = 32;
    p.routerPorts = 8;
    core::StringFigure topo(p);
    sim::SimConfig cfg;
    sim::NetworkModel net(topo, cfg);
    PowerParams params;
    params.reconfigGranularityNs = 32.0;
    PowerManager pm(topo, net, params, 5);
    pm.setProtected({0, 1, 2, 3});
    pm.setTarget(24);
    for (Cycle cycle = 0; cycle < 100000 && !pm.settled(); ++cycle) {
        pm.tick(cycle);
        net.step(cycle);
    }
    for (NodeId u = 0; u < 4; ++u)
        EXPECT_TRUE(topo.nodeAlive(u));
}

} // namespace

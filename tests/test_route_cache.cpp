/**
 * @file
 * Tests for the memoized route plane (core/route_cache.hpp): the
 * cache must be an observationally exact stand-in for
 * Topology::routeCandidates — identical candidate count and
 * identical link ids for every (current, dest, first_hop) query,
 * on first touch (fill) and on every repeat (hit) — across every
 * topology kind the factory builds, both wire directions, the
 * two-hop-table ablation, and degraded (gated) String Figures.
 * Also pins the per-epoch lifecycle (a reconfiguration retires the
 * cache for the ended topology generation and immediately rebuilds
 * it for the new one) and the contiguous-block concurrent fill
 * discipline the sharded route plane relies on (run under TSan in
 * CI).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/route_cache.hpp"
#include "core/string_figure.hpp"
#include "net/rng.hpp"
#include "sim/network.hpp"
#include "topos/factory.hpp"

namespace {

using namespace sf;
using namespace sf::core;

/**
 * Compare cache vs direct call for one query, at the simulator's
 * span size. Returns via gtest assertions.
 */
void
expectSameAnswer(const net::Topology &topo, RouteCache &cache,
                 NodeId s, NodeId t, bool first_hop)
{
    LinkId direct[net::kMaxRouteCandidates];
    LinkId cached[net::kMaxRouteCandidates];
    const std::size_t want =
        topo.routeCandidates(s, t, first_hop, direct);
    const std::size_t got = cache.candidates(s, t, first_hop, cached);
    ASSERT_EQ(got, want) << "count diverged at current=" << s
                         << " dest=" << t
                         << " first_hop=" << first_hop;
    for (std::size_t i = 0; i < want; ++i)
        EXPECT_EQ(cached[i], direct[i])
            << "candidate " << i << " diverged at current=" << s
            << " dest=" << t << " first_hop=" << first_hop;
}

/**
 * Randomized equivalence sweep: @p samples pairs, each queried
 * twice per first_hop value so both the fill path and the hit path
 * are exercised (and repeat answers are stable).
 */
void
sweepEquivalence(const net::Topology &topo, int samples,
                 std::uint64_t seed)
{
    RouteCache cache(topo);
    ASSERT_TRUE(cache.active()) << topo.name();
    Rng rng(seed);
    const auto n = static_cast<std::int64_t>(topo.numNodes());
    for (int i = 0; i < samples; ++i) {
        const auto s = static_cast<NodeId>(rng.range(0, n - 1));
        const auto t = static_cast<NodeId>(rng.range(0, n - 1));
        for (const bool first_hop : {false, true}) {
            expectSameAnswer(topo, cache, s, t, first_hop);
            expectSameAnswer(topo, cache, s, t, first_hop); // hit
        }
    }
    EXPECT_GT(cache.committedRows() + cache.firstHopRows(), 0u);
}

SFParams
makeParams(std::size_t n, int ports, LinkMode mode,
           bool two_hop, std::uint64_t seed = 1)
{
    SFParams p;
    p.numNodes = n;
    p.routerPorts = ports;
    p.linkMode = mode;
    p.twoHopTable = two_hop;
    p.seed = seed;
    return p;
}

// ------------------------------------------------- equivalence

TEST(RouteCache, MatchesDirectOnStringFigureVariants)
{
    for (const LinkMode mode :
         {LinkMode::Unidirectional, LinkMode::Bidirectional}) {
        for (const bool two_hop : {true, false}) {
            StringFigure topo(makeParams(64, 4, mode, two_hop));
            sweepEquivalence(topo, 400,
                             0xC0FFEEu + (two_hop ? 1 : 0));
        }
    }
}

TEST(RouteCache, MatchesDirectOnEveryFactoryKind)
{
    // Meshes (DM/ODM) ignore first_hop and emit several equal-cost
    // candidates for committed hops — the uncacheable-entry
    // fallback path; FB/AFB cover table-routed sets.
    for (const auto kind : topos::kAllKinds) {
        for (const std::size_t n : {64, 256}) {
            if (!topos::supported(kind, n))
                continue;
            const auto topo = topos::makeTopology(kind, n, 7);
            sweepEquivalence(*topo, n == 256 ? 200 : 400,
                             0xBEEF + n);
        }
    }
}

TEST(RouteCache, MatchesDirectOnDegradedTopology)
{
    // Gate a handful of nodes *before* building the cache: the
    // degraded topology is immutable again from here on, and its
    // routing exercises no-route answers (kNoRoute entries) for
    // gated endpoints as well as repaired-ring detours.
    StringFigure topo(
        makeParams(64, 8, LinkMode::Unidirectional, true));
    for (const NodeId u : {5u, 6u, 21u, 40u})
        ASSERT_TRUE(topo.gate(u).applied);
    sweepEquivalence(topo, 600, 0xDEAD);
}

TEST(RouteCache, ServesNoRouteAndRepeatsIt)
{
    StringFigure topo(
        makeParams(48, 4, LinkMode::Unidirectional, true));
    ASSERT_TRUE(topo.gate(7).applied);
    RouteCache cache(topo);
    ASSERT_TRUE(cache.active());
    // A gated destination has no progress-making link from
    // anywhere; the cache must report 0 both cold and warm.
    LinkId out[net::kMaxRouteCandidates];
    for (int rep = 0; rep < 2; ++rep)
        EXPECT_EQ(cache.candidates(3, 7, false, out),
                  topo.routeCandidates(3, 7, false, out));
}

// --------------------------------------------------- lifecycle

TEST(RouteCache, ReconfigRetiresAndRebuildsCachePerEpoch)
{
    StringFigure topo(
        makeParams(64, 8, LinkMode::Unidirectional, true));
    sim::SimConfig cfg;
    cfg.routeCache = true;
    sim::NetworkModel model(topo, cfg);
    EXPECT_FALSE(model.routeCacheActive());
    model.enableRouteCache();
    EXPECT_TRUE(model.routeCacheActive());
    EXPECT_EQ(model.topologyEpoch(), 0u);

    // A reconfiguration ends the cache's topology generation: the
    // stale cache retires at the epoch barrier and a fresh one is
    // built against the new generation in the same call, so the
    // memoized plane stays engaged across elastic runs.
    ASSERT_TRUE(topo.gate(11).applied);
    model.onTopologyChanged();
    EXPECT_TRUE(model.routeCacheActive())
        << "route cache permanently retired by a reconfiguration";
    EXPECT_EQ(model.topologyEpoch(), 1u);
    EXPECT_EQ(model.stats().routeCacheRebuilds, 1u);

    ASSERT_TRUE(topo.gate(23).applied);
    model.onTopologyChanged();
    EXPECT_TRUE(model.routeCacheActive());
    EXPECT_EQ(model.topologyEpoch(), 2u);
    EXPECT_EQ(model.stats().routeCacheRebuilds, 2u);
}

TEST(RouteCache, EnableAfterReconfigEpochEngagesFreshCache)
{
    StringFigure topo(
        makeParams(64, 8, LinkMode::Unidirectional, true));
    sim::SimConfig cfg;
    cfg.routeCache = true;
    sim::NetworkModel model(topo, cfg);

    // Reconfigure while no cache is engaged: the epoch advances,
    // nothing rebuilds (there was nothing to retire) ...
    ASSERT_TRUE(topo.gate(11).applied);
    model.onTopologyChanged();
    EXPECT_EQ(model.topologyEpoch(), 1u);
    EXPECT_EQ(model.stats().routeCacheRebuilds, 0u);

    // ... and a later enable builds against the *current*
    // generation — supported at any epoch, exactly as documented.
    model.enableRouteCache();
    EXPECT_TRUE(model.routeCacheActive())
        << "enableRouteCache refused after a reconfig epoch";
}

TEST(RouteCache, ConfigOffKeepsCacheDisengaged)
{
    StringFigure topo(
        makeParams(64, 8, LinkMode::Unidirectional, true));
    sim::SimConfig cfg;
    cfg.routeCache = false;
    sim::NetworkModel model(topo, cfg);
    model.enableRouteCache();
    EXPECT_FALSE(model.routeCacheActive());
}

/**
 * Cache keys are (node, dest, first_hop) — no congestion snapshot —
 * and rows are filled from the topology's *greedy* routing. A
 * non-greedy policy must therefore keep the cache disengaged even
 * when the config asks for it: for `ugal` a cached answer would be
 * stale (the snapshot changes every cycle), and for `table_oracle`
 * it would be outright wrong (greedy's answer, not the table's).
 */
TEST(RouteCache, NonGreedyPolicyKeepsCacheDisengaged)
{
    StringFigure topo(
        makeParams(64, 8, LinkMode::Unidirectional, true));
    for (const auto kind : {RoutingPolicyKind::Ugal,
                            RoutingPolicyKind::TableOracle}) {
        sim::SimConfig cfg;
        cfg.routeCache = true;
        cfg.policy = kind;
        sim::NetworkModel model(topo, cfg);
        model.enableRouteCache();
        EXPECT_FALSE(model.routeCacheActive())
            << "route cache engaged under --policy "
            << routingPolicyName(kind);
    }
}

// ------------------------------------------------- concurrency

/**
 * The sharded route plane's ownership discipline, distilled: each
 * thread owns a contiguous block of `current` nodes and only ever
 * queries those, so every cache row has exactly one writer. Run
 * under TSan this is the data-race proof for the concurrent lazy
 * fill; the serial re-check afterwards proves the concurrently
 * filled cache still answers exactly like the direct call.
 */
TEST(RouteCache, ConcurrentBlockOwnedFillIsExactAndRaceFree)
{
    StringFigure topo(
        makeParams(96, 8, LinkMode::Unidirectional, true));
    RouteCache cache(topo);
    ASSERT_TRUE(cache.active());

    const std::size_t n = topo.numNodes();
    constexpr int kThreads = 4;
    const std::size_t block = (n + kThreads - 1) / kThreads;
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
        workers.emplace_back([&, w] {
            const std::size_t lo = static_cast<std::size_t>(w) * block;
            const std::size_t hi = std::min(n, lo + block);
            LinkId out[net::kMaxRouteCandidates];
            for (std::size_t s = lo; s < hi; ++s)
                for (std::size_t t = 0; t < n; ++t)
                    for (const bool first_hop : {false, true})
                        cache.candidates(static_cast<NodeId>(s),
                                         static_cast<NodeId>(t),
                                         first_hop, out);
        });
    }
    for (auto &worker : workers)
        worker.join();

    EXPECT_EQ(cache.committedRows(), n);
    EXPECT_EQ(cache.firstHopRows(), n);
    Rng rng(0xF00D);
    for (int i = 0; i < 500; ++i) {
        const auto s = static_cast<NodeId>(
            rng.range(0, static_cast<std::int64_t>(n) - 1));
        const auto t = static_cast<NodeId>(
            rng.range(0, static_cast<std::int64_t>(n) - 1));
        for (const bool first_hop : {false, true})
            expectSameAnswer(topo, cache, s, t, first_hop);
    }
}

} // namespace

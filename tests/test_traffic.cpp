/**
 * @file
 * Property tests for the Table III traffic patterns.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/traffic.hpp"

namespace {

using namespace sf;
using namespace sf::sim;

TEST(Traffic, NamesMatchPaperTable3)
{
    EXPECT_EQ(patternName(TrafficPattern::UniformRandom), "uniform");
    EXPECT_EQ(patternName(TrafficPattern::Tornado), "tornado");
    EXPECT_EQ(patternName(TrafficPattern::Hotspot), "hotspot");
    EXPECT_EQ(patternName(TrafficPattern::Opposite), "opposite");
    EXPECT_EQ(patternName(TrafficPattern::NearestNeighbor),
              "neighbor");
    EXPECT_EQ(patternName(TrafficPattern::Complement), "complement");
    EXPECT_EQ(patternName(TrafficPattern::Partition2), "partition2");
}

TEST(Traffic, DestinationsAlwaysInRange)
{
    Rng rng(1);
    for (const auto pattern : kAllPatterns) {
        for (const std::size_t n : {16u, 17u, 61u, 64u, 1296u}) {
            for (int i = 0; i < 200; ++i) {
                const auto src = static_cast<NodeId>(rng.below(n));
                const NodeId dst =
                    trafficDestination(pattern, src, n, rng);
                ASSERT_LT(dst, n)
                    << patternName(pattern) << " n=" << n;
            }
        }
    }
}

TEST(Traffic, TornadoIsHalfwayShift)
{
    Rng rng(2);
    EXPECT_EQ(trafficDestination(TrafficPattern::Tornado, 0, 64,
                                 rng),
              32u);
    EXPECT_EQ(trafficDestination(TrafficPattern::Tornado, 40, 64,
                                 rng),
              8u);  // wraps
}

TEST(Traffic, TornadoIsAPermutation)
{
    Rng rng(3);
    std::set<NodeId> dests;
    for (NodeId src = 0; src < 61; ++src)
        dests.insert(trafficDestination(TrafficPattern::Tornado,
                                        src, 61, rng));
    EXPECT_EQ(dests.size(), 61u);
}

TEST(Traffic, HotspotIsConstant)
{
    Rng rng(4);
    const NodeId first =
        trafficDestination(TrafficPattern::Hotspot, 0, 128, rng);
    for (NodeId src = 1; src < 128; ++src)
        EXPECT_EQ(trafficDestination(TrafficPattern::Hotspot, src,
                                     128, rng),
                  first);
}

TEST(Traffic, OppositeIsSelfInverse)
{
    Rng rng(5);
    for (NodeId src = 0; src < 100; ++src) {
        const NodeId dst = trafficDestination(
            TrafficPattern::Opposite, src, 100, rng);
        EXPECT_EQ(trafficDestination(TrafficPattern::Opposite, dst,
                                     100, rng),
                  src);
    }
}

TEST(Traffic, NeighborIsUnitShift)
{
    Rng rng(6);
    EXPECT_EQ(trafficDestination(TrafficPattern::NearestNeighbor,
                                 5, 64, rng),
              6u);
    EXPECT_EQ(trafficDestination(TrafficPattern::NearestNeighbor,
                                 63, 64, rng),
              0u);  // wraps
}

TEST(Traffic, ComplementOnPowerOfTwoIsBitwise)
{
    Rng rng(7);
    for (NodeId src = 0; src < 64; ++src)
        EXPECT_EQ(trafficDestination(TrafficPattern::Complement,
                                     src, 64, rng),
                  src ^ 63u);
}

TEST(Traffic, Partition2KeepsTrafficInOwnHalf)
{
    Rng rng(8);
    for (int i = 0; i < 2000; ++i) {
        const auto src = static_cast<NodeId>(rng.below(128));
        const NodeId dst = trafficDestination(
            TrafficPattern::Partition2, src, 128, rng);
        EXPECT_EQ(src < 64, dst < 64);
    }
}

TEST(Traffic, UniformCoversTheNetwork)
{
    Rng rng(9);
    std::set<NodeId> seen;
    for (int i = 0; i < 5000; ++i)
        seen.insert(trafficDestination(
            TrafficPattern::UniformRandom, 0, 64, rng));
    EXPECT_EQ(seen.size(), 64u);
}

/** Destination distribution sweep across node counts. */
class TrafficSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(TrafficSweep, DeterministicGivenRngState)
{
    const auto [pattern_index, n] = GetParam();
    const auto pattern = kAllPatterns[pattern_index];
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 200; ++i) {
        const auto src = static_cast<NodeId>(i % n);
        EXPECT_EQ(trafficDestination(pattern, src,
                                     static_cast<std::size_t>(n),
                                     a),
                  trafficDestination(pattern, src,
                                     static_cast<std::size_t>(n),
                                     b));
    }
}

INSTANTIATE_TEST_SUITE_P(
    PatternsAndSizes, TrafficSweep,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(16, 61, 1296)));

} // namespace

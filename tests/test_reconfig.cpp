/**
 * @file
 * Tests for elastic reconfiguration: gating, ungating, ring repair,
 * port budgets, routing after reconfiguration, and the
 * ShortcutsOnly vs AllSpaces repair modes.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/string_figure.hpp"
#include "net/paths.hpp"
#include "net/topology.hpp"

namespace {

using namespace sf;
using namespace sf::core;

SFParams
makeParams(std::size_t n, int ports,
           LinkMode mode = LinkMode::Unidirectional,
           std::uint64_t seed = 1)
{
    SFParams p;
    p.numNodes = n;
    p.routerPorts = ports;
    p.linkMode = mode;
    p.seed = seed;
    return p;
}

/** Route between every live pair and expect delivery. */
void
expectAllLivePairsDeliver(StringFigure &net)
{
    const std::size_t n = net.numNodes();
    for (NodeId s = 0; s < n; ++s) {
        if (!net.nodeAlive(s))
            continue;
        for (NodeId t = 0; t < n; ++t) {
            if (t == s || !net.nodeAlive(t))
                continue;
            ASSERT_GT(net::routedHops(net, s, t), 0)
                << s << " -> " << t;
        }
    }
}

TEST(Reconfig, GateIsIdempotent)
{
    StringFigure net(makeParams(32, 4));
    EXPECT_TRUE(net.gate(5).applied);
    EXPECT_FALSE(net.gate(5).applied);
    EXPECT_TRUE(net.ungate(5).applied);
    EXPECT_FALSE(net.ungate(5).applied);
}

TEST(Reconfig, GatedNodeHasNoEnabledWires)
{
    StringFigure net(makeParams(48, 4));
    net.gate(11);
    EXPECT_FALSE(net.nodeAlive(11));
    EXPECT_EQ(net.graph().degreeOut(11), 0u);
    EXPECT_EQ(net.graph().degreeIn(11), 0u);
}

TEST(Reconfig, SingleGateKeepsInvariants)
{
    StringFigure net(makeParams(64, 8));
    for (const NodeId victim : {NodeId{0}, NodeId{31}, NodeId{63}}) {
        const auto r = net.gate(victim);
        EXPECT_TRUE(r.applied);
        EXPECT_EQ(net.reconfig().checkInvariants(), "");
        net.ungate(victim);
        EXPECT_EQ(net.reconfig().checkInvariants(), "");
    }
}

TEST(Reconfig, SingleGateRepairsAllRings)
{
    StringFigure net(makeParams(64, 8));
    const auto r = net.gate(17);
    EXPECT_TRUE(r.applied);
    EXPECT_EQ(r.holes, 0);
    EXPECT_EQ(net.reconfig().currentHoles(), 0);
    EXPECT_GT(r.closuresEnabled, 0);
}

TEST(Reconfig, RoutingSurvivesSingleGate)
{
    StringFigure net(makeParams(61, 8));
    net.gate(30);
    expectAllLivePairsDeliver(net);
    EXPECT_EQ(net.fallbackCount(), 0u);
}

TEST(Reconfig, UngateRestoresOriginalWireSet)
{
    StringFigure net(makeParams(64, 8));
    std::vector<bool> before;
    for (LinkId id = 0;
         id < static_cast<LinkId>(net.graph().numLinks()); ++id)
        before.push_back(net.graph().link(id).enabled);

    net.gate(9);
    net.ungate(9);

    for (LinkId id = 0;
         id < static_cast<LinkId>(net.graph().numLinks()); ++id) {
        EXPECT_EQ(net.graph().link(id).enabled, before[id])
            << "link " << id;
    }
    EXPECT_EQ(net.reconfig().checkInvariants(), "");
}

TEST(Reconfig, GateUngateStressRandomSequence)
{
    StringFigure net(makeParams(96, 8));
    Rng rng(5);
    for (int step = 0; step < 200; ++step) {
        const NodeId u = static_cast<NodeId>(rng.below(96));
        if (net.nodeAlive(u)) {
            if (net.reconfig().canGate(u))
                net.gate(u);
        } else {
            net.ungate(u);
        }
        ASSERT_EQ(net.reconfig().checkInvariants(), "")
            << "after step " << step;
    }
    // Bring everyone back; the network must be whole again.
    for (NodeId u = 0; u < 96; ++u) {
        if (!net.nodeAlive(u))
            net.ungate(u);
    }
    ASSERT_EQ(net.reconfig().checkInvariants(), "");
    EXPECT_EQ(net.reconfig().currentHoles(), 0);
    EXPECT_TRUE(net::stronglyConnected(net.graph()));
}

TEST(Reconfig, AlternateGatingDownScales)
{
    // Gate every other node of space 0's ring: alternating victims
    // never collide on ring 0, but the same victims can be adjacent
    // on the other spaces' rings, so canGate() rejects a fraction of
    // them. A meaningful down-scale must still be achievable.
    StringFigure net(makeParams(64, 8));
    const auto ring = net.spaces().ring(0);
    std::size_t gated = 0;
    for (std::size_t i = 0; i < ring.size(); i += 2) {
        if (net.reconfig().canGate(ring[i])) {
            const auto r = net.gate(ring[i]);
            EXPECT_TRUE(r.applied);
            ++gated;
        }
    }
    EXPECT_GE(gated, ring.size() / 8);
    ASSERT_EQ(net.reconfig().checkInvariants(), "");
    expectAllLivePairsDeliver(net);
}

TEST(Reconfig, ReduceToTargetScale)
{
    StringFigure net(makeParams(128, 8));
    Rng rng(7);
    net.reduceTo(100, rng);
    EXPECT_LE(net.reconfig().numAlive(), 110u);
    ASSERT_EQ(net.reconfig().checkInvariants(), "");
    expectAllLivePairsDeliver(net);
}

TEST(Reconfig, CanGateRefusesAdjacentVictims)
{
    StringFigure net(makeParams(64, 8));
    const auto ring = net.spaces().ring(0);
    ASSERT_TRUE(net.reconfig().canGate(ring[10]));
    net.gate(ring[10]);
    // The static ring neighbour now borders the hole: gating it
    // would need a (nonexistent) 3-hop spare.
    EXPECT_FALSE(net.reconfig().canGate(ring[11]));
}

TEST(Reconfig, TablesStayInSyncWithGraph)
{
    StringFigure net(makeParams(72, 8));
    net.gate(13);
    net.gate(40);
    // Every table entry's via link must be enabled and the entry's
    // first hop must reach an alive node.
    for (NodeId u = 0; u < 72; ++u) {
        if (!net.nodeAlive(u))
            continue;
        for (const auto &e : net.tables().table(u).entries()) {
            if (!e.valid)
                continue;
            EXPECT_TRUE(net.graph().link(e.viaLink).enabled);
            EXPECT_TRUE(net.nodeAlive(e.node))
                << "entry to dead node " << e.node;
        }
    }
}

TEST(Reconfig, RoutingTableSizeBoundedOnBasicTopology)
{
    // Paper: table size <= p(p+1) on the basic topology.
    StringFigure net(makeParams(256, 8));
    EXPECT_LE(net.tables().maxEntriesSeen(), 8u * 9u);
}

TEST(Reconfig, ShortcutsOnlyModeCountsFallbacks)
{
    SFParams p = makeParams(96, 8);
    p.repairMode = RepairMode::ShortcutsOnly;
    StringFigure net(p);
    Rng rng(11);
    net.reduceTo(72, rng);
    ASSERT_EQ(net.reconfig().checkInvariants(), "");
    // Faithful mode may leave holes in spaces other than space 0;
    // routing must still deliver via the fallback (counted).
    expectAllLivePairsDeliver(net);
    SUCCEED() << "fallbacks used: " << net.fallbackCount();
}

TEST(Reconfig, AllSpacesModeAvoidsFallbacks)
{
    StringFigure net(makeParams(96, 8));
    Rng rng(11);
    net.reduceTo(72, rng);
    EXPECT_EQ(net.reconfig().currentHoles(), 0);
    expectAllLivePairsDeliver(net);
    EXPECT_EQ(net.fallbackCount(), 0u);
}

TEST(Reconfig, StaticExpansionDeploySubset)
{
    // Deploy-subset flow: build the max size, reduce, then expand.
    StringFigure net(makeParams(128, 8));
    Rng rng(3);
    const auto gated = net.reduceTo(96, rng);
    const std::size_t deployed = net.reconfig().numAlive();
    expectAllLivePairsDeliver(net);

    // "Mount" the reserved nodes again (static expansion).
    for (const NodeId u : gated)
        net.ungate(u);
    EXPECT_EQ(net.reconfig().numAlive(), 128u);
    EXPECT_EQ(net.reconfig().currentHoles(), 0);
    expectAllLivePairsDeliver(net);
    EXPECT_GT(deployed, 90u);
}

TEST(Reconfig, BidirectionalGateUngate)
{
    StringFigure net(makeParams(64, 8, LinkMode::Bidirectional));
    Rng rng(13);
    for (int step = 0; step < 60; ++step) {
        const NodeId u = static_cast<NodeId>(rng.below(64));
        if (net.nodeAlive(u)) {
            if (net.reconfig().canGate(u))
                net.gate(u);
        } else {
            net.ungate(u);
        }
        ASSERT_EQ(net.reconfig().checkInvariants(), "")
            << "after step " << step;
    }
    expectAllLivePairsDeliver(net);
}

TEST(Reconfig, StatsAccumulate)
{
    StringFigure net(makeParams(48, 8));
    net.gate(1);
    net.ungate(1);
    const auto &stats = net.reconfig().stats();
    EXPECT_EQ(stats.gateOps, 1u);
    EXPECT_EQ(stats.ungateOps, 1u);
    EXPECT_GT(stats.tableRebuilds, 0u);
    EXPECT_GT(stats.entriesBlocked, 0u);
}

/** Parameterised sweep: random gating at several scales/radix. */
class ReconfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ReconfigSweep, RandomReductionKeepsDelivery)
{
    const auto [n, ports] = GetParam();
    StringFigure net(makeParams(static_cast<std::size_t>(n), ports));
    Rng rng(n * 31 + ports);
    net.reduceTo(static_cast<std::size_t>(n * 3 / 4), rng);
    ASSERT_EQ(net.reconfig().checkInvariants(), "");
    const std::size_t live = net.reconfig().numAlive();
    ASSERT_GE(live, static_cast<std::size_t>(n) * 3 / 4 - 4);
    expectAllLivePairsDeliver(net);
}

INSTANTIATE_TEST_SUITE_P(
    ScalesAndRadix, ReconfigSweep,
    ::testing::Combine(::testing::Values(32, 61, 96, 128),
                       ::testing::Values(4, 6, 8)));

} // namespace

/**
 * @file
 * Unit tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/rng.hpp"

namespace {

using sf::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 100; ++i)
        differing += a.next() != b.next() ? 1 : 0;
    EXPECT_GT(differing, 95);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.reseed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(13);
    std::vector<int> buckets(10, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++buckets[rng.below(10)];
    for (int count : buckets)
        EXPECT_NEAR(count, draws / 10, draws / 100);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = v;
    rng.shuffle(shuffled);
    EXPECT_TRUE(std::is_permutation(shuffled.begin(), shuffled.end(),
                                    v.begin()));
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(19);
    std::vector<int> v(64);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<int>(i);
    auto shuffled = v;
    rng.shuffle(shuffled);
    EXPECT_NE(shuffled, v);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

} // namespace

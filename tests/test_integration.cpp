/**
 * @file
 * Cross-module integration tests: topology -> placement -> simulator
 * -> energy pipelines behaving consistently end to end.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/string_figure.hpp"
#include "net/placement.hpp"
#include "sim/simulator.hpp"
#include "topos/factory.hpp"
#include "workloads/generators.hpp"
#include "workloads/replay.hpp"

namespace {

using namespace sf;

core::SFParams
sfParams(std::size_t n, int ports)
{
    core::SFParams p;
    p.numNodes = n;
    p.routerPorts = ports;
    p.seed = 5;
    return p;
}

TEST(Integration, ZeroLoadLatencyTracksRoutedHops)
{
    // latency ~= hops x (1 cycle switch + 1 serdes + wire) +
    // serialization; check the per-hop cost stays in a sane band
    // across topology kinds.
    for (const auto kind :
         {topos::TopoKind::DM, topos::TopoKind::S2,
          topos::TopoKind::SF}) {
        const auto topo = topos::makeTopology(kind, 64, 5, 1);
        sim::SimConfig cfg;
        cfg.seed = 5;
        sim::RunPhases phases;
        phases.warmup = 300;
        phases.measure = 1500;
        const auto r = sim::runSynthetic(
            *topo, sim::TrafficPattern::UniformRandom, 0.005, cfg,
            phases);
        ASSERT_GT(r.measuredPackets, 50u) << topos::kindName(kind);
        const double per_hop =
            (r.avgNetworkLatency - cfg.packetFlits) / r.avgHops;
        EXPECT_GT(per_hop, 1.5) << topos::kindName(kind);
        EXPECT_LT(per_hop, 8.0) << topos::kindName(kind);
    }
}

TEST(Integration, PlacementLatencyRaisesMeasuredLatency)
{
    // Annotating links with grid wire lengths must raise total
    // link latency relative to unit-latency links.
    const auto placement = net::Placement::rowMajor(64);
    auto data = core::buildTopologyData(sfParams(64, 8));
    net::applyPlacementLatency(data.graph, placement);
    double annotated = 0.0;
    double unit = 0.0;
    for (LinkId id = 0;
         id < static_cast<LinkId>(data.graph.numLinks()); ++id) {
        if (!data.graph.link(id).enabled)
            continue;
        annotated += data.graph.link(id).latency;
        unit += 1.0;
    }
    EXPECT_GT(annotated, unit);
}

TEST(Integration, SnakePlacementShortensSfWires)
{
    // Ordering the grid by space-0 coordinates clusters ring
    // neighbours (the paper's MetaCube-style placement goal).
    const auto data = core::buildTopologyData(sfParams(256, 8));
    const auto naive = net::Placement::rowMajor(256);
    const auto clustered =
        net::Placement::snakeOrder(data.spaces.ring(0));
    EXPECT_LT(clustered.averageWireLength(data.graph) * 0.999,
              naive.averageWireLength(data.graph));
    EXPECT_GT(clustered.shortLinkFraction(data.graph, 10),
              naive.shortLinkFraction(data.graph, 10) * 0.999);
}

TEST(Integration, ReplayEnergyLedgerIsConsistent)
{
    core::StringFigure topo(sfParams(32, 8));
    const auto trace =
        wl::generateTrace(wl::Workload::SparkGrep, 3, 2000, 0);
    sim::SimConfig sim_cfg;
    sim_cfg.seed = 5;
    wl::ReplayConfig cfg;
    const auto r = wl::replayTrace(trace, topo, sim_cfg, cfg);
    ASSERT_TRUE(r.finished);
    // Ledger adds up.
    EXPECT_DOUBLE_EQ(r.totalPj,
                     r.networkPj + r.dramPj + r.backgroundPj);
    // DRAM energy is exactly ops x 64B x 12 pJ/bit.
    EXPECT_DOUBLE_EQ(r.dramPj, 2000.0 * 512 * 12.0);
    // Background energy is live-nodes x runtime x 10 pJ.
    EXPECT_DOUBLE_EQ(r.backgroundPj,
                     10.0 * 32 *
                         static_cast<double>(r.runtimeCycles));
}

TEST(Integration, FasterNetworkLowersReplayRuntime)
{
    const auto trace =
        wl::generateTrace(wl::Workload::Redis, 3, 3000, 0);
    sim::SimConfig sim_cfg;
    sim_cfg.seed = 5;
    wl::ReplayConfig cfg;

    const auto dm = topos::makeTopology(topos::TopoKind::DM, 256,
                                        5, 1);
    const auto sf_net = topos::makeTopology(topos::TopoKind::SF,
                                            256, 5);
    const auto r_dm = wl::replayTrace(trace, *dm, sim_cfg, cfg);
    const auto r_sf = wl::replayTrace(trace, *sf_net, sim_cfg, cfg);
    ASSERT_TRUE(r_dm.finished);
    ASSERT_TRUE(r_sf.finished);
    EXPECT_LT(r_sf.runtimeCycles, r_dm.runtimeCycles);
    EXPECT_GT(r_sf.ipc, r_dm.ipc);
}

TEST(Integration, GateUngateUnderTrafficEndToEnd)
{
    // Full elastic cycle under live traffic: shrink, verify
    // delivery, expand, verify the original wire set and delivery.
    core::StringFigure topo(sfParams(96, 8));
    sim::SimConfig cfg;
    cfg.seed = 5;
    sim::NetworkModel net(topo, cfg);
    Rng rng(5);
    Cycle cycle = 0;
    const auto pump = [&](int cycles) {
        for (int i = 0; i < cycles; ++i, ++cycle) {
            const auto s = static_cast<NodeId>(rng.below(96));
            const auto t = static_cast<NodeId>(rng.below(96));
            if (s != t && topo.nodeAlive(s) && topo.nodeAlive(t))
                net.inject(s, t, 5, sim::kRequest, cycle);
            net.step(cycle);
        }
    };
    std::vector<NodeId> gated;
    for (int round = 0; round < 12; ++round) {
        pump(120);
        for (NodeId u = 0; u < 96; ++u) {
            if (topo.nodeAlive(u) && topo.reconfig().canGate(u) &&
                net.nodeQuiescent(u)) {
                topo.gate(u);
                net.onTopologyChanged();
                gated.push_back(u);
                break;
            }
        }
    }
    EXPECT_GE(gated.size(), 8u);
    pump(300);
    for (auto it = gated.rbegin(); it != gated.rend(); ++it) {
        topo.ungate(*it);
        net.onTopologyChanged();
        pump(60);
    }
    for (; net.inFlight() > 0 && cycle < 100000; ++cycle)
        net.step(cycle);
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_EQ(topo.reconfig().numAlive(), 96u);
    EXPECT_EQ(topo.reconfig().checkInvariants(), "");
    EXPECT_EQ(topo.reconfig().currentHoles(), 0);
}

} // namespace

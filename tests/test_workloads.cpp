/**
 * @file
 * Tests for the cache model, workload trace generators, and the
 * trace replay engine.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/string_figure.hpp"
#include "topos/mesh.hpp"
#include "workloads/cache_model.hpp"
#include "workloads/generators.hpp"
#include "workloads/replay.hpp"

namespace {

using namespace sf;
using namespace sf::wl;

TEST(CacheLevel, HitAfterFill)
{
    CacheLevel cache(32 * 1024, 4);
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1020, false).hit);  // same line
    EXPECT_FALSE(cache.access(0x1040, false).hit); // next line
}

TEST(CacheLevel, LruEviction)
{
    // 4-way set: the 5th distinct line in one set evicts the LRU.
    CacheLevel cache(32 * 1024, 4);  // 128 sets, 64B lines
    const std::uint64_t set_stride = 128 * 64;
    for (int i = 0; i < 4; ++i)
        cache.access(i * set_stride, false);
    cache.access(0, false);  // refresh line 0
    cache.access(4 * set_stride, false);  // evicts line 1
    EXPECT_TRUE(cache.access(0, false).hit);
    EXPECT_FALSE(cache.access(1 * set_stride, false).hit);
}

TEST(CacheLevel, DirtyEvictionReported)
{
    CacheLevel cache(32 * 1024, 4);
    const std::uint64_t set_stride = 128 * 64;
    cache.access(0, true);  // dirty
    for (int i = 1; i < 5; ++i) {
        const auto out = cache.access(i * set_stride, false);
        if (out.evictedDirty) {
            EXPECT_EQ(out.evictedLine, 0u);
            return;
        }
    }
    FAIL() << "dirty line never evicted";
}

TEST(CacheHierarchy, StreamMissesReachDram)
{
    CacheHierarchy caches;
    std::vector<MemAccess> dram;
    // A long streaming scan: every new 64B line misses all levels.
    for (std::uint64_t addr = 0; addr < 1024 * 1024; addr += 64)
        caches.access(addr, false, dram);
    EXPECT_EQ(dram.size(), 1024u * 1024 / 64);
}

TEST(CacheHierarchy, HotSetStaysCached)
{
    CacheHierarchy caches;
    std::vector<MemAccess> dram;
    for (int rep = 0; rep < 100; ++rep) {
        for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 64)
            caches.access(addr, false, dram);
    }
    // Only the first sweep misses.
    EXPECT_EQ(dram.size(), 16u * 1024 / 64);
}

TEST(Generators, AllWorkloadsProduceFullTraces)
{
    for (const Workload w : kAllWorkloads) {
        const Trace trace = generateTrace(w, 1, 2000);
        EXPECT_EQ(trace.ops.size(), 2000u) << workloadName(w);
        EXPECT_GT(trace.totalInstructions, 2000u);
        // Timestamps must be monotonically non-decreasing.
        for (std::size_t i = 1; i < trace.ops.size(); ++i)
            ASSERT_GE(trace.ops[i].instrId,
                      trace.ops[i - 1].instrId);
    }
}

TEST(Generators, Deterministic)
{
    const Trace a = generateTrace(Workload::Redis, 7, 1000);
    const Trace b = generateTrace(Workload::Redis, 7, 1000);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
        EXPECT_EQ(a.ops[i].addr, b.ops[i].addr);
        EXPECT_EQ(a.ops[i].isWrite, b.ops[i].isWrite);
    }
}

TEST(Generators, WorkloadsHaveDistinctCharacter)
{
    // Grep streams (low write share); wordcount aggregates (high
    // write share from hash updates + writebacks).
    const Trace grep = generateTrace(Workload::SparkGrep, 1, 5000);
    const Trace wc = generateTrace(Workload::SparkWordcount, 1,
                                   5000);
    const auto write_share = [](const Trace &t) {
        std::size_t w = 0;
        for (const auto &op : t.ops)
            w += op.isWrite ? 1 : 0;
        return static_cast<double>(w) /
               static_cast<double>(t.ops.size());
    };
    EXPECT_LT(write_share(grep), 0.1);
    EXPECT_GT(write_share(wc), 0.2);
    // Kmeans revisits its hot centroids: higher L1 hit rate than
    // the random-key redis stream.
    const Trace km = generateTrace(Workload::Kmeans, 1, 5000);
    const Trace rd = generateTrace(Workload::Redis, 1, 5000);
    EXPECT_GT(km.l1HitRate, rd.l1HitRate);
}

TEST(Generators, AddressesSpreadAcrossSpace)
{
    const Trace trace = generateTrace(Workload::Pagerank, 3, 5000);
    std::set<std::uint64_t> pages;
    for (const auto &op : trace.ops)
        pages.insert(op.addr / 4096);
    EXPECT_GT(pages.size(), 1000u);
}

TEST(Replay, CompletesOnStringFigure)
{
    core::SFParams p;
    p.numNodes = 32;
    p.routerPorts = 8;
    core::StringFigure topo(p);
    const Trace trace = generateTrace(Workload::Redis, 1, 3000);
    sim::SimConfig sim_cfg;
    ReplayConfig cfg;
    const auto result = replayTrace(trace, topo, sim_cfg, cfg);
    EXPECT_TRUE(result.finished);
    EXPECT_EQ(result.opsCompleted, 3000u);
    EXPECT_GT(result.runtimeCycles, 0u);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GT(result.avgOpLatency, 10.0);
    EXPECT_GT(result.networkPj, 0.0);
    EXPECT_GT(result.dramPj, 0.0);
    EXPECT_GT(result.edpJouleSeconds, 0.0);
}

TEST(Replay, CompletesOnMesh)
{
    topos::MeshTopology mesh(4, 8);
    const Trace trace = generateTrace(Workload::MatMul, 1, 3000);
    sim::SimConfig sim_cfg;
    ReplayConfig cfg;
    const auto result = replayTrace(trace, mesh, sim_cfg, cfg);
    EXPECT_TRUE(result.finished);
    EXPECT_GT(result.rowHits + result.rowMisses, 0u);
}

TEST(Replay, DramEnergyMatchesOpCount)
{
    core::SFParams p;
    p.numNodes = 16;
    p.routerPorts = 4;
    core::StringFigure topo(p);
    const Trace trace = generateTrace(Workload::SparkGrep, 2, 1000);
    sim::SimConfig sim_cfg;
    ReplayConfig cfg;
    const auto result = replayTrace(trace, topo, sim_cfg, cfg);
    ASSERT_TRUE(result.finished);
    // 12 pJ/bit x 512 bits per 64B access x 1000 accesses.
    EXPECT_DOUBLE_EQ(result.dramPj, 12.0 * 512 * 1000);
}

TEST(Replay, PowerGatingMidRunStillCompletes)
{
    core::SFParams p;
    p.numNodes = 64;
    p.routerPorts = 8;
    core::StringFigure topo(p);
    const Trace trace = generateTrace(Workload::Memcached, 1, 4000);
    sim::SimConfig sim_cfg;
    ReplayConfig cfg;
    const auto result = replayTrace(trace, topo, sim_cfg, cfg, 48);
    EXPECT_TRUE(result.finished);
    EXPECT_LE(topo.reconfig().numAlive(), 64u);
}

TEST(Replay, WindowOfOneSerializesEachSocketsRequests)
{
    // The MSHR window is the replay's dependency mechanism: at
    // window=1 a socket's next request waits on the previous
    // response (issue decrements only in the reply half of the
    // deliver handler). The same trace must therefore take far
    // longer than the memory-bound window=64 replay, and no
    // faster than one full round trip per op per socket.
    core::SFParams p;
    p.numNodes = 32;
    p.routerPorts = 8;
    core::StringFigure topo(p);
    const Trace trace = generateTrace(Workload::Redis, 1, 2000);
    sim::SimConfig sim_cfg;

    ReplayConfig wide;
    const auto pipelined = replayTrace(trace, topo, sim_cfg, wide);
    ASSERT_TRUE(pipelined.finished);

    ReplayConfig serial_cfg;
    serial_cfg.window = 1;
    const auto serial =
        replayTrace(trace, topo, sim_cfg, serial_cfg);
    ASSERT_TRUE(serial.finished);
    EXPECT_EQ(serial.opsCompleted, 2000u);

    // Serialized issue can overlap ops only across sockets, so
    // runtime is bounded below by (ops per socket) x (cheapest
    // possible round trip): request + DRAM access + reply, each
    // at least one cycle.
    const auto per_socket = static_cast<Cycle>(
        trace.ops.size() /
        static_cast<std::size_t>(serial_cfg.sockets));
    EXPECT_GE(serial.runtimeCycles, 3 * per_socket);
    // And the window is the only thing that changed, so the
    // pipelined replay must be strictly faster.
    EXPECT_GT(serial.runtimeCycles, 2 * pipelined.runtimeCycles);
    // Dependency stalls show up as latency the socket *observes*
    // but never as lost work.
    EXPECT_GT(serial.avgOpLatency, 0.0);
}

TEST(Replay, RespectTimestampsGatesIssueOnTraceTime)
{
    // CPU-bound replay: ops may not issue before their trace
    // timestamp, so the runtime is bounded below by the last op's
    // arrival time — a bound the memory-bound default is well
    // under for this trace.
    core::SFParams p;
    p.numNodes = 32;
    p.routerPorts = 8;
    core::StringFigure topo(p);
    const Trace trace = generateTrace(Workload::SparkGrep, 1, 2000);
    sim::SimConfig sim_cfg;

    ReplayConfig fast;
    const auto unconstrained =
        replayTrace(trace, topo, sim_cfg, fast);
    ASSERT_TRUE(unconstrained.finished);

    ReplayConfig timed;
    timed.respectTimestamps = true;
    const auto gated = replayTrace(trace, topo, sim_cfg, timed);
    ASSERT_TRUE(gated.finished);
    EXPECT_EQ(gated.opsCompleted, 2000u);

    const Cycle last_arrival = Trace::instrToCycles(
        trace.ops.back().instrId, timed.cpi);
    ASSERT_GT(last_arrival, unconstrained.runtimeCycles)
        << "trace too dense to distinguish the gated path";
    EXPECT_GE(gated.runtimeCycles, last_arrival);
    EXPECT_GT(gated.runtimeCycles, unconstrained.runtimeCycles);
}

TEST(Replay, SlowerNetworkGivesLowerThroughput)
{
    // The same trace on SF vs a small mesh: relative IPC ordering
    // should reflect network quality (SF >= DM at this scale).
    const Trace trace = generateTrace(Workload::Pagerank, 1, 3000);
    sim::SimConfig sim_cfg;
    ReplayConfig cfg;

    core::SFParams p;
    p.numNodes = 64;
    p.routerPorts = 8;
    core::StringFigure sf_topo(p);
    topos::MeshTopology mesh(8, 8);

    const auto sf_result = replayTrace(trace, sf_topo, sim_cfg, cfg);
    const auto dm_result = replayTrace(trace, mesh, sim_cfg, cfg);
    ASSERT_TRUE(sf_result.finished);
    ASSERT_TRUE(dm_result.finished);
    EXPECT_GT(sf_result.ipc, 0.8 * dm_result.ipc);
}

} // namespace

/**
 * @file
 * Unit tests for virtual spaces and circular distances.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/coordinates.hpp"

namespace {

using namespace sf;
using namespace sf::core;

TEST(CircularDistance, BasicSymmetric)
{
    EXPECT_DOUBLE_EQ(circularDistance(0.1, 0.3), 0.2);
    EXPECT_DOUBLE_EQ(circularDistance(0.3, 0.1), 0.2);
    EXPECT_DOUBLE_EQ(circularDistance(0.9, 0.1), 0.2);  // wraps
    EXPECT_DOUBLE_EQ(circularDistance(0.5, 0.5), 0.0);
}

TEST(CircularDistance, NeverExceedsHalf)
{
    for (double a = 0.0; a < 1.0; a += 0.07) {
        for (double b = 0.0; b < 1.0; b += 0.013)
            EXPECT_LE(circularDistance(a, b), 0.5);
    }
}

TEST(ClockwiseDistance, Directed)
{
    EXPECT_DOUBLE_EQ(clockwiseDistance(0.1, 0.3), 0.2);
    EXPECT_DOUBLE_EQ(clockwiseDistance(0.3, 0.1), 0.8);  // wraps
    EXPECT_DOUBLE_EQ(clockwiseDistance(0.7, 0.7), 0.0);
}

TEST(VirtualSpaces, ShapeMatchesRequest)
{
    Rng rng(1);
    const auto vs = VirtualSpaces::generate(100, 4, rng);
    EXPECT_EQ(vs.numNodes(), 100u);
    EXPECT_EQ(vs.numSpaces(), 4);
    for (int s = 0; s < 4; ++s)
        EXPECT_EQ(vs.ring(s).size(), 100u);
}

TEST(VirtualSpaces, BalancedCoordinatesEvenlySpaced)
{
    Rng rng(2);
    const auto vs = VirtualSpaces::generate(10, 2, rng,
                                            CoordMode::Balanced);
    // Balanced mode assigns the slots k/10 exactly once per space.
    for (int s = 0; s < 2; ++s) {
        std::set<double> seen;
        for (NodeId u = 0; u < 10; ++u)
            seen.insert(vs.coord(u, s));
        EXPECT_EQ(seen.size(), 10u);
        for (double c : seen) {
            const double scaled = c * 10.0;
            EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
        }
    }
}

TEST(VirtualSpaces, RingSortedByCoordinate)
{
    Rng rng(3);
    const auto vs = VirtualSpaces::generate(64, 3, rng,
                                            CoordMode::UniformRandom);
    for (int s = 0; s < 3; ++s) {
        const auto &ring = vs.ring(s);
        for (std::size_t i = 0; i + 1 < ring.size(); ++i)
            EXPECT_LE(vs.coord(ring[i], s), vs.coord(ring[i + 1], s));
    }
}

TEST(VirtualSpaces, RingIndexInvertsRing)
{
    Rng rng(4);
    const auto vs = VirtualSpaces::generate(32, 2, rng);
    for (int s = 0; s < 2; ++s) {
        for (std::size_t i = 0; i < 32; ++i)
            EXPECT_EQ(vs.ringIndex(vs.ring(s)[i], s), i);
    }
}

TEST(VirtualSpaces, RingAheadBehindRoundTrip)
{
    Rng rng(5);
    const auto vs = VirtualSpaces::generate(20, 2, rng);
    for (NodeId u = 0; u < 20; ++u) {
        for (int s = 0; s < 2; ++s) {
            EXPECT_EQ(vs.ringBehind(vs.ringAhead(u, s, 3), s, 3), u);
            EXPECT_EQ(vs.ringAhead(u, s, 20), u);  // full loop
        }
    }
}

TEST(VirtualSpaces, MinCircularDistanceIsMinOverSpaces)
{
    Rng rng(6);
    const auto vs = VirtualSpaces::generate(16, 3, rng);
    for (NodeId u = 0; u < 16; ++u) {
        for (NodeId v = 0; v < 16; ++v) {
            double expected = 1.0;
            for (int s = 0; s < 3; ++s)
                expected = std::min(expected,
                                    circularDistance(vs.coord(u, s),
                                                     vs.coord(v, s)));
            EXPECT_DOUBLE_EQ(vs.minCircularDistance(u, v), expected);
        }
    }
}

TEST(VirtualSpaces, SpacesAreIndependentPermutations)
{
    Rng rng(7);
    const auto vs = VirtualSpaces::generate(128, 2, rng);
    // The two rings should not be identical orderings.
    EXPECT_NE(vs.ring(0), vs.ring(1));
}

TEST(VirtualSpaces, QuantizeSnapsToGrid)
{
    Rng rng(8);
    auto vs = VirtualSpaces::generate(50, 2, rng,
                                      CoordMode::UniformRandom);
    vs.quantize(7);
    for (NodeId u = 0; u < 50; ++u) {
        for (int s = 0; s < 2; ++s) {
            const double scaled = vs.coord(u, s) * 128.0;
            EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
        }
    }
}

TEST(VirtualSpaces, QuantizeKeepsRingsConsistent)
{
    Rng rng(9);
    auto vs = VirtualSpaces::generate(300, 2, rng);
    vs.quantize(7);  // 300 nodes in 128 slots: collisions guaranteed
    for (int s = 0; s < 2; ++s) {
        const auto &ring = vs.ring(s);
        EXPECT_EQ(ring.size(), 300u);
        for (std::size_t i = 0; i < ring.size(); ++i)
            EXPECT_EQ(vs.ringIndex(ring[i], s), i);
    }
}

TEST(VirtualSpaces, DeterministicForSeed)
{
    Rng a(10);
    Rng b(10);
    const auto va = VirtualSpaces::generate(64, 4, a);
    const auto vb = VirtualSpaces::generate(64, 4, b);
    for (NodeId u = 0; u < 64; ++u) {
        for (int s = 0; s < 4; ++s)
            EXPECT_DOUBLE_EQ(va.coord(u, s), vb.coord(u, s));
    }
}

} // namespace

/**
 * @file
 * Tests for the simulation statistics substrate.
 */

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace {

using namespace sf::sim;

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.99), 0u);
}

TEST(LatencyHistogram, MeanOfKnownSamples)
{
    LatencyHistogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LatencyHistogram, PercentilesOfUniformRamp)
{
    LatencyHistogram h;
    for (sf::Cycle latency = 0; latency < 100; ++latency)
        h.record(latency);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 49.0, 1.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.9)), 89.0, 1.0);
    EXPECT_EQ(h.percentile(1.0), 99u);
}

TEST(LatencyHistogram, OverflowBucketKeepsCountAndMean)
{
    LatencyHistogram h(16);
    h.record(8);
    h.record(1000);  // beyond the bins
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), 504.0);
    // The overflowed sample reports as "beyond the last bin".
    EXPECT_EQ(h.percentile(1.0), 16u);
}

TEST(LatencyHistogram, ResetClearsEverything)
{
    LatencyHistogram h;
    h.record(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(NetStats, AvgHopsGuardsDivisionByZero)
{
    NetStats stats;
    EXPECT_DOUBLE_EQ(stats.avgHops(), 0.0);
    stats.measuredPackets = 4;
    stats.measuredHops = 14;
    EXPECT_DOUBLE_EQ(stats.avgHops(), 3.5);
}

} // namespace

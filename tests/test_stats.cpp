/**
 * @file
 * Tests for the simulation statistics substrate.
 */

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace {

using namespace sf::sim;

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.99), 0u);
}

TEST(LatencyHistogram, MeanOfKnownSamples)
{
    LatencyHistogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LatencyHistogram, PercentilesOfUniformRamp)
{
    LatencyHistogram h;
    for (sf::Cycle latency = 0; latency < 100; ++latency)
        h.record(latency);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 49.0, 1.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.9)), 89.0, 1.0);
    EXPECT_EQ(h.percentile(1.0), 99u);
}

TEST(LatencyHistogram, OverflowBucketKeepsCountAndMean)
{
    LatencyHistogram h(16);
    h.record(8);
    h.record(1000);  // beyond the bins
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), 504.0);
    EXPECT_EQ(h.overflow(), 1u);
    // A quantile landing in the overflow bucket reports the exact
    // observed maximum, not the meaningless bin count (16).
    EXPECT_EQ(h.percentile(1.0), 1000u);
    EXPECT_EQ(h.max(), 1000u);
}

TEST(LatencyHistogram, OverflowQuantilesNeverReportBinCount)
{
    // Regression: every sample beyond the linear range used to
    // make *all* high quantiles report bins_.size() — a constant
    // unrelated to any latency. Now they report the observed max.
    LatencyHistogram h(8);
    for (int i = 0; i < 99; ++i)
        h.record(2);
    h.record(500000);
    EXPECT_EQ(h.percentile(0.5), 2u);
    EXPECT_EQ(h.percentile(0.99), 2u);
    EXPECT_EQ(h.percentile(1.0), 500000u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.max(), 500000u);
}

TEST(LatencyHistogram, ResetClearsEverything)
{
    LatencyHistogram h(16);
    h.record(5);
    h.record(1000);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(NetStats, AvgHopsGuardsDivisionByZero)
{
    NetStats stats;
    EXPECT_DOUBLE_EQ(stats.avgHops(), 0.0);
    stats.measuredPackets = 4;
    stats.measuredHops = 14;
    EXPECT_DOUBLE_EQ(stats.avgHops(), 3.5);
}

} // namespace

/**
 * @file
 * Unit and property tests for the String Figure topology builder.
 */

#include <gtest/gtest.h>

#include "core/topology_builder.hpp"
#include "net/paths.hpp"

namespace {

using namespace sf;
using namespace sf::core;

SFParams
makeParams(std::size_t n, int ports, LinkMode mode,
           std::uint64_t seed = 1)
{
    SFParams p;
    p.numNodes = n;
    p.routerPorts = ports;
    p.linkMode = mode;
    p.seed = seed;
    return p;
}

TEST(Builder, RejectsTinyNetworks)
{
    EXPECT_THROW(buildTopologyData(makeParams(3, 4,
                                          LinkMode::Unidirectional)),
                 std::invalid_argument);
}

TEST(Builder, PortBudgetRespected)
{
    for (const auto mode : {LinkMode::Unidirectional,
                            LinkMode::Bidirectional}) {
        const auto data = buildTopologyData(makeParams(64, 4, mode));
        for (NodeId u = 0; u < 64; ++u)
            EXPECT_LE(data.portsUsed[u], 4) << "node " << u;
    }
}

TEST(Builder, PortAccountingMatchesGraph)
{
    const auto data =
        buildTopologyData(makeParams(100, 8, LinkMode::Unidirectional));
    for (NodeId u = 0; u < 100; ++u) {
        const int incident = static_cast<int>(
            data.graph.degreeOut(u) + data.graph.degreeIn(u));
        EXPECT_EQ(data.portsUsed[u], incident);
    }
}

TEST(Builder, EveryRingAdjacencyWired)
{
    const auto data =
        buildTopologyData(makeParams(60, 6, LinkMode::Unidirectional));
    for (int s = 0; s < data.spaces.numSpaces(); ++s) {
        const auto &ring = data.spaces.ring(s);
        for (std::size_t i = 0; i < ring.size(); ++i) {
            const NodeId u = ring[i];
            const NodeId v = ring[(i + 1) % ring.size()];
            const LinkId id = data.findWire(u, v);
            ASSERT_NE(id, kInvalidLink)
                << "space " << s << " gap " << u << "->" << v;
            EXPECT_TRUE(data.graph.link(id).enabled);
        }
    }
}

TEST(Builder, UnidirectionalStronglyConnected)
{
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        const auto data = buildTopologyData(
            makeParams(80, 4, LinkMode::Unidirectional, seed));
        EXPECT_TRUE(net::stronglyConnected(data.graph))
            << "seed " << seed;
    }
}

TEST(Builder, BidirectionalStronglyConnected)
{
    const auto data =
        buildTopologyData(makeParams(80, 4, LinkMode::Bidirectional));
    EXPECT_TRUE(net::stronglyConnected(data.graph));
}

TEST(Builder, ArbitraryNodeCounts)
{
    // The motivating feature: no power-of-two restriction.
    for (const std::size_t n : {17u, 61u, 113u, 130u}) {
        const auto data =
            buildTopologyData(makeParams(n, 4, LinkMode::Unidirectional));
        EXPECT_EQ(data.graph.numNodes(), n);
        EXPECT_TRUE(net::stronglyConnected(data.graph));
    }
}

TEST(Builder, ShortcutRules)
{
    const auto data =
        buildTopologyData(makeParams(200, 8, LinkMode::Unidirectional));
    std::vector<int> shortcuts_from(200, 0);
    for (LinkId id = 0;
         id < static_cast<LinkId>(data.graph.numLinks()); ++id) {
        const net::Link &l = data.graph.link(id);
        if (l.kind != net::LinkKind::Shortcut)
            continue;
        // Only toward larger node numbers (paper Fig 3(c)).
        EXPECT_GT(l.dst, l.src);
        // Target is the 2- or 4-hop clockwise space-0 neighbour.
        const bool two = data.spaces.ringAhead(l.src, 0, 2) == l.dst;
        const bool four = data.spaces.ringAhead(l.src, 0, 4) == l.dst;
        EXPECT_TRUE(two || four);
        ++shortcuts_from[l.src];
    }
    for (NodeId u = 0; u < 200; ++u)
        EXPECT_LE(shortcuts_from[u], 2) << "node " << u;
}

TEST(Builder, RepairWiresDormantAtBuild)
{
    const auto data =
        buildTopologyData(makeParams(100, 8, LinkMode::Unidirectional));
    for (LinkId id = 0;
         id < static_cast<LinkId>(data.graph.numLinks()); ++id) {
        const net::Link &l = data.graph.link(id);
        if (l.kind == net::LinkKind::Repair)
            EXPECT_FALSE(l.enabled);
    }
    EXPECT_GT(data.stats.repairWires, 0u);
}

TEST(Builder, ShortcutsOnlyModeHasNoRepairWires)
{
    SFParams p = makeParams(100, 8, LinkMode::Unidirectional);
    p.repairMode = RepairMode::ShortcutsOnly;
    const auto data = buildTopologyData(p);
    EXPECT_EQ(data.stats.repairWires, 0u);
}

TEST(Builder, WireInventoryConsistent)
{
    const auto data =
        buildTopologyData(makeParams(64, 6, LinkMode::Unidirectional));
    for (const auto &[key, id] : data.wires) {
        const NodeId from = static_cast<NodeId>(key >> 32);
        const NodeId to = static_cast<NodeId>(key & 0xffffffffu);
        EXPECT_EQ(data.graph.link(id).src, from);
        EXPECT_EQ(data.graph.link(id).dst, to);
    }
}

TEST(Builder, EnabledLinkCountBounded)
{
    // Cnetwork <= N * (p/2 + 2) wires in unidirectional mode
    // (paper Section IV, bounded number of connections).
    const auto data =
        buildTopologyData(makeParams(256, 8, LinkMode::Unidirectional));
    std::size_t enabled_wires = 0;
    for (LinkId id = 0;
         id < static_cast<LinkId>(data.graph.numLinks()); ++id) {
        if (data.graph.link(id).enabled)
            ++enabled_wires;
    }
    EXPECT_LE(enabled_wires, 256u * (8 / 2 + 2));
}

TEST(Builder, DeterministicForSeed)
{
    const auto a =
        buildTopologyData(makeParams(90, 4, LinkMode::Unidirectional, 7));
    const auto b =
        buildTopologyData(makeParams(90, 4, LinkMode::Unidirectional, 7));
    ASSERT_EQ(a.graph.numLinks(), b.graph.numLinks());
    for (LinkId id = 0;
         id < static_cast<LinkId>(a.graph.numLinks()); ++id) {
        EXPECT_EQ(a.graph.link(id).src, b.graph.link(id).src);
        EXPECT_EQ(a.graph.link(id).dst, b.graph.link(id).dst);
        EXPECT_EQ(a.graph.link(id).enabled, b.graph.link(id).enabled);
    }
}

TEST(Builder, SeedsProduceDifferentTopologies)
{
    const auto a =
        buildTopologyData(makeParams(90, 4, LinkMode::Unidirectional, 1));
    const auto b =
        buildTopologyData(makeParams(90, 4, LinkMode::Unidirectional, 2));
    bool differs = a.graph.numLinks() != b.graph.numLinks();
    if (!differs) {
        for (LinkId id = 0;
             id < static_cast<LinkId>(a.graph.numLinks()); ++id) {
            if (a.graph.link(id).src != b.graph.link(id).src ||
                a.graph.link(id).dst != b.graph.link(id).dst) {
                differs = true;
                break;
            }
        }
    }
    EXPECT_TRUE(differs);
}

/** Property sweep: construction invariants across sizes and radix. */
class BuilderSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(BuilderSweep, InvariantsHold)
{
    const auto [n, ports, mode_int] = GetParam();
    const auto mode = mode_int == 0 ? LinkMode::Unidirectional
                                    : LinkMode::Bidirectional;
    const auto data = buildTopologyData(
        makeParams(static_cast<std::size_t>(n), ports, mode, 11));

    // Port budgets.
    for (NodeId u = 0; u < static_cast<NodeId>(n); ++u)
        ASSERT_LE(data.portsUsed[u], ports);
    // Full connectivity.
    ASSERT_TRUE(net::stronglyConnected(data.graph));
    // Diameter sanity: random graphs stay compact.
    const auto stats = net::allPairsStats(data.graph);
    ASSERT_LT(stats.average, static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRadix, BuilderSweep,
    ::testing::Combine(::testing::Values(16, 17, 32, 61, 113),
                       ::testing::Values(4, 6, 8),
                       ::testing::Values(0, 1)));

} // namespace

/**
 * @file
 * Crash-recovery harness for the checkpoint store (run_store.hpp).
 *
 * The hard guarantee under test: a sweep interrupted at any point —
 * process killed after the k-th persisted run, a checkpoint file
 * truncated mid-write, a byte flipped on disk — resumes to a report
 * byte-identical to an uninterrupted run, with corrupted entries
 * quarantined and re-executed and stale (spec-hash-mismatched)
 * entries invalidated per experiment, never trusted.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/run_store.hpp"
#include "exp/scheduler.hpp"
#include "test_util.hpp"

namespace fs = std::filesystem;

namespace {

using namespace sf::exp;
using sf::test::callSfx;
using sf::test::TempDir;

/**
 * Toy experiment whose bodies count their own executions, so tests
 * can assert exactly which runs were served from the checkpoint
 * and which re-ran.
 */
ExperimentSpec
countingSpec(std::atomic<int> *executions, const std::string &name,
             int runs)
{
    ExperimentSpec spec;
    spec.name = name;
    spec.artefact = "test";
    spec.title = "crash-recovery toy";
    spec.plan = [executions, name, runs](const PlanContext &) {
        std::vector<RunSpec> out;
        for (int i = 0; i < runs; ++i) {
            RunSpec run;
            run.id = "grid/r" + std::to_string(i);
            run.params.set("i", i);
            run.body = [executions,
                        i](const RunContext &ctx) -> Json {
                if (executions)
                    ++*executions;
                Json m = Json::object();
                m.set("square", i * i);
                m.set("seed_echo", ctx.seed);
                m.set("rate", 0.5 + 0.25 * i);
                return m;
            };
            out.push_back(std::move(run));
        }
        return out;
    };
    return spec;
}

/** Sweep one experiment and build the pretty-printed report. */
std::string
sweep(const ExperimentSpec &spec, RunStore *store, int jobs = 1)
{
    const auto runs = spec.plan({});
    SchedulerOptions opts;
    opts.jobs = jobs;
    opts.store = store;
    if (store)
        opts.specHash =
            specHash(spec, runs, opts.effort, opts.baseSeed);
    ExperimentResults results;
    results.spec = &spec;
    results.runs = runExperiment(spec, runs, opts);
    return buildReport({results}, ReportOptions{}).dump(2);
}

constexpr int kRuns = 8;

/**
 * Satellite 1, part 1 — kill after the k-th persisted run, for
 * k in {0, 1, mid, all}: the writeFilter hook drops every write
 * after the k-th, the "crashed" invocation's report is discarded,
 * and a fresh store over the same directory must resume to the
 * reference bytes while executing exactly the lost runs.
 */
TEST(CrashRecovery, KillAfterKthRunResumesByteIdentical)
{
    const ExperimentSpec spec =
        countingSpec(nullptr, "crash_toy", kRuns);
    const std::string reference = sweep(spec, nullptr);

    for (const int k : {0, 1, kRuns / 2, kRuns}) {
        TempDir dir;
        {
            RunStore crashed(dir.path());
            crashed.writeFilter = [k](std::size_t attempt) {
                return attempt <= static_cast<std::size_t>(k);
            };
            (void)sweep(spec, &crashed); // report lost in the crash
            EXPECT_EQ(crashed.stats().writes,
                      static_cast<std::size_t>(k));
            EXPECT_EQ(crashed.stats().dropped,
                      static_cast<std::size_t>(kRuns - k));
        }
        std::atomic<int> executions{0};
        const ExperimentSpec counted =
            countingSpec(&executions, "crash_toy", kRuns);
        RunStore fresh(dir.path());
        const std::string resumed = sweep(counted, &fresh);
        EXPECT_EQ(resumed, reference) << "k=" << k;
        EXPECT_EQ(executions.load(), kRuns - k) << "k=" << k;
        EXPECT_EQ(fresh.stats().hits,
                  static_cast<std::size_t>(k));
        // Now complete: a further resume executes nothing.
        executions = 0;
        RunStore full(dir.path());
        EXPECT_EQ(sweep(counted, &full), reference);
        EXPECT_EQ(executions.load(), 0);
    }
}

/** The same crash matrix under a concurrent scheduler: which k
 *  runs survive is arbitrary, the resumed bytes are not. */
TEST(CrashRecovery, KillUnderConcurrencyResumesByteIdentical)
{
    const ExperimentSpec spec =
        countingSpec(nullptr, "crash_toy_mt", kRuns);
    const std::string reference = sweep(spec, nullptr);
    for (const int k : {1, kRuns / 2}) {
        TempDir dir;
        {
            RunStore crashed(dir.path());
            crashed.writeFilter = [k](std::size_t attempt) {
                return attempt <= static_cast<std::size_t>(k);
            };
            (void)sweep(spec, &crashed, /*jobs=*/8);
        }
        RunStore fresh(dir.path());
        EXPECT_EQ(sweep(spec, &fresh, /*jobs=*/8), reference)
            << "k=" << k;
        EXPECT_EQ(fresh.stats().hits,
                  static_cast<std::size_t>(k));
    }
}

/**
 * Satellite 1, part 2 — a checkpoint file truncated mid-write
 * (half its bytes) fails validation, is quarantined, and its run
 * re-executes; everything else loads and the report is identical.
 */
TEST(CrashRecovery, TruncatedEntryQuarantinedAndReRun)
{
    const ExperimentSpec spec =
        countingSpec(nullptr, "trunc_toy", kRuns);
    const std::string reference = sweep(spec, nullptr);

    TempDir dir;
    {
        RunStore store(dir.path());
        (void)sweep(spec, &store);
        EXPECT_EQ(store.stats().writes,
                  static_cast<std::size_t>(kRuns));
    }
    RunStore probe(dir.path());
    const std::string victim =
        probe.entryPath("trunc_toy", "grid/r3");
    const std::string text = readFile(victim);
    writeFile(victim, text.substr(0, text.size() / 2));

    std::atomic<int> executions{0};
    const ExperimentSpec counted =
        countingSpec(&executions, "trunc_toy", kRuns);
    RunStore fresh(dir.path());
    EXPECT_EQ(sweep(counted, &fresh), reference);
    EXPECT_EQ(executions.load(), 1);
    EXPECT_EQ(fresh.stats().quarantined, 1u);
    EXPECT_EQ(fresh.stats().hits,
              static_cast<std::size_t>(kRuns - 1));
    // The corpse is preserved under quarantine/, not deleted.
    EXPECT_TRUE(
        fs::exists(fs::path(dir.path()) / "quarantine"));
    EXPECT_FALSE(fs::is_empty(
        fs::path(dir.path()) / "quarantine"));
}

/**
 * Satellite 1, part 3 — a single flipped byte inside a stored
 * metric value still parses as JSON, so only the embedded checksum
 * can catch it; the entry must be quarantined, never trusted.
 */
TEST(CrashRecovery, FlippedByteQuarantinedAndReRun)
{
    const ExperimentSpec spec =
        countingSpec(nullptr, "flip_toy", kRuns);
    const std::string reference = sweep(spec, nullptr);

    TempDir dir;
    {
        RunStore store(dir.path());
        (void)sweep(spec, &store);
    }
    RunStore probe(dir.path());
    const std::string victim =
        probe.entryPath("flip_toy", "grid/r5");
    std::string text = readFile(victim);
    // Flip one digit of "square": 25 -> 35. Still valid JSON.
    const std::size_t pos = text.find("\"square\": 25");
    ASSERT_NE(pos, std::string::npos);
    text[pos + std::string("\"square\": ").size()] = '3';
    writeFile(victim, text);

    std::atomic<int> executions{0};
    const ExperimentSpec counted =
        countingSpec(&executions, "flip_toy", kRuns);
    RunStore fresh(dir.path());
    EXPECT_EQ(sweep(counted, &fresh), reference);
    EXPECT_EQ(executions.load(), 1);
    EXPECT_EQ(fresh.stats().quarantined, 1u);
}

/**
 * Bugfix pin — the same entry quarantined twice (corrupted, re-run
 * and re-stored, corrupted again: exactly what repeated resumes of
 * a sweep on flaky storage produce) must preserve BOTH corpses.
 * The quarantine target name used to be a pure function of the
 * entry name, so the second quarantine collided with the first and
 * the evidence was overwritten (or, where rename-onto-existing
 * fails, fell through to fs::remove and was deleted outright).
 */
TEST(CrashRecovery, DoubleQuarantineKeepsBothCorpses)
{
    TempDir dir;
    RunStore store(dir.path());
    const RunStore::Key key{"dup_toy", "grid/r0", 7, "h1"};
    RunResult result;
    result.metrics.set("v", 1);
    const std::string path =
        store.entryPath("dup_toy", "grid/r0");
    for (std::size_t round = 1; round <= 2; ++round) {
        store.store(key, result);
        writeFile(path, "not json at all - round " +
                            std::to_string(round));
        RunResult out;
        EXPECT_FALSE(store.load(key, out));
        EXPECT_EQ(store.stats().quarantined, round);
    }
    std::vector<std::string> corpses;
    for (const auto &entry : fs::directory_iterator(
             fs::path(dir.path()) / "quarantine"))
        corpses.push_back(entry.path().string());
    ASSERT_EQ(corpses.size(), 2u);
    // Distinct files, and both rounds' bytes survived.
    std::string all = readFile(corpses[0]) + readFile(corpses[1]);
    EXPECT_NE(all.find("round 1"), std::string::npos);
    EXPECT_NE(all.find("round 2"), std::string::npos);
}

/**
 * A registry change — here simulated by re-planning the experiment
 * with one extra grid cell — flips the spec hash and invalidates
 * exactly that experiment's entries; a sibling experiment in the
 * same checkpoint keeps loading.
 */
TEST(CrashRecovery, SpecHashMismatchInvalidatesOnlyThatExperiment)
{
    const ExperimentSpec a = countingSpec(nullptr, "exp_a", kRuns);
    const ExperimentSpec b = countingSpec(nullptr, "exp_b", kRuns);

    TempDir dir;
    {
        RunStore store(dir.path());
        (void)sweep(a, &store);
        (void)sweep(b, &store);
    }

    // "The registry changed": exp_a now plans one more run.
    std::atomic<int> executions_a{0};
    const ExperimentSpec a2 =
        countingSpec(&executions_a, "exp_a", kRuns + 1);
    const std::string reference_a2 = sweep(a2, nullptr);
    executions_a = 0;

    RunStore fresh(dir.path());
    EXPECT_EQ(sweep(a2, &fresh), reference_a2);
    // Every old exp_a entry is stale: all kRuns + 1 bodies ran.
    EXPECT_EQ(executions_a.load(), kRuns + 1);
    EXPECT_EQ(fresh.stats().stale,
              static_cast<std::size_t>(kRuns));
    EXPECT_EQ(fresh.stats().hits, 0u);

    // exp_b is untouched and still loads fully.
    std::atomic<int> executions_b{0};
    const ExperimentSpec b2 =
        countingSpec(&executions_b, "exp_b", kRuns);
    RunStore other(dir.path());
    (void)sweep(b2, &other);
    EXPECT_EQ(executions_b.load(), 0);
    EXPECT_EQ(other.stats().hits,
              static_cast<std::size_t>(kRuns));

    // And the invalidated entries were overwritten in place: a
    // second exp_a sweep under the new hash is all hits.
    executions_a = 0;
    RunStore again(dir.path());
    (void)sweep(a2, &again);
    EXPECT_EQ(executions_a.load(), 0);
    EXPECT_EQ(again.stats().hits,
              static_cast<std::size_t>(kRuns + 1));
}

TEST(RunStore, MetaBindingRejectsDifferentInvocation)
{
    TempDir dir;
    Json meta = Json::object();
    meta.set("schema", RunStore::kSchema);
    meta.set("patterns", "fig1*");
    meta.set("effort", "quick");
    meta.set("base_seed", std::uint64_t{2019});
    meta.set("run_filter", "");

    RunStore store(dir.path());
    store.bindInvocation(meta);
    store.bindInvocation(meta); // same invocation rebinds fine

    Json other = meta;
    other.set("effort", "full");
    EXPECT_THROW(store.bindInvocation(other), std::runtime_error);

    // readInvocationMeta round-trips, and rejects non-checkpoints.
    const Json read =
        RunStore::readInvocationMeta(dir.path());
    EXPECT_EQ(read.at("patterns").asString(), "fig1*");
    TempDir empty;
    EXPECT_THROW(RunStore::readInvocationMeta(empty.path()),
                 std::runtime_error);
}

TEST(RunStore, JournalStreamsEvents)
{
    const ExperimentSpec spec =
        countingSpec(nullptr, "journal_toy", 3);
    TempDir dir;
    {
        RunStore store(dir.path());
        (void)sweep(spec, &store);
    }
    const std::string journal = readFile(
        (fs::path(dir.path()) / "journal.jsonl").string());
    // Lenient tail: a crashed writer may leave a partial line.
    const std::vector<Json> events =
        Json::parseLines(journal, /*dropTruncatedTail=*/true);
    ASSERT_EQ(events.size(), 3u);
    for (const Json &e : events) {
        EXPECT_EQ(e.at("event").asString(), "store");
        EXPECT_EQ(e.at("experiment").asString(), "journal_toy");
    }
}

/**
 * Durable-write batching: the per-entry parent-directory fsync is
 * amortised into one dirty-directory pass per kDirSyncInterval
 * stores (plus a flush on destruction), so a sweep storing R
 * entries into one runs/ directory issues ~R/interval directory
 * syncs, not R — while every entry file still lands atomically
 * (the crash tests above hold with batching on, because a lost
 * rename is a miss that re-executes, never a corrupt entry).
 */
TEST(RunStore, DirSyncsAreBatchedAcrossStores)
{
    const int runs =
        static_cast<int>(RunStore::kDirSyncInterval) + 3;
    const ExperimentSpec spec =
        countingSpec(nullptr, "dirsync_toy", runs);
    TempDir dir;
    RunStore store(dir.path());
    (void)sweep(spec, &store);
    const RunStore::Stats mid = store.stats();
    EXPECT_EQ(mid.writes, static_cast<std::size_t>(runs));
    // One batch boundary was crossed; everything stored since is
    // pending until an explicit flush (or destruction).
    EXPECT_EQ(mid.dirSyncs, 1u);
    store.flushDurability();
    const RunStore::Stats flushed = store.stats();
    EXPECT_EQ(flushed.dirSyncs, 2u);
    // Idempotent: nothing dirty, nothing synced.
    store.flushDurability();
    EXPECT_EQ(store.stats().dirSyncs, 2u);
}

/** Distinct run ids — or experiment names — that sanitise
 *  identically must not collide on a shared entry file. */
TEST(RunStore, EntryPathsDisambiguateSanitisedCollisions)
{
    TempDir dir;
    RunStore store(dir.path());
    EXPECT_NE(store.entryPath("e", "a/b"),
              store.entryPath("e", "a_b"));
    EXPECT_NE(store.entryPath("e", "a/b"),
              store.entryPath("e2", "a/b"));
    // "e/x" and "e_x" share a sanitised directory; the chained
    // hash keeps their entry files apart.
    EXPECT_NE(store.entryPath("e/x", "r0"),
              store.entryPath("e_x", "r0"));
}

// --------------------------------------------------- CLI end-to-end

/**
 * The acceptance path end to end, at --jobs 1 and 8: `sfx run
 * --checkpoint --max-runs` exits 3 (interrupted), `sfx resume`
 * finishes from meta.json alone, and the resumed report is
 * byte-identical to an uninterrupted single-shot run. Uses a
 * two-experiment sweep plus a fig1* slice so checkpoints span
 * experiments with distinct spec hashes.
 */
TEST(SfxCli, InterruptedThenResumedReportIsByteIdentical)
{
    for (const char *jobs : {"1", "8"}) {
        TempDir work;
        const std::string clean = work.file("clean.json");
        const std::string resumed = work.file("resumed.json");
        const std::string ckpt = work.file("ckpt");

        ASSERT_EQ(callSfx({"sfx", "run", "table2_features",
                           "ablation_reconfig_envelope",
                           "--quick", "--quiet", "--jobs", jobs,
                           "--out", clean}),
                  0);
        EXPECT_EQ(callSfx({"sfx", "run", "table2_features",
                           "ablation_reconfig_envelope",
                           "--quick", "--quiet", "--jobs", jobs,
                           "--checkpoint", ckpt, "--max-runs",
                           "2"}),
                  3);
        EXPECT_EQ(callSfx({"sfx", "resume", ckpt, "--quiet",
                           "--jobs", jobs, "--out", resumed}),
                  0);
        EXPECT_EQ(readFile(resumed), readFile(clean));
    }
}

TEST(SfxCli, Fig1SliceInterruptedThenResumed)
{
    TempDir work;
    const std::string clean = work.file("clean.json");
    const std::string resumed = work.file("resumed.json");
    const std::string ckpt = work.file("ckpt");

    ASSERT_EQ(callSfx({"sfx", "run", "fig1*", "--quick",
                       "--quiet", "--runs", "*/n16/*", "--jobs",
                       "8", "--out", clean}),
              0);
    EXPECT_EQ(callSfx({"sfx", "run", "fig1*", "--quick",
                       "--quiet", "--runs", "*/n16/*", "--jobs",
                       "8", "--checkpoint", ckpt, "--max-runs",
                       "5"}),
              3);
    // Resume restores patterns, effort, and the --runs filter from
    // meta.json; only execution knobs are passed here.
    EXPECT_EQ(callSfx({"sfx", "resume", ckpt, "--quiet", "--jobs",
                       "1", "--out", resumed}),
              0);
    EXPECT_EQ(readFile(resumed), readFile(clean));
}

/**
 * `sfx checkpoint status DIR`: per-experiment completed / pending /
 * stale / corrupt counts from the entry files, exit 3 while runs
 * are pending and 0 once complete, read-only (a corrupt entry is
 * reported but never quarantined by status itself), and a --json
 * form carrying the same numbers.
 */
TEST(SfxCli, CheckpointStatusTracksSweepLifecycle)
{
    TempDir work;
    const std::string ckpt = work.file("ckpt");

    // Interrupted sweep: some runs stored, some pending.
    ASSERT_EQ(callSfx({"sfx", "run", "table2_features",
                       "ablation_reconfig_envelope", "--quick",
                       "--quiet", "--checkpoint", ckpt,
                       "--max-runs", "2"}),
              3);
    EXPECT_EQ(callSfx({"sfx", "checkpoint", "status", ckpt}), 3);

    testing::internal::CaptureStdout();
    EXPECT_EQ(callSfx({"sfx", "checkpoint", "status", ckpt,
                       "--json"}),
              3);
    Json status =
        Json::parse(testing::internal::GetCapturedStdout());
    EXPECT_EQ(status.at("schema").asString(),
              "sf-exp-checkpoint-status-v1");
    EXPECT_EQ(status.at("total").at("completed").asUint(), 2u);
    EXPECT_GT(status.at("total").at("pending").asUint(), 0u);
    EXPECT_EQ(status.at("total").at("corrupt").asUint(), 0u);
    EXPECT_EQ(status.at("experiments").asArray().size(), 2u);

    // Flip a byte in one stored entry: status must count it as
    // corrupt without quarantining it (read-only inspection).
    std::vector<std::string> entries;
    for (const auto &e : fs::recursive_directory_iterator(ckpt)) {
        if (e.path().extension() == ".json" &&
            e.path().parent_path().filename() == "runs")
            entries.push_back(e.path().string());
    }
    ASSERT_EQ(entries.size(), 2u);
    std::sort(entries.begin(), entries.end());
    std::string text = readFile(entries[0]);
    const auto pos = text.find("\"check\": \"");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 10] = text[pos + 10] == 'f' ? '0' : 'f';
    writeFile(entries[0], text);

    testing::internal::CaptureStdout();
    EXPECT_EQ(callSfx({"sfx", "checkpoint", "status", ckpt,
                       "--json"}),
              3);
    status = Json::parse(testing::internal::GetCapturedStdout());
    EXPECT_EQ(status.at("total").at("corrupt").asUint(), 1u);
    EXPECT_EQ(status.at("total").at("completed").asUint(), 1u);
    EXPECT_TRUE(fs::exists(entries[0]))
        << "status must not quarantine";
    EXPECT_EQ(status.at("quarantined_files").asUint(), 0u);

    // Finish the sweep; the resume quarantines and re-runs the
    // corrupt entry, after which status reports complete.
    ASSERT_EQ(callSfx({"sfx", "resume", ckpt, "--quiet"}), 0);
    testing::internal::CaptureStdout();
    EXPECT_EQ(callSfx({"sfx", "checkpoint", "status", ckpt,
                       "--json"}),
              0);
    status = Json::parse(testing::internal::GetCapturedStdout());
    EXPECT_EQ(status.at("total").at("pending").asUint(), 0u);
    EXPECT_EQ(status.at("total").at("completed").asUint(),
              status.at("total").at("planned").asUint());
    EXPECT_EQ(status.at("quarantined_files").asUint(), 1u);
    EXPECT_GT(status.at("journal_events").asUint(), 0u);

    // `sfx checkpoint gc`: the complete sweep above left one
    // quarantined corpse; plant an orphan under runs/ too (a
    // registry rename / removed grid cell leaves exactly this).
    // gc must reclaim both, keep every valid entry — status still
    // reports the sweep complete — and a second gc is a no-op.
    const fs::path orphan =
        fs::path(entries[0]).parent_path() / "orphan.json";
    writeFile(orphan.string(), "{}");
    testing::internal::CaptureStdout();
    EXPECT_EQ(callSfx({"sfx", "checkpoint", "gc", ckpt,
                       "--json"}),
              0);
    Json gc = Json::parse(testing::internal::GetCapturedStdout());
    EXPECT_EQ(gc.at("quarantine_deleted").asUint(), 1u);
    EXPECT_EQ(gc.at("orphaned_deleted").asUint(), 1u);
    EXPECT_EQ(gc.at("stale_deleted").asUint(), 0u);
    EXPECT_EQ(gc.at("kept").asUint(),
              status.at("total").at("planned").asUint());
    EXPECT_FALSE(fs::exists(orphan));
    EXPECT_FALSE(
        fs::exists(fs::path(ckpt) / "quarantine"));
    testing::internal::CaptureStdout();
    EXPECT_EQ(callSfx({"sfx", "checkpoint", "status", ckpt,
                       "--json"}),
              0);
    status = Json::parse(testing::internal::GetCapturedStdout());
    EXPECT_EQ(status.at("total").at("pending").asUint(), 0u);
    testing::internal::CaptureStdout();
    EXPECT_EQ(callSfx({"sfx", "checkpoint", "gc", ckpt,
                       "--json"}),
              0);
    gc = Json::parse(testing::internal::GetCapturedStdout());
    EXPECT_EQ(gc.at("quarantine_deleted").asUint(), 0u);
    EXPECT_EQ(gc.at("orphaned_deleted").asUint(), 0u);

    // Usage errors.
    EXPECT_EQ(callSfx({"sfx", "checkpoint", "status",
                       work.file("nope")}),
              2);
    EXPECT_EQ(callSfx({"sfx", "checkpoint", "prune", ckpt}), 2);
    EXPECT_EQ(callSfx({"sfx", "checkpoint", "status"}), 2);
    EXPECT_EQ(callSfx({"sfx", "checkpoint", "gc",
                       work.file("nope")}),
              2);
}

/** A checkpoint made by one invocation refuses another's flags. */
TEST(SfxCli, CheckpointRejectsMismatchedInvocation)
{
    TempDir work;
    const std::string ckpt = work.file("ckpt");
    EXPECT_EQ(callSfx({"sfx", "run", "table2_features", "--quick",
                       "--quiet", "--checkpoint", ckpt}),
              0);
    EXPECT_EQ(callSfx({"sfx", "run", "table2_features", "--quiet",
                       "--checkpoint", ckpt}),
              2); // different effort
    EXPECT_EQ(callSfx({"sfx", "run", "bisection_bandwidth",
                       "--quick", "--quiet", "--checkpoint",
                       ckpt}),
              2); // different patterns
    EXPECT_EQ(callSfx({"sfx", "resume", work.file("nope")}),
              2); // not a checkpoint directory
}

} // namespace

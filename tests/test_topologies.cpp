/**
 * @file
 * Tests for the baseline topologies and the configuration factory.
 */

#include <gtest/gtest.h>

#include "net/paths.hpp"
#include "topos/factory.hpp"
#include "topos/flattened_butterfly.hpp"
#include "topos/jellyfish.hpp"
#include "topos/mesh.hpp"
#include "topos/space_shuffle.hpp"

namespace {

using namespace sf;
using namespace sf::topos;

TEST(Mesh, GridShapes)
{
    EXPECT_EQ(MeshTopology::gridShape(16), (std::pair{4, 4}));
    EXPECT_EQ(MeshTopology::gridShape(32), (std::pair{4, 8}));
    EXPECT_EQ(MeshTopology::gridShape(1296), (std::pair{36, 36}));
    EXPECT_EQ(MeshTopology::gridShape(17), (std::pair{0, 0}));
    EXPECT_EQ(MeshTopology::gridShape(61), (std::pair{0, 0}));
}

TEST(Mesh, DegreeAndConnectivity)
{
    const MeshTopology mesh(4, 4);
    EXPECT_EQ(mesh.name(), "DM");
    // Corner 2, edge 3, interior 4 neighbours.
    EXPECT_EQ(mesh.graph().degreeOut(0), 2u);
    EXPECT_EQ(mesh.graph().degreeOut(1), 3u);
    EXPECT_EQ(mesh.graph().degreeOut(5), 4u);
    EXPECT_TRUE(net::stronglyConnected(mesh.graph()));
}

TEST(Mesh, XyRoutingFollowsDimensionOrder)
{
    const MeshTopology mesh(4, 4);
    // From (0,0) to (2,1): X first.
    LinkId out[16];
    ASSERT_GT(mesh.routeCandidates(0, 6, true, out), 0u);
    EXPECT_EQ(mesh.graph().link(out[0]).dst, 1u);
    // Aligned in X: go Y.
    ASSERT_GT(mesh.routeCandidates(2, 6, false, out), 0u);
    EXPECT_EQ(mesh.graph().link(out[0]).dst, 6u);
}

TEST(Mesh, RoutedHopsEqualManhattan)
{
    const MeshTopology mesh(8, 8);
    for (NodeId s = 0; s < 64; s += 5) {
        for (NodeId t = 0; t < 64; t += 7) {
            if (s == t)
                continue;
            const int manhattan =
                std::abs(static_cast<int>(s % 8) -
                         static_cast<int>(t % 8)) +
                std::abs(static_cast<int>(s / 8) -
                         static_cast<int>(t / 8));
            EXPECT_EQ(net::routedHops(mesh, s, t), manhattan);
        }
    }
}

TEST(Mesh, OdmParallelLinks)
{
    const MeshTopology odm(4, 4, 3);
    EXPECT_EQ(odm.name(), "ODM");
    EXPECT_EQ(odm.routerPorts(), 12);
    // Corner node: 2 directions x 3 wires.
    EXPECT_EQ(odm.graph().degreeOut(0), 6u);
    // Routing offers all parallel wires as candidates.
    LinkId out[16];
    EXPECT_EQ(odm.routeCandidates(0, 3, true, out), 3u);
}

TEST(FlattenedButterfly, FullRowColumnCliques)
{
    const FlattenedButterfly fb(4, 4, false);
    EXPECT_EQ(fb.name(), "FB");
    // Every node: 3 row + 3 column peers.
    for (NodeId u = 0; u < 16; ++u)
        EXPECT_EQ(fb.graph().degreeOut(u), 6u);
    EXPECT_EQ(fb.routerPorts(), 6);
    // Any pair is at most 2 hops apart.
    const auto stats = net::allPairsStats(fb.graph());
    EXPECT_LE(stats.diameter, 2);
}

TEST(FlattenedButterfly, AdaptedReducesRadix)
{
    const FlattenedButterfly fb(16, 16, false);
    const FlattenedButterfly afb(16, 16, true);
    EXPECT_EQ(afb.name(), "AFB");
    EXPECT_LT(afb.routerPorts(), fb.routerPorts());
    EXPECT_TRUE(net::stronglyConnected(afb.graph()));
    // Thinner but still low-diameter.
    const auto stats = net::allPairsStats(afb.graph());
    EXPECT_LE(stats.diameter, 6);
}

TEST(FlattenedButterfly, MinimalRoutingMatchesBfs)
{
    const FlattenedButterfly afb(8, 8, true);
    for (NodeId s = 0; s < 64; s += 3) {
        for (NodeId t = 0; t < 64; t += 5) {
            if (s == t)
                continue;
            EXPECT_EQ(net::routedHops(afb, s, t),
                      afb.hopDistance(s, t));
        }
    }
}

TEST(Jellyfish, Regularity)
{
    const Jellyfish jf(100, 8, 3);
    std::size_t total_degree = 0;
    for (NodeId u = 0; u < 100; ++u) {
        const auto d = jf.graph().degreeOut(u);
        EXPECT_LE(d, 8u);
        total_degree += d;
    }
    // The swap construction saturates nearly every port.
    EXPECT_GE(total_degree, 100u * 8u - 16u);
    EXPECT_TRUE(net::stronglyConnected(jf.graph()));
}

TEST(Jellyfish, RejectsBadParameters)
{
    EXPECT_THROW(Jellyfish(5, 8, 1), std::invalid_argument);
    EXPECT_THROW(Jellyfish(9, 3, 1), std::invalid_argument);
}

TEST(SpaceShuffle, NoShortcutsNoWidening)
{
    const SpaceShuffle s2(100, 8, 5);
    EXPECT_EQ(s2.name(), "S2");
    for (LinkId id = 0;
         id < static_cast<LinkId>(s2.graph().numLinks()); ++id) {
        EXPECT_NE(s2.graph().link(id).kind,
                  net::LinkKind::Shortcut);
    }
    // First-hop widening is disabled: never more than 1 candidate.
    LinkId out[16];
    for (NodeId s = 0; s < 100; s += 7) {
        for (NodeId t = 0; t < 100; t += 11) {
            if (s == t)
                continue;
            EXPECT_LE(s2.routeCandidates(s, t, true, out), 1u);
        }
    }
}

TEST(SpaceShuffle, DeliversAllPairs)
{
    const SpaceShuffle s2(61, 4, 5);
    for (NodeId s = 0; s < 61; ++s) {
        for (NodeId t = 0; t < 61; ++t) {
            if (s != t)
                EXPECT_GT(net::routedHops(s2, s, t), 0);
        }
    }
}

TEST(Factory, SupportMatrixMatchesPaperFig8)
{
    // Meshes need rectangular layouts.
    EXPECT_TRUE(supported(TopoKind::DM, 16));
    EXPECT_FALSE(supported(TopoKind::DM, 17));
    EXPECT_FALSE(supported(TopoKind::ODM, 61));
    EXPECT_TRUE(supported(TopoKind::ODM, 1296));
    // FB/AFB evaluated from 256 nodes up.
    EXPECT_FALSE(supported(TopoKind::FB, 128));
    EXPECT_TRUE(supported(TopoKind::FB, 256));
    EXPECT_TRUE(supported(TopoKind::AFB, 1296));
    // Random topologies take any scale.
    EXPECT_TRUE(supported(TopoKind::SF, 17));
    EXPECT_TRUE(supported(TopoKind::S2, 61));
    EXPECT_TRUE(supported(TopoKind::SF, 1296));
}

TEST(Factory, PaperPortPolicies)
{
    EXPECT_EQ(paperRouterPorts(TopoKind::SF, 128), 4);
    EXPECT_EQ(paperRouterPorts(TopoKind::SF, 256), 8);
    EXPECT_EQ(paperRouterPorts(TopoKind::FB, 1296), 33);
    EXPECT_EQ(paperRouterPorts(TopoKind::AFB, 1024), 23);
    EXPECT_EQ(paperRouterPorts(TopoKind::FB, 128), -1);
}

TEST(Factory, BuildsEverySupportedKind)
{
    for (const TopoKind kind : kAllKinds) {
        const std::size_t n = 256;
        ASSERT_TRUE(supported(kind, n));
        // Fixed ODM multiplier keeps this test fast.
        const auto topo = makeTopology(kind, n, 1, 3);
        EXPECT_EQ(topo->numNodes(), n);
        EXPECT_TRUE(net::stronglyConnected(topo->graph()))
            << kindName(kind);
        EXPECT_GT(net::routedHops(*topo, 0, 255), 0)
            << kindName(kind);
    }
}

TEST(Factory, ThrowsOnUnsupported)
{
    EXPECT_THROW(makeTopology(TopoKind::DM, 17, 1),
                 std::invalid_argument);
    EXPECT_THROW(makeTopology(TopoKind::FB, 64, 1),
                 std::invalid_argument);
}

TEST(Factory, OdmMultiplierAtLeastOne)
{
    EXPECT_GE(matchOdmMultiplier(64, 1), 1);
}

} // namespace

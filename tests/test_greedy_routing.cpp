/**
 * @file
 * Tests for the greediest routing protocol: delivery, loop freedom
 * (strict MD decrease), adaptivity, and the lookahead ranking.
 */

#include <gtest/gtest.h>

#include <span>

#include "core/string_figure.hpp"
#include "net/topology.hpp"

namespace {

using namespace sf;
using namespace sf::core;

SFParams
makeParams(std::size_t n, int ports, LinkMode mode,
           std::uint64_t seed = 1)
{
    SFParams p;
    p.numNodes = n;
    p.routerPorts = ports;
    p.linkMode = mode;
    p.seed = seed;
    return p;
}

TEST(GreedyRouting, DistanceToSelfIsZero)
{
    StringFigure sf_net(makeParams(32, 4, LinkMode::Unidirectional));
    for (NodeId u = 0; u < 32; ++u)
        EXPECT_DOUBLE_EQ(sf_net.router().distance(u, u), 0.0);
}

TEST(GreedyRouting, AllPairsDeliveryUnidirectional)
{
    StringFigure sf_net(makeParams(61, 4, LinkMode::Unidirectional));
    for (NodeId s = 0; s < 61; ++s) {
        for (NodeId t = 0; t < 61; ++t) {
            if (s == t)
                continue;
            EXPECT_GT(net::routedHops(sf_net, s, t), 0)
                << s << " -> " << t;
        }
    }
    EXPECT_EQ(sf_net.fallbackCount(), 0u);
}

TEST(GreedyRouting, AllPairsDeliveryBidirectional)
{
    StringFigure sf_net(makeParams(61, 4, LinkMode::Bidirectional));
    for (NodeId s = 0; s < 61; ++s) {
        for (NodeId t = 0; t < 61; ++t) {
            if (s == t)
                continue;
            EXPECT_GT(net::routedHops(sf_net, s, t), 0)
                << s << " -> " << t;
        }
    }
    EXPECT_EQ(sf_net.fallbackCount(), 0u);
}

TEST(GreedyRouting, RunningMinMdDecreasesWithinWindow)
{
    // With two-hop plans, MD need not fall on every single hop, but
    // the running minimum must strictly fall within a short window
    // (the plan-value potential argument, docs/greedy_routing.md).
    StringFigure sf_net(makeParams(113, 6, LinkMode::Unidirectional));
    LinkId candidates[16];
    for (NodeId s = 0; s < 113; s += 7) {
        for (NodeId t = 0; t < 113; t += 5) {
            if (s == t)
                continue;
            NodeId at = s;
            double running_min = sf_net.router().distance(at, t);
            int hops = 0;
            int window = 0;
            while (at != t) {
                const auto count = sf_net.routeCandidates(
                    at, t, hops == 0, candidates);
                ASSERT_GT(count, 0u);
                at = sf_net.graph().link(candidates[0]).dst;
                const double md = sf_net.router().distance(at, t);
                ++hops;
                ++window;
                if (md < running_min) {
                    running_min = md;
                    window = 0;
                }
                ASSERT_LE(window, 5)
                    << "no progress window at hop " << hops;
                ASSERT_LT(hops, 500) << "runaway path";
            }
        }
    }
}

TEST(GreedyRouting, EveryCandidatePlanImproves)
{
    // Each candidate link must carry a plan whose target strictly
    // improves on the current node's MD: either the neighbour
    // itself or a two-hop entry routed through it.
    StringFigure sf_net(makeParams(64, 8, LinkMode::Unidirectional));
    LinkId candidates[16];
    for (NodeId s = 0; s < 64; s += 3) {
        for (NodeId t = 0; t < 64; t += 5) {
            if (s == t)
                continue;
            const auto count =
                sf_net.routeCandidates(s, t, true, candidates);
            ASSERT_GT(count, 0u);
            const double md_s = sf_net.router().distance(s, t);
            for (LinkId id :
                 std::span<LinkId>(candidates, count)) {
                const NodeId w = sf_net.graph().link(id).dst;
                double best = sf_net.router().distance(w, t);
                for (const auto &e :
                     sf_net.tables().table(s).entries()) {
                    if (e.viaLink == id && e.hops == 2)
                        best = std::min(
                            best,
                            sf_net.router().distance(e.node, t));
                }
                EXPECT_LT(best, md_s);
            }
        }
    }
}

TEST(GreedyRouting, FirstHopWidensLaterHopsCommit)
{
    StringFigure sf_net(makeParams(128, 8, LinkMode::Unidirectional));
    LinkId first[16];
    LinkId later[16];
    int widened = 0;
    for (NodeId s = 0; s < 128; s += 11) {
        for (NodeId t = 0; t < 128; t += 13) {
            if (s == t)
                continue;
            const auto n_first =
                sf_net.routeCandidates(s, t, true, first);
            const auto n_later =
                sf_net.routeCandidates(s, t, false, later);
            ASSERT_GE(n_first, 1u);
            EXPECT_LE(n_later, 1u);
            if (n_later > 0 && n_first > 0)
                EXPECT_EQ(first[0], later[0]);
            widened += n_first > 1 ? 1 : 0;
        }
    }
    // Path diversity must actually exist somewhere.
    EXPECT_GT(widened, 0);
}

TEST(GreedyRouting, DirectNeighborWinsOutright)
{
    StringFigure sf_net(makeParams(32, 4, LinkMode::Unidirectional));
    LinkId candidates[16];
    for (NodeId s = 0; s < 32; ++s) {
        for (LinkId id : sf_net.graph().outLinks(s)) {
            if (!sf_net.graph().link(id).enabled)
                continue;
            const NodeId t = sf_net.graph().link(id).dst;
            ASSERT_EQ(
                sf_net.routeCandidates(s, t, true, candidates),
                1u);
            EXPECT_EQ(sf_net.graph().link(candidates[0]).dst, t);
        }
    }
}

TEST(GreedyRouting, TwoHopLookaheadNeverLengthensPaths)
{
    SFParams with = makeParams(100, 6, LinkMode::Unidirectional, 3);
    SFParams without = with;
    without.twoHopTable = false;
    StringFigure a(with);
    StringFigure b(without);
    double hops_with = 0.0;
    double hops_without = 0.0;
    int pairs = 0;
    for (NodeId s = 0; s < 100; s += 3) {
        for (NodeId t = 0; t < 100; t += 7) {
            if (s == t)
                continue;
            hops_with += net::routedHops(a, s, t);
            hops_without += net::routedHops(b, s, t);
            ++pairs;
        }
    }
    EXPECT_LE(hops_with / pairs, hops_without / pairs + 1e-9);
}

TEST(GreedyRouting, VcClassSplitsByCoordinateDirection)
{
    StringFigure sf_net(makeParams(64, 4, LinkMode::Unidirectional));
    EXPECT_EQ(sf_net.numVcClasses(), 2);
    int class0 = 0;
    int class1 = 0;
    for (NodeId s = 0; s < 64; ++s) {
        for (NodeId t = 0; t < 64; ++t) {
            if (s == t)
                continue;
            const int vc = sf_net.vcClass(s, t);
            ASSERT_TRUE(vc == 0 || vc == 1);
            // Antisymmetric: opposite direction uses the other VC.
            EXPECT_NE(vc, sf_net.vcClass(t, s));
            (vc == 0 ? class0 : class1) += 1;
        }
    }
    EXPECT_EQ(class0, class1);
}

TEST(GreedyRouting, QuantizedCoordinatesStillDeliver)
{
    // 7-bit coordinates (the paper's hardware width) on a network
    // small enough that slots stay collision-free.
    SFParams p = makeParams(61, 4, LinkMode::Unidirectional);
    p.coordBits = 7;
    StringFigure sf_net(p);
    int delivered = 0;
    int total = 0;
    for (NodeId s = 0; s < 61; ++s) {
        for (NodeId t = 0; t < 61; ++t) {
            if (s == t)
                continue;
            ++total;
            delivered += net::routedHops(sf_net, s, t) > 0 ? 1 : 0;
        }
    }
    EXPECT_EQ(delivered, total);
}

TEST(GreedyRouting, LargeNetworkSampledDelivery)
{
    StringFigure sf_net(makeParams(1296, 8,
                                   LinkMode::Unidirectional));
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        const NodeId s = static_cast<NodeId>(rng.below(1296));
        const NodeId t = static_cast<NodeId>(rng.below(1296));
        if (s == t)
            continue;
        const int hops = net::routedHops(sf_net, s, t);
        ASSERT_GT(hops, 0);
        ASSERT_LE(hops, 64) << "path blow-up " << s << "->" << t;
    }
    EXPECT_EQ(sf_net.fallbackCount(), 0u);
}

} // namespace

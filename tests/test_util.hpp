/**
 * @file
 * Shared helpers for CLI-level and filesystem-touching tests:
 * a self-deleting mkdtemp scratch directory and an argv marshaller
 * for driving sfxMain in-process. Not a test binary itself (the
 * CMake glob only picks up tests/test_*.cpp).
 */

#pragma once

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/driver.hpp"

namespace sf::test {

/** Self-deleting mkdtemp directory. */
class TempDir {
  public:
    explicit TempDir(const char *prefix = "sf_test_")
    {
        std::string tmpl =
            (std::filesystem::temp_directory_path() /
             (std::string(prefix) + "XXXXXX"))
                .string();
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (!mkdtemp(buf.data()))
            throw std::runtime_error("mkdtemp failed");
        path_ = buf.data();
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    TempDir(const TempDir &) = delete;
    TempDir &operator=(const TempDir &) = delete;

    const std::string &path() const { return path_; }

    /** Path of @p name inside this directory. */
    std::string file(const std::string &name) const
    {
        return (std::filesystem::path(path_) / name).string();
    }

  private:
    std::string path_;
};

/** Run the sfx CLI in-process: callSfx({"sfx", "run", ...}). */
inline int
callSfx(std::vector<std::string> args)
{
    std::vector<char *> argv;
    argv.reserve(args.size());
    for (std::string &a : args)
        argv.push_back(a.data());
    return sf::exp::sfxMain(static_cast<int>(argv.size()),
                            argv.data());
}

} // namespace sf::test

/**
 * @file
 * Tests for the experiment engine: glob matching, the registry,
 * deterministic seeding, the thread-pool scheduler (order
 * independence, failure isolation, actual concurrency), and the
 * report writer's byte-identical --jobs 1 vs --jobs 8 guarantee.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/run_store.hpp"
#include "exp/scheduler.hpp"
#include "exp/work_pool.hpp"
#include "topos/factory.hpp"

namespace {

using namespace sf::exp;

TEST(Glob, Basics)
{
    EXPECT_TRUE(globMatch("fig10_saturation", "fig10_saturation"));
    EXPECT_TRUE(globMatch("fig1*", "fig10_saturation"));
    EXPECT_TRUE(globMatch("fig1*", "fig11_latency_curves"));
    EXPECT_TRUE(globMatch("fig1*", "fig12_workloads"));
    EXPECT_FALSE(globMatch("fig1*", "fig05_path_lengths"));
    EXPECT_TRUE(globMatch("*", "anything"));
    EXPECT_TRUE(globMatch("*", ""));
    EXPECT_TRUE(globMatch("a?c", "abc"));
    EXPECT_FALSE(globMatch("a?c", "ac"));
    EXPECT_TRUE(globMatch("*_edp", "fig09b_power_gating_edp"));
    EXPECT_TRUE(globMatch("a*b*c", "a-x-b-y-c"));
    EXPECT_FALSE(globMatch("a*b*c", "a-x-c"));
    EXPECT_FALSE(globMatch("", "x"));
    EXPECT_TRUE(globMatch("", ""));
}

TEST(Seed, DeterministicAndNameSensitive)
{
    const std::uint64_t a = deriveSeed("fig10", "n64/SF", 2019);
    EXPECT_EQ(a, deriveSeed("fig10", "n64/SF", 2019));
    EXPECT_NE(a, deriveSeed("fig10", "n64/S2", 2019));
    EXPECT_NE(a, deriveSeed("fig11", "n64/SF", 2019));
    EXPECT_NE(a, deriveSeed("fig10", "n64/SF", 2020));
    // The split between experiment and run id matters.
    EXPECT_NE(deriveSeed("ab", "c", 1), deriveSeed("a", "bc", 1));
}

/**
 * Checkpoint-key stability: derived seeds are the durable half of
 * every RunStore key, so their current values are pinned as
 * goldens — any change to deriveSeed silently orphans (or worse,
 * key-collides) existing checkpoints and must fail here first.
 */
TEST(Seed, GoldenValuesPinned)
{
    EXPECT_EQ(
        deriveSeed("fig10_saturation", "uniform/n64/SF", 2019),
        12362867324200668264ULL);
    EXPECT_EQ(deriveSeed("fig11_latency_curves",
                         "n64/uniform/SF/r0.005", 2019),
              10916031344874723452ULL);
    EXPECT_EQ(deriveSeed("fig12_workloads", "wordcount/SF", 2019),
              12461129398622044339ULL);
    EXPECT_EQ(deriveSeed("table2_features", "SF", 2019),
              2994852813146054711ULL);
    EXPECT_EQ(deriveSeed("toy", "run0", 2019),
              18086813016653929216ULL);
}

/** Fixed three-run spec used for the spec-hash property tests. */
ExperimentSpec
goldenToySpec()
{
    ExperimentSpec spec;
    spec.name = "golden_toy";
    spec.artefact = "test";
    spec.title = "golden";
    spec.plan = [](const PlanContext &) {
        std::vector<RunSpec> out;
        for (int i = 0; i < 3; ++i) {
            RunSpec run;
            run.id = "r" + std::to_string(i);
            run.params.set("i", i);
            run.body = [](const RunContext &) {
                return Json::object();
            };
            out.push_back(std::move(run));
        }
        return out;
    };
    return spec;
}

/**
 * The other half of the checkpoint key: spec hashes are a pure
 * function of the expanded plan, so re-planning, registry
 * iteration order, and the scheduler's job count can never move
 * them — and the current values are pinned as goldens so silent
 * key drift (which would either orphan or mis-serve checkpoints)
 * fails loudly.
 */
TEST(SpecHash, GoldenValuesPinned)
{
    const ExperimentSpec spec = goldenToySpec();
    const auto runs = spec.plan({});
    EXPECT_EQ(specHash(spec, runs, Effort::Quick, 2019),
              "3653d0edeb2ef160");
    EXPECT_EQ(specHash(spec, runs, Effort::Default, 2019),
              "d046f0547a7bbfce");
}

TEST(SpecHash, StableAcrossPlanningAndJobCounts)
{
    PlanContext ctx;
    ctx.effort = Effort::Quick;
    for (const ExperimentSpec &spec : registry().all()) {
        const std::string first = specHash(
            spec, spec.plan(ctx), ctx.effort, ctx.baseSeed);
        // Re-planning the same grid is byte-stable.
        EXPECT_EQ(specHash(spec, spec.plan(ctx), ctx.effort,
                           ctx.baseSeed),
                  first)
            << spec.name;
    }
    // The job count is not even an input to specHash(): keying is
    // a property of the plan alone, so checkpoints taken at
    // --jobs 1 and --jobs 8 can never diverge. One executed spot
    // check pins it end to end.
    const ExperimentSpec spec = goldenToySpec();
    const auto runs = spec.plan({});
    const std::string hash =
        specHash(spec, runs, Effort::Default, kBaseSeed);
    for (const int jobs : {1, 8}) {
        SchedulerOptions opts;
        opts.jobs = jobs;
        (void)runExperiment(spec, runs, opts);
        EXPECT_EQ(
            specHash(spec, runs, Effort::Default, kBaseSeed),
            hash)
            << "jobs=" << jobs;
    }
}

TEST(SpecHash, IndependentOfRegistryIterationOrder)
{
    // Two registries holding the same specs in opposite insertion
    // order must produce identical hashes for each experiment.
    ExperimentSpec a = goldenToySpec();
    ExperimentSpec b = goldenToySpec();
    b.name = "other_toy";
    Registry forward;
    forward.add(a);
    forward.add(b);
    Registry backward;
    backward.add(b);
    backward.add(a);
    for (const char *name : {"golden_toy", "other_toy"}) {
        const ExperimentSpec *fwd = forward.find(name);
        const ExperimentSpec *bwd = backward.find(name);
        ASSERT_NE(fwd, nullptr);
        ASSERT_NE(bwd, nullptr);
        EXPECT_EQ(specHash(*fwd, fwd->plan({}), Effort::Default,
                           kBaseSeed),
                  specHash(*bwd, bwd->plan({}), Effort::Default,
                           kBaseSeed));
    }
}

TEST(SpecHash, SensitiveToEveryKeyedInput)
{
    const ExperimentSpec spec = goldenToySpec();
    const auto runs = spec.plan({});
    const std::string base =
        specHash(spec, runs, Effort::Quick, 2019);

    EXPECT_NE(specHash(spec, runs, Effort::Full, 2019), base);
    EXPECT_NE(specHash(spec, runs, Effort::Quick, 2020), base);

    ExperimentSpec renamed = spec;
    renamed.name = "golden_toy2";
    EXPECT_NE(specHash(renamed, runs, Effort::Quick, 2019), base);

    auto reid = runs;
    reid[0].id = "r0b";
    EXPECT_NE(specHash(spec, reid, Effort::Quick, 2019), base);

    auto reparam = runs;
    reparam[1].params.set("i", 99);
    EXPECT_NE(specHash(spec, reparam, Effort::Quick, 2019), base);

    auto grown = runs;
    grown.push_back(runs[0]);
    grown.back().id = "r3";
    EXPECT_NE(specHash(spec, grown, Effort::Quick, 2019), base);
}

TEST(Registry, BuiltinsPresent)
{
    const Registry &r = registry();
    // Every ported harness answers to its old name.
    for (const char *name :
         {"fig05_path_lengths", "fig09a_hop_counts",
          "fig09b_power_gating_edp", "fig10_saturation",
          "fig11_latency_curves", "fig12_workloads",
          "table2_features", "bisection_bandwidth",
          "ablation_adaptive", "ablation_balance",
          "ablation_two_hop", "ablation_coord_bits",
          "ablation_unidir", "ablation_reconfig_repair",
          "ablation_reconfig_envelope", "micro_routing"})
        EXPECT_NE(r.find(name), nullptr) << name;

    // Sorted, duplicate-free listing.
    const auto &all = r.all();
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1].name, all[i].name);

    // The acceptance glob: fig10 + fig11 + fig12.
    const auto figs = r.match("fig1*");
    ASSERT_EQ(figs.size(), 3u);
    EXPECT_EQ(figs[0]->name, "fig10_saturation");
    EXPECT_EQ(figs[1]->name, "fig11_latency_curves");
    EXPECT_EQ(figs[2]->name, "fig12_workloads");

    // Comma-separated patterns, deduplicated.
    const auto both = r.match("fig10*,fig1*");
    EXPECT_EQ(both.size(), 3u);
    EXPECT_TRUE(r.match("no_such_experiment").empty());
}

TEST(Registry, EveryExperimentPlansNonEmptyUniqueRuns)
{
    PlanContext ctx;
    ctx.effort = Effort::Quick;
    for (const ExperimentSpec &spec : registry().all()) {
        const auto runs = spec.plan(ctx);
        EXPECT_FALSE(runs.empty()) << spec.name;
        std::set<std::string> ids;
        for (const RunSpec &run : runs) {
            EXPECT_TRUE(ids.insert(run.id).second)
                << spec.name << " duplicate run id " << run.id;
            EXPECT_TRUE(run.body) << spec.name << "/" << run.id;
            EXPECT_TRUE(run.params.isObject());
        }
    }
}

TEST(Registry, DuplicateNameRejected)
{
    Registry r;
    ExperimentSpec spec;
    spec.name = "x";
    spec.plan = [](const PlanContext &) {
        return std::vector<RunSpec>{};
    };
    r.add(spec);
    EXPECT_THROW(r.add(spec), std::invalid_argument);
}

/** Toy experiment: each run records its derived seed and square. */
ExperimentSpec
toySpec(int runs)
{
    ExperimentSpec spec;
    spec.name = "toy";
    spec.artefact = "test";
    spec.title = "toy";
    spec.plan = [runs](const PlanContext &) {
        std::vector<RunSpec> out;
        for (int i = 0; i < runs; ++i) {
            RunSpec run;
            run.id = "run" + std::to_string(i);
            run.params.set("i", i);
            run.body = [i](const RunContext &ctx) -> Json {
                Json m = Json::object();
                m.set("square", i * i);
                m.set("seed_echo", ctx.seed);
                return m;
            };
            out.push_back(std::move(run));
        }
        return out;
    };
    return spec;
}

TEST(Scheduler, ResultsInPlanOrderAtAnyJobCount)
{
    const ExperimentSpec spec = toySpec(20);
    const auto runs = spec.plan({});
    for (const int jobs : {1, 2, 8}) {
        SchedulerOptions opts;
        opts.jobs = jobs;
        const auto results = runExperiment(spec, runs, opts);
        ASSERT_EQ(results.size(), 20u);
        for (int i = 0; i < 20; ++i) {
            EXPECT_EQ(results[i].id,
                      "run" + std::to_string(i));
            EXPECT_EQ(results[i].metrics.at("square").asInt(),
                      i * i);
            EXPECT_EQ(results[i].seed,
                      deriveSeed("toy", results[i].id,
                                 kBaseSeed));
            EXPECT_FALSE(results[i].failed);
        }
    }
}

TEST(Scheduler, FailureIsIsolated)
{
    ExperimentSpec spec;
    spec.name = "failing";
    spec.plan = [](const PlanContext &) {
        std::vector<RunSpec> out;
        for (int i = 0; i < 3; ++i) {
            RunSpec run;
            run.id = "r" + std::to_string(i);
            run.body = [i](const RunContext &) -> Json {
                if (i == 1)
                    throw std::runtime_error("boom");
                Json m = Json::object();
                m.set("ok", true);
                return m;
            };
            out.push_back(std::move(run));
        }
        return out;
    };
    const auto results =
        runExperiment(spec, spec.plan({}), SchedulerOptions{});
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_TRUE(results[1].failed);
    EXPECT_EQ(results[1].error, "boom");
    EXPECT_FALSE(results[2].failed);
}

TEST(Scheduler, RunsConcurrently)
{
    // Eight sleeping runs at --jobs 8 must overlap: even on one
    // core, eight blocked threads sleep in parallel, so the wall
    // clock stays far under the 8 x 60 ms serial time.
    constexpr int kRuns = 8;
    std::atomic<int> in_flight{0};
    std::atomic<int> peak{0};
    ExperimentSpec spec;
    spec.name = "sleepy";
    spec.plan = [&](const PlanContext &) {
        std::vector<RunSpec> out;
        for (int i = 0; i < kRuns; ++i) {
            RunSpec run;
            run.id = "s" + std::to_string(i);
            run.body = [&](const RunContext &) -> Json {
                const int now = ++in_flight;
                int seen = peak.load();
                while (seen < now &&
                       !peak.compare_exchange_weak(seen, now)) {
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(60));
                --in_flight;
                return Json::object();
            };
            out.push_back(std::move(run));
        }
        return out;
    };
    SchedulerOptions opts;
    opts.jobs = kRuns;
    const auto start = std::chrono::steady_clock::now();
    runExperiment(spec, spec.plan({}), opts);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_GT(peak.load(), 1);
    EXPECT_LT(ms, 60.0 * kRuns / 2.0);
}

TEST(Scheduler, ProgressCallbackSeesEveryRun)
{
    const ExperimentSpec spec = toySpec(10);
    SchedulerOptions opts;
    opts.jobs = 4;
    std::size_t calls = 0;
    std::size_t last_total = 0;
    opts.onRunDone = [&](std::size_t done, std::size_t total,
                         const RunResult &) {
        ++calls;
        EXPECT_GE(done, 1u);
        EXPECT_LE(done, total);
        last_total = total;
    };
    runExperiment(spec, spec.plan({}), opts);
    EXPECT_EQ(calls, 10u);
    EXPECT_EQ(last_total, 10u);
}

/**
 * The tentpole determinism guarantee: same spec + seed produce a
 * byte-identical JSON report whether scheduled on one thread or
 * eight.
 */
TEST(Report, ByteIdenticalAcrossJobCounts)
{
    const ExperimentSpec *spec =
        registry().find("table2_features");
    ASSERT_NE(spec, nullptr);
    PlanContext plan_ctx;
    plan_ctx.effort = Effort::Quick;
    const auto runs = spec->plan(plan_ctx);

    std::string dumps[2];
    const int job_counts[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        SchedulerOptions opts;
        opts.jobs = job_counts[i];
        opts.effort = Effort::Quick;
        ExperimentResults results;
        results.spec = spec;
        results.runs = runExperiment(*spec, runs, opts);
        ReportOptions ropts;
        ropts.effort = Effort::Quick;
        ropts.jobs = job_counts[i];
        dumps[i] = buildReport({results}, ropts).dump(2);
    }
    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_FALSE(dumps[0].empty());
}

/**
 * The refactor's core guarantee: a saturation-search experiment —
 * shared cached topologies, nested parallel probes — produces a
 * byte-identical report at any job count, with the topology cache
 * on or off. Pinned on a small fig10 slice so it runs in seconds.
 */
TEST(Report, SaturationSliceByteIdenticalAcrossJobsAndCache)
{
    const ExperimentSpec *spec =
        registry().find("fig10_saturation");
    ASSERT_NE(spec, nullptr);
    PlanContext plan_ctx;
    plan_ctx.effort = Effort::Quick;
    auto runs = spec->plan(plan_ctx);
    std::erase_if(runs, [](const RunSpec &run) {
        return !globMatch("uniform/n16/*", run.id);
    });
    ASSERT_GE(runs.size(), 3u);

    const auto report_with = [&](int jobs, bool cache) {
        sf::topos::setTopologyCacheEnabled(cache);
        sf::topos::topologyCache().clear();
        SchedulerOptions opts;
        opts.jobs = jobs;
        opts.effort = Effort::Quick;
        ExperimentResults results;
        results.spec = spec;
        results.runs = runExperiment(*spec, runs, opts);
        ReportOptions ropts;
        ropts.effort = Effort::Quick;
        ropts.jobs = jobs;
        return buildReport({results}, ropts).dump(2);
    };

    const std::string reference = report_with(1, true);
    EXPECT_FALSE(reference.empty());
    EXPECT_EQ(report_with(8, true), reference);
    EXPECT_EQ(report_with(1, false), reference);
    EXPECT_EQ(report_with(8, false), reference);
    sf::topos::setTopologyCacheEnabled(true);
}

TEST(Scheduler, RunBodiesGetNestedExecutor)
{
    ExperimentSpec spec;
    spec.name = "nested";
    spec.plan = [](const PlanContext &) {
        std::vector<RunSpec> out;
        for (int i = 0; i < 3; ++i) {
            RunSpec run;
            run.id = "n" + std::to_string(i);
            run.body = [](const RunContext &ctx) -> Json {
                // Nested fan-out through the scheduler's pool.
                EXPECT_NE(ctx.executor, nullptr);
                std::atomic<int> sum{0};
                std::vector<std::function<void()>> tasks;
                for (int t = 1; t <= 4; ++t)
                    tasks.push_back([&sum, t] { sum += t; });
                ctx.executor->runAll(tasks);
                Json m = Json::object();
                m.set("sum", sum.load());
                return m;
            };
            out.push_back(std::move(run));
        }
        return out;
    };
    for (const int jobs : {1, 4}) {
        SchedulerOptions opts;
        opts.jobs = jobs;
        const auto results =
            runExperiment(spec, spec.plan({}), opts);
        for (const RunResult &r : results) {
            EXPECT_FALSE(r.failed) << r.error;
            EXPECT_EQ(r.metrics.at("sum").asInt(), 10);
        }
    }
}

TEST(WorkPool, NestedBatchesAndExceptions)
{
    WorkPool pool(4);
    EXPECT_EQ(pool.parallelism(), 4);

    // Nested batches complete from inside pool tasks.
    std::atomic<int> total{0};
    std::vector<std::function<void()>> outer;
    for (int i = 0; i < 4; ++i)
        outer.push_back([&] {
            std::vector<std::function<void()>> inner;
            for (int j = 0; j < 8; ++j)
                inner.push_back([&] { ++total; });
            pool.runAll(inner);
        });
    pool.runAll(outer);
    EXPECT_EQ(total.load(), 32);

    // A throwing task propagates after the batch drains.
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> failing;
    for (int i = 0; i < 6; ++i)
        failing.push_back([&ran, i] {
            ++ran;
            if (i == 2)
                throw std::runtime_error("task failed");
        });
    EXPECT_THROW(pool.runAll(failing), std::runtime_error);
    EXPECT_EQ(ran.load(), 6);
}

TEST(Report, SchemaRoundTrip)
{
    const ExperimentSpec spec = toySpec(3);
    ExperimentResults results;
    results.spec = &spec;
    results.runs =
        runExperiment(spec, spec.plan({}), SchedulerOptions{});
    ReportOptions ropts;
    const Json report = buildReport({results}, ropts);

    // Serialise, reparse, and verify the schema fields survive.
    const Json parsed = Json::parse(report.dump(2));
    EXPECT_EQ(parsed.at("schema").asString(), kReportSchema);
    EXPECT_EQ(parsed.at("suite").asString(), "string-figure");
    EXPECT_EQ(parsed.at("effort").asString(), "default");
    EXPECT_EQ(parsed.at("base_seed").asInt(),
              static_cast<std::int64_t>(kBaseSeed));
    const auto &exps = parsed.at("experiments").asArray();
    ASSERT_EQ(exps.size(), 1u);
    EXPECT_EQ(exps[0].at("name").asString(), "toy");
    EXPECT_EQ(exps[0].at("deterministic").asBool(), true);
    const auto &runs = exps[0].at("runs").asArray();
    ASSERT_EQ(runs.size(), 3u);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].at("id").asString(),
                  "run" + std::to_string(i));
        EXPECT_EQ(runs[i].at("params").at("i").asInt(),
                  static_cast<std::int64_t>(i));
        EXPECT_EQ(runs[i].at("metrics").at("square").asInt(),
                  static_cast<std::int64_t>(i * i));
        // Determinism contract: no wall-clock keys by default.
        EXPECT_EQ(runs[i].find("wall_ms"), nullptr);
    }
    EXPECT_EQ(parsed.find("jobs"), nullptr);

    // And the parsed document reserialises to the same bytes.
    EXPECT_EQ(parsed.dump(2), report.dump(2));
}

TEST(Report, TimingOptIn)
{
    const ExperimentSpec spec = toySpec(1);
    ExperimentResults results;
    results.spec = &spec;
    results.runs =
        runExperiment(spec, spec.plan({}), SchedulerOptions{});
    results.wallMs = 1.0;
    ReportOptions ropts;
    ropts.includeTiming = true;
    ropts.jobs = 4;
    const Json report = buildReport({results}, ropts);
    EXPECT_EQ(report.at("jobs").asInt(), 4);
    const auto &exp0 = report.at("experiments").asArray()[0];
    EXPECT_NE(exp0.find("wall_ms"), nullptr);
    EXPECT_NE(exp0.at("runs").asArray()[0].find("wall_ms"),
              nullptr);
}

TEST(Report, RenderTableAlignsColumns)
{
    const ExperimentSpec spec = toySpec(2);
    ExperimentResults results;
    results.spec = &spec;
    results.runs =
        runExperiment(spec, spec.plan({}), SchedulerOptions{});
    const std::string table = renderTable(results);
    EXPECT_NE(table.find("run"), std::string::npos);
    EXPECT_NE(table.find("square"), std::string::npos);
    EXPECT_NE(table.find("run0"), std::string::npos);
    EXPECT_NE(table.find("run1"), std::string::npos);
}

} // namespace

/**
 * @file
 * Tests for the exp JSON model: construction, ordered objects,
 * deterministic serialisation, parsing, and round-trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "exp/json.hpp"

namespace {

using sf::exp::Json;
using sf::exp::JsonError;

TEST(Json, ScalarsDump)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
    EXPECT_EQ(Json(0.5).dump(), "0.5");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zebra", 1);
    obj.set("apple", 2);
    obj.set("mango", 3);
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
    // Replacing a key keeps its original position.
    obj.set("apple", 9);
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(Json, StringEscapes)
{
    const Json s(std::string("a\"b\\c\nd\te"));
    EXPECT_EQ(s.dump(), "\"a\\\"b\\\\c\\nd\\te\"");
    const Json parsed = Json::parse(s.dump());
    EXPECT_EQ(parsed.asString(), "a\"b\\c\nd\te");
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, ParseScalars)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_EQ(Json::parse("true").asBool(), true);
    EXPECT_EQ(Json::parse("-12").asInt(), -12);
    EXPECT_TRUE(Json::parse("1e3").isDouble());
    EXPECT_DOUBLE_EQ(Json::parse("1e3").asDouble(), 1000.0);
    EXPECT_EQ(Json::parse("\"x\"").asString(), "x");
}

TEST(Json, ParseNested)
{
    const Json v = Json::parse(
        R"({"a": [1, 2.5, {"b": null}], "c": "d"})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("a").asArray().size(), 3u);
    EXPECT_EQ(v.at("a").asArray()[0].asInt(), 1);
    EXPECT_DOUBLE_EQ(v.at("a").asArray()[1].asDouble(), 2.5);
    EXPECT_TRUE(v.at("a").asArray()[2].at("b").isNull());
    EXPECT_EQ(v.at("c").asString(), "d");
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v.at("missing"), JsonError);
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(Json::parse(""), JsonError);
    EXPECT_THROW(Json::parse("{"), JsonError);
    EXPECT_THROW(Json::parse("[1,]"), JsonError);
    EXPECT_THROW(Json::parse("tru"), JsonError);
    EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
    EXPECT_THROW(Json::parse("1 2"), JsonError);
    EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
}

TEST(Json, RoundTripIsByteStable)
{
    Json obj = Json::object();
    obj.set("name", "fig10");
    obj.set("rate", 0.045);
    obj.set("nodes", 1024);
    obj.set("saturated", false);
    Json arr = Json::array();
    arr.push(1.5);
    arr.push(std::int64_t{3});
    arr.push("x");
    arr.push(nullptr);
    obj.set("series", std::move(arr));

    // dump -> parse -> dump must reproduce the exact bytes, both
    // compact and pretty — this is what report determinism rests on.
    for (const int indent : {0, 2}) {
        const std::string first = obj.dump(indent);
        const std::string second =
            Json::parse(first).dump(indent);
        EXPECT_EQ(first, second);
    }
}

TEST(Json, DoubleFormattingIsShortestRoundTrip)
{
    // to_chars shortest form: parse(dump(x)) == x exactly.
    for (const double x :
         {0.1, 1.0 / 3.0, 12345.6789, 2.2250738585072014e-308,
          9007199254740993.0}) {
        const Json parsed = Json::parse(Json(x).dump());
        EXPECT_DOUBLE_EQ(parsed.asDouble(), x);
    }
}

TEST(Json, Uint64SeedsKeepFullRange)
{
    // Derived run seeds are full-range 64-bit hashes: values above
    // INT64_MAX must serialise as their decimal unsigned form, not
    // wrap negative, and must round-trip.
    const std::uint64_t big = 0xF123456789ABCDEFULL;
    const Json j(big);
    EXPECT_EQ(j.dump(), std::to_string(big));
    EXPECT_EQ(j.dump()[0] == '-', false);
    const Json parsed = Json::parse(j.dump());
    EXPECT_TRUE(parsed.isUint());
    EXPECT_EQ(parsed.asUint(), big);
    EXPECT_EQ(parsed.dump(), j.dump());
    // Small unsigned values parse back as Int but compare equal.
    EXPECT_TRUE(Json(std::uint64_t{5}) == Json::parse("5"));
    EXPECT_FALSE(Json(std::uint64_t{5}) == Json(-5));
}

TEST(Json, NegativeZeroRoundTrips)
{
    // -0.0 dumps as "-0" and must parse back as a double, not
    // Int(0) (which would re-dump as "0" and break byte-stability).
    const Json j(-0.0);
    EXPECT_EQ(j.dump(), "-0");
    const Json parsed = Json::parse("-0");
    EXPECT_TRUE(parsed.isDouble());
    EXPECT_EQ(parsed.dump(), "-0");
}

TEST(Json, NumericEquality)
{
    // An integral double that dumped as "3" compares equal to the
    // Int it parses back as.
    EXPECT_TRUE(Json(3.0) == Json(std::int64_t{3}));
    EXPECT_TRUE(Json::parse(Json(3.0).dump()) == Json(3.0));
}

TEST(Json, PrettyPrint)
{
    Json obj = Json::object();
    obj.set("a", 1);
    EXPECT_EQ(obj.dump(2), "{\n  \"a\": 1\n}");
    EXPECT_EQ(Json::object().dump(2), "{}");
    EXPECT_EQ(Json::array().dump(2), "[]");
}

TEST(Json, ParseLinesStreamsDocuments)
{
    // The JSON-Lines form the checkpoint journal uses: one compact
    // document per line, in stream order.
    const auto docs = Json::parseLines(
        "{\"event\":\"store\",\"run\":\"a\"}\n"
        "\n"
        "{\"event\":\"stale\",\"run\":\"b\"}\n"
        "7\n");
    ASSERT_EQ(docs.size(), 3u);
    EXPECT_EQ(docs[0].at("event").asString(), "store");
    EXPECT_EQ(docs[1].at("run").asString(), "b");
    EXPECT_EQ(docs[2].asInt(), 7);

    EXPECT_TRUE(Json::parseLines("").empty());
    EXPECT_TRUE(Json::parseLines("  \n \n").empty());
    // A malformed record anywhere in the stream still throws.
    EXPECT_THROW(Json::parseLines("{\"a\":1}\n{oops"), JsonError);
}

TEST(Json, ParseLinesCanDropATruncatedTail)
{
    // A crashed appendJsonLine() writer leaves at most one partial
    // trailing line; dropTruncatedTail returns the complete prefix
    // instead of throwing away the whole stream.
    const std::string stream =
        "{\"event\":\"store\",\"run\":\"a\"}\n"
        "{\"event\":\"store\",\"run\":\"b\"}\n"
        "{\"event\":\"sto"; // killed mid-write
    EXPECT_THROW(Json::parseLines(stream), JsonError);
    const auto docs = Json::parseLines(stream, true);
    ASSERT_EQ(docs.size(), 2u);
    EXPECT_EQ(docs[1].at("run").asString(), "b");

    // Truncated mid-string, mid-number-less cases too.
    EXPECT_EQ(Json::parseLines("1\n\"unterminat", true).size(),
              1u);
    EXPECT_EQ(Json::parseLines("[1,2", true).size(), 0u);

    // Mid-stream corruption is NOT a truncated tail: still throws.
    EXPECT_THROW(Json::parseLines("{oops}\n{\"a\":1}", true),
                 JsonError);
}

TEST(Json, AppendJsonLineAccumulatesAStream)
{
    const std::string path =
        std::string(::testing::TempDir()) + "sf_jsonl_test.jsonl";
    std::remove(path.c_str());

    for (int i = 0; i < 3; ++i) {
        Json line = Json::object();
        line.set("i", i);
        sf::exp::appendJsonLine(path, line);
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[256];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_EQ(text, "{\"i\":0}\n{\"i\":1}\n{\"i\":2}\n");
    const auto docs = Json::parseLines(text);
    ASSERT_EQ(docs.size(), 3u);
    EXPECT_EQ(docs[2].at("i").asInt(), 2);
}

} // namespace

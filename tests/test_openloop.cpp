/**
 * @file
 * Tests for the open-loop load subsystem: arrival-process
 * determinism, the HDR-style log-bucket histogram (bucket geometry,
 * hand-computed percentiles, merge associativity), and the
 * hockey-stick experiment family's byte-identity across job and
 * shard counts, pinned against a committed golden report.
 *
 * The golden (tests/golden/hockey_sf64_quick.json) is the SF slice
 * of the quick hockey_stick grid at --jobs 1. Like the engine
 * identity golden, an intentional simulator- or schedule-behaviour
 * change must regenerate it in the same commit:
 *   sfx run hockey_stick --quick --runs '*SF*' --jobs 1 \
 *       --out tests/golden/hockey_sf64_quick.json
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"

#ifndef SF_SOURCE_DIR
#define SF_SOURCE_DIR "."
#endif

namespace {

using namespace sf;
using namespace sf::sim;

// ------------------------------------------------ arrival processes

std::vector<Cycle>
schedule(const ArrivalConfig &cfg, double rate, std::uint64_t seed,
         std::size_t n)
{
    OpenLoopSource src(cfg, rate, seed);
    std::vector<Cycle> arrivals;
    arrivals.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        arrivals.push_back(src.next());
    return arrivals;
}

TEST(OpenLoopSource, SameSeedSameScheduleEveryProcess)
{
    for (const ArrivalProcess process : kAllArrivalProcesses) {
        ArrivalConfig cfg;
        cfg.process = process;
        const auto a = schedule(cfg, 0.02, 7, 500);
        const auto b = schedule(cfg, 0.02, 7, 500);
        EXPECT_EQ(a, b) << arrivalProcessName(process);
        // The stream is nondecreasing (several arrivals may share
        // a cycle) and actually advances.
        for (std::size_t i = 1; i < a.size(); ++i)
            ASSERT_LE(a[i - 1], a[i])
                << arrivalProcessName(process) << " @" << i;
        EXPECT_GT(a.back(), a.front())
            << arrivalProcessName(process);
        // A different seed decorrelates the schedule.
        EXPECT_NE(a, schedule(cfg, 0.02, 8, 500))
            << arrivalProcessName(process);
    }
}

TEST(OpenLoopSource, LongRunRateMatchesNominalEveryProcess)
{
    // All three processes offer the same long-run load: over many
    // arrivals the empirical rate must track the nominal one (the
    // on/off sources via B x rate at duty 1/B). Tolerances are
    // loose — this is a sanity bound, not a statistics test; the
    // heavy-tailed source converges slowest.
    for (const ArrivalProcess process : kAllArrivalProcesses) {
        ArrivalConfig cfg;
        cfg.process = process;
        const std::size_t n = 200000;
        const auto a = schedule(cfg, 0.02, 11, n);
        const double measured_rate =
            static_cast<double>(n - 1) /
            static_cast<double>(a.back() - a.front());
        EXPECT_NEAR(measured_rate, 0.02, 0.02 * 0.25)
            << arrivalProcessName(process);
    }
}

TEST(OpenLoopSource, ZeroRateNeverArrives)
{
    ArrivalConfig cfg;
    OpenLoopSource src(cfg, 0.0, 1);
    EXPECT_EQ(src.next(), std::numeric_limits<Cycle>::max());
}

TEST(OpenLoopSource, NamesRoundTrip)
{
    for (const ArrivalProcess process : kAllArrivalProcesses)
        EXPECT_EQ(parseArrivalProcess(arrivalProcessName(process)),
                  process);
    EXPECT_THROW(parseArrivalProcess("fractal"),
                 std::invalid_argument);
}

// ---------------------------------------------------- log histogram

TEST(LogHistogram, BucketGeometryIsMonotoneAndConsistent)
{
    // Values below one octave of sub-buckets are exact.
    for (Cycle v = 0; v < LogHistogram::kSub; ++v) {
        EXPECT_EQ(LogHistogram::bucketIndex(v), v);
        EXPECT_EQ(LogHistogram::bucketFloor(v), v);
    }
    // Every in-range value lands in a bucket whose floor is <= the
    // value, and floors are the smallest members of their bucket.
    for (const Cycle v :
         {32u, 33u, 63u, 64u, 100u, 992u, 1000u, 1023u, 1024u,
          65535u, 1u << 20, (1u << 30) + 17u}) {
        const std::size_t idx = LogHistogram::bucketIndex(v);
        EXPECT_LE(LogHistogram::bucketFloor(idx), v) << v;
        EXPECT_EQ(LogHistogram::bucketIndex(
                      LogHistogram::bucketFloor(idx)),
                  idx)
            << v;
        if (idx + 1 < LogHistogram::kBuckets)
            EXPECT_GT(LogHistogram::bucketFloor(idx + 1), v) << v;
        // ~3% worst-case relative error: floor within 1/32.
        EXPECT_LE(static_cast<double>(
                      v - LogHistogram::bucketFloor(idx)),
                  static_cast<double>(v) / 32.0 + 1.0)
            << v;
    }
    // Indices are monotone in the value.
    Cycle prev = 0;
    for (Cycle v = 1; v < (1u << 20); v = v * 2 + 1) {
        EXPECT_GE(LogHistogram::bucketIndex(v),
                  LogHistogram::bucketIndex(prev));
        prev = v;
    }
    // Beyond-range values clamp into the terminal bucket.
    EXPECT_EQ(LogHistogram::bucketIndex(Cycle{1} << 40),
              LogHistogram::kBuckets - 1);
}

TEST(LogHistogram, HandComputedPercentiles)
{
    LogHistogram h;
    for (Cycle v = 1; v <= 10; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.5);
    // Rank target = floor(q * (count-1)); values 1..10 are exact
    // buckets, so: q=0 -> rank 0 -> 1; q=0.5 -> rank 4 -> 5;
    // q=0.95 and q=0.999 -> rank 8 -> 9; q=1.0 -> rank 9 -> 10.
    EXPECT_EQ(h.percentile(0.0), 1u);
    EXPECT_EQ(h.percentile(0.5), 5u);
    EXPECT_EQ(h.percentile(0.95), 9u);
    EXPECT_EQ(h.percentile(1.0), 10u);
    EXPECT_EQ(h.max(), 10u);

    const LatencySummary s = h.summary();
    EXPECT_EQ(s.count, 10u);
    EXPECT_EQ(s.p50, 5u);
    EXPECT_EQ(s.p95, 9u);
    EXPECT_EQ(s.p999, 9u);
    EXPECT_EQ(s.max, 10u);
}

TEST(LogHistogram, BucketedValuesReportTheBucketFloor)
{
    // 1000 lives in the [992, 1024) bucket: percentiles report the
    // floor (992), max stays exact.
    LogHistogram h;
    h.record(1000);
    EXPECT_EQ(h.percentile(0.5), 992u);
    EXPECT_EQ(h.max(), 1000u);

    // Distinct sub-buckets within the octave stay ordered: 1000
    // lives in [992, 1008), 1010 in [1008, 1024).
    LogHistogram g;
    g.record(1000);
    g.record(1010);
    EXPECT_EQ(g.percentile(0.0), 992u);
    EXPECT_EQ(g.percentile(1.0), 1008u);
    EXPECT_EQ(g.max(), 1010u);

    // When the quantile's bucket floor overshoots the observed
    // max, the clamp keeps percentile(1.0) honest.
    LogHistogram top;
    top.record(1008);
    EXPECT_EQ(top.percentile(1.0), 1008u);
    EXPECT_EQ(top.max(), 1008u);
}

TEST(LogHistogram, MergeIsAssociativeAndLossless)
{
    // Three histograms fed from disjoint deterministic streams.
    Rng rng(99);
    LogHistogram parts[3];
    LogHistogram all;
    for (int i = 0; i < 3000; ++i) {
        const auto v = static_cast<Cycle>(rng.below(1u << 18));
        parts[i % 3].record(v);
        all.record(v);
    }

    // (a + b) + c  ==  a + (b + c)  ==  every-sample-at-once.
    LogHistogram left = parts[0];
    left.merge(parts[1]);
    left.merge(parts[2]);
    LogHistogram right = parts[2];
    {
        LogHistogram bc = parts[1];
        bc.merge(parts[2]);
        right = parts[0];
        right.merge(bc);
    }
    for (const LogHistogram *m : {&left, &right}) {
        EXPECT_EQ(m->count(), all.count());
        EXPECT_EQ(m->max(), all.max());
        EXPECT_DOUBLE_EQ(m->mean(), all.mean());
        for (const double q :
             {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0})
            EXPECT_EQ(m->percentile(q), all.percentile(q)) << q;
    }
}

TEST(LogHistogram, ResetClearsEverything)
{
    LogHistogram h;
    h.record(7);
    h.record(70000);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

// ------------------------------------------- hockey-stick identity

using namespace sf::exp;

/** The driver's `sfx run hockey_stick --quick --runs '*SF*'` flow,
 *  in-process: plan, filter to the String Figure slice, schedule,
 *  report — at any job count, route-plane shard count, route cache
 *  setting, commit-wavefront width, and routing policy. */
std::string
hockeySliceReport(int jobs, int shards = 1, bool route_cache = true,
                  int wavefront = 0,
                  core::RoutingPolicyKind policy =
                      core::RoutingPolicyKind::Greedy)
{
    const auto specs = registry().match("hockey_stick");
    PlanContext plan_ctx;
    plan_ctx.effort = Effort::Quick;

    std::vector<ExperimentResults> all;
    for (const ExperimentSpec *spec : specs) {
        auto runs = spec->plan(plan_ctx);
        std::erase_if(runs, [](const RunSpec &run) {
            return !globMatch("*SF*", run.id);
        });
        if (runs.empty())
            continue;
        SchedulerOptions sched;
        sched.jobs = jobs;
        sched.shards = shards;
        sched.routeCache = route_cache;
        sched.wavefront = wavefront;
        sched.policy = policy;
        sched.effort = Effort::Quick;
        ExperimentResults results;
        results.spec = spec;
        results.runs = runExperiment(*spec, runs, sched);
        for (const RunResult &r : results.runs)
            EXPECT_FALSE(r.failed) << spec->name << "/" << r.id
                                   << ": " << r.error;
        all.push_back(std::move(results));
    }

    ReportOptions ropts;
    ropts.effort = Effort::Quick;
    ropts.jobs = jobs;
    ropts.policy = policy;
    return buildReport(all, ropts).dump(2) + "\n";
}

std::string
hockeyGoldenBytes()
{
    return readFile(std::string(SF_SOURCE_DIR) +
                    "/tests/golden/hockey_sf64_quick.json");
}

TEST(HockeyStick, MatchesGoldenJobs1)
{
    const std::string golden = hockeyGoldenBytes();
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(hockeySliceReport(1), golden)
        << "the open-loop schedule or tail extraction no longer "
           "reproduces the pinned report";
}

TEST(HockeyStick, MatchesGoldenJobs8)
{
    EXPECT_EQ(hockeySliceReport(8), hockeyGoldenBytes());
}

TEST(HockeyStick, MatchesGoldenSharded)
{
    const std::string golden = hockeyGoldenBytes();
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(hockeySliceReport(1, 4), golden)
        << "sharded route plane perturbed the open-loop run";
    EXPECT_EQ(hockeySliceReport(8, 4), golden)
        << "concurrent sharded run diverged";
}

/** The cache-off half of the route-cache A/B (cache on is the
 *  default engine pinned above), across the jobs x shards matrix. */
TEST(HockeyStick, RouteCacheOffMatchesGoldenAcrossMatrix)
{
    const std::string golden = hockeyGoldenBytes();
    ASSERT_FALSE(golden.empty());
    for (const int jobs : {1, 8}) {
        for (const int shards : {1, 4}) {
            EXPECT_EQ(hockeySliceReport(jobs, shards, false),
                      golden)
                << "--route-cache off diverged at --jobs " << jobs
                << " --shards " << shards;
        }
    }
}

/** The commit-wavefront scheduler must leave the open-loop family's
 *  bytes untouched at every width, crossed against the other two
 *  execution knobs. Width 0 is the serial phase pipeline (already
 *  pinned above, kept here as the matrix anchor); widths 2 and 8
 *  engage the decide/commit ring on the near-saturation points. */
TEST(HockeyStick, WavefrontMatchesGoldenAcrossMatrix)
{
    const std::string golden = hockeyGoldenBytes();
    ASSERT_FALSE(golden.empty());
    for (const int wavefront : {0, 2, 8}) {
        for (const int jobs : {1, 8}) {
            for (const int shards : {1, 4}) {
                for (const bool cache : {true, false}) {
                    EXPECT_EQ(hockeySliceReport(jobs, shards,
                                                cache, wavefront),
                              golden)
                        << "--wavefront " << wavefront
                        << " diverged at --jobs " << jobs
                        << " --shards " << shards
                        << (cache ? "" : " --route-cache off");
                }
            }
        }
    }
}

/** The UGAL policy rides the same determinism contract: its own
 *  committed golden (tests/golden/hockey_sf64_ugal_quick.json,
 *  regenerated via `sfx run hockey_stick --quick --runs '*SF*'
 *  --jobs 1 --policy ugal --out ...`) must be byte-identical
 *  across the jobs x shards matrix. */
TEST(HockeyStick, UgalMatchesGoldenAcrossMatrix)
{
    const std::string golden =
        readFile(std::string(SF_SOURCE_DIR) +
                 "/tests/golden/hockey_sf64_ugal_quick.json");
    ASSERT_FALSE(golden.empty());
    for (const int jobs : {1, 8}) {
        for (const int shards : {1, 4}) {
            EXPECT_EQ(
                hockeySliceReport(
                    jobs, shards, true, 0,
                    core::RoutingPolicyKind::Ugal),
                golden)
                << "UGAL diverged at --jobs " << jobs
                << " --shards " << shards;
        }
    }
}

} // namespace

/**
 * @file
 * Tests for the cycle-level network model and harness: delivery,
 * latency sanity, backpressure, saturation detection, deadlock
 * freedom under stress, and behaviour across all topology kinds.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/string_figure.hpp"
#include "exp/work_pool.hpp"
#include "sim/simulator.hpp"
#include "topos/factory.hpp"
#include "topos/mesh.hpp"

namespace {

using namespace sf;
using namespace sf::sim;

core::SFParams
sfParams(std::size_t n, int ports, std::uint64_t seed = 1)
{
    core::SFParams p;
    p.numNodes = n;
    p.routerPorts = ports;
    p.seed = seed;
    return p;
}

TEST(Network, SinglePacketDelivery)
{
    const topos::MeshTopology mesh(4, 4);
    SimConfig cfg;
    NetworkModel net(mesh, cfg);
    std::uint64_t delivered = 0;
    Cycle delivered_at = 0;
    net.setDeliverHandler([&](const Packet &p, Cycle at) {
        ++delivered;
        delivered_at = at;
        EXPECT_EQ(p.src, 0u);
        EXPECT_EQ(p.dst, 15u);
        EXPECT_EQ(p.hops, 6u);  // Manhattan distance on 4x4
    });
    net.inject(0, 15, cfg.packetFlits, kRequest, 0, 0, true);
    for (Cycle c = 0; c < 200 && delivered == 0; ++c)
        net.step(c);
    EXPECT_EQ(delivered, 1u);
    // 6 hops x (serialization tail + wire + serdes) + eject.
    EXPECT_GT(delivered_at, 12u);
    EXPECT_LT(delivered_at, 80u);
    EXPECT_EQ(net.inFlight(), 0u);
}

TEST(Network, LocalDeliveryBypassesNetwork)
{
    const topos::MeshTopology mesh(4, 4);
    SimConfig cfg;
    NetworkModel net(mesh, cfg);
    std::uint64_t delivered = 0;
    net.setDeliverHandler([&](const Packet &p, Cycle) {
        ++delivered;
        EXPECT_EQ(p.hops, 0u);
    });
    net.inject(3, 3, 5, kRequest, 0);
    net.step(0);
    net.step(1);
    EXPECT_EQ(delivered, 1u);
}

TEST(Network, BackpressureLimitsLinkThroughput)
{
    // Two nodes on a 2-wide mesh; flood one direction: throughput
    // is bounded by one flit per cycle on the single wire.
    const topos::MeshTopology mesh(2, 2);
    SimConfig cfg;
    NetworkModel net(mesh, cfg);
    for (int i = 0; i < 50; ++i)
        net.inject(0, 1, cfg.packetFlits, kRequest, 0);
    Cycle c = 0;
    for (; c < 5000 && net.inFlight() > 0; ++c)
        net.step(c);
    EXPECT_EQ(net.inFlight(), 0u);
    // 50 packets x 5 flits = 250 flit-cycles minimum on the wire.
    EXPECT_GE(c, 250u);
}

TEST(Network, QuiescenceDetection)
{
    const topos::MeshTopology mesh(4, 4);
    SimConfig cfg;
    NetworkModel net(mesh, cfg);
    EXPECT_TRUE(net.nodeQuiescent(5));
    net.inject(5, 10, 5, kRequest, 0);
    EXPECT_FALSE(net.nodeQuiescent(5));
    for (Cycle c = 0; c < 300; ++c)
        net.step(c);
    EXPECT_TRUE(net.nodeQuiescent(5));
    EXPECT_TRUE(net.nodeQuiescent(10));
}

TEST(Network, RequestsAndRepliesBothDeliver)
{
    core::StringFigure topo(sfParams(32, 4));
    SimConfig cfg;
    NetworkModel net(topo, cfg);
    std::uint64_t requests = 0;
    std::uint64_t replies = 0;
    net.setDeliverHandler([&](const Packet &p, Cycle at) {
        if (p.msgClass == kRequest) {
            ++requests;
            // Memory node answers with a reply packet.
            net.inject(p.dst, p.src, 5, kReply, at, p.payload);
        } else {
            ++replies;
        }
    });
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        const auto s = static_cast<NodeId>(rng.below(32));
        const auto t = static_cast<NodeId>(rng.below(32));
        if (s != t)
            net.inject(s, t, 1, kRequest, 0);
    }
    for (Cycle c = 0; c < 20000 && net.inFlight() > 0; ++c)
        net.step(c);
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_EQ(requests, replies);
}

TEST(Harness, ZeroLoadLatencyTracksHopCount)
{
    core::StringFigure topo(sfParams(64, 8));
    SimConfig cfg;
    const double zero_load = zeroLoadLatency(topo, cfg);
    EXPECT_GT(zero_load, 5.0);
    EXPECT_LT(zero_load, 60.0);
}

TEST(Harness, LatencyRisesWithLoad)
{
    core::StringFigure topo(sfParams(64, 8));
    SimConfig cfg;
    RunPhases phases;
    phases.warmup = 500;
    phases.measure = 1500;
    phases.drainLimit = 10000;
    const auto light = runSynthetic(
        topo, TrafficPattern::UniformRandom, 0.01, cfg, phases);
    const auto medium = runSynthetic(
        topo, TrafficPattern::UniformRandom, 0.06, cfg, phases);
    const auto heavy = runSynthetic(
        topo, TrafficPattern::UniformRandom, 0.30, cfg, phases);
    EXPECT_FALSE(light.saturated);
    EXPECT_GT(light.measuredPackets, 100u);
    EXPECT_GE(medium.avgTotalLatency, light.avgTotalLatency);
    // Far beyond capacity the run either reports saturation outright
    // or shows clearly elevated latency.
    EXPECT_TRUE(heavy.saturated ||
                heavy.avgTotalLatency > 2 * light.avgTotalLatency);
}

TEST(Harness, HotspotSaturatesBeforeUniform)
{
    core::StringFigure topo(sfParams(64, 8));
    SimConfig cfg;
    RunPhases phases;
    phases.warmup = 500;
    phases.measure = 1500;
    phases.drainLimit = 8000;
    const double sat_uniform = findSaturationRate(
        topo, TrafficPattern::UniformRandom, cfg, phases, 0.15);
    const double sat_hotspot = findSaturationRate(
        topo, TrafficPattern::Hotspot, cfg, phases, 0.15);
    EXPECT_LT(sat_hotspot, sat_uniform);
}

TEST(Harness, ParallelSaturationSearchMatchesSerial)
{
    // The speculative parallel search must select the exact rate
    // the serial bisection does: probes are pure functions of
    // their rate, so extra speculative evaluations change nothing.
    core::StringFigure topo(sfParams(32, 4));
    SimConfig cfg;
    cfg.seed = 9;
    RunPhases phases;
    phases.warmup = 400;
    phases.measure = 1000;
    phases.drainLimit = 5000;
    const double serial = findSaturationRate(
        topo, TrafficPattern::UniformRandom, cfg, phases, 0.15);
    exp::WorkPool pool(4);
    const double parallel = findSaturationRate(
        topo, TrafficPattern::UniformRandom, cfg, phases, 0.15,
        &pool);
    EXPECT_EQ(parallel, serial);
    // And an explicitly serial executor too.
    const double inline_exec = findSaturationRate(
        topo, TrafficPattern::UniformRandom, cfg, phases, 0.15,
        &serialExecutor());
    EXPECT_EQ(inline_exec, serial);
}

TEST(Harness, ShardedRoutePlaneMatchesSerialEngine)
{
    // The sharded route plane precomputes pure functions of the
    // immutable topology, so a run must be event-for-event
    // identical to the serial engine at every shard count — at a
    // load heavy enough that the route phase actually fans out
    // (the batch floor is 32 jobs) and light enough to drain.
    core::StringFigure topo(sfParams(64, 8));
    RunPhases phases;
    phases.warmup = 600;
    phases.measure = 1500;
    phases.drainLimit = 8000;
    SimConfig serial_cfg;
    serial_cfg.seed = 5;
    const auto serial = runSynthetic(
        topo, TrafficPattern::UniformRandom, 0.05, serial_cfg,
        phases);
    exp::WorkPool pool(4);
    for (const int shards : {2, 3, 8}) {
        SimConfig cfg = serial_cfg;
        cfg.shards = shards;
        const auto sharded =
            runSynthetic(topo, TrafficPattern::UniformRandom,
                         0.05, cfg, phases, &pool);
        EXPECT_EQ(sharded.avgTotalLatency, serial.avgTotalLatency)
            << "shards " << shards;
        EXPECT_EQ(sharded.avgNetworkLatency,
                  serial.avgNetworkLatency);
        EXPECT_EQ(sharded.p50Latency, serial.p50Latency);
        EXPECT_EQ(sharded.p99Latency, serial.p99Latency);
        EXPECT_EQ(sharded.avgHops, serial.avgHops);
        EXPECT_EQ(sharded.acceptedLoad, serial.acceptedLoad);
        EXPECT_EQ(sharded.saturated, serial.saturated);
        EXPECT_EQ(sharded.measuredPackets, serial.measuredPackets);
        EXPECT_EQ(sharded.escapeTransfers, serial.escapeTransfers);
        EXPECT_EQ(sharded.flitHops, serial.flitHops);
        EXPECT_EQ(sharded.simulatedCycles, serial.simulatedCycles);
    }
    // shards > 1 with no executor must degrade to the serial
    // engine, not crash or diverge.
    SimConfig no_exec = serial_cfg;
    no_exec.shards = 4;
    const auto degraded = runSynthetic(
        topo, TrafficPattern::UniformRandom, 0.05, no_exec,
        phases);
    EXPECT_EQ(degraded.flitHops, serial.flitHops);
    EXPECT_EQ(degraded.simulatedCycles, serial.simulatedCycles);
}

TEST(Harness, AcceptedTracksOfferedWhenUnsaturated)
{
    core::StringFigure topo(sfParams(64, 8));
    SimConfig cfg;
    RunPhases phases;
    phases.warmup = 1000;
    phases.measure = 3000;
    const auto r = runSynthetic(
        topo, TrafficPattern::UniformRandom, 0.02, cfg, phases);
    ASSERT_FALSE(r.saturated);
    EXPECT_NEAR(r.acceptedLoad, r.offeredLoad,
                0.25 * r.offeredLoad);
}

TEST(Harness, SaturatedRunReportsSaturation)
{
    core::StringFigure topo(sfParams(32, 4));
    SimConfig cfg;
    RunPhases phases;
    phases.warmup = 400;
    phases.measure = 1200;
    phases.drainLimit = 6000;
    const auto r = runSynthetic(topo, TrafficPattern::Hotspot, 0.8,
                                cfg, phases);
    EXPECT_TRUE(r.saturated);
}

/** Stress every topology kind at high load: no deadlock watchdog. */
class SimStress : public ::testing::TestWithParam<topos::TopoKind>
{
};

TEST_P(SimStress, HighLoadRunsWithoutDeadlock)
{
    const auto kind = GetParam();
    const auto topo = topos::makeTopology(kind, 64, 3, 2);
    SimConfig cfg;
    cfg.seed = 11;
    RunPhases phases;
    phases.warmup = 500;
    phases.measure = 1500;
    phases.drainLimit = 6000;
    // Intentionally beyond saturation: the watchdog would throw on
    // a true deadlock; saturated backpressure is expected and fine.
    EXPECT_NO_THROW({
        runSynthetic(*topo, TrafficPattern::UniformRandom, 0.5, cfg,
                     phases);
        runSynthetic(*topo, TrafficPattern::Tornado, 0.5, cfg,
                     phases);
    });
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SimStress,
    ::testing::Values(topos::TopoKind::DM, topos::TopoKind::ODM,
                      topos::TopoKind::S2, topos::TopoKind::SF));

/**
 * Packet conservation: at every step boundary, every injected
 * packet is exactly one of delivered, dropped, or alive in exactly
 * one engine structure (source FIFO, VC buffer, arrival queue,
 * local-delivery queue). The audit walks every queue and the slab
 * pool independently of the stats counters, so double-frees, leaks
 * and lost FIFO links all surface as a mismatch.
 *
 * The run spans a full gate/ungate cycle under load, and after each
 * mid-traffic topology change the reconfiguration engine's own
 * structural audit (ReconfigEngine::checkInvariants) must also come
 * back clean — wire state, ring closures, and routing tables stay
 * consistent exactly when traffic is in flight.
 *
 * @p wavefront > 0 runs the identical scenario through the
 * decide/commit wavefront scheduler (over a private pool of that
 * width), so the audit also covers the buffered-effects engine —
 * including its conservative removal classification on a gated
 * topology, which this scenario exercises directly.
 */
void
conservationInvariantAtEveryStep(int wavefront)
{
    core::StringFigure topo(sfParams(64, 8));
    SimConfig cfg;
    cfg.wavefront = wavefront;
    NetworkModel net(topo, cfg);
    std::unique_ptr<exp::WorkPool> pool;
    if (wavefront > 0) {
        pool = std::make_unique<exp::WorkPool>(wavefront);
        net.setWavefrontExecutor(pool.get());
    }
    std::uint64_t dropped = 0;
    net.setDropHandler(
        [&](const Packet &, Cycle) { ++dropped; });
    Rng rng(21);
    Cycle cycle = 0;
    NodeId victim = kInvalidNode;
    bool gated = false;
    const auto check = [&] {
        const auto acc = net.audit();
        // Structure walk == pool accounting == stats accounting.
        ASSERT_EQ(acc.total(), acc.liveSlots);
        ASSERT_EQ(acc.liveSlots, net.inFlight());
        ASSERT_EQ(net.stats().injectedPackets,
                  net.stats().deliveredPackets + dropped +
                      acc.liveSlots);
        ASSERT_EQ(acc.sourceQueued, net.sourceQueueBacklog());
    };
    for (; cycle < 1500; ++cycle) {
        // Heavy mixed traffic, including src == dst loopbacks.
        for (int i = 0; i < 4; ++i) {
            const auto s = static_cast<NodeId>(rng.below(64));
            const auto t = static_cast<NodeId>(rng.below(64));
            if (topo.nodeAlive(s) && topo.nodeAlive(t))
                net.inject(s, t, 5, kRequest, cycle, 0,
                           (cycle & 1) != 0);
        }
        net.step(cycle);
        check();
        if (cycle == 700) {
            // Pick the victim and aim a burst at it while it is
            // still alive, so strays are guaranteed to be mid-
            // flight when the gate lands a few cycles later.
            for (NodeId u = 0; u < 64 && victim == kInvalidNode;
                 ++u) {
                if (topo.reconfig().canGate(u))
                    victim = u;
            }
            ASSERT_NE(victim, kInvalidNode);
            for (NodeId s = 0; s < 12; ++s) {
                if (s != victim)
                    net.inject(s, victim, 5, kRequest, cycle);
            }
        }
        if (cycle == 705 && !gated) {
            // Gate mid-run so in-flight strays get dropped;
            // conservation must hold through the drop path too.
            ASSERT_TRUE(topo.gate(victim).applied);
            net.onTopologyChanged();
            EXPECT_EQ(topo.reconfig().checkInvariants(), "");
            gated = true;
        }
        if (cycle == 1100) {
            // Bring the victim back mid-run: the ungate leg of the
            // same audit. The random traffic above resumes sending
            // to (and from) the former victim on its own once
            // nodeAlive(victim) is true again.
            ASSERT_TRUE(topo.ungate(victim).applied);
            net.onTopologyChanged();
            EXPECT_EQ(topo.reconfig().checkInvariants(), "");
            ASSERT_TRUE(topo.nodeAlive(victim));
            for (NodeId s = 0; s < 12; ++s) {
                if (s != victim)
                    net.inject(s, victim, 5, kRequest, cycle);
            }
        }
    }
    ASSERT_TRUE(gated);
    EXPECT_EQ(topo.reconfig().checkInvariants(), "");
    for (; net.inFlight() > 0 && cycle < 60000; ++cycle) {
        net.step(cycle);
        check();
    }
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_GT(dropped, 0u);
    const auto final_acc = net.audit();
    EXPECT_EQ(final_acc.total(), 0u);
    EXPECT_EQ(final_acc.liveSlots, 0u);
    EXPECT_EQ(net.sourceQueueBacklog(), 0u);
}

TEST(Network, ConservationInvariantAtEveryStep)
{
    conservationInvariantAtEveryStep(0);
}

TEST(Network, ConservationInvariantAtEveryStepWavefront4)
{
    conservationInvariantAtEveryStep(4);
}

TEST(Reconfiguration, GatingDuringOperationDropsOnlyStrays)
{
    core::StringFigure topo(sfParams(64, 8));
    SimConfig cfg;
    NetworkModel net(topo, cfg);
    Rng rng(3);
    Cycle cycle = 0;
    std::uint64_t injected = 0;
    const auto pump = [&](int cycles) {
        for (int i = 0; i < cycles; ++i, ++cycle) {
            const auto s = static_cast<NodeId>(rng.below(64));
            const auto t = static_cast<NodeId>(rng.below(64));
            if (s != t && topo.nodeAlive(s) && topo.nodeAlive(t)) {
                net.inject(s, t, 5, kRequest, cycle);
                ++injected;
            }
            net.step(cycle);
        }
    };
    pump(500);
    // Gate a quiescent node mid-run, following the paper's blocking
    // protocol: wait until no traffic touches the victim.
    NodeId victim = kInvalidNode;
    for (NodeId u = 0; u < 64 && victim == kInvalidNode; ++u) {
        if (net.nodeQuiescent(u) && topo.reconfig().canGate(u))
            victim = u;
    }
    ASSERT_NE(victim, kInvalidNode);
    topo.gate(victim);
    net.onTopologyChanged();
    pump(500);
    for (; net.inFlight() > 0 && cycle < 50000; ++cycle)
        net.step(cycle);
    EXPECT_EQ(net.inFlight(), 0u);
    // Packets already heading to the victim are dropped and counted;
    // everything else delivers.
    EXPECT_EQ(net.stats().deliveredPackets +
                  net.stats().droppedUnroutable,
              injected);
}

} // namespace

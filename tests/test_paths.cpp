/**
 * @file
 * Unit tests for shortest-path analysis.
 */

#include <gtest/gtest.h>

#include "net/graph.hpp"
#include "net/paths.hpp"

namespace {

using namespace sf;
using namespace sf::net;

/** Directed ring 0 -> 1 -> ... -> n-1 -> 0. */
Graph
directedRing(std::size_t n)
{
    Graph g(n);
    for (NodeId u = 0; u < n; ++u)
        g.addLink(u, (u + 1) % n);
    return g;
}

TEST(Paths, BfsOnDirectedRing)
{
    const Graph g = directedRing(6);
    const auto dist = bfsDistances(g, 0);
    for (NodeId v = 0; v < 6; ++v)
        EXPECT_EQ(dist[v], v);
}

TEST(Paths, BfsRespectsDisabledLinks)
{
    Graph g = directedRing(6);
    g.setEnabled(g.findLink(2, 3), false);
    const auto dist = bfsDistances(g, 0);
    EXPECT_EQ(dist[2], 2);
    EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Paths, BfsRespectsAliveMask)
{
    Graph g(4);
    g.addBidirectional(0, 1);
    g.addBidirectional(1, 2);
    g.addBidirectional(0, 3);
    g.addBidirectional(3, 2);
    std::vector<bool> alive{true, false, true, true};
    const auto dist = bfsDistances(g, 0, alive);
    EXPECT_EQ(dist[1], kUnreachable);
    EXPECT_EQ(dist[2], 2);  // via node 3
}

TEST(Paths, AllPairsStatsOnRing)
{
    const Graph g = directedRing(5);
    const auto stats = allPairsStats(g);
    // Directed ring: distances 1..4 from each node, average 2.5.
    EXPECT_EQ(stats.reachablePairs, 20u);
    EXPECT_EQ(stats.unreachablePairs, 0u);
    EXPECT_DOUBLE_EQ(stats.average, 2.5);
    EXPECT_EQ(stats.diameter, 4);
}

TEST(Paths, PercentilesOrdered)
{
    const Graph g = directedRing(32);
    const auto stats = allPairsStats(g);
    EXPECT_LE(stats.p10, stats.p90);
    EXPECT_LE(stats.p90, stats.diameter);
    EXPECT_GT(stats.p10, 0);
}

TEST(Paths, DistanceTableMatchesBfs)
{
    Graph g(5);
    g.addBidirectional(0, 1);
    g.addBidirectional(1, 2);
    g.addBidirectional(2, 3);
    g.addBidirectional(3, 4);
    const auto table = distanceTable(g);
    for (NodeId u = 0; u < 5; ++u) {
        const auto row = bfsDistances(g, u);
        for (NodeId v = 0; v < 5; ++v)
            EXPECT_EQ(table[u * 5 + v], row[v]);
    }
}

TEST(Paths, StronglyConnectedRing)
{
    EXPECT_TRUE(stronglyConnected(directedRing(8)));
}

TEST(Paths, NotStronglyConnectedWhenCut)
{
    Graph g = directedRing(8);
    g.setEnabled(g.findLink(3, 4), false);
    EXPECT_FALSE(stronglyConnected(g));
}

TEST(Paths, StronglyConnectedIgnoresGatedNodes)
{
    // 0 <-> 1 <-> 2 with node 2 gated: {0, 1} remains connected.
    Graph g(3);
    g.addBidirectional(0, 1);
    g.addBidirectional(1, 2);
    std::vector<bool> alive{true, true, false};
    EXPECT_TRUE(stronglyConnected(g, alive));
}

TEST(Paths, SingleNodeGraphIsConnected)
{
    Graph g(1);
    EXPECT_TRUE(stronglyConnected(g));
}

TEST(Paths, UnreachablePairsCounted)
{
    Graph g(4);
    g.addBidirectional(0, 1);
    g.addBidirectional(2, 3);
    const auto stats = allPairsStats(g);
    EXPECT_EQ(stats.reachablePairs, 4u);
    EXPECT_EQ(stats.unreachablePairs, 8u);
}

} // namespace

/**
 * @file
 * The routing-policy seam's proof harness (core/routing_policy.hpp).
 *
 * Four properties are load-bearing:
 *  1. Equivalence — the greedy policy routed through the seam must
 *     answer exactly like the direct topology call (and, on String
 *     Figure, exactly like the underlying GreedyRouter) for every
 *     (current, dest, first_hop) query, across every factory kind,
 *     both wire directions, the two-hop ablation, and degraded
 *     topologies: the seam refactor must be invisible.
 *  2. Policy semantics — UGAL falls back to minimal routing under
 *     zero congestion (the strict UGAL inequality ties toward
 *     minimal) and detours under a loaded minimal port;
 *     table_oracle's walked hop count equals the BFS distance and
 *     is never beaten by greedy on any sampled pair.
 *  3. Determinism — the routing_bakeoff quick slice reproduces its
 *     committed golden byte for byte across the jobs x shards
 *     matrix, and a UGAL cell run through the real sharded route
 *     plane matches its serial twin (the snapshot-at-barrier
 *     argument, pinned; also the TSan target for the snapshot-fill
 *     path).
 *  4. Cache exclusion — congestion-aware policies must never
 *     engage the route cache (its rows are filled from the
 *     topology's greedy routing and keyed without the snapshot).
 *
 * The golden (tests/golden/routing_bakeoff_quick.json) is the full
 * quick bake-off grid at --jobs 1. An intentional simulator- or
 * policy-behaviour change must regenerate it in the same commit:
 *   sfx run routing_bakeoff --quick --jobs 1 \
 *       --out tests/golden/routing_bakeoff_quick.json
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/routing_policy.hpp"
#include "core/string_figure.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/scheduler.hpp"
#include "net/paths.hpp"
#include "net/rng.hpp"
#include "sim/network.hpp"
#include "topos/factory.hpp"

#ifndef SF_SOURCE_DIR
#define SF_SOURCE_DIR "."
#endif

namespace {

using namespace sf;
using namespace sf::core;

// ------------------------------------------------- equivalence

/** Greedy-via-seam vs the direct topology call, one query. */
void
expectSeamTransparent(const net::Topology &topo,
                      const RoutingPolicy &policy, NodeId s,
                      NodeId t, bool first_hop)
{
    LinkId direct[net::kMaxRouteCandidates];
    LinkId seam[net::kMaxRouteCandidates];
    const CongestionSnapshot none;
    const std::size_t want =
        topo.routeCandidates(s, t, first_hop, direct);
    const std::size_t got =
        policy.route(s, t, first_hop, none, seam);
    ASSERT_EQ(got, want) << "count diverged at current=" << s
                         << " dest=" << t
                         << " first_hop=" << first_hop;
    for (std::size_t i = 0; i < want; ++i)
        EXPECT_EQ(seam[i], direct[i])
            << "candidate " << i << " diverged at current=" << s
            << " dest=" << t << " first_hop=" << first_hop;
}

/** Randomized sweep of expectSeamTransparent over node pairs. */
void
sweepSeamEquivalence(const net::Topology &topo, int samples,
                     std::uint64_t seed)
{
    const auto policy =
        makeRoutingPolicy(RoutingPolicyKind::Greedy, topo);
    ASSERT_TRUE(policy->cacheable());
    EXPECT_FALSE(policy->congestionAware());
    Rng rng(seed);
    const auto n = static_cast<std::int64_t>(topo.numNodes());
    for (int i = 0; i < samples; ++i) {
        const auto s = static_cast<NodeId>(rng.range(0, n - 1));
        const auto t = static_cast<NodeId>(rng.range(0, n - 1));
        for (const bool first_hop : {false, true})
            expectSeamTransparent(topo, *policy, s, t, first_hop);
    }
}

SFParams
makeParams(std::size_t n, int ports, LinkMode mode, bool two_hop,
           std::uint64_t seed = 1)
{
    SFParams p;
    p.numNodes = n;
    p.routerPorts = ports;
    p.linkMode = mode;
    p.twoHopTable = two_hop;
    p.seed = seed;
    return p;
}

TEST(RoutingPolicySeam, GreedyMatchesDirectOnStringFigureVariants)
{
    for (const LinkMode mode :
         {LinkMode::Unidirectional, LinkMode::Bidirectional}) {
        for (const bool two_hop : {true, false}) {
            StringFigure topo(makeParams(64, 4, mode, two_hop));
            sweepSeamEquivalence(topo, 400,
                                 0x5EA11u + (two_hop ? 1 : 0));
        }
    }
}

TEST(RoutingPolicySeam, GreedyMatchesUnderlyingGreedyRouter)
{
    // On String Figure the incumbent behind the topology call is
    // GreedyRouter — the seam must reproduce it directly too
    // (first_hop maps to the router's widen flag).
    StringFigure topo(
        makeParams(64, 8, LinkMode::Unidirectional, true));
    const auto policy =
        makeRoutingPolicy(RoutingPolicyKind::Greedy, topo);
    const CongestionSnapshot none;
    Rng rng(0x60D);
    for (int i = 0; i < 400; ++i) {
        const auto s = static_cast<NodeId>(rng.range(0, 63));
        const auto t = static_cast<NodeId>(rng.range(0, 63));
        for (const bool widen : {false, true}) {
            LinkId direct[net::kMaxRouteCandidates];
            LinkId seam[net::kMaxRouteCandidates];
            const std::size_t want =
                topo.router().candidates(s, t, widen, direct);
            const std::size_t got =
                policy->route(s, t, widen, none, seam);
            ASSERT_EQ(got, want) << s << "->" << t;
            for (std::size_t k = 0; k < want; ++k)
                EXPECT_EQ(seam[k], direct[k]) << s << "->" << t;
        }
    }
}

TEST(RoutingPolicySeam, GreedyMatchesDirectOnEveryFactoryKind)
{
    for (const auto kind : topos::kAllKinds) {
        for (const std::size_t n : {64, 256}) {
            if (!topos::supported(kind, n))
                continue;
            const auto topo = topos::makeTopology(kind, n, 7);
            sweepSeamEquivalence(*topo, n == 256 ? 200 : 400,
                                 0xFACE + n);
        }
    }
}

TEST(RoutingPolicySeam, GreedyMatchesDirectOnDegradedTopology)
{
    StringFigure topo(
        makeParams(64, 8, LinkMode::Unidirectional, true));
    for (const NodeId u : {5u, 6u, 21u, 40u})
        ASSERT_TRUE(topo.gate(u).applied);
    sweepSeamEquivalence(topo, 600, 0xDEAD);
}

// ------------------------------------------------- ugal semantics

/** BFS distances from every node to @p dst over enabled links,
 *  i.e. column dst of the policy's own table, independently
 *  derived. */
std::vector<std::uint16_t>
distancesTo(const net::Topology &topo, NodeId dst)
{
    // bfsDistances gives rows (from src); build the column by
    // querying each source row once. Cheap at test sizes.
    const auto table = net::distanceTable(topo.graph());
    const std::size_t n = topo.numNodes();
    std::vector<std::uint16_t> out(n);
    for (NodeId u = 0; u < n; ++u)
        out[u] = table[static_cast<std::size_t>(u) * n + dst];
    return out;
}

TEST(UgalPolicy, FallsBackToMinimalUnderZeroCongestion)
{
    for (const auto kind : topos::kAllKinds) {
        if (!topos::supported(kind, 64))
            continue;
        const auto topo = topos::makeTopology(kind, 64, 7);
        const auto ugal =
            makeRoutingPolicy(RoutingPolicyKind::Ugal, *topo);
        EXPECT_TRUE(ugal->congestionAware());
        EXPECT_FALSE(ugal->cacheable());
        const CongestionSnapshot none;
        Rng rng(0x06A1);
        for (int i = 0; i < 300; ++i) {
            const auto s = static_cast<NodeId>(rng.range(0, 63));
            const auto t = static_cast<NodeId>(rng.range(0, 63));
            if (s == t)
                continue;
            const auto dist = distancesTo(*topo, t);
            ASSERT_NE(dist[s], net::kUnreachable);
            for (const bool first_hop : {false, true}) {
                LinkId out[net::kMaxRouteCandidates];
                const std::size_t cnt =
                    ugal->route(s, t, first_hop, none, out);
                ASSERT_EQ(cnt, 1u)
                    << topos::kindName(kind) << " " << s << "->"
                    << t;
                // Minimal: the chosen hop strictly decreases the
                // BFS distance. Zero congestion makes the UGAL
                // inequality 0 < 0, which must never detour.
                const NodeId nxt =
                    topo->graph().link(out[0]).dst;
                EXPECT_EQ(dist[nxt] + 1, dist[s])
                    << topos::kindName(kind) << " " << s << "->"
                    << t << " first_hop=" << first_hop;
            }
        }
    }
}

TEST(UgalPolicy, DetoursAwayFromALoadedMinimalPort)
{
    const auto topo =
        topos::makeTopology(topos::TopoKind::SF, 64, 7);
    const auto ugal =
        makeRoutingPolicy(RoutingPolicyKind::Ugal, *topo);
    const CongestionSnapshot none;
    std::vector<std::uint32_t> queued(
        topo->graph().numLinks(), 0);
    int detoured = 0;
    for (NodeId s = 0; s < 64 && detoured == 0; ++s) {
        for (NodeId t = 0; t < 64 && detoured == 0; ++t) {
            if (s == t)
                continue;
            LinkId minimal[net::kMaxRouteCandidates];
            if (ugal->route(s, t, true, none, minimal) != 1)
                continue;
            // Pile queued flits onto every minimal out-link (any
            // link the zero-congestion decision could pick), then
            // re-ask: with a free non-minimal port available the
            // UGAL product must flip the decision at injection.
            const auto dist = distancesTo(*topo, t);
            std::fill(queued.begin(), queued.end(), 0u);
            for (const LinkId id : topo->graph().outLinks(s)) {
                const net::Link &l = topo->graph().link(id);
                if (l.enabled && dist[l.dst] + 1 == dist[s])
                    queued[static_cast<std::size_t>(id)] = 100000;
            }
            const CongestionSnapshot loaded(queued);
            LinkId adapted[net::kMaxRouteCandidates];
            ASSERT_EQ(ugal->route(s, t, true, loaded, adapted),
                      1u);
            if (adapted[0] != minimal[0]) {
                ++detoured;
                // The detour still reaches the destination.
                const NodeId nxt =
                    topo->graph().link(adapted[0]).dst;
                EXPECT_NE(dist[nxt], net::kUnreachable);
                // And a committed (non-first) hop never detours,
                // loaded or not: loop freedom comes from strictly
                // decreasing distance after injection.
                LinkId committed[net::kMaxRouteCandidates];
                ASSERT_EQ(
                    ugal->route(s, t, false, loaded, committed),
                    1u);
                const NodeId cn =
                    topo->graph().link(committed[0]).dst;
                EXPECT_EQ(dist[cn] + 1, dist[s]);
            }
        }
    }
    EXPECT_GT(detoured, 0)
        << "no (src,dst) pair ever detoured: the snapshot is not "
           "reaching the UGAL decision";
}

// --------------------------------------------- oracle optimality

/** Walk a packet with the policy's committed (non-first-hop after
 *  injection) choices; -1 when it stalls or cycles. */
int
policyHops(const net::Topology &topo, const RoutingPolicy &policy,
           NodeId src, NodeId dst)
{
    const CongestionSnapshot none;
    LinkId out[net::kMaxRouteCandidates];
    NodeId at = src;
    const int limit =
        static_cast<int>(4 * topo.numNodes() + 16);
    for (int hops = 0; hops < limit; ++hops) {
        if (at == dst)
            return hops;
        if (policy.route(at, dst, hops == 0, none, out) == 0)
            return -1;
        at = topo.graph().link(out[0]).dst;
    }
    return -1;
}

TEST(TableOraclePolicy, HopCountsNeverExceedGreedys)
{
    for (const auto kind : topos::kAllKinds) {
        if (!topos::supported(kind, 64))
            continue;
        const auto topo = topos::makeTopology(kind, 64, 7);
        const auto oracle = makeRoutingPolicy(
            RoutingPolicyKind::TableOracle, *topo);
        const auto dist = net::distanceTable(topo->graph());
        Rng rng(0x04AC1E);
        for (int i = 0; i < 300; ++i) {
            const auto s = static_cast<NodeId>(rng.range(0, 63));
            const auto t = static_cast<NodeId>(rng.range(0, 63));
            const int want = dist[static_cast<std::size_t>(s) *
                                      topo->numNodes() +
                                  t];
            const int got = policyHops(*topo, *oracle, s, t);
            // Shortest by construction: the walk realises the BFS
            // distance exactly ...
            ASSERT_EQ(got, want)
                << topos::kindName(kind) << " " << s << "->" << t;
            // ... so greedy can tie it but never beat it.
            const int greedy = net::routedHops(*topo, s, t);
            if (greedy >= 0) {
                EXPECT_LE(got, greedy)
                    << topos::kindName(kind) << " " << s << "->"
                    << t;
            }
        }
    }
}

// ------------------------------------------------- cache gating

TEST(RoutingPolicyCache, AdaptivePolicyKeepsRouteCacheDisengaged)
{
    // RouteCache rows are filled from the topology's greedy
    // routing and keyed by (node, dest, first_hop) alone — a
    // congestion snapshot can never be part of the key — so only
    // the greedy policy may engage it.
    StringFigure topo(
        makeParams(64, 8, LinkMode::Unidirectional, true));
    for (const RoutingPolicyKind kind : kAllRoutingPolicies) {
        sim::SimConfig cfg;
        cfg.routeCache = true;
        cfg.policy = kind;
        sim::NetworkModel model(topo, cfg);
        model.enableRouteCache();
        EXPECT_EQ(model.routeCacheActive(),
                  kind == RoutingPolicyKind::Greedy)
            << routingPolicyName(kind);
        EXPECT_EQ(model.routingPolicy().kind(), kind);
        // Repeated enable attempts must not change the verdict
        // (the lifecycle analogue of ConfigOffKeepsCacheDisengaged
        // in test_route_cache.cpp).
        model.enableRouteCache();
        EXPECT_EQ(model.routeCacheActive(),
                  kind == RoutingPolicyKind::Greedy);
    }
}

// ------------------------------------------------- spelling

TEST(RoutingPolicyNames, ParseAndNameRoundTrip)
{
    for (const RoutingPolicyKind kind : kAllRoutingPolicies) {
        RoutingPolicyKind parsed{};
        EXPECT_TRUE(parseRoutingPolicy(routingPolicyName(kind),
                                       parsed));
        EXPECT_EQ(parsed, kind);
    }
    RoutingPolicyKind out{};
    EXPECT_FALSE(parseRoutingPolicy("fastest", out));
    EXPECT_FALSE(parseRoutingPolicy("", out));
}

// ------------------------------------------------ determinism

using namespace sf::exp;

/** The driver's `sfx run routing_bakeoff --quick` flow,
 *  in-process, mirroring fig1SliceReport in
 *  test_engine_identity.cpp. */
std::string
bakeoffReport(int jobs, int shards = 1,
              const std::string &run_filter = "*")
{
    const auto specs = registry().match("routing_bakeoff");
    PlanContext plan_ctx;
    plan_ctx.effort = Effort::Quick;

    std::vector<ExperimentResults> all;
    for (const ExperimentSpec *spec : specs) {
        auto runs = spec->plan(plan_ctx);
        std::erase_if(runs, [&](const RunSpec &run) {
            return !globMatch(run_filter, run.id);
        });
        if (runs.empty())
            continue;
        SchedulerOptions sched;
        sched.jobs = jobs;
        sched.shards = shards;
        sched.effort = Effort::Quick;
        ExperimentResults results;
        results.spec = spec;
        results.runs = runExperiment(*spec, runs, sched);
        for (const RunResult &r : results.runs)
            EXPECT_FALSE(r.failed) << spec->name << "/" << r.id
                                   << ": " << r.error;
        all.push_back(std::move(results));
    }

    ReportOptions ropts;
    ropts.effort = Effort::Quick;
    ropts.jobs = jobs;
    return buildReport(all, ropts).dump(2) + "\n";
}

std::string
bakeoffGoldenBytes()
{
    return readFile(std::string(SF_SOURCE_DIR) +
                    "/tests/golden/routing_bakeoff_quick.json");
}

TEST(RoutingBakeoff, MatchesGoldenJobs1)
{
    const std::string golden = bakeoffGoldenBytes();
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(bakeoffReport(1), golden)
        << "the bake-off no longer reproduces its committed "
           "golden — if the policy or engine change is "
           "intentional, regenerate it in the same commit";
}

TEST(RoutingBakeoff, MatchesGoldenJobs8)
{
    EXPECT_EQ(bakeoffReport(8), bakeoffGoldenBytes());
}

/**
 * The snapshot-at-barrier determinism claim, pinned: adaptive
 * decisions read a snapshot frozen before any route is computed,
 * and the serial engine routes cycle-start heads at the same
 * barrier, so the shard count cannot reach the report — for the
 * congestion-aware policies just as for greedy.
 */
TEST(RoutingBakeoff, MatchesGoldenAcrossShardCounts)
{
    const std::string golden = bakeoffGoldenBytes();
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(bakeoffReport(1, 4), golden)
        << "bake-off diverged at --shards 4";
    EXPECT_EQ(bakeoffReport(8, 4), golden)
        << "bake-off diverged at --jobs 8 --shards 4";
}

/**
 * TSan target (CI runs *Sharded* under ThreadSanitizer): one UGAL
 * cell through the real sharded route plane with pool threads
 * filling routes from the frozen snapshot, against its serial
 * twin. Kept to a single cell so the sanitizer run stays cheap.
 */
TEST(RoutingBakeoff, UgalShardedCellMatchesSerialCell)
{
    const std::string serial =
        bakeoffReport(1, 1, "n64/tornado/SF/ugal");
    ASSERT_NE(serial.find("ugal"), std::string::npos);
    EXPECT_EQ(bakeoffReport(4, 4, "n64/tornado/SF/ugal"), serial)
        << "UGAL events depend on the shard count: the snapshot "
           "is being read or filled outside the barrier";
}

} // namespace

/**
 * @file
 * Tests for live elasticity under load: seeded reconfiguration
 * schedules (sim/reconfig_schedule.hpp), the runElastic harness and
 * its degradation-window telemetry, graceful degradation under
 * unplanned failure injection, and the elastic_serving experiment
 * family's byte-identity across the jobs x shards x route-cache
 * matrix, pinned against a committed golden report.
 *
 * The golden (tests/golden/elastic_sf64_quick.json) is the quick
 * elastic_serving grid at --jobs 1. Like the other goldens, an
 * intentional simulator-, schedule-, or telemetry-behaviour change
 * must regenerate it in the same commit:
 *   sfx run elastic_serving --quick --jobs 1 \
 *       --out tests/golden/elastic_sf64_quick.json
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/string_figure.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/scheduler.hpp"
#include "exp/work_pool.hpp"
#include "sim/reconfig_schedule.hpp"
#include "sim/simulator.hpp"
#include "topos/factory.hpp"

#ifndef SF_SOURCE_DIR
#define SF_SOURCE_DIR "."
#endif

namespace {

using namespace sf;
using namespace sf::sim;

core::SFParams
elasticParams(std::size_t n = 64)
{
    core::SFParams p;
    p.numNodes = n;
    p.routerPorts = topos::randomTopologyPorts(n);
    p.seed = 2019;
    return p;
}

constexpr RunPhases kPhases = RunPhases::openLoopQuick();

// ------------------------------------------------ schedule planning

bool
sameSchedule(const ReconfigSchedule &a, const ReconfigSchedule &b)
{
    if (a.events.size() != b.events.size())
        return false;
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        if (a.events[i].at != b.events[i].at ||
            a.events[i].action != b.events[i].action ||
            a.events[i].node != b.events[i].node)
            return false;
    }
    return true;
}

TEST(ReconfigSchedule, PlanningIsDeterministicAndSorted)
{
    const auto params = elasticParams();
    for (const auto severity : kAllReconfigSeverities) {
        const auto a = planReconfigSchedule(
            severity, params, kPhases.warmup, kPhases.measure, 7);
        const auto b = planReconfigSchedule(
            severity, params, kPhases.warmup, kPhases.measure, 7);
        EXPECT_TRUE(sameSchedule(a, b)) << severity;
        ASSERT_FALSE(a.empty()) << severity;
        for (std::size_t i = 1; i < a.events.size(); ++i)
            EXPECT_LE(a.events[i - 1].at, a.events[i].at)
                << severity << " @" << i;
        // Every event lands inside the measure window, where the
        // degradation telemetry can observe it.
        for (const ReconfigEvent &ev : a.events) {
            EXPECT_GE(ev.at, kPhases.warmup) << severity;
            EXPECT_LT(ev.at, kPhases.warmup + kPhases.measure)
                << severity;
        }
    }
    EXPECT_THROW(planReconfigSchedule("meteor", params,
                                      kPhases.warmup,
                                      kPhases.measure, 7),
                 std::invalid_argument);
    EXPECT_TRUE(isReconfigSeverity("cascade"));
    EXPECT_FALSE(isReconfigSeverity("meteor"));
}

TEST(ReconfigSchedule, SeverityShapes)
{
    const auto params = elasticParams();
    const auto plan = [&](const char *severity) {
        return planReconfigSchedule(severity, params,
                                    kPhases.warmup,
                                    kPhases.measure, 7);
    };

    const auto lj = plan("leave_join");
    ASSERT_EQ(lj.events.size(), 2u);
    EXPECT_EQ(lj.events[0].action, ReconfigAction::Leave);
    EXPECT_EQ(lj.events[1].action, ReconfigAction::Join);
    EXPECT_EQ(lj.events[0].node, lj.events[1].node);

    // fail: a planned Leave, then an unplanned Fail of a node the
    // gate courtesy would refuse (a live ring neighbour of the
    // planned victim), then both Joins.
    const auto fl = plan("fail");
    ASSERT_EQ(fl.events.size(), 4u);
    EXPECT_EQ(fl.events[0].action, ReconfigAction::Leave);
    EXPECT_EQ(fl.events[1].action, ReconfigAction::Fail);
    EXPECT_EQ(fl.events[2].action, ReconfigAction::Join);
    EXPECT_EQ(fl.events[3].action, ReconfigAction::Join);
    EXPECT_NE(fl.events[0].node, fl.events[1].node);

    // cascade: halve the live network in two Leave waves, then
    // restore it in two Join waves in reverse gate order.
    const auto cs = plan("cascade");
    std::size_t leaves = 0, joins = 0;
    for (const ReconfigEvent &ev : cs.events) {
        leaves += ev.action == ReconfigAction::Leave ? 1 : 0;
        joins += ev.action == ReconfigAction::Join ? 1 : 0;
    }
    EXPECT_EQ(leaves, joins);
    EXPECT_GE(leaves, params.numNodes / 4);
}

// --------------------------------------------------- direct elastic

void
expectSameResult(const RunResult &a, const RunResult &b,
                 const char *what)
{
    EXPECT_DOUBLE_EQ(a.avgTotalLatency, b.avgTotalLatency) << what;
    EXPECT_EQ(a.measuredPackets, b.measuredPackets) << what;
    EXPECT_EQ(a.tailTotal.p99, b.tailTotal.p99) << what;
    EXPECT_EQ(a.tailTotal.max, b.tailTotal.max) << what;
    EXPECT_EQ(a.escapeTransfers, b.escapeTransfers) << what;
    EXPECT_EQ(a.droppedUnroutable, b.droppedUnroutable) << what;
    EXPECT_EQ(a.topologyEpochs, b.topologyEpochs) << what;
    ASSERT_EQ(a.reconfigEvents.size(), b.reconfigEvents.size())
        << what;
    for (std::size_t i = 0; i < a.reconfigEvents.size(); ++i) {
        const auto &ea = a.reconfigEvents[i];
        const auto &eb = b.reconfigEvents[i];
        EXPECT_EQ(ea.at, eb.at) << what << " wave " << i;
        EXPECT_EQ(ea.gated, eb.gated) << what << " wave " << i;
        EXPECT_EQ(ea.ungated, eb.ungated) << what << " wave " << i;
        EXPECT_EQ(ea.holes, eb.holes) << what << " wave " << i;
        EXPECT_EQ(ea.baselineP99, eb.baselineP99)
            << what << " wave " << i;
        EXPECT_EQ(ea.blipP99, eb.blipP99) << what << " wave " << i;
        EXPECT_EQ(ea.reconvergeCycles, eb.reconvergeCycles)
            << what << " wave " << i;
        EXPECT_EQ(ea.reconverged, eb.reconverged)
            << what << " wave " << i;
        EXPECT_EQ(ea.dropBurst, eb.dropBurst)
            << what << " wave " << i;
        EXPECT_EQ(ea.escalationBurst, eb.escalationBurst)
            << what << " wave " << i;
    }
}

RunResult
runElasticDirect(const char *severity, int shards,
                 Executor *executor, bool route_cache)
{
    const auto params = elasticParams();
    core::StringFigure topo(params);
    SimConfig cfg;
    cfg.seed = 2019;
    cfg.shards = shards;
    cfg.routeCache = route_cache;
    cfg.validateReconfig = true; // audit after every wave
    const ArrivalConfig arrivals;
    const auto schedule = planReconfigSchedule(
        severity, params, kPhases.warmup, kPhases.measure, 2019);
    return runElastic(topo, TrafficPattern::UniformRandom, arrivals,
                      0.02, schedule, cfg, kPhases, executor);
}

TEST(Elastic, EmptyScheduleMatchesOpenLoop)
{
    const auto params = elasticParams();
    SimConfig cfg;
    cfg.seed = 2019;
    const ArrivalConfig arrivals;
    core::StringFigure topo(params);
    const auto open =
        runOpenLoop(topo, TrafficPattern::UniformRandom, arrivals,
                    0.02, cfg, kPhases);
    core::StringFigure topo2(params);
    const ReconfigSchedule none;
    const auto elastic =
        runElastic(topo2, TrafficPattern::UniformRandom, arrivals,
                   0.02, none, cfg, kPhases);
    expectSameResult(open, elastic, "empty schedule");
    EXPECT_EQ(elastic.topologyEpochs, 0u);
    EXPECT_TRUE(elastic.reconfigEvents.empty());
}

TEST(Elastic, EpochAdvancesPerWaveAndLivenessRestores)
{
    const auto params = elasticParams();
    core::StringFigure topo(params);
    SimConfig cfg;
    cfg.seed = 2019;
    cfg.validateReconfig = true;
    const ArrivalConfig arrivals;
    const auto schedule = planReconfigSchedule(
        "leave_join", params, kPhases.warmup, kPhases.measure,
        2019);
    const auto r =
        runElastic(topo, TrafficPattern::UniformRandom, arrivals,
                   0.02, schedule, cfg, kPhases);
    // One Leave wave + one Join wave, each its own generation.
    ASSERT_EQ(r.reconfigEvents.size(), 2u);
    EXPECT_EQ(r.topologyEpochs, 2u);
    EXPECT_EQ(r.reconfigEvents[0].gated, 1);
    EXPECT_EQ(r.reconfigEvents[1].ungated, 1);
    EXPECT_GT(r.reconfigEvents[0].baselineP99, 0u);
    // The schedule joins its victim back, so the run ends with the
    // full network live again.
    for (NodeId u = 0; u < 64; ++u)
        EXPECT_TRUE(topo.nodeAlive(u)) << "node " << u;
    EXPECT_EQ(topo.reconfig().checkInvariants(), "");
}

/**
 * Unplanned failure injection: the "fail" severity gates a node the
 * canGate courtesy refuses (a live ring neighbour of the planned
 * victim), exactly the case planned maintenance never creates. The
 * run must degrade gracefully — forced gate counted, ring holes
 * counted, stray packets dropped or escalated rather than crashing
 * — and the report must stay deterministic across shard counts.
 */
TEST(Elastic, UnplannedFailureDegradesGracefully)
{
    RunResult serial;
    ASSERT_NO_THROW(serial = runElasticDirect("fail", 1, nullptr,
                                              true));
    int forced = 0, holes = 0, refused = 0;
    for (const auto &ev : serial.reconfigEvents) {
        forced += ev.failForced;
        holes += ev.holes;
        refused += ev.refused;
    }
    EXPECT_EQ(forced, 1)
        << "the Fail event did not hit a canGate-refused node";
    EXPECT_GT(holes, 0) << "a forced gate must leave ring holes";
    EXPECT_EQ(refused, 0);
    ASSERT_EQ(serial.reconfigEvents.size(), 4u);
    EXPECT_EQ(serial.topologyEpochs, 4u);

    // jobs x shards pinning (jobs are exercised via the experiment
    // golden below; here the engine itself at shards 1 vs 4).
    exp::WorkPool pool(4);
    const auto sharded = runElasticDirect("fail", 4, &pool, true);
    expectSameResult(serial, sharded, "fail shards 1 vs 4");
}

/**
 * The halving cascade under the sharded route plane with the
 * memoized cache engaged: every epoch handoff (retire -> rebuild ->
 * re-shard) happens while worker threads exist. Named *Sharded* so
 * the TSan CI job runs it as the data-race proof of the per-epoch
 * rebuild handoff; the serial comparison proves the handoff is also
 * byte-exact.
 */
TEST(ElasticSharded, CascadeEpochHandoffMatchesSerial)
{
    const auto serial =
        runElasticDirect("cascade", 1, nullptr, false);
    EXPECT_GE(serial.topologyEpochs, 4u);
    std::size_t gated = 0, ungated = 0;
    for (const auto &ev : serial.reconfigEvents) {
        gated += static_cast<std::size_t>(ev.gated);
        ungated += static_cast<std::size_t>(ev.ungated);
    }
    EXPECT_GE(gated, 16u) << "cascade should halve a 64-node net";
    EXPECT_EQ(gated, ungated);

    exp::WorkPool pool(4);
    const auto sharded = runElasticDirect("cascade", 4, &pool, true);
    expectSameResult(serial, sharded,
                     "cascade serial/no-cache vs sharded/cached");
}

// ------------------------------------------- elastic_serving golden

using namespace sf::exp;

/** The driver's `sfx run elastic_serving --quick` flow, in-process:
 *  plan, schedule, report — at any job count, route-plane shard
 *  count, and route cache setting. */
std::string
elasticReport(int jobs, int shards = 1, bool route_cache = true)
{
    const auto specs = registry().match("elastic_serving");
    PlanContext plan_ctx;
    plan_ctx.effort = Effort::Quick;

    std::vector<ExperimentResults> all;
    for (const ExperimentSpec *spec : specs) {
        auto runs = spec->plan(plan_ctx);
        if (runs.empty())
            continue;
        SchedulerOptions sched;
        sched.jobs = jobs;
        sched.shards = shards;
        sched.routeCache = route_cache;
        sched.effort = Effort::Quick;
        ExperimentResults results;
        results.spec = spec;
        results.runs = runExperiment(*spec, runs, sched);
        for (const exp::RunResult &r : results.runs)
            EXPECT_FALSE(r.failed) << spec->name << "/" << r.id
                                   << ": " << r.error;
        all.push_back(std::move(results));
    }

    ReportOptions ropts;
    ropts.effort = Effort::Quick;
    ropts.jobs = jobs;
    return buildReport(all, ropts).dump(2) + "\n";
}

std::string
elasticGoldenBytes()
{
    return readFile(std::string(SF_SOURCE_DIR) +
                    "/tests/golden/elastic_sf64_quick.json");
}

TEST(ElasticServing, MatchesGoldenJobs1)
{
    const std::string golden = elasticGoldenBytes();
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(elasticReport(1), golden)
        << "the reconfiguration schedule or degradation telemetry "
           "no longer reproduces the pinned report";
}

TEST(ElasticServing, MatchesGoldenJobs8)
{
    EXPECT_EQ(elasticReport(8), elasticGoldenBytes());
}

TEST(ElasticServing, MatchesGoldenSharded)
{
    const std::string golden = elasticGoldenBytes();
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(elasticReport(1, 4), golden)
        << "sharded route plane perturbed the elastic run";
    EXPECT_EQ(elasticReport(8, 4), golden)
        << "concurrent sharded elastic run diverged";
}

/** The cache-off half of the route-cache A/B across the jobs x
 *  shards matrix: the per-epoch cache rebuild must be invisible in
 *  the report. */
TEST(ElasticServing, RouteCacheOffMatchesGoldenAcrossMatrix)
{
    const std::string golden = elasticGoldenBytes();
    ASSERT_FALSE(golden.empty());
    for (const int jobs : {1, 8}) {
        for (const int shards : {1, 4}) {
            EXPECT_EQ(elasticReport(jobs, shards, false), golden)
                << "--route-cache off diverged at --jobs " << jobs
                << " --shards " << shards;
        }
    }
}

/** The --reconfig-schedule severity filter restricts the planned
 *  grid without renaming the surviving runs. */
TEST(ElasticServing, SeverityFilterRestrictsPlan)
{
    const auto specs = registry().match("elastic_serving");
    ASSERT_EQ(specs.size(), 1u);
    PlanContext all_ctx;
    all_ctx.effort = Effort::Quick;
    const auto all_runs = specs[0]->plan(all_ctx);
    ASSERT_EQ(all_runs.size(), kAllReconfigSeverities.size());

    PlanContext one_ctx;
    one_ctx.effort = Effort::Quick;
    one_ctx.reconfigSchedule = "cascade";
    const auto one = specs[0]->plan(one_ctx);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_NE(one[0].id.find("cascade"), std::string::npos);
}

} // namespace

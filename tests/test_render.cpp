/**
 * @file
 * Tests for the normalised-table render layer (`sfx render`): the
 * throughput-vs-dm view derived from a fig10_saturation report,
 * exercised on a hand-built fixture so every normalisation,
 * ordering, and error path is pinned independently of the
 * simulator.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "exp/json.hpp"
#include "exp/render.hpp"

namespace {

using namespace sf::exp;

/** A minimal sf-exp-report-v1 document with two fig10 groups:
 *  uniform/n64 (all four designs; DM rate 0.05 so SF=2.00,
 *  ODM=4.00, S2=0.50) and tornado/n64 (DM and SF only, plus one
 *  failed ODM run that must be skipped, not rendered). */
std::string
fixtureReport()
{
    return R"({
      "schema": "sf-exp-report-v1",
      "suite": "string-figure",
      "experiments": [
        {"name": "table2_features", "runs": []},
        {"name": "fig10_saturation", "runs": [
          {"id": "uniform/n64/DM",
           "params": {"pattern": "uniform", "nodes": 64, "design": "DM"},
           "metrics": {"saturation_rate": 0.05}},
          {"id": "uniform/n64/ODM",
           "params": {"pattern": "uniform", "nodes": 64, "design": "ODM"},
           "metrics": {"saturation_rate": 0.20}},
          {"id": "uniform/n64/S2",
           "params": {"pattern": "uniform", "nodes": 64, "design": "S2"},
           "metrics": {"saturation_rate": 0.025}},
          {"id": "uniform/n64/SF",
           "params": {"pattern": "uniform", "nodes": 64, "design": "SF"},
           "metrics": {"saturation_rate": 0.10}},
          {"id": "tornado/n64/DM",
           "params": {"pattern": "tornado", "nodes": 64, "design": "DM"},
           "metrics": {"saturation_rate": 0.04}},
          {"id": "tornado/n64/ODM",
           "params": {"pattern": "tornado", "nodes": 64, "design": "ODM"},
           "failed": true, "error": "boom",
           "metrics": {}},
          {"id": "tornado/n64/SF",
           "params": {"pattern": "tornado", "nodes": 64, "design": "SF"},
           "metrics": {"saturation_rate": 0.06}}
        ]}
      ]
    })";
}

TEST(RenderThroughputVsDm, NormalisesEveryGroupAgainstItsDm)
{
    const Json report = Json::parse(fixtureReport());
    const std::string table =
        renderReportTable(report, "throughput-vs-dm");
    // Header carries the design columns in first-appearance order.
    EXPECT_NE(table.find("pattern/nodes"), std::string::npos);
    EXPECT_NE(table.find("DM (=1.00)"), std::string::npos);
    EXPECT_NE(table.find("SF vs DM"), std::string::npos);
    // uniform/n64: 0.05 baseline -> 1.00, 4.00, 0.50, 2.00.
    const auto uniform_pos = table.find("uniform/n64");
    ASSERT_NE(uniform_pos, std::string::npos);
    const std::string uniform_row = table.substr(
        uniform_pos, table.find('\n', uniform_pos) - uniform_pos);
    EXPECT_NE(uniform_row.find("1.00"), std::string::npos);
    EXPECT_NE(uniform_row.find("4.00"), std::string::npos);
    EXPECT_NE(uniform_row.find("0.50"), std::string::npos);
    EXPECT_NE(uniform_row.find("2.00"), std::string::npos);
    // tornado/n64: SF = 0.06/0.04 = 1.50; the failed ODM run is
    // skipped, so its cell renders as the "-" placeholder.
    const auto tornado_pos = table.find("tornado/n64");
    ASSERT_NE(tornado_pos, std::string::npos);
    const std::string tornado_row = table.substr(
        tornado_pos, table.find('\n', tornado_pos) - tornado_pos);
    EXPECT_NE(tornado_row.find("1.50"), std::string::npos);
    EXPECT_NE(tornado_row.find("-"), std::string::npos);
    // Groups render in report order: uniform before tornado.
    EXPECT_LT(uniform_pos, tornado_pos);
}

TEST(RenderThroughputVsDm, ErrorPathsAreDiagnosed)
{
    // Unknown table name.
    const Json report = Json::parse(fixtureReport());
    EXPECT_THROW(renderReportTable(report, "energy-vs-afb"),
                 std::runtime_error);
    // Report without the source experiment.
    const Json empty = Json::parse(
        R"({"schema": "sf-exp-report-v1", "experiments": []})");
    EXPECT_THROW(renderReportTable(empty, "throughput-vs-dm"),
                 std::runtime_error);
    // A group whose DM baseline is missing cannot normalise.
    const Json no_dm = Json::parse(R"({
      "experiments": [
        {"name": "fig10_saturation", "runs": [
          {"id": "uniform/n64/SF",
           "params": {"pattern": "uniform", "nodes": 64, "design": "SF"},
           "metrics": {"saturation_rate": 0.1}}
        ]}
      ]})");
    EXPECT_THROW(renderReportTable(no_dm, "throughput-vs-dm"),
                 std::runtime_error);
}

} // namespace

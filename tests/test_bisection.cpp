/**
 * @file
 * Unit tests for max-flow and bisection bandwidth.
 */

#include <gtest/gtest.h>

#include "net/bisection.hpp"
#include "net/graph.hpp"

namespace {

using namespace sf;
using namespace sf::net;

TEST(MaxFlow, SingleEdge)
{
    Graph g(2);
    g.addLink(0, 1);
    EXPECT_EQ(maxFlow(g, {0}, {1}), 1u);
    EXPECT_EQ(maxFlow(g, {1}, {0}), 0u);
}

TEST(MaxFlow, ParallelEdgesAddUp)
{
    Graph g(2);
    g.addLink(0, 1);
    g.addLink(0, 1);
    g.addLink(0, 1);
    EXPECT_EQ(maxFlow(g, {0}, {1}), 3u);
}

TEST(MaxFlow, BottleneckLimits)
{
    // 0 -> 1 -> 2 with a wide first stage: still limited to 1.
    Graph g(3);
    g.addLink(0, 1);
    g.addLink(0, 1);
    g.addLink(1, 2);
    EXPECT_EQ(maxFlow(g, {0}, {2}), 1u);
}

TEST(MaxFlow, DisabledLinksCarryNoFlow)
{
    Graph g(2);
    const LinkId id = g.addLink(0, 1);
    g.setEnabled(id, false);
    EXPECT_EQ(maxFlow(g, {0}, {1}), 0u);
}

TEST(MaxFlow, MultiSourceMultiSink)
{
    Graph g(4);
    g.addLink(0, 2);
    g.addLink(1, 3);
    EXPECT_EQ(maxFlow(g, {0, 1}, {2, 3}), 2u);
}

TEST(Bisection, CompleteGraphValue)
{
    // K6 bidirectional: any balanced split has 3x3 crossing wires,
    // each direction counts once => min bisection flow is 9.
    Graph g(6);
    for (NodeId u = 0; u < 6; ++u) {
        for (NodeId v = u + 1; v < 6; ++v)
            g.addBidirectional(u, v);
    }
    Rng rng(1);
    EXPECT_EQ(minBisectionBandwidth(g, rng, 10), 9u);
}

TEST(Bisection, RingIsTwo)
{
    // A bidirectional ring always splits with >= 2 crossing wires
    // and a contiguous split achieves exactly 2 per direction.
    Graph g(8);
    for (NodeId u = 0; u < 8; ++u)
        g.addBidirectional(u, (u + 1) % 8);
    Rng rng(2);
    const auto bw = minBisectionBandwidth(g, rng, 50);
    // Max-flow counts directed capacity: 2 wires x 1 direction used.
    EXPECT_GE(bw, 2u);
    EXPECT_LE(bw, 4u);
}

TEST(Bisection, DeterministicGivenSeed)
{
    Graph g(10);
    for (NodeId u = 0; u < 10; ++u) {
        g.addBidirectional(u, (u + 1) % 10);
        g.addBidirectional(u, (u + 3) % 10);
    }
    Rng a(5);
    Rng b(5);
    EXPECT_EQ(minBisectionBandwidth(g, a, 20),
              minBisectionBandwidth(g, b, 20));
}

} // namespace

/**
 * @file
 * Tests for the up*-down* escape routing tables.
 */

#include <gtest/gtest.h>

#include "net/graph.hpp"
#include "net/updown.hpp"

namespace {

using namespace sf;
using namespace sf::net;

/** Follow escape next-hops from src to dst; -1 on failure. */
int
walk(const Graph &g, const UpDownRouting &ud, NodeId src, NodeId dst)
{
    NodeId at = src;
    bool up_allowed = true;
    for (int hops = 0; hops < 4 * static_cast<int>(g.numNodes());
         ++hops) {
        if (at == dst)
            return hops;
        const LinkId next = ud.nextLink(at, dst, up_allowed);
        if (next == kInvalidLink)
            return -1;
        if (!ud.isUp(next))
            up_allowed = false;
        else if (!up_allowed)
            return -2;  // illegal up after down
        at = g.link(next).dst;
    }
    return -1;
}

Graph
bidirMesh(int rows, int cols)
{
    Graph g(static_cast<std::size_t>(rows) * cols);
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const NodeId u = static_cast<NodeId>(r * cols + c);
            if (c + 1 < cols)
                g.addBidirectional(u, u + 1);
            if (r + 1 < rows)
                g.addBidirectional(u, u + cols);
        }
    }
    return g;
}

TEST(UpDown, AllPairsLegalRoutesOnMesh)
{
    const Graph g = bidirMesh(5, 5);
    const UpDownRouting ud(g);
    for (NodeId s = 0; s < 25; ++s) {
        for (NodeId t = 0; t < 25; ++t) {
            if (s == t)
                continue;
            EXPECT_GT(walk(g, ud, s, t), 0) << s << "->" << t;
        }
    }
}

TEST(UpDown, RespectsAliveMask)
{
    const Graph g = bidirMesh(3, 3);
    std::vector<bool> alive(9, true);
    alive[4] = false;  // gate the centre
    const UpDownRouting ud(g, alive);
    for (NodeId s = 0; s < 9; ++s) {
        for (NodeId t = 0; t < 9; ++t) {
            if (s == t || s == 4 || t == 4)
                continue;
            const int hops = walk(g, ud, s, t);
            EXPECT_GT(hops, 0) << s << "->" << t;
        }
    }
    EXPECT_FALSE(ud.reachable(0, 4));
}

TEST(UpDown, UpLinksAscendTowardRoot)
{
    const Graph g = bidirMesh(4, 4);
    const UpDownRouting ud(g);
    // Each bidirectional wire: exactly one direction is "up".
    for (LinkId id = 0; id < static_cast<LinkId>(g.numLinks());
         id += 2) {
        EXPECT_NE(ud.isUp(id), ud.isUp(id + 1));
    }
}

TEST(UpDown, DirectedRingHasLimitedEscape)
{
    // Pure clockwise ring: up*-down* cannot cover all pairs (this
    // is why String Figure uses the dateline ring escape instead).
    Graph g(6);
    for (NodeId u = 0; u < 6; ++u)
        g.addLink(u, (u + 1) % 6);
    const UpDownRouting ud(g);
    int unreachable = 0;
    for (NodeId s = 0; s < 6; ++s) {
        for (NodeId t = 0; t < 6; ++t) {
            if (s != t && walk(g, ud, s, t) < 0)
                ++unreachable;
        }
    }
    EXPECT_GT(unreachable, 0);
}

} // namespace

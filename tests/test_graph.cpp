/**
 * @file
 * Unit tests for the directed multigraph substrate.
 */

#include <gtest/gtest.h>

#include "net/graph.hpp"

namespace {

using sf::kInvalidLink;
using sf::LinkId;
using sf::net::Graph;
using sf::net::LinkKind;

TEST(Graph, EmptyGraph)
{
    Graph g(4);
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.numLinks(), 0u);
    EXPECT_EQ(g.numEnabledLinks(), 0u);
    EXPECT_EQ(g.degreeOut(0), 0u);
}

TEST(Graph, AddDirectedLink)
{
    Graph g(3);
    const LinkId id = g.addLink(0, 1, LinkKind::Ring, 2, 1);
    EXPECT_EQ(g.link(id).src, 0u);
    EXPECT_EQ(g.link(id).dst, 1u);
    EXPECT_EQ(g.link(id).latency, 2u);
    EXPECT_EQ(g.link(id).space, 1);
    EXPECT_EQ(g.link(id).pairId, kInvalidLink);
    EXPECT_EQ(g.degreeOut(0), 1u);
    EXPECT_EQ(g.degreeIn(1), 1u);
    EXPECT_EQ(g.degreeOut(1), 0u);
}

TEST(Graph, AddBidirectionalCreatesPair)
{
    Graph g(2);
    const LinkId fwd = g.addBidirectional(0, 1);
    const LinkId bwd = g.link(fwd).pairId;
    ASSERT_NE(bwd, kInvalidLink);
    EXPECT_EQ(g.link(bwd).src, 1u);
    EXPECT_EQ(g.link(bwd).dst, 0u);
    EXPECT_EQ(g.link(bwd).pairId, fwd);
    EXPECT_EQ(g.numLinks(), 2u);
}

TEST(Graph, DisableHidesFromNeighbors)
{
    Graph g(3);
    const LinkId id = g.addLink(0, 1);
    g.addLink(0, 2);
    EXPECT_EQ(g.neighborsOut(0).size(), 2u);
    g.setEnabled(id, false);
    const auto nbrs = g.neighborsOut(0);
    ASSERT_EQ(nbrs.size(), 1u);
    EXPECT_EQ(nbrs[0], 2u);
    EXPECT_EQ(g.numEnabledLinks(), 1u);
}

TEST(Graph, SetWireEnabledTogglesBothDirections)
{
    Graph g(2);
    const LinkId fwd = g.addBidirectional(0, 1);
    g.setWireEnabled(fwd, false);
    EXPECT_FALSE(g.link(fwd).enabled);
    EXPECT_FALSE(g.link(g.link(fwd).pairId).enabled);
    g.setWireEnabled(g.link(fwd).pairId, true);
    EXPECT_TRUE(g.link(fwd).enabled);
}

TEST(Graph, FindLinkSkipsDisabled)
{
    Graph g(2);
    const LinkId id = g.addLink(0, 1);
    EXPECT_EQ(g.findLink(0, 1), id);
    EXPECT_EQ(g.findLink(1, 0), kInvalidLink);
    g.setEnabled(id, false);
    EXPECT_EQ(g.findLink(0, 1), kInvalidLink);
}

TEST(Graph, ParallelLinksAllowed)
{
    Graph g(2);
    g.addLink(0, 1);
    g.addLink(0, 1);
    EXPECT_EQ(g.degreeOut(0), 2u);
    EXPECT_EQ(g.neighborsOut(0).size(), 2u);
}

TEST(Graph, SummaryMentionsCounts)
{
    Graph g(5);
    g.addLink(0, 1);
    g.addLink(1, 2);
    const auto s = g.summary();
    EXPECT_NE(s.find("nodes=5"), std::string::npos);
    EXPECT_NE(s.find("links=2"), std::string::npos);
}

} // namespace

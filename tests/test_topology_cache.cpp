/**
 * @file
 * Tests for the shared-immutable-topology ownership model: the
 * net::TopologyCache hit/miss/eviction semantics, once-only
 * construction under same-key concurrency, and the factory's
 * cachedTopology() sharing/toggle behaviour.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/string_figure.hpp"
#include "core/topology_builder.hpp"
#include "net/topology_cache.hpp"
#include "topos/factory.hpp"

namespace {

using namespace sf;
using net::TopologyCache;
using net::TopologyKey;

/** Tiny real topology for cache entries. */
std::shared_ptr<const net::Topology>
tinySf(std::uint64_t seed)
{
    core::SFParams params;
    params.numNodes = 8;
    params.routerPorts = 4;
    params.seed = seed;
    return std::make_shared<const core::StringFigure>(params);
}

TopologyKey
key(const std::string &kind, std::size_t n, std::uint64_t seed,
    const std::string &variant = "")
{
    TopologyKey k;
    k.kind = kind;
    k.nodes = n;
    k.seed = seed;
    k.variant = variant;
    return k;
}

TEST(TopologyCache, HitAndMissCounting)
{
    TopologyCache cache(8);
    int builds = 0;
    const auto build = [&] {
        ++builds;
        return tinySf(1);
    };
    const auto first = cache.getOrBuild(key("SF", 8, 1), build);
    const auto second = cache.getOrBuild(key("SF", 8, 1), build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);

    // Every key field participates in identity.
    cache.getOrBuild(key("S2", 8, 1), build);
    cache.getOrBuild(key("SF", 8, 2), build);
    cache.getOrBuild(key("SF", 8, 1, "v"), build);
    EXPECT_EQ(builds, 4);
    EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(TopologyCache, LruEviction)
{
    TopologyCache cache(2);
    int builds = 0;
    const auto build = [&] {
        ++builds;
        return tinySf(1);
    };
    cache.getOrBuild(key("SF", 8, 1), build); // {1}
    cache.getOrBuild(key("SF", 8, 2), build); // {1, 2}
    EXPECT_EQ(cache.size(), 2u);
    // Touch 1 so 2 becomes the LRU victim.
    cache.getOrBuild(key("SF", 8, 1), build);
    cache.getOrBuild(key("SF", 8, 3), build); // evicts 2
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(builds, 3);
    // 1 survived; 2 was evicted and rebuilds.
    cache.getOrBuild(key("SF", 8, 1), build);
    EXPECT_EQ(builds, 3);
    cache.getOrBuild(key("SF", 8, 2), build);
    EXPECT_EQ(builds, 4);
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(TopologyCache, ShrinkingCapacityEvicts)
{
    TopologyCache cache(4);
    const auto build = [] { return tinySf(1); };
    for (std::uint64_t s = 1; s <= 4; ++s)
        cache.getOrBuild(key("SF", 8, s), build);
    EXPECT_EQ(cache.size(), 4u);
    cache.setCapacity(1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 3u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(TopologyCache, ConcurrentSameKeyBuildsOnce)
{
    TopologyCache cache(8);
    std::atomic<int> builds{0};
    const auto build = [&] {
        ++builds;
        // Widen the race window: every thread should arrive while
        // the first build is still in flight.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
        return tinySf(7);
    };
    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const net::Topology>> results(
        kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            results[t] =
                cache.getOrBuild(key("SF", 8, 7), build);
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(builds.load(), 1);
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(results[t].get(), results[0].get());
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits,
              static_cast<std::uint64_t>(kThreads - 1));
}

TEST(TopologyCache, FailedBuildRetries)
{
    TopologyCache cache(8);
    int calls = 0;
    const auto failing = [&]()
        -> std::shared_ptr<const net::Topology> {
        ++calls;
        throw std::runtime_error("boom");
    };
    EXPECT_THROW(cache.getOrBuild(key("SF", 8, 1), failing),
                 std::runtime_error);
    EXPECT_EQ(cache.size(), 0u);
    // The failed entry is gone: the next request retries.
    const auto ok = cache.getOrBuild(key("SF", 8, 1),
                                     [] { return tinySf(1); });
    EXPECT_NE(ok, nullptr);
    EXPECT_EQ(calls, 1);
}

TEST(Factory, CachedTopologySharesInstances)
{
    topos::setTopologyCacheEnabled(true);
    topos::topologyCache().clear();
    const auto a =
        topos::cachedTopology(topos::TopoKind::SF, 16, 3);
    const auto b =
        topos::cachedTopology(topos::TopoKind::SF, 16, 3);
    EXPECT_EQ(a.get(), b.get());
    // Distinct kinds never share, even with identical params.
    const auto s2 =
        topos::cachedTopology(topos::TopoKind::S2, 16, 3);
    EXPECT_NE(s2.get(), a.get());

    // The params overload shares with the kind overload when the
    // knobs match the factory defaults.
    core::SFParams params;
    params.numNodes = 16;
    params.routerPorts = topos::randomTopologyPorts(16);
    params.seed = 3;
    const auto c = topos::cachedTopology(params);
    EXPECT_EQ(c.get(), a.get());
    // And not when a construction knob differs.
    params.twoHopTable = false;
    const auto d = topos::cachedTopology(params);
    EXPECT_NE(d.get(), a.get());
}

TEST(Factory, CacheToggleDisablesSharing)
{
    topos::setTopologyCacheEnabled(false);
    const auto a =
        topos::cachedTopology(topos::TopoKind::SF, 16, 3);
    const auto b =
        topos::cachedTopology(topos::TopoKind::SF, 16, 3);
    EXPECT_NE(a.get(), b.get());
    topos::setTopologyCacheEnabled(true);
    EXPECT_TRUE(topos::topologyCacheEnabled());
}

TEST(Factory, SharedBuildTopologyIsDeployedNetwork)
{
    core::SFParams params;
    params.numNodes = 16;
    params.routerPorts = 4;
    params.seed = 5;
    const auto topo = core::buildTopology(params);
    ASSERT_NE(topo, nullptr);
    EXPECT_EQ(topo->numNodes(), 16u);
    EXPECT_GT(net::routedHops(*topo, 0, 15), 0);
}

} // namespace

/**
 * @file
 * Unit tests for 2D grid placement and wire-length latency.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "net/placement.hpp"

namespace {

using namespace sf;
using namespace sf::net;

TEST(Placement, RowMajorPositions)
{
    const auto p = Placement::rowMajor(9);
    EXPECT_EQ(p.columns(), 3);
    EXPECT_EQ(p.pos(0).x, 0);
    EXPECT_EQ(p.pos(0).y, 0);
    EXPECT_EQ(p.pos(4).x, 1);
    EXPECT_EQ(p.pos(4).y, 1);
    EXPECT_EQ(p.pos(8).x, 2);
    EXPECT_EQ(p.pos(8).y, 2);
}

TEST(Placement, NonSquareCounts)
{
    const auto p = Placement::rowMajor(10);
    EXPECT_EQ(p.columns(), 4);
    EXPECT_EQ(p.numNodes(), 10u);
}

TEST(Placement, ManhattanWireLength)
{
    const auto p = Placement::rowMajor(9);
    EXPECT_EQ(p.wireLength(0, 8), 4u);  // (0,0) to (2,2)
    EXPECT_EQ(p.wireLength(0, 0), 0u);
    EXPECT_EQ(p.wireLength(3, 5), 2u);  // (0,1) to (2,1)
}

TEST(Placement, LinkLatencyPerTenUnits)
{
    const auto p = Placement::rowMajor(1296);  // 36 x 36
    // Distance 0..9 -> 1 cycle; 10..19 -> 2 cycles, per the paper's
    // "extra one-hop latency per wire length of ten nodes".
    EXPECT_EQ(p.linkLatency(0, 1), 1u);
    EXPECT_EQ(p.linkLatency(0, 9), 1u);
    EXPECT_EQ(p.linkLatency(0, 10), 2u);
    EXPECT_EQ(p.linkLatency(0, 35), 4u);  // distance 35
}

TEST(Placement, SnakeOrderKeepsConsecutiveAdjacent)
{
    std::vector<NodeId> order(16);
    std::iota(order.begin(), order.end(), 0u);
    const auto p = Placement::snakeOrder(order);
    for (std::size_t i = 0; i + 1 < order.size(); ++i)
        EXPECT_EQ(p.wireLength(order[i], order[i + 1]), 1u)
            << "at index " << i;
}

TEST(Placement, SnakeOrderPermutedInput)
{
    const std::vector<NodeId> order{3, 1, 4, 0, 5, 2, 7, 6, 8};
    const auto p = Placement::snakeOrder(order);
    for (std::size_t i = 0; i + 1 < order.size(); ++i)
        EXPECT_EQ(p.wireLength(order[i], order[i + 1]), 1u);
}

TEST(Placement, ShortLinkFraction)
{
    Graph g(9);
    g.addLink(0, 1);  // distance 1
    g.addLink(0, 8);  // distance 4
    const auto p = Placement::rowMajor(9);
    EXPECT_DOUBLE_EQ(p.shortLinkFraction(g, 3), 0.5);
    EXPECT_DOUBLE_EQ(p.shortLinkFraction(g, 4), 1.0);
}

TEST(Placement, AverageWireLength)
{
    Graph g(9);
    g.addLink(0, 1);  // 1
    g.addLink(0, 8);  // 4
    const auto p = Placement::rowMajor(9);
    EXPECT_DOUBLE_EQ(p.averageWireLength(g), 2.5);
}

TEST(Placement, ApplyPlacementLatency)
{
    Graph g(1296);
    const LinkId near = g.addLink(0, 1);
    const LinkId far = g.addLink(0, 1295);
    const auto p = Placement::rowMajor(1296);
    applyPlacementLatency(g, p);
    EXPECT_EQ(g.link(near).latency, 1u);
    EXPECT_EQ(g.link(far).latency, 8u);  // distance 70 -> 1 + 7
}

} // namespace

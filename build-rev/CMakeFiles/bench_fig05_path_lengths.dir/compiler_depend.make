# Empty compiler generated dependencies file for bench_fig05_path_lengths.
# This may be replaced when dependencies are built.

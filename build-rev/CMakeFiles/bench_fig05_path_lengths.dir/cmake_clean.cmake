file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_path_lengths.dir/bench/fig05_path_lengths.cpp.o"
  "CMakeFiles/bench_fig05_path_lengths.dir/bench/fig05_path_lengths.cpp.o.d"
  "fig05_path_lengths"
  "fig05_path_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_path_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

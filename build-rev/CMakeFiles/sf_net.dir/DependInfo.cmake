
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bisection.cpp" "CMakeFiles/sf_net.dir/src/net/bisection.cpp.o" "gcc" "CMakeFiles/sf_net.dir/src/net/bisection.cpp.o.d"
  "/root/repo/src/net/graph.cpp" "CMakeFiles/sf_net.dir/src/net/graph.cpp.o" "gcc" "CMakeFiles/sf_net.dir/src/net/graph.cpp.o.d"
  "/root/repo/src/net/paths.cpp" "CMakeFiles/sf_net.dir/src/net/paths.cpp.o" "gcc" "CMakeFiles/sf_net.dir/src/net/paths.cpp.o.d"
  "/root/repo/src/net/placement.cpp" "CMakeFiles/sf_net.dir/src/net/placement.cpp.o" "gcc" "CMakeFiles/sf_net.dir/src/net/placement.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "CMakeFiles/sf_net.dir/src/net/topology.cpp.o" "gcc" "CMakeFiles/sf_net.dir/src/net/topology.cpp.o.d"
  "/root/repo/src/net/topology_cache.cpp" "CMakeFiles/sf_net.dir/src/net/topology_cache.cpp.o" "gcc" "CMakeFiles/sf_net.dir/src/net/topology_cache.cpp.o.d"
  "/root/repo/src/net/updown.cpp" "CMakeFiles/sf_net.dir/src/net/updown.cpp.o" "gcc" "CMakeFiles/sf_net.dir/src/net/updown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

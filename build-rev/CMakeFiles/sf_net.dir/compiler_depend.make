# Empty compiler generated dependencies file for sf_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sf_net.dir/src/net/bisection.cpp.o"
  "CMakeFiles/sf_net.dir/src/net/bisection.cpp.o.d"
  "CMakeFiles/sf_net.dir/src/net/graph.cpp.o"
  "CMakeFiles/sf_net.dir/src/net/graph.cpp.o.d"
  "CMakeFiles/sf_net.dir/src/net/paths.cpp.o"
  "CMakeFiles/sf_net.dir/src/net/paths.cpp.o.d"
  "CMakeFiles/sf_net.dir/src/net/placement.cpp.o"
  "CMakeFiles/sf_net.dir/src/net/placement.cpp.o.d"
  "CMakeFiles/sf_net.dir/src/net/topology.cpp.o"
  "CMakeFiles/sf_net.dir/src/net/topology.cpp.o.d"
  "CMakeFiles/sf_net.dir/src/net/topology_cache.cpp.o"
  "CMakeFiles/sf_net.dir/src/net/topology_cache.cpp.o.d"
  "CMakeFiles/sf_net.dir/src/net/updown.cpp.o"
  "CMakeFiles/sf_net.dir/src/net/updown.cpp.o.d"
  "libsf_net.a"
  "libsf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsf_net.a"
)

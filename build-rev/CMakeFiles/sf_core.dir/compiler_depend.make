# Empty compiler generated dependencies file for sf_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coordinates.cpp" "CMakeFiles/sf_core.dir/src/core/coordinates.cpp.o" "gcc" "CMakeFiles/sf_core.dir/src/core/coordinates.cpp.o.d"
  "/root/repo/src/core/greedy_router.cpp" "CMakeFiles/sf_core.dir/src/core/greedy_router.cpp.o" "gcc" "CMakeFiles/sf_core.dir/src/core/greedy_router.cpp.o.d"
  "/root/repo/src/core/reconfig.cpp" "CMakeFiles/sf_core.dir/src/core/reconfig.cpp.o" "gcc" "CMakeFiles/sf_core.dir/src/core/reconfig.cpp.o.d"
  "/root/repo/src/core/routing_table.cpp" "CMakeFiles/sf_core.dir/src/core/routing_table.cpp.o" "gcc" "CMakeFiles/sf_core.dir/src/core/routing_table.cpp.o.d"
  "/root/repo/src/core/string_figure.cpp" "CMakeFiles/sf_core.dir/src/core/string_figure.cpp.o" "gcc" "CMakeFiles/sf_core.dir/src/core/string_figure.cpp.o.d"
  "/root/repo/src/core/topology_builder.cpp" "CMakeFiles/sf_core.dir/src/core/topology_builder.cpp.o" "gcc" "CMakeFiles/sf_core.dir/src/core/topology_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rev/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sf_core.dir/src/core/coordinates.cpp.o"
  "CMakeFiles/sf_core.dir/src/core/coordinates.cpp.o.d"
  "CMakeFiles/sf_core.dir/src/core/greedy_router.cpp.o"
  "CMakeFiles/sf_core.dir/src/core/greedy_router.cpp.o.d"
  "CMakeFiles/sf_core.dir/src/core/reconfig.cpp.o"
  "CMakeFiles/sf_core.dir/src/core/reconfig.cpp.o.d"
  "CMakeFiles/sf_core.dir/src/core/routing_table.cpp.o"
  "CMakeFiles/sf_core.dir/src/core/routing_table.cpp.o.d"
  "CMakeFiles/sf_core.dir/src/core/string_figure.cpp.o"
  "CMakeFiles/sf_core.dir/src/core/string_figure.cpp.o.d"
  "CMakeFiles/sf_core.dir/src/core/topology_builder.cpp.o"
  "CMakeFiles/sf_core.dir/src/core/topology_builder.cpp.o.d"
  "libsf_core.a"
  "libsf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

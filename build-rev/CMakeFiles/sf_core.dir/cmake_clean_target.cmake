file(REMOVE_RECURSE
  "libsf_core.a"
)

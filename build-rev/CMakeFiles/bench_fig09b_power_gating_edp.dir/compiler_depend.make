# Empty compiler generated dependencies file for bench_fig09b_power_gating_edp.
# This may be replaced when dependencies are built.

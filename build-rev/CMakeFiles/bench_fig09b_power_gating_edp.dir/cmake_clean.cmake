file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09b_power_gating_edp.dir/bench/fig09b_power_gating_edp.cpp.o"
  "CMakeFiles/bench_fig09b_power_gating_edp.dir/bench/fig09b_power_gating_edp.cpp.o.d"
  "fig09b_power_gating_edp"
  "fig09b_power_gating_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09b_power_gating_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_topology_builder.dir/tests/test_topology_builder.cpp.o"
  "CMakeFiles/test_topology_builder.dir/tests/test_topology_builder.cpp.o.d"
  "test_topology_builder"
  "test_topology_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_topology_builder.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_micro_routing.
# This may be replaced when dependencies are built.

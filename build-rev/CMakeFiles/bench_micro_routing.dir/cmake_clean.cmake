file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_routing.dir/bench/micro_routing.cpp.o"
  "CMakeFiles/bench_micro_routing.dir/bench/micro_routing.cpp.o.d"
  "micro_routing"
  "micro_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_power_management.dir/examples/power_management.cpp.o"
  "CMakeFiles/example_power_management.dir/examples/power_management.cpp.o.d"
  "power_management"
  "power_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_power_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

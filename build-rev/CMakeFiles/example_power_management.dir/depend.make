# Empty dependencies file for example_power_management.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_workloads.dir/bench/fig12_workloads.cpp.o"
  "CMakeFiles/bench_fig12_workloads.dir/bench/fig12_workloads.cpp.o.d"
  "fig12_workloads"
  "fig12_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

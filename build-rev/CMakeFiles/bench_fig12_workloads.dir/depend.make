# Empty dependencies file for bench_fig12_workloads.
# This may be replaced when dependencies are built.

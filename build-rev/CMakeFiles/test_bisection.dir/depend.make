# Empty dependencies file for test_bisection.
# This may be replaced when dependencies are built.

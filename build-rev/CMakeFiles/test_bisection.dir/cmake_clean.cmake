file(REMOVE_RECURSE
  "CMakeFiles/test_bisection.dir/tests/test_bisection.cpp.o"
  "CMakeFiles/test_bisection.dir/tests/test_bisection.cpp.o.d"
  "test_bisection"
  "test_bisection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_two_hop.dir/bench/ablation_two_hop.cpp.o"
  "CMakeFiles/bench_ablation_two_hop.dir/bench/ablation_two_hop.cpp.o.d"
  "ablation_two_hop"
  "ablation_two_hop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_two_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

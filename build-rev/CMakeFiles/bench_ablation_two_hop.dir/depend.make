# Empty dependencies file for bench_ablation_two_hop.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_saturation.dir/bench/fig10_saturation.cpp.o"
  "CMakeFiles/bench_fig10_saturation.dir/bench/fig10_saturation.cpp.o.d"
  "fig10_saturation"
  "fig10_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/diff.cpp" "CMakeFiles/sf_exp.dir/src/exp/diff.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/diff.cpp.o.d"
  "/root/repo/src/exp/driver.cpp" "CMakeFiles/sf_exp.dir/src/exp/driver.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/driver.cpp.o.d"
  "/root/repo/src/exp/experiments/ablations.cpp" "CMakeFiles/sf_exp.dir/src/exp/experiments/ablations.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/experiments/ablations.cpp.o.d"
  "/root/repo/src/exp/experiments/micro.cpp" "CMakeFiles/sf_exp.dir/src/exp/experiments/micro.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/experiments/micro.cpp.o.d"
  "/root/repo/src/exp/experiments/structure.cpp" "CMakeFiles/sf_exp.dir/src/exp/experiments/structure.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/experiments/structure.cpp.o.d"
  "/root/repo/src/exp/experiments/traffic.cpp" "CMakeFiles/sf_exp.dir/src/exp/experiments/traffic.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/experiments/traffic.cpp.o.d"
  "/root/repo/src/exp/experiments/workloads.cpp" "CMakeFiles/sf_exp.dir/src/exp/experiments/workloads.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/experiments/workloads.cpp.o.d"
  "/root/repo/src/exp/json.cpp" "CMakeFiles/sf_exp.dir/src/exp/json.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/json.cpp.o.d"
  "/root/repo/src/exp/registry.cpp" "CMakeFiles/sf_exp.dir/src/exp/registry.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/registry.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "CMakeFiles/sf_exp.dir/src/exp/report.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/report.cpp.o.d"
  "/root/repo/src/exp/run_store.cpp" "CMakeFiles/sf_exp.dir/src/exp/run_store.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/run_store.cpp.o.d"
  "/root/repo/src/exp/scheduler.cpp" "CMakeFiles/sf_exp.dir/src/exp/scheduler.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/scheduler.cpp.o.d"
  "/root/repo/src/exp/work_pool.cpp" "CMakeFiles/sf_exp.dir/src/exp/work_pool.cpp.o" "gcc" "CMakeFiles/sf_exp.dir/src/exp/work_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rev/CMakeFiles/sf_topos.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_workloads.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_mem.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

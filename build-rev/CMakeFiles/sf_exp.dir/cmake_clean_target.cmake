file(REMOVE_RECURSE
  "libsf_exp.a"
)

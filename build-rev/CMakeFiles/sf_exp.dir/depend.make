# Empty dependencies file for sf_exp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sf_exp.dir/src/exp/diff.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/diff.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/driver.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/driver.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/experiments/ablations.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/experiments/ablations.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/experiments/micro.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/experiments/micro.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/experiments/structure.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/experiments/structure.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/experiments/traffic.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/experiments/traffic.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/experiments/workloads.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/experiments/workloads.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/json.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/json.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/registry.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/registry.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/report.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/report.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/run_store.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/run_store.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/scheduler.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/scheduler.cpp.o.d"
  "CMakeFiles/sf_exp.dir/src/exp/work_pool.cpp.o"
  "CMakeFiles/sf_exp.dir/src/exp/work_pool.cpp.o.d"
  "libsf_exp.a"
  "libsf_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

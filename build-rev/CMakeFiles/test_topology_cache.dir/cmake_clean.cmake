file(REMOVE_RECURSE
  "CMakeFiles/test_topology_cache.dir/tests/test_topology_cache.cpp.o"
  "CMakeFiles/test_topology_cache.dir/tests/test_topology_cache.cpp.o.d"
  "test_topology_cache"
  "test_topology_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

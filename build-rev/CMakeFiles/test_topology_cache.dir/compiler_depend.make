# Empty compiler generated dependencies file for test_topology_cache.
# This may be replaced when dependencies are built.

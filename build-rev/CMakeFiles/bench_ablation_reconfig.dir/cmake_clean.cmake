file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reconfig.dir/bench/ablation_reconfig.cpp.o"
  "CMakeFiles/bench_ablation_reconfig.dir/bench/ablation_reconfig.cpp.o.d"
  "ablation_reconfig"
  "ablation_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

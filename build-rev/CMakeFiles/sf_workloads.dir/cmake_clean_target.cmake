file(REMOVE_RECURSE
  "libsf_workloads.a"
)

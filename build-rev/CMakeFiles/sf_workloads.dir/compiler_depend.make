# Empty compiler generated dependencies file for sf_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sf_workloads.dir/src/workloads/cache_model.cpp.o"
  "CMakeFiles/sf_workloads.dir/src/workloads/cache_model.cpp.o.d"
  "CMakeFiles/sf_workloads.dir/src/workloads/generators.cpp.o"
  "CMakeFiles/sf_workloads.dir/src/workloads/generators.cpp.o.d"
  "CMakeFiles/sf_workloads.dir/src/workloads/replay.cpp.o"
  "CMakeFiles/sf_workloads.dir/src/workloads/replay.cpp.o.d"
  "libsf_workloads.a"
  "libsf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

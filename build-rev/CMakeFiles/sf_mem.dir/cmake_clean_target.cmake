file(REMOVE_RECURSE
  "libsf_mem.a"
)

# Empty dependencies file for sf_mem.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sf_mem.dir/src/mem/power_manager.cpp.o"
  "CMakeFiles/sf_mem.dir/src/mem/power_manager.cpp.o.d"
  "libsf_mem.a"
  "libsf_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_bisection_bandwidth.dir/bench/bisection_bandwidth.cpp.o"
  "CMakeFiles/bench_bisection_bandwidth.dir/bench/bisection_bandwidth.cpp.o.d"
  "bisection_bandwidth"
  "bisection_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bisection_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_latency_curves.dir/bench/fig11_latency_curves.cpp.o"
  "CMakeFiles/bench_fig11_latency_curves.dir/bench/fig11_latency_curves.cpp.o.d"
  "fig11_latency_curves"
  "fig11_latency_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_latency_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sfx.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sfx.dir/src/exp/sfx.cpp.o"
  "CMakeFiles/sfx.dir/src/exp/sfx.cpp.o.d"
  "sfx"
  "sfx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

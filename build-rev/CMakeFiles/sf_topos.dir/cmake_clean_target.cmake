file(REMOVE_RECURSE
  "libsf_topos.a"
)

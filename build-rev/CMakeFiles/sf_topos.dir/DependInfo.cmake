
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topos/factory.cpp" "CMakeFiles/sf_topos.dir/src/topos/factory.cpp.o" "gcc" "CMakeFiles/sf_topos.dir/src/topos/factory.cpp.o.d"
  "/root/repo/src/topos/flattened_butterfly.cpp" "CMakeFiles/sf_topos.dir/src/topos/flattened_butterfly.cpp.o" "gcc" "CMakeFiles/sf_topos.dir/src/topos/flattened_butterfly.cpp.o.d"
  "/root/repo/src/topos/jellyfish.cpp" "CMakeFiles/sf_topos.dir/src/topos/jellyfish.cpp.o" "gcc" "CMakeFiles/sf_topos.dir/src/topos/jellyfish.cpp.o.d"
  "/root/repo/src/topos/mesh.cpp" "CMakeFiles/sf_topos.dir/src/topos/mesh.cpp.o" "gcc" "CMakeFiles/sf_topos.dir/src/topos/mesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rev/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sf_topos.dir/src/topos/factory.cpp.o"
  "CMakeFiles/sf_topos.dir/src/topos/factory.cpp.o.d"
  "CMakeFiles/sf_topos.dir/src/topos/flattened_butterfly.cpp.o"
  "CMakeFiles/sf_topos.dir/src/topos/flattened_butterfly.cpp.o.d"
  "CMakeFiles/sf_topos.dir/src/topos/jellyfish.cpp.o"
  "CMakeFiles/sf_topos.dir/src/topos/jellyfish.cpp.o.d"
  "CMakeFiles/sf_topos.dir/src/topos/mesh.cpp.o"
  "CMakeFiles/sf_topos.dir/src/topos/mesh.cpp.o.d"
  "libsf_topos.a"
  "libsf_topos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_topos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sf_topos.
# This may be replaced when dependencies are built.

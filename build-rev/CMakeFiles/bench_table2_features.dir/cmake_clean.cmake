file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_features.dir/bench/table2_features.cpp.o"
  "CMakeFiles/bench_table2_features.dir/bench/table2_features.cpp.o.d"
  "table2_features"
  "table2_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

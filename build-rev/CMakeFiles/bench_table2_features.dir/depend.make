# Empty dependencies file for bench_table2_features.
# This may be replaced when dependencies are built.

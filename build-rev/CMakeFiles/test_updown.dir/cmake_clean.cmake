file(REMOVE_RECURSE
  "CMakeFiles/test_updown.dir/tests/test_updown.cpp.o"
  "CMakeFiles/test_updown.dir/tests/test_updown.cpp.o.d"
  "test_updown"
  "test_updown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_updown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_greedy_routing.dir/tests/test_greedy_routing.cpp.o"
  "CMakeFiles/test_greedy_routing.dir/tests/test_greedy_routing.cpp.o.d"
  "test_greedy_routing"
  "test_greedy_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greedy_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

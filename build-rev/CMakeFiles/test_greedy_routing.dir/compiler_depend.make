# Empty compiler generated dependencies file for test_greedy_routing.
# This may be replaced when dependencies are built.

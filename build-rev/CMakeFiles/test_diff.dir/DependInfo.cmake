
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_diff.cpp" "CMakeFiles/test_diff.dir/tests/test_diff.cpp.o" "gcc" "CMakeFiles/test_diff.dir/tests/test_diff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rev/CMakeFiles/sf_exp.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_topos.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_workloads.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_mem.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build-rev/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_diff.dir/tests/test_diff.cpp.o"
  "CMakeFiles/test_diff.dir/tests/test_diff.cpp.o.d"
  "test_diff"
  "test_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

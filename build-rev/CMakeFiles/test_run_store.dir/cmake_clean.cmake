file(REMOVE_RECURSE
  "CMakeFiles/test_run_store.dir/tests/test_run_store.cpp.o"
  "CMakeFiles/test_run_store.dir/tests/test_run_store.cpp.o.d"
  "test_run_store"
  "test_run_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_run_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

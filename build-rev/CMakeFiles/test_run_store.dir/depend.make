# Empty dependencies file for test_run_store.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig09a_hop_counts.
# This may be replaced when dependencies are built.

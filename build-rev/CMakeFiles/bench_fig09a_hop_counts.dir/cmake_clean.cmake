file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09a_hop_counts.dir/bench/fig09a_hop_counts.cpp.o"
  "CMakeFiles/bench_fig09a_hop_counts.dir/bench/fig09a_hop_counts.cpp.o.d"
  "fig09a_hop_counts"
  "fig09a_hop_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09a_hop_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_datacenter_traffic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_datacenter_traffic.dir/examples/datacenter_traffic.cpp.o"
  "CMakeFiles/example_datacenter_traffic.dir/examples/datacenter_traffic.cpp.o.d"
  "datacenter_traffic"
  "datacenter_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_datacenter_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

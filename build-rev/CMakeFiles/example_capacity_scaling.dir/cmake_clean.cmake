file(REMOVE_RECURSE
  "CMakeFiles/example_capacity_scaling.dir/examples/capacity_scaling.cpp.o"
  "CMakeFiles/example_capacity_scaling.dir/examples/capacity_scaling.cpp.o.d"
  "capacity_scaling"
  "capacity_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_capacity_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

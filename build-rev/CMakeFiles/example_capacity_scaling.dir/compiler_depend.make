# Empty compiler generated dependencies file for example_capacity_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsf_sim.a"
)

# Empty compiler generated dependencies file for sf_sim.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/executor.cpp" "CMakeFiles/sf_sim.dir/src/sim/executor.cpp.o" "gcc" "CMakeFiles/sf_sim.dir/src/sim/executor.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "CMakeFiles/sf_sim.dir/src/sim/network.cpp.o" "gcc" "CMakeFiles/sf_sim.dir/src/sim/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/sf_sim.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/sf_sim.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "CMakeFiles/sf_sim.dir/src/sim/traffic.cpp.o" "gcc" "CMakeFiles/sf_sim.dir/src/sim/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rev/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sf_sim.dir/src/sim/executor.cpp.o"
  "CMakeFiles/sf_sim.dir/src/sim/executor.cpp.o.d"
  "CMakeFiles/sf_sim.dir/src/sim/network.cpp.o"
  "CMakeFiles/sf_sim.dir/src/sim/network.cpp.o.d"
  "CMakeFiles/sf_sim.dir/src/sim/simulator.cpp.o"
  "CMakeFiles/sf_sim.dir/src/sim/simulator.cpp.o.d"
  "CMakeFiles/sf_sim.dir/src/sim/traffic.cpp.o"
  "CMakeFiles/sf_sim.dir/src/sim/traffic.cpp.o.d"
  "libsf_sim.a"
  "libsf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

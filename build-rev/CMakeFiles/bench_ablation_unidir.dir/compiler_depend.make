# Empty compiler generated dependencies file for bench_ablation_unidir.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_unidir.dir/bench/ablation_unidir.cpp.o"
  "CMakeFiles/bench_ablation_unidir.dir/bench/ablation_unidir.cpp.o.d"
  "ablation_unidir"
  "ablation_unidir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unidir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

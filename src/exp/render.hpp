/**
 * @file
 * Normalised-table rendering from a finished report (`sfx render`).
 *
 * The experiment runs deliberately emit *raw* metrics (saturation
 * rates, latencies, energy counts) so reports stay byte-identical
 * and diffable; the paper's headline tables are *normalised* views
 * of those numbers (throughput relative to the DM baseline, energy
 * relative to AFB, ...). This layer derives the normalised view
 * from a report document after the fact — the report stays the
 * source of truth, and a view can be regenerated from any archived
 * BENCH_*.json without re-running a single simulation.
 */

#pragma once

#include <string>

#include "exp/json.hpp"

namespace sf::exp {

/**
 * Render the named normalised table from a parsed report document
 * ("sf-exp-report-v1").
 *
 * Known tables:
 *  - "throughput-vs-dm": the paper's normalised-throughput view of
 *    `fig10_saturation` — one row per (pattern, nodes) group, one
 *    column per design, each cell the group's saturation rate
 *    relative to the DM design in the same group (DM = 1.00).
 *
 * Throws std::runtime_error on an unknown table name, a report
 * that lacks the table's source experiment, or a group with no
 * usable DM baseline.
 */
std::string renderReportTable(const Json &report,
                              const std::string &table);

} // namespace sf::exp

#include "exp/report.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sf::exp {

Json
buildReport(const std::vector<ExperimentResults> &experiments,
            const ReportOptions &opts)
{
    Json report = Json::object();
    report.set("schema", kReportSchema);
    report.set("suite", "string-figure");
    report.set("effort", std::string(effortName(opts.effort)));
    report.set("base_seed", opts.baseSeed);
    // Result-affecting, so never hidden behind includeTiming; the
    // greedy default is omitted to keep pre-seam report bytes (and
    // the committed goldens) unchanged.
    if (opts.policy != core::RoutingPolicyKind::Greedy)
        report.set("policy",
                   core::routingPolicyName(opts.policy));
    if (opts.includeTiming) {
        report.set("jobs", static_cast<std::int64_t>(opts.jobs));
        report.set("shards",
                   static_cast<std::int64_t>(opts.shards));
        report.set("wavefront",
                   static_cast<std::int64_t>(opts.wavefront));
    }

    Json exps = Json::array();
    for (const ExperimentResults &er : experiments) {
        Json e = Json::object();
        e.set("name", er.spec->name);
        e.set("artefact", er.spec->artefact);
        e.set("title", er.spec->title);
        e.set("deterministic", er.spec->deterministic);
        if (opts.includeTiming)
            e.set("wall_ms", er.wallMs);
        Json runs = Json::array();
        for (const RunResult &r : er.runs) {
            Json run = Json::object();
            run.set("id", r.id);
            run.set("seed", r.seed);
            run.set("params", r.params);
            if (r.failed) {
                run.set("failed", true);
                run.set("error", r.error);
            }
            run.set("metrics", r.metrics);
            if (opts.includeTiming)
                run.set("wall_ms", r.wallMs);
            runs.push(std::move(run));
        }
        e.set("runs", std::move(runs));
        exps.push(std::move(e));
    }
    report.set("experiments", std::move(exps));
    return report;
}

namespace {

std::string
cellText(const Json &v)
{
    if (v.isString())
        return v.asString();
    if (v.isDouble()) {
        // Fixed, low-noise table formatting; the JSON report keeps
        // full precision. Very large and very small magnitudes fall
        // back to compact %.4g so columns stay narrow.
        char buf[32];
        const double d = v.asDouble();
        if (d == 0.0 ||
            (std::fabs(d) >= 0.01 && std::fabs(d) < 1e6))
            std::snprintf(buf, sizeof buf, "%.2f", d);
        else
            std::snprintf(buf, sizeof buf, "%.4g", d);
        return buf;
    }
    return v.dump();
}

} // namespace

std::string
renderTable(const ExperimentResults &results)
{
    // Column set: run id + metric keys in first-appearance order.
    std::vector<std::string> columns{"run"};
    for (const RunResult &r : results.runs) {
        if (!r.metrics.isObject())
            continue;
        for (const Json::Member &m : r.metrics.asObject()) {
            bool known = false;
            for (std::size_t c = 1; c < columns.size(); ++c)
                known = known || columns[c] == m.first;
            if (!known)
                columns.push_back(m.first);
        }
    }

    std::vector<std::vector<std::string>> rows;
    rows.push_back(columns);
    for (const RunResult &r : results.runs) {
        std::vector<std::string> row{r.id};
        for (std::size_t c = 1; c < columns.size(); ++c) {
            const Json *v = r.metrics.isObject()
                                ? r.metrics.find(columns[c])
                                : nullptr;
            row.push_back(v ? cellText(*v)
                            : (r.failed ? "ERR" : "-"));
        }
        rows.push_back(std::move(row));
    }

    std::vector<std::size_t> widths(columns.size(), 0);
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::string out;
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out.append(widths[c] - row[c].size() + 2, ' ');
        }
        out.push_back('\n');
    }
    return out;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw std::runtime_error("cannot open for writing: " +
                                 path);
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    const int rc = std::fclose(f);
    if (written != text.size() || rc != 0)
        throw std::runtime_error("short write: " + path);
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw std::runtime_error("cannot open for reading: " +
                                 path);
    std::string text;
    char buffer[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, f)) > 0)
        text.append(buffer, got);
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed)
        throw std::runtime_error("read error: " + path);
    return text;
}

} // namespace sf::exp

/**
 * @file
 * The experiment engine's shared worker pool.
 *
 * Extracted from the scheduler (which used to own its threads
 * privately) so that nested work can ride the same threads: the
 * scheduler submits whole run bodies as one batch, and a body —
 * via sim::Executor in its RunContext — submits its own nested
 * batches (e.g. the saturation search's concurrent probe rates).
 * Idle workers then execute nested tasks of long-running runs,
 * which is what shortens the sweep-tail critical path.
 *
 * Batch semantics (runAll):
 *  - The calling thread participates: it claims and executes tasks
 *    of its own batch, so a pool with zero workers degrades to
 *    inline serial execution.
 *  - Workers claim tasks from any active batch in submission
 *    order.
 *  - Nested runAll() from inside a task cannot deadlock: the
 *    nested caller executes its own tasks, and blocked waiting
 *    happens only for tasks another thread is actively running.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/executor.hpp"

namespace sf::exp {

/** Work-sharing thread pool implementing sim::Executor. */
class WorkPool final : public sim::Executor {
  public:
    /**
     * @param parallelism Total concurrent executors, including the
     *        thread that calls runAll(); the pool spawns
     *        parallelism - 1 workers. 1 (or less) means fully
     *        inline execution with no threads.
     */
    explicit WorkPool(int parallelism);
    ~WorkPool() override;

    WorkPool(const WorkPool &) = delete;
    WorkPool &operator=(const WorkPool &) = delete;

    /** Configured total parallelism (workers + caller). */
    int parallelism() const { return parallelism_; }

    int availableParallelism() const override;

    void runAll(std::vector<std::function<void()>> &tasks) override;

  private:
    struct Batch {
        /**
         * The submitter's task vector. Valid only while the batch
         * is incomplete: the submitter returns from runAll() (and
         * may destroy the vector) once done == size, so helpers
         * must never dereference it after failing to claim an
         * index — they use the copied size instead.
         */
        std::vector<std::function<void()>> *tasks = nullptr;
        std::size_t size = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::mutex errorMutex;
        std::exception_ptr error;
    };

    void workerLoop();

    /** Claim-and-run one task of @p batch. False when exhausted. */
    bool runOneTask(const std::shared_ptr<Batch> &batch);

    int parallelism_ = 1;
    std::vector<std::thread> workers_;

    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable batchDone_;
    std::vector<std::shared_ptr<Batch>> active_;
    std::atomic<int> idleWorkers_{0};
    bool stopping_ = false;
};

} // namespace sf::exp

#include "exp/work_pool.hpp"

#include <algorithm>

namespace sf::exp {

WorkPool::WorkPool(int parallelism)
    : parallelism_(std::max(1, parallelism))
{
    workers_.reserve(static_cast<std::size_t>(parallelism_ - 1));
    for (int i = 1; i < parallelism_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkPool::~WorkPool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

int
WorkPool::availableParallelism() const
{
    return 1 + std::max(0, idleWorkers_.load(
                               std::memory_order_relaxed));
}

void
WorkPool::runAll(std::vector<std::function<void()>> &tasks)
{
    if (tasks.empty())
        return;
    if (tasks.size() == 1 || workers_.empty()) {
        // The serial executor implements the same
        // drain-then-rethrow contract inline.
        sim::serialExecutor().runAll(tasks);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->tasks = &tasks;
    batch->size = tasks.size();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        active_.push_back(batch);
    }
    workAvailable_.notify_all();

    // The caller executes its own batch too: a fully busy pool
    // degrades to inline execution instead of queueing behind
    // other batches.
    while (runOneTask(batch)) {
    }

    {
        std::unique_lock<std::mutex> lock(mutex_);
        batchDone_.wait(lock, [&] {
            return batch->done.load(std::memory_order_acquire) ==
                   tasks.size();
        });
        std::erase(active_, batch);
    }
    if (batch->error)
        std::rethrow_exception(batch->error);
}

bool
WorkPool::runOneTask(const std::shared_ptr<Batch> &batch)
{
    const std::size_t size = batch->size;
    const std::size_t i =
        batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= size)
        return false;
    // Claiming i < size keeps the task vector alive: the submitter
    // blocks in runAll() until done == size, which cannot happen
    // before this task finishes.
    try {
        (*batch->tasks)[i]();
    } catch (...) {
        const std::lock_guard<std::mutex> lock(batch->errorMutex);
        if (!batch->error)
            batch->error = std::current_exception();
    }
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        size) {
        const std::lock_guard<std::mutex> lock(mutex_);
        batchDone_.notify_all();
    }
    return true;
}

void
WorkPool::workerLoop()
{
    while (true) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            while (true) {
                if (stopping_)
                    return;
                // Prune exhausted batches; their waiters hold
                // their own shared_ptr. Only the copied size is
                // consulted — the task vector may be gone.
                std::erase_if(active_, [](const auto &b) {
                    return b->next.load(
                               std::memory_order_relaxed) >=
                           b->size;
                });
                for (const auto &candidate : active_) {
                    if (candidate->next.load(
                            std::memory_order_relaxed) <
                        candidate->size) {
                        batch = candidate;
                        break;
                    }
                }
                if (batch)
                    break;
                idleWorkers_.fetch_add(
                    1, std::memory_order_relaxed);
                workAvailable_.wait(lock);
                idleWorkers_.fetch_sub(
                    1, std::memory_order_relaxed);
            }
        }
        while (runOneTask(batch)) {
        }
    }
}

} // namespace sf::exp

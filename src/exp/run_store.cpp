#include "exp/run_store.hpp"

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

#include "exp/report.hpp"
#include "net/rng.hpp"

namespace fs = std::filesystem;

namespace sf::exp {

namespace {

std::string
hex16(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

/**
 * Filesystem-safe rendering of a name. Run ids contain '/' and
 * other grid punctuation; the readable part keeps [A-Za-z0-9._-]
 * and the appended id hash guarantees distinct ids never share a
 * file even when sanitisation collides them.
 */
std::string
sanitize(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' ||
                          c == '_' || c == '-';
        out.push_back(safe ? c : '_');
    }
    if (out.size() > 80)
        out.resize(80);
    return out;
}

std::string
entryFileName(const std::string &experiment,
              const std::string &runId)
{
    // The hash chains experiment into run id so even two
    // experiments whose *names* sanitise to the same directory
    // keep distinct entry files.
    return sanitize(runId) + "-" +
           hex16(fnv1a64(runId, fnv1a64(experiment))) + ".json";
}

/**
 * Checksum of an entry, its own "check" member excluded: the hex
 * fnv64 of the compact dump of everything else, so truncation or a
 * flipped byte anywhere in the stored values fails verification on
 * load.
 */
std::string
checksumOf(const Json &entry)
{
    Json payload = Json::object();
    for (const Json::Member &m : entry.asObject())
        if (m.first != "check")
            payload.set(m.first, m.second);
    return hex16(fnv1a64(payload.dump()));
}

/** Best-effort fsync of a directory's entry list (some
 *  filesystems refuse directory handles; rename atomicity does not
 *  depend on it, only rename *durability* does). */
void
fsyncDirBestEffort(const fs::path &dir)
{
    const int dir_fd =
        ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dir_fd >= 0) {
        ::fsync(dir_fd);
        ::close(dir_fd);
    }
}

/**
 * Atomic *and durable* replacement of @p path: write a temp file,
 * fsync it, rename over the target, then (when @p sync_dir) fsync
 * the directory. The entry appears fully written or not at all —
 * and once this returns with @p sync_dir, it survives a power
 * loss. Rename-without-fsync is not enough: the journaled rename
 * can reach disk before the payload blocks do, and after a crash
 * the entry then exists with missing bytes — the checksum
 * quarantines it and a run that had actually completed is silently
 * re-executed (or, for meta.json, the whole checkpoint is
 * rejected). Callers that pass sync_dir=false keep per-entry
 * atomicity (the payload is fsynced *before* the rename, so a
 * crash leaves either the complete file or none) but must issue
 * the parent-directory fsync themselves to make the rename
 * durable — RunStore::store batches exactly that. Throws
 * std::runtime_error on any failure, leaving no temp file behind.
 */
void
writeFileAtomic(const fs::path &path, const std::string &text,
                bool sync_dir = true)
{
    const fs::path tmp = path.string() + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        throw std::runtime_error("cannot open for writing: " +
                                 tmp.string());
    std::size_t off = 0;
    bool ok = true;
    while (ok && off < text.size()) {
        const ssize_t put =
            ::write(fd, text.data() + off, text.size() - off);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            ok = false;
        } else {
            off += static_cast<std::size_t>(put);
        }
    }
    ok = ok && ::fsync(fd) == 0;
    ok = (::close(fd) == 0) && ok;
    if (!ok) {
        std::error_code ec;
        fs::remove(tmp, ec);
        throw std::runtime_error("short write: " + tmp.string());
    }
    try {
        fs::rename(tmp, path);
    } catch (...) {
        std::error_code ec;
        fs::remove(tmp, ec);
        throw;
    }
    // The rename itself is only durable once the directory's
    // entry list is.
    if (sync_dir)
        fsyncDirBestEffort(path.parent_path());
}

} // namespace

std::string
specHash(const ExperimentSpec &exp, const std::vector<RunSpec> &runs,
         Effort effort, std::uint64_t baseSeed)
{
    Json doc = Json::object();
    doc.set("experiment", exp.name);
    doc.set("artefact", exp.artefact);
    doc.set("title", exp.title);
    doc.set("deterministic", exp.deterministic);
    doc.set("effort", std::string(effortName(effort)));
    doc.set("base_seed", baseSeed);
    Json grid = Json::array();
    for (const RunSpec &run : runs) {
        Json cell = Json::object();
        cell.set("id", run.id);
        cell.set("seed", deriveSeed(exp.name, run.id, baseSeed));
        cell.set("params", run.params);
        grid.push(std::move(cell));
    }
    doc.set("runs", std::move(grid));
    return hex16(fnv1a64(doc.dump()));
}

RunStore::RunStore(std::string dir) : root_(std::move(dir))
{
    fs::create_directories(root_);
}

void
RunStore::bindInvocation(const Json &meta)
{
    const fs::path path = fs::path(root_) / "meta.json";
    if (!fs::exists(path)) {
        writeFileAtomic(path, meta.dump(2) + "\n");
        return;
    }
    Json existing;
    try {
        existing = Json::parse(readFile(path.string()));
    } catch (const std::exception &e) {
        throw std::runtime_error("corrupt checkpoint meta " +
                                 path.string() + ": " + e.what());
    }
    for (const Json::Member &m : meta.asObject()) {
        const Json *have = existing.find(m.first);
        if (!have || !(*have == m.second))
            throw std::runtime_error(
                "checkpoint " + root_ +
                " belongs to a different invocation (" + m.first +
                ": " + (have ? have->dump() : "absent") +
                ", this run needs " + m.second.dump() + ")");
    }
}

Json
RunStore::readInvocationMeta(const std::string &dir)
{
    const fs::path path = fs::path(dir) / "meta.json";
    if (!fs::exists(path))
        throw std::runtime_error(
            "not a checkpoint directory (no meta.json): " + dir);
    Json meta = Json::parse(readFile(path.string()));
    const Json *schema = meta.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != kSchema)
        throw std::runtime_error("not an " + std::string(kSchema) +
                                 " checkpoint: " + dir);
    return meta;
}

std::string
RunStore::entryPath(const std::string &experiment,
                    const std::string &runId) const
{
    return (fs::path(root_) / sanitize(experiment) / "runs" /
            entryFileName(experiment, runId))
        .string();
}

void
RunStore::logEvent(const char *event, const Key &key)
{
    // Caller holds mutex_ (appends must serialise so journal lines
    // never interleave).
    Json line = Json::object();
    line.set("event", event);
    line.set("experiment", key.experiment);
    line.set("run", key.runId);
    line.set("spec_hash", key.specHash);
    try {
        appendJsonLine(
            (fs::path(root_) / "journal.jsonl").string(), line);
    } catch (const std::exception &) {
        // The journal is diagnostic only; never fail an operation
        // over it.
    }
}

void
RunStore::quarantine(const std::string &path, const Key &key)
{
    const fs::path dir = fs::path(root_) / "quarantine";
    std::error_code ec;
    fs::create_directories(dir, ec);
    // Uniquify the target: the same entry can be quarantined once
    // per resume (corrupted again, or never successfully re-run),
    // and a colliding name would overwrite — or, where rename onto
    // an existing file fails, fall through to remove — the earlier
    // corpse; either way post-mortem evidence is lost.
    const std::string base = sanitize(key.experiment) + "__" +
                             fs::path(path).filename().string();
    fs::path target = dir / base;
    for (int n = 2; fs::exists(target, ec); ++n)
        target = dir / (base + "." + std::to_string(n));
    fs::rename(path, target, ec);
    if (ec)
        fs::remove(path, ec); // at minimum get it out of runs/
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.quarantined;
    logEvent("quarantine", key);
}

RunStore::EntryState
RunStore::classify(const Key &key, Json *entry_out) const
{
    const std::string path = entryPath(key.experiment, key.runId);
    if (!fs::exists(path))
        return EntryState::Missing;
    Json entry;
    try {
        entry = Json::parse(readFile(path));
        // Structural validation: every field the report needs, plus
        // a checksum that catches in-place corruption.
        const Json *schema = entry.find("schema");
        if (!schema || !schema->isString() ||
            schema->asString() != kSchema)
            throw JsonError("bad schema");
        (void)entry.at("experiment").asString();
        (void)entry.at("id").asString();
        (void)entry.at("seed").asUint();
        (void)entry.at("spec_hash").asString();
        (void)entry.at("metrics");
        if (entry.at("check").asString() != checksumOf(entry))
            throw JsonError("checksum mismatch");
    } catch (const std::exception &) {
        return EntryState::Corrupt;
    }
    if (entry.at("experiment").asString() != key.experiment ||
        entry.at("id").asString() != key.runId ||
        entry.at("seed").asUint() != key.seed ||
        entry.at("spec_hash").asString() != key.specHash)
        return EntryState::Stale;
    if (entry_out)
        *entry_out = std::move(entry);
    return EntryState::Valid;
}

bool
RunStore::load(const Key &key, RunResult &out)
{
    Json entry;
    switch (classify(key, &entry)) {
    case EntryState::Missing: {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return false;
    }
    case EntryState::Corrupt:
        quarantine(entryPath(key.experiment, key.runId), key);
        return false;
    case EntryState::Stale: {
        // Valid entry from an older registry / other invocation:
        // stale, not corrupt. Leave it in place — a fresh result
        // under the current key overwrites it via store().
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.stale;
        logEvent("stale", key);
        return false;
    }
    case EntryState::Valid:
        break;
    }
    out.metrics = entry.at("metrics");
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return true;
}

RunStore::EntryState
RunStore::inspect(const Key &key) const
{
    return classify(key, nullptr);
}

void
RunStore::store(const Key &key, const RunResult &result)
{
    const std::size_t attempt =
        writeAttempts_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (writeFilter && !writeFilter(attempt)) {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.dropped;
        return;
    }
    Json entry = Json::object();
    entry.set("schema", kSchema);
    entry.set("experiment", key.experiment);
    entry.set("id", key.runId);
    entry.set("seed", key.seed);
    entry.set("spec_hash", key.specHash);
    entry.set("params", result.params);
    entry.set("metrics", result.metrics);
    entry.set("check", checksumOf(entry));
    const std::string path = entryPath(key.experiment, key.runId);
    try {
        fs::create_directories(fs::path(path).parent_path());
        // sync_dir=false: the entry is atomic on its own (payload
        // fsynced before the rename); the parent-directory fsync
        // that makes the rename *durable* is batched below, one
        // directory pass per kDirSyncInterval entries instead of
        // one fsync per entry.
        writeFileAtomic(path, entry.dump(2) + "\n",
                        /*sync_dir=*/false);
    } catch (const std::exception &) {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.writeErrors;
        return;
    }
    std::vector<std::string> to_sync;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.writes;
        logEvent("store", key);
        const std::string parent =
            fs::path(path).parent_path().string();
        if (std::find(dirtyDirs_.begin(), dirtyDirs_.end(),
                      parent) == dirtyDirs_.end())
            dirtyDirs_.push_back(parent);
        if (++pendingDirSync_ >= kDirSyncInterval) {
            to_sync.swap(dirtyDirs_);
            pendingDirSync_ = 0;
            stats_.dirSyncs += to_sync.size();
        }
    }
    // fsync outside the lock: other workers keep checkpointing
    // while this batch's directories flush.
    for (const std::string &dir : to_sync)
        fsyncDirBestEffort(dir);
}

void
RunStore::flushDurability()
{
    std::vector<std::string> to_sync;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        to_sync.swap(dirtyDirs_);
        pendingDirSync_ = 0;
        stats_.dirSyncs += to_sync.size();
    }
    for (const std::string &dir : to_sync)
        fsyncDirBestEffort(dir);
}

RunStore::~RunStore() { flushDurability(); }

RunStore::Stats
RunStore::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace sf::exp

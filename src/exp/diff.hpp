/**
 * @file
 * Report diffing for the perf trajectory: compare two
 * sf-exp-report-v1 documents run by run, metric by metric, with a
 * relative tolerance gate — `sfx diff baseline.json current.json`
 * exits nonzero when a deterministic metric moved beyond the
 * tolerance (or when runs/experiments appeared or vanished), so CI
 * can pin every BENCH_*.json against a committed baseline.
 *
 * Experiments marked non-deterministic in the report (wall-clock
 * microbenchmarks) are compared informationally but never gate:
 * their numbers legitimately differ across machines and runs.
 */

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "exp/json.hpp"

namespace sf::exp {

/** Diff knobs. */
struct DiffOptions {
    /**
     * Maximum accepted relative change of a deterministic numeric
     * metric, e.g. 0.05 = 5%. The default demands byte-equal
     * values. Percentile metrics (see isPercentileMetric) are
     * exempt from the tolerance: they always exact-compare.
     */
    double tolerance = 0.0;
};

/**
 * Percentile-family metric names ("p50", "p95", "p999", ...,
 * "max", and prefixed variants like "net_p99"): integral cycle
 * counts that are pure functions of the deterministic event
 * stream, so on a deterministic experiment *any* drift is a
 * regression — no tolerance excuses it. A tolerance exists to
 * absorb benign float noise; percentiles have none.
 */
bool isPercentileMetric(std::string_view key);

/**
 * Reconvergence-family metric names from the elastic experiments
 * ("ev0_blip", "ev1_drop_burst", "ev2_reconverge", and any other
 * `*_blip` / `*_burst` / `*_reconverge`): degradation-window
 * measurements that, like percentiles, are integral functions of
 * the deterministic event stream. They always exact-compare — a
 * longer blip or a bigger drop burst is a real behaviour change no
 * tolerance should forgive.
 */
bool isReconvergenceMetric(std::string_view key);

/** One metric whose value differs between the two reports. */
struct MetricDelta {
    std::string experiment;
    std::string run;
    std::string metric;
    double before = 0.0;
    double after = 0.0;
    /** (after - before) / max(|before|, tiny). */
    double relDelta = 0.0;
    /** From an experiment the determinism contract covers? */
    bool deterministic = true;
    /** Deterministic and beyond tolerance (drives the exit code). */
    bool regression = false;
};

/** Outcome of diffing two reports. */
struct ReportDiff {
    /** Numeric metrics that moved, report order. */
    std::vector<MetricDelta> changed;
    /**
     * Structural mismatches ("experiment fig10_saturation only in
     * baseline", "run a/b only in current", non-numeric metric
     * flips, schema problems). Always gate.
     */
    std::vector<std::string> structural;
    /** Metric values compared (including equal ones). */
    std::size_t compared = 0;
    /** Deterministic regressions beyond tolerance. */
    std::size_t regressions = 0;

    /** True when nothing gates: CI may pass. */
    bool clean() const
    {
        return regressions == 0 && structural.empty();
    }
};

/**
 * Compare two parsed reports. @p a is the baseline, @p b the
 * candidate. Throws JsonError when either document does not look
 * like an sf-exp-report-v1.
 */
ReportDiff diffReports(const Json &a, const Json &b,
                       const DiffOptions &opts = {});

/** Human-readable rendering (empty string when identical). */
std::string renderDiff(const ReportDiff &diff);

/**
 * Structured rendering ("sf-exp-diff-v1"): the whole diff as one
 * JSON document for tooling — `sfx diff --json` prints exactly
 * this.
 */
Json diffToJson(const ReportDiff &diff);

} // namespace sf::exp

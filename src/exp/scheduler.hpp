/**
 * @file
 * Scheduler fanning independent experiment runs out across cores.
 * Results land at their plan index regardless of completion order,
 * and per-run seeds derive from stable names, so any job count
 * produces the identical result vector.
 *
 * The threads live in a WorkPool (work_pool.hpp) rather than in
 * the scheduler privately: each run body receives the pool as the
 * sim::Executor in its RunContext and may submit nested batches
 * (e.g. concurrent saturation probes), which idle workers execute.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/spec.hpp"

namespace sf::exp {

class RunStore;

/** Outcome of one scheduled run. */
struct RunResult {
    std::string id;
    Json params = Json::object();
    /** Metrics the body returned (empty object when failed). */
    Json metrics = Json::object();
    std::uint64_t seed = 0;
    /** Wall-clock of the body, milliseconds (not in default reports). */
    double wallMs = 0.0;
    bool failed = false;
    std::string error;
    /** Served from the checkpoint store; body never executed.
     *  Scheduling detail only — reports look identical either way. */
    bool fromCheckpoint = false;
    /** Not executed: the maxExecuted cap (simulated interrupt) hit
     *  first. The sweep is incomplete and must not be reported. */
    bool skipped = false;
};

/** Scheduler knobs. */
struct SchedulerOptions {
    /** Worker threads; 0 means hardware concurrency. */
    int jobs = 0;
    /** Route-plane shards per simulation (RunContext::shards);
     *  results are identical at any value, like jobs. */
    int shards = 1;
    /** Memoized route plane (RunContext::routeCache); results are
     *  identical on or off, like jobs and shards. */
    bool routeCache = true;
    /** Commit-wavefront width (RunContext::wavefront); results
     *  are identical at any width, like jobs and shards. */
    int wavefront = 0;
    /** Routing policy (RunContext::policy). Changes results for
     *  non-greedy values — a sweep parameter, not an execution
     *  knob like jobs/shards/routeCache. */
    core::RoutingPolicyKind policy =
        core::RoutingPolicyKind::Greedy;
    Effort effort = Effort::Default;
    std::uint64_t baseSeed = kBaseSeed;
    /**
     * Progress hook, called after each run completes with
     * (completed so far, total, finished run). Invoked under a lock;
     * keep it cheap. May be empty.
     */
    std::function<void(std::size_t, std::size_t, const RunResult &)>
        onRunDone;
    /**
     * Checkpoint store (may be null): runs it already holds under
     * (experiment, id, seed, specHash) load instead of executing,
     * and fresh successful results persist back immediately.
     */
    RunStore *store = nullptr;
    /** Plan hash of the experiment being run; see specHash(). */
    std::string specHash;
    /**
     * Execute at most this many run bodies (0 = unlimited).
     * Checkpoint loads don't count. Runs beyond the cap come back
     * with skipped = true — a deterministic stand-in for "the
     * process died mid-sweep" that `sfx run --max-runs` and the
     * crash-recovery tests use.
     */
    std::size_t maxExecuted = 0;
    /**
     * Shared executed-body counter for caps spanning several
     * runExperiment() calls (one sfx invocation sweeps many
     * experiments). Null means count per call.
     */
    std::atomic<std::size_t> *executedCount = nullptr;
};

/** Resolve the effective worker count for @p opts over @p n runs. */
int effectiveJobs(const SchedulerOptions &opts, std::size_t n);

/**
 * Total work-pool parallelism for @p n runs: not clamped to the
 * run count, because surplus workers serve nested batches (up to 8
 * saturation probes per run), but never more than requested /
 * available.
 */
int poolJobs(const SchedulerOptions &opts, std::size_t n);

/**
 * Execute every run of @p exp (already planned as @p runs) and
 * return results in plan order. A throwing body marks its run
 * failed and never tears down the sweep.
 */
std::vector<RunResult> runExperiment(const ExperimentSpec &exp,
                                     const std::vector<RunSpec> &runs,
                                     const SchedulerOptions &opts);

} // namespace sf::exp

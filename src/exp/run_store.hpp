/**
 * @file
 * Experiment-level checkpointing: a durable store of completed run
 * results, keyed by (experiment, run id, seed, spec hash), that
 * makes long sweeps resumable — `sfx run --checkpoint DIR` skips
 * runs the directory already holds, and `sfx resume DIR` finishes
 * an interrupted invocation.
 *
 * Checkpoint directory layout:
 *
 *   DIR/meta.json                       invocation binding (patterns,
 *                                       effort, base seed, run filter)
 *   DIR/<experiment>/runs/<entry>.json  one completed run each
 *   DIR/quarantine/                     corrupt entries, moved aside
 *   DIR/journal.jsonl                   append-only event stream
 *
 * Durability discipline:
 *  - Entries are written atomically: full temp file, fsync, then
 *    rename, so a crash mid-write never leaves a half entry under
 *    runs/.
 *  - The parent-directory fsync that makes each rename *durable*
 *    is batched: one pass over the dirty directories every
 *    kDirSyncInterval stored entries (plus a flush on destruction)
 *    instead of one fsync per entry. A crash can therefore lose
 *    only the *existence* of the most recent entries — never their
 *    integrity — and a lost entry is just a miss that re-executes
 *    on resume. meta.json stays immediately durable.
 *  - Every entry embeds a checksum over its own payload; load
 *    recomputes it, and any corruption (truncation, bit flip, bad
 *    JSON) moves the file to quarantine/ and reports a miss, so the
 *    run is re-executed instead of trusted.
 *  - Entries carry the spec hash of the plan that produced them
 *    (specHash() over the experiment's expanded run grid, effort,
 *    and base seed). When the registry changes, the hash changes,
 *    which invalidates exactly the affected experiment's entries —
 *    they count as stale, are re-run, and are overwritten in place.
 *
 * Because every run is a pure, deterministically seeded function of
 * (experiment, run id, seed) — see spec.hpp — a report rebuilt from
 * a mix of stored and freshly executed runs is byte-identical to an
 * uninterrupted sweep; test_run_store.cpp pins that with a
 * crash-injection harness.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "exp/scheduler.hpp"

namespace sf::exp {

/**
 * Hash of an experiment's expanded plan: name, artefact, title,
 * determinism flag, effort, base seed, and every run's (id, derived
 * seed, params). A checkpoint entry is valid only under the exact
 * hash it was written with, so registry edits can never be silently
 * served from stale results. Pure function of the plan — never of
 * registry iteration order, scheduling, or job count.
 */
std::string specHash(const ExperimentSpec &exp,
                     const std::vector<RunSpec> &runs, Effort effort,
                     std::uint64_t baseSeed);

/** Durable per-run result store under one checkpoint directory. */
class RunStore {
  public:
    /** Schema tag of meta.json and every entry file. */
    static constexpr const char *kSchema = "sf-exp-checkpoint-v1";

    /** The full key a stored result is valid under. */
    struct Key {
        std::string experiment;
        std::string runId;
        std::uint64_t seed = 0;
        std::string specHash;
    };

    /** Counters for one store's lifetime (all loads + stores). */
    struct Stats {
        /** Valid entries served in place of execution. */
        std::size_t hits = 0;
        /** Lookups with no entry on disk. */
        std::size_t misses = 0;
        /** Well-formed entries under an outdated key, re-run. */
        std::size_t stale = 0;
        /** Corrupt files moved to quarantine/, re-run. */
        std::size_t quarantined = 0;
        /** Entries persisted. */
        std::size_t writes = 0;
        /** Writes suppressed by the writeFilter test hook. */
        std::size_t dropped = 0;
        /** Persist attempts that failed (disk errors). */
        std::size_t writeErrors = 0;
        /** Parent-directory fsyncs issued by the durability
         *  batcher (store() flushes + flushDurability()). */
        std::size_t dirSyncs = 0;
    };

    /** Entries stored between parent-directory fsync batches: the
     *  most store() calls whose durability can be pending at once
     *  (a crash loses at most this many entries — as misses that
     *  re-execute on resume, never as corruption). */
    static constexpr std::size_t kDirSyncInterval = 32;

    /** Open (creating as needed) the checkpoint directory. */
    explicit RunStore(std::string dir);

    /** Flushes any batched directory fsyncs (flushDurability). */
    ~RunStore();

    const std::string &dir() const { return root_; }

    /**
     * Bind this directory to an invocation: create meta.json, or
     * validate an existing one field by field. Throws
     * std::runtime_error when the directory belongs to a different
     * invocation (other patterns, effort, base seed, or run filter).
     */
    void bindInvocation(const Json &meta);

    /**
     * Read DIR/meta.json without creating anything; throws
     * std::runtime_error when @p dir is not a checkpoint directory.
     */
    static Json readInvocationMeta(const std::string &dir);

    /**
     * Fetch the stored result for @p key into @p out (metrics only;
     * id/params/seed already come from the plan). False on miss,
     * stale key, or corruption — the caller executes the run.
     */
    bool load(const Key &key, RunResult &out);

    /** Classification of one entry file by inspect(). */
    enum class EntryState {
        Missing,  ///< no entry file on disk
        Valid,    ///< well-formed and keyed by @p key exactly
        Stale,    ///< well-formed but under an outdated key
        Corrupt,  ///< unreadable / checksum mismatch
    };

    /**
     * Read-only classification of the entry for @p key: unlike
     * load(), never quarantines, journals, or counts stats — the
     * status report must not change what a later resume observes.
     */
    EntryState inspect(const Key &key) const;

    /**
     * Persist a successfully completed run. Failed runs are never
     * stored (they re-execute on resume). Disk errors are counted
     * in stats().writeErrors, not thrown: losing a checkpoint entry
     * must not fail the sweep that produced it.
     */
    void store(const Key &key, const RunResult &result);

    /**
     * Fsync every directory with entries renamed in since the last
     * batch flush, making all previously stored entries durable.
     * Called automatically every kDirSyncInterval stores and on
     * destruction; callers needing a durability point mid-sweep
     * (e.g. before reporting progress externally) may invoke it
     * directly. Best-effort like the per-entry path: filesystems
     * that refuse directory handles simply skip the fsync.
     */
    void flushDurability();

    Stats stats() const;

    /** Absolute path of the entry file for (experiment, run id). */
    std::string entryPath(const std::string &experiment,
                          const std::string &runId) const;

    /**
     * Test hook for crash injection: invoked before persisting the
     * n-th entry (1-based, counted across threads); returning false
     * drops the write, simulating a process killed after n-1
     * completed checkpoints.
     */
    std::function<bool(std::size_t attempt)> writeFilter;

  private:
    /** Shared validation behind load() and inspect(): classify the
     *  entry on disk; on Valid, the parsed entry lands in
     *  @p entry_out (when non-null). */
    EntryState classify(const Key &key, Json *entry_out) const;
    void logEvent(const char *event, const Key &key);
    void quarantine(const std::string &path, const Key &key);

    std::string root_;
    mutable std::mutex mutex_; ///< guards stats_, journal appends,
                               ///< and the dir-sync batch state
    Stats stats_;
    std::atomic<std::size_t> writeAttempts_{0};
    /** Directories holding renames not yet made durable. */
    std::vector<std::string> dirtyDirs_;
    /** Entries stored since the last batch flush. */
    std::size_t pendingDirSync_ = 0;
};

} // namespace sf::exp

#include "exp/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace sf::exp {

void
Json::set(std::string_view key, Json v)
{
    Object &obj = asObject();
    for (Member &m : obj) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    obj.emplace_back(std::string(key), std::move(v));
}

const Json *
Json::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    for (const Member &m : asObject())
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const Json &
Json::at(std::string_view key) const
{
    if (const Json *v = find(key))
        return *v;
    throw JsonError("missing key: " + std::string(key));
}

bool
Json::operator==(const Json &other) const
{
    // Compare mixed numeric alternatives by value so a parsed "3"
    // equals a Double(3.0) that dumped as "3", and a small Uint
    // equals the Int it parses back as.
    if (isNumber() && other.isNumber() && !isDouble() &&
        !other.isDouble() && isInt() != other.isInt()) {
        // int64 / uint64 mix: equal only when both sides are
        // representable as the same unsigned value.
        if (isInt() && std::get<std::int64_t>(value_) < 0)
            return false;
        if (other.isInt() &&
            std::get<std::int64_t>(other.value_) < 0)
            return false;
        return asUint() == other.asUint();
    }
    if (isNumber() && other.isNumber() &&
        isDouble() != other.isDouble())
        return asDouble() == other.asDouble();
    return value_ == other.value_;
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
appendNumber(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no NaN/Inf; null keeps the document valid and
        // makes the pathology visible instead of crashing a reader.
        out += "null";
        return;
    }
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof buf, d);
    out.append(buf, r.ptr);
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    if (isNull()) {
        out += "null";
    } else if (isBool()) {
        out += asBool() ? "true" : "false";
    } else if (isInt()) {
        char buf[24];
        const auto r = std::to_chars(
            buf, buf + sizeof buf, std::get<std::int64_t>(value_));
        out.append(buf, r.ptr);
    } else if (isUint()) {
        char buf[24];
        const auto r = std::to_chars(
            buf, buf + sizeof buf,
            std::get<std::uint64_t>(value_));
        out.append(buf, r.ptr);
    } else if (isDouble()) {
        appendNumber(out, std::get<double>(value_));
    } else if (isString()) {
        appendEscaped(out, asString());
    } else if (isArray()) {
        const Array &a = asArray();
        if (a.empty()) {
            out += "[]";
            return;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (i)
                out.push_back(',');
            if (indent)
                newlineIndent(out, indent, depth + 1);
            a[i].dumpTo(out, indent, depth + 1);
        }
        if (indent)
            newlineIndent(out, indent, depth);
        out.push_back(']');
    } else {
        const Object &o = asObject();
        if (o.empty()) {
            out += "{}";
            return;
        }
        out.push_back('{');
        for (std::size_t i = 0; i < o.size(); ++i) {
            if (i)
                out.push_back(',');
            if (indent)
                newlineIndent(out, indent, depth + 1);
            appendEscaped(out, o[i].first);
            out.push_back(':');
            if (indent)
                out.push_back(' ');
            o[i].second.dumpTo(out, indent, depth + 1);
        }
        if (indent)
            newlineIndent(out, indent, depth);
        out.push_back('}');
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ------------------------------------------------------------- parser

namespace {

class Parser {
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json document()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

    std::vector<Json> documents(bool dropTruncatedTail)
    {
        std::vector<Json> out;
        skipWs();
        while (pos_ < text_.size()) {
            try {
                out.push_back(value());
            } catch (const JsonError &) {
                // A parse failure *at* end of input is a document
                // cut off mid-write; anywhere earlier it is real
                // corruption.
                if (dropTruncatedTail && pos_ >= text_.size())
                    return out;
                throw;
            }
            skipWs();
        }
        return out;
    }

  private:
    [[noreturn]] void fail(const char *what)
    {
        throw JsonError("JSON parse error at offset " +
                        std::to_string(pos_) + ": " + what);
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expect(char c)
    {
        if (!consume(c))
            fail("unexpected character");
    }

    void literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            fail("bad literal");
        pos_ += word.size();
    }

    Json value()
    {
        skipWs();
        switch (peek()) {
        case '{': return object();
        case '[': return array();
        case '"': return Json(string());
        case 't': literal("true"); return Json(true);
        case 'f': literal("false"); return Json(false);
        case 'n': literal("null"); return Json(nullptr);
        default: return number();
        }
    }

    Json object()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (consume('}'))
            return obj;
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            obj.asObject().emplace_back(std::move(key), value());
            skipWs();
            if (consume('}'))
                return obj;
            expect(',');
        }
    }

    Json array()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (consume(']'))
            return arr;
        while (true) {
            arr.push(value());
            skipWs();
            if (consume(']'))
                return arr;
            expect(',');
        }
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a') + 10;
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A') + 10;
                    else
                        fail("bad \\u escape");
                }
                // Encode the code point as UTF-8 (BMP only; the
                // writer never emits surrogate pairs).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    Json number()
    {
        const std::size_t start = pos_;
        consume('-');
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string_view tok =
            text_.substr(start, pos_ - start);
        if (tok.empty())
            fail("expected a value");
        const bool integral =
            tok.find_first_of(".eE") == std::string_view::npos;
        // "-0" must stay a double: Int(0) would re-dump as "0",
        // breaking the dump/parse byte round-trip.
        if (integral && tok != "-0") {
            std::int64_t i = 0;
            const auto r = std::from_chars(
                tok.data(), tok.data() + tok.size(), i);
            if (r.ec == std::errc() &&
                r.ptr == tok.data() + tok.size())
                return Json(i);
            // Positive values above INT64_MAX (64-bit seeds).
            if (tok[0] != '-') {
                std::uint64_t u = 0;
                const auto ru = std::from_chars(
                    tok.data(), tok.data() + tok.size(), u);
                if (ru.ec == std::errc() &&
                    ru.ptr == tok.data() + tok.size())
                    return Json(u);
            }
        }
        double d = 0.0;
        const auto r =
            std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (r.ec != std::errc() || r.ptr != tok.data() + tok.size())
            fail("bad number");
        return Json(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(std::string_view text)
{
    return Parser(text).document();
}

std::vector<Json>
Json::parseLines(std::string_view text, bool dropTruncatedTail)
{
    return Parser(text).documents(dropTruncatedTail);
}

void
appendJsonLine(const std::string &path, const Json &value)
{
    const std::string line = value.dump() + "\n";
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (!f)
        throw std::runtime_error("cannot open for appending: " +
                                 path);
    const std::size_t written =
        std::fwrite(line.data(), 1, line.size(), f);
    const int rc = std::fclose(f);
    if (written != line.size() || rc != 0)
        throw std::runtime_error("short append: " + path);
}

} // namespace sf::exp

#include "exp/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "exp/experiments/builtin.hpp"
#include "net/rng.hpp"

namespace sf::exp {

std::string_view
effortName(Effort effort)
{
    switch (effort) {
    case Effort::Quick: return "quick";
    case Effort::Full: return "full";
    default: return "default";
    }
}

Effort
parseEffort(std::string_view name)
{
    if (name == "quick")
        return Effort::Quick;
    if (name == "default")
        return Effort::Default;
    if (name == "full")
        return Effort::Full;
    throw std::invalid_argument("unknown effort: " +
                                std::string(name));
}

std::uint64_t
deriveSeed(std::string_view experiment, std::string_view run_id,
           std::uint64_t base)
{
    // FNV-1a over "<experiment>/<run_id>" ...
    std::uint64_t h = fnv1a64(run_id, fnv1a64("/", fnv1a64(experiment)));
    // ... mixed with the base seed and finalised with splitmix64 so
    // near-identical names land far apart.
    h += base * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return h;
}

bool
globMatch(std::string_view pattern, std::string_view text)
{
    std::size_t p = 0;
    std::size_t t = 0;
    std::size_t star = std::string_view::npos;
    std::size_t star_t = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == text[t] || pattern[p] == '?')) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            star_t = t;
        } else if (star != std::string_view::npos) {
            p = star + 1;
            t = ++star_t;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

void
Registry::add(ExperimentSpec spec)
{
    if (find(spec.name))
        throw std::invalid_argument("duplicate experiment: " +
                                    spec.name);
    const auto pos = std::lower_bound(
        specs_.begin(), specs_.end(), spec,
        [](const ExperimentSpec &a, const ExperimentSpec &b) {
            return a.name < b.name;
        });
    specs_.insert(pos, std::move(spec));
}

const ExperimentSpec *
Registry::find(std::string_view name) const
{
    for (const ExperimentSpec &spec : specs_)
        if (spec.name == name)
            return &spec;
    return nullptr;
}

std::vector<const ExperimentSpec *>
Registry::match(std::string_view patterns) const
{
    std::vector<std::string_view> parts;
    std::size_t start = 0;
    while (start <= patterns.size()) {
        const std::size_t comma = patterns.find(',', start);
        const std::size_t end =
            comma == std::string_view::npos ? patterns.size()
                                            : comma;
        if (end > start)
            parts.push_back(patterns.substr(start, end - start));
        if (comma == std::string_view::npos)
            break;
        start = comma + 1;
    }
    std::vector<const ExperimentSpec *> out;
    for (const ExperimentSpec &spec : specs_) {
        for (const std::string_view pattern : parts) {
            if (globMatch(pattern, spec.name)) {
                out.push_back(&spec);
                break;
            }
        }
    }
    return out;
}

Registry &
registry()
{
    static Registry instance = [] {
        Registry r;
        registerBuiltinExperiments(r);
        return r;
    }();
    return instance;
}

} // namespace sf::exp

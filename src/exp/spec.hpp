/**
 * @file
 * Core types of the experiment engine: effort levels, deterministic
 * per-run seeding, run specifications, and experiment specs.
 *
 * Every paper figure / table / ablation is a named ExperimentSpec
 * that expands, at a given effort level, into a flat list of
 * independent RunSpecs (one grid cell each: topology kind × traffic
 * pattern × network size × injection rate × ...). Runs share no
 * mutable state, so the scheduler may execute them on any thread in
 * any order; seeds derive from stable names, never from execution
 * order, which makes reports reproducible bit-for-bit at any job
 * count.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/routing_policy.hpp"
#include "exp/json.hpp"

namespace sf::sim {
class Executor;
}

namespace sf::exp {

/** Effort level of a whole invocation (old --quick/--full flags). */
enum class Effort { Quick, Default, Full };

/** "quick" / "default" / "full". */
std::string_view effortName(Effort effort);

/** Parse an effort name; throws std::invalid_argument otherwise. */
Effort parseEffort(std::string_view name);

/**
 * Base seed every experiment derives from by default; kept at the
 * seed the standalone harnesses always used so ported numbers stay
 * comparable.
 */
inline constexpr std::uint64_t kBaseSeed = 2019;

/**
 * Deterministic per-run seed: a 64-bit FNV-1a hash of
 * "<experiment>/<run id>" finalised with splitmix64 and mixed with
 * @p base. Depends only on stable names, never on scheduling.
 */
std::uint64_t deriveSeed(std::string_view experiment,
                         std::string_view run_id,
                         std::uint64_t base);

/** Everything a run body may depend on. */
struct RunContext {
    /** Per-run derived seed — use for traffic / sampling RNGs. */
    std::uint64_t seed = 0;
    /**
     * Invocation base seed — use for topology construction so
     * every run in a sweep evaluates the same generated network
     * (as the standalone harnesses did with their common seed).
     */
    std::uint64_t baseSeed = kBaseSeed;
    Effort effort = Effort::Default;
    /**
     * The scheduler's work pool, for nested parallelism inside a
     * run (e.g. concurrent saturation probes). Never null while a
     * body runs; idle-capacity aware, so nested fan-out only uses
     * workers that would otherwise sit out the sweep tail. Bodies
     * must not let determinism depend on it: anything submitted
     * must be a pure function of the run's own inputs.
     */
    sim::Executor *executor = nullptr;
    /**
     * Route-plane shards for cycle simulations (`sfx --shards`,
     * sim::SimConfig::shards): bodies that run the flit simulator
     * should copy this into their SimConfig and pass `executor`
     * through, which parallelises *inside* one simulation. Like
     * the executor, it must never affect results — the sharded
     * engine is byte-identical at every shard count — so it is an
     * execution knob, not part of the run grid or the spec hash.
     */
    int shards = 1;
    /**
     * Memoized route plane (`sfx --route-cache`,
     * sim::SimConfig::routeCache): bodies that run the flit
     * simulator should copy this into their SimConfig. Results are
     * byte-identical on or off — a cached route is the same pure
     * function's output — so, like shards, it is an execution knob
     * kept only for A/B benchmarking, never part of the run grid
     * or the spec hash.
     */
    bool routeCache = true;
    /**
     * Commit-wavefront width (`sfx --wavefront`,
     * sim::SimConfig::wavefront): bodies that run the flit
     * simulator should copy this into their SimConfig and pass
     * `executor` through. The wavefront scheduler only changes
     * which thread runs a node's decide stage — commits replay in
     * exact serial σ-order — so results are byte-identical at
     * every width, and like shards/routeCache it is an execution
     * knob, never part of the run grid or the spec hash.
     */
    int wavefront = 0;
    /**
     * Routing policy (`sfx --policy`, sim::SimConfig::policy):
     * bodies that run the flit simulator should copy this into
     * their SimConfig — UNLESS the policy is part of their own run
     * grid (the routing_bakeoff family), in which case the cell
     * wins. Unlike shards/routeCache this is NOT an execution
     * knob: non-greedy policies change simulated events, so the
     * driver records it in checkpoint metadata and reports, and
     * refuses to override it on resume.
     */
    core::RoutingPolicyKind policy =
        core::RoutingPolicyKind::Greedy;
};

/** One independent unit of work inside an experiment. */
struct RunSpec {
    /** Stable id, unique within the experiment ("n=64/SF/r=0.02"). */
    std::string id;
    /** The grid cell as a JSON object (named parameter values). */
    Json params = Json::object();
    /** Body: produces an ordered metrics object. Must be pure given
     *  the context (no shared mutable state). */
    std::function<Json(const RunContext &)> body;
};

/** Context handed to an experiment's planner. */
struct PlanContext {
    Effort effort = Effort::Default;
    std::uint64_t baseSeed = kBaseSeed;
    /**
     * Reconfig-schedule severity filter (`sfx --reconfig-schedule`):
     * empty plans every severity the elastic_serving family's
     * effort grid includes; a severity name restricts the grid to
     * it. Like the routing policy this is NOT an execution knob —
     * it changes which runs exist — so the driver records it in
     * checkpoint metadata and refuses to override it on resume.
     */
    std::string reconfigSchedule;
};

/** A named experiment: a planner producing a run grid. */
struct ExperimentSpec {
    /** Registry name ("fig10_saturation"); also the glob target. */
    std::string name;
    /** Paper artefact label ("Fig 10"). */
    std::string artefact;
    /** One-line description shown by `sfx list`. */
    std::string title;
    /**
     * False when metrics are wall-clock timings (microbenchmarks):
     * such reports cannot be byte-identical across machines or job
     * counts and are excluded from determinism checks.
     */
    bool deterministic = true;
    /** Expand the parameter grid at the given effort. */
    std::function<std::vector<RunSpec>(const PlanContext &)> plan;
};

} // namespace sf::exp

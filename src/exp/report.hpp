/**
 * @file
 * JSON report assembly and human-readable table rendering for
 * experiment results.
 *
 * The report schema ("sf-exp-report-v1") is what the perf-tracking
 * tooling consumes (BENCH_*.json): one object per experiment with
 * its ordered runs, each carrying the grid cell parameters, the
 * derived seed, and the measured metrics. Wall-clock metadata is
 * opt-in (`includeTiming`) because the default report must be
 * byte-identical across job counts and machines.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/scheduler.hpp"
#include "exp/spec.hpp"

namespace sf::exp {

/** Results of one experiment's full sweep. */
struct ExperimentResults {
    const ExperimentSpec *spec = nullptr;
    std::vector<RunResult> runs;
    double wallMs = 0.0;
};

/** Report-level options. */
struct ReportOptions {
    Effort effort = Effort::Default;
    std::uint64_t baseSeed = kBaseSeed;
    int jobs = 1;
    /** Route-plane shards the sweep ran with; like jobs, only
     *  recorded under includeTiming (it cannot affect results). */
    int shards = 1;
    /** Commit-wavefront width the sweep ran with; like jobs and
     *  shards, only recorded under includeTiming. */
    int wavefront = 0;
    /**
     * Routing policy the sweep ran with. Unlike jobs/shards it
     * CAN affect results, so a non-greedy value is always recorded
     * in the report; the greedy default is omitted so reports from
     * before the policy seam (and all committed goldens) keep
     * their exact bytes.
     */
    core::RoutingPolicyKind policy =
        core::RoutingPolicyKind::Greedy;
    /**
     * Include per-run / per-experiment wall-clock and scheduler
     * metadata. Off by default: timing varies run to run, and the
     * default report is required to be reproducible byte-for-byte.
     */
    bool includeTiming = false;
};

/** Current schema identifier. */
inline constexpr const char *kReportSchema = "sf-exp-report-v1";

/** Assemble the full report document. */
Json buildReport(const std::vector<ExperimentResults> &experiments,
                 const ReportOptions &opts);

/**
 * Render one experiment's runs as an aligned text table (columns:
 * run id, then every metric key in first-appearance order).
 */
std::string renderTable(const ExperimentResults &results);

/** Write @p text to @p path (0644); throws std::runtime_error. */
void writeFile(const std::string &path, const std::string &text);

/** Read @p path entirely; throws std::runtime_error. */
std::string readFile(const std::string &path);

} // namespace sf::exp

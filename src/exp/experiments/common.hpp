/**
 * @file
 * Internal helpers shared by the built-in experiment definitions
 * (the successors of the old bench/bench_util.hpp helpers).
 */

#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

#include "exp/spec.hpp"

namespace sf::exp {

/** printf-style std::string formatter. */
inline std::string
fmt(const char *format, ...)
{
    char buffer[160];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buffer, sizeof buffer, format, args);
    va_end(args);
    return buffer;
}

/** Pick a value by effort level (by value: callers pass literals,
 *  and returning a reference to a parameter would invite dangling
 *  `const auto &` bindings). */
template <typename T>
T
pick(Effort effort, const T &quick, const T &def, const T &full)
{
    if (effort == Effort::Quick)
        return quick;
    if (effort == Effort::Full)
        return full;
    return def;
}

} // namespace sf::exp

/**
 * @file
 * Synthetic-traffic experiments on the flit simulator: Fig 10
 * (saturation injection rate across designs / patterns / scales)
 * and Fig 11 (latency-vs-injection-rate curves). These are the
 * heavyweight sweeps the thread-pool scheduler exists for: every
 * grid cell is one independent simulation.
 *
 * Both sweeps route over shared immutable topologies from the
 * process-wide cache (one build per design/scale, not per cell),
 * and the Fig 10 saturation searches fan their candidate probe
 * rates out on the scheduler's work pool via rc.executor.
 */

#include <vector>

#include "exp/experiments/builtin.hpp"
#include "exp/experiments/common.hpp"
#include "exp/registry.hpp"
#include "sim/simulator.hpp"
#include "topos/factory.hpp"

namespace sf::exp {

namespace {

sim::SimConfig
simConfigFor(const RunContext &rc)
{
    sim::SimConfig cfg;
    // Traffic randomness follows the per-run derived seed;
    // topology construction (below) follows the base seed so every
    // run in a sweep simulates the same generated network.
    cfg.seed = rc.seed;
    // Route-plane sharding (`sfx --shards`) and the memoized route
    // plane (`sfx --route-cache`): byte-identical at any setting,
    // so execution knobs like jobs, not grid parameters.
    cfg.shards = rc.shards;
    cfg.routeCache = rc.routeCache;
    cfg.wavefront = rc.wavefront;
    cfg.policy = rc.policy;
    return cfg;
}

ExperimentSpec
fig10Spec()
{
    ExperimentSpec spec;
    spec.name = "fig10_saturation";
    spec.artefact = "Fig 10";
    spec.title = "saturation injection rate (%) vs number of "
                 "memory nodes";
    spec.plan = [](const PlanContext &ctx) {
        std::vector<std::size_t> sizes{16, 64, 256, 1024};
        if (ctx.effort == Effort::Quick)
            sizes = {16, 64, 256};
        if (ctx.effort == Effort::Full)
            sizes = {16, 32, 64, 128, 256, 512, 1024};
        const double tolerance =
            ctx.effort == Effort::Full ? 0.07 : 0.12;
        std::vector<RunSpec> runs;
        for (const auto pattern :
             {sim::TrafficPattern::UniformRandom,
              sim::TrafficPattern::Hotspot,
              sim::TrafficPattern::Tornado}) {
            for (const std::size_t n : sizes) {
                for (const auto kind : topos::kAllKinds) {
                    if (!topos::supported(kind, n))
                        continue;
                    RunSpec run;
                    const std::string kname =
                        topos::kindName(kind);
                    run.id = fmt(
                        "%s/n%zu/%s",
                        sim::patternName(pattern).c_str(), n,
                        kname.c_str());
                    run.params.set("pattern",
                                   sim::patternName(pattern));
                    run.params.set("nodes", n);
                    run.params.set("design", kname);
                    run.body = [pattern, n, kind, tolerance](
                                   const RunContext &rc) -> Json {
                        const auto topo = topos::cachedTopology(
                            kind, n, rc.baseSeed);
                        const sim::SimConfig cfg =
                            simConfigFor(rc);
                        const double sat =
                            sim::findSaturationRate(
                                *topo, pattern, cfg,
                                sim::RunPhases::
                                    saturationProbe(),
                                tolerance, rc.executor);
                        Json m = Json::object();
                        m.set("saturation_rate", sat);
                        m.set("saturation_pct", 100.0 * sat);
                        return m;
                    };
                    runs.push_back(std::move(run));
                }
            }
        }
        return runs;
    };
    return spec;
}

ExperimentSpec
fig11Spec()
{
    ExperimentSpec spec;
    spec.name = "fig11_latency_curves";
    spec.artefact = "Fig 11";
    spec.title =
        "avg packet latency (cycles) vs injection rate";
    spec.plan = [](const PlanContext &ctx) {
        std::vector<std::size_t> sizes{64, 256};
        if (ctx.effort == Effort::Full)
            sizes = {64, 256, 1024};
        std::vector<sim::TrafficPattern> patterns{
            sim::TrafficPattern::UniformRandom,
            sim::TrafficPattern::Tornado,
            sim::TrafficPattern::Opposite,
            sim::TrafficPattern::Complement};
        if (ctx.effort == Effort::Quick)
            patterns = {sim::TrafficPattern::UniformRandom};
        const std::vector<double> rates{0.005, 0.01, 0.02, 0.03,
                                        0.045, 0.06, 0.08, 0.10};
        std::vector<RunSpec> runs;
        for (const std::size_t n : sizes) {
            for (const auto pattern : patterns) {
                for (const auto kind : topos::kAllKinds) {
                    if (!topos::supported(kind, n))
                        continue;
                    for (const double rate : rates) {
                        RunSpec run;
                        const std::string kname =
                            topos::kindName(kind);
                        run.id = fmt(
                            "n%zu/%s/%s/r%.3f", n,
                            sim::patternName(pattern).c_str(),
                            kname.c_str(), rate);
                        run.params.set("nodes", n);
                        run.params.set(
                            "pattern",
                            sim::patternName(pattern));
                        run.params.set("design", kname);
                        run.params.set("rate", rate);
                        run.body = [n, pattern, kind, rate](
                                       const RunContext &rc)
                            -> Json {
                            // Shared: every rate point of every
                            // pattern rides one immutable build.
                            const auto topo =
                                topos::cachedTopology(
                                    kind, n, rc.baseSeed);
                            const sim::SimConfig cfg =
                                simConfigFor(rc);
                            const auto r = sim::runSynthetic(
                                *topo, pattern, rate, cfg,
                                sim::RunPhases::latencyCurve(),
                                rc.executor);
                            Json m = Json::object();
                            m.set("saturated", r.saturated);
                            m.set("avg_latency",
                                  r.avgTotalLatency);
                            m.set("network_latency",
                                  r.avgNetworkLatency);
                            m.set("p50",
                                  static_cast<std::int64_t>(
                                      r.p50Latency));
                            m.set("p99",
                                  static_cast<std::int64_t>(
                                      r.p99Latency));
                            m.set("avg_hops", r.avgHops);
                            m.set("accepted_load",
                                  r.acceptedLoad);
                            return m;
                        };
                        runs.push_back(std::move(run));
                    }
                }
            }
        }
        return runs;
    };
    return spec;
}

} // namespace

void
registerTrafficExperiments(Registry &r)
{
    r.add(fig10Spec());
    r.add(fig11Spec());
}

} // namespace sf::exp

/**
 * @file
 * Registration entry points of the built-in experiments (one
 * function per experiments/*.cpp translation unit). Explicit
 * registration keeps static-library linking reliable — no
 * self-registering globals for the linker to drop.
 */

#pragma once

namespace sf::exp {

class Registry;

/** fig05, fig09a, table2_features, bisection_bandwidth. */
void registerStructureExperiments(Registry &r);
/** fig10_saturation, fig11_latency_curves. */
void registerTrafficExperiments(Registry &r);
/** fig12_workloads, fig09b_power_gating_edp. */
void registerWorkloadExperiments(Registry &r);
/** The ablation_* family. */
void registerAblationExperiments(Registry &r);
/** micro_routing + micro_simulator (wall-clock timings;
 *  non-deterministic). */
void registerMicroExperiments(Registry &r);
/** hockey_stick (open-loop tail latency) + micro_openloop. */
void registerOpenLoopExperiments(Registry &r);
/** routing_bakeoff (policy x design x pattern matrix). */
void registerRoutingExperiments(Registry &r);
/** elastic_serving (live gate/ungate under open-loop load). */
void registerElasticExperiments(Registry &r);

/** Register every built-in experiment. */
void registerBuiltinExperiments(Registry &r);

} // namespace sf::exp

/**
 * @file
 * Open-loop tail-latency experiments: the hockey-stick family
 * (latency percentiles vs offered load, per pattern x arrival
 * process x topology) and the micro_openloop wall-clock rows.
 *
 * A hockey-stick cell drives sim::runOpenLoop at a fixed nominal
 * rate: arrival schedules are pure functions of seed + rate, the
 * per-packet latencies land in fixed-size log-bucket histograms on
 * the allocation-free measure path, and the reported percentiles
 * are pure functions of the event stream — so the whole family is
 * byte-identical across --jobs and --shards, and the percentile
 * metrics are exact-compared by `sfx diff`.
 */

#include <chrono>
#include <memory>
#include <string_view>
#include <vector>

#include "exp/experiments/builtin.hpp"
#include "exp/experiments/common.hpp"
#include "exp/registry.hpp"
#include "sim/simulator.hpp"
#include "topos/factory.hpp"

namespace sf::exp {

namespace {

sim::SimConfig
simConfigFor(const RunContext &rc)
{
    sim::SimConfig cfg;
    cfg.seed = rc.seed;
    cfg.shards = rc.shards;
    cfg.routeCache = rc.routeCache;
    cfg.wavefront = rc.wavefront;
    cfg.policy = rc.policy;
    return cfg;
}

/** Percentile metrics of one open-loop run, in reporting order.
 *  The percentile keys (p50/p95/p99/p999/max) are the ones
 *  `sfx diff` exact-compares regardless of tolerance. */
void
setTailMetrics(Json &m, const sim::RunResult &r)
{
    m.set("saturated", r.saturated);
    m.set("offered_load", r.offeredLoad);
    m.set("realized_load", r.realizedLoad);
    m.set("accepted_load", r.acceptedLoad);
    m.set("avg_latency", r.avgTotalLatency);
    m.set("p50", static_cast<std::int64_t>(r.tailTotal.p50));
    m.set("p95", static_cast<std::int64_t>(r.tailTotal.p95));
    m.set("p99", static_cast<std::int64_t>(r.tailTotal.p99));
    m.set("p999", static_cast<std::int64_t>(r.tailTotal.p999));
    m.set("max", static_cast<std::int64_t>(r.tailTotal.max));
    m.set("net_p99",
          static_cast<std::int64_t>(r.tailNetwork.p99));
    m.set("measured_packets", r.measuredPackets);
}

ExperimentSpec
hockeyStickSpec()
{
    ExperimentSpec spec;
    spec.name = "hockey_stick";
    spec.artefact = "tail latency";
    spec.title = "latency percentiles (p50..p999/max, cycles) vs "
                 "offered load, per pattern x arrival process x "
                 "design";
    spec.plan = [](const PlanContext &ctx) {
        const std::vector<std::size_t> sizes = pick<
            std::vector<std::size_t>>(ctx.effort, {64}, {64, 256},
                                      {64, 256, 1024});
        const std::vector<sim::TrafficPattern> patterns =
            pick<std::vector<sim::TrafficPattern>>(
                ctx.effort,
                {sim::TrafficPattern::UniformRandom},
                {sim::TrafficPattern::UniformRandom,
                 sim::TrafficPattern::Tornado,
                 sim::TrafficPattern::Hotspot},
                {sim::TrafficPattern::UniformRandom,
                 sim::TrafficPattern::Tornado,
                 sim::TrafficPattern::Hotspot,
                 sim::TrafficPattern::Complement});
        // Load steps in packets/node/cycle: dense enough around
        // the SF knee (~0.045-0.06 at the evaluated scales) that
        // the hockey stick's bend is visible in the report.
        const std::vector<double> rates = pick<
            std::vector<double>>(
            ctx.effort, {0.005, 0.015, 0.03, 0.045, 0.06},
            {0.0025, 0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.065},
            {0.0025, 0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06,
             0.07, 0.08});
        const sim::RunPhases phases =
            ctx.effort == Effort::Quick
                ? sim::RunPhases::openLoopQuick()
                : sim::RunPhases::openLoop();
        std::vector<RunSpec> runs;
        for (const std::size_t n : sizes) {
            for (const auto pattern : patterns) {
                for (const auto kind : topos::kAllKinds) {
                    if (!topos::supported(kind, n))
                        continue;
                    for (const auto process :
                         sim::kAllArrivalProcesses) {
                        for (const double rate : rates) {
                            RunSpec run;
                            const std::string kname =
                                topos::kindName(kind);
                            const std::string pname =
                                sim::arrivalProcessName(process);
                            run.id = fmt(
                                "n%zu/%s/%s/%s/r%.4f", n,
                                sim::patternName(pattern)
                                    .c_str(),
                                kname.c_str(), pname.c_str(),
                                rate);
                            run.params.set("nodes", n);
                            run.params.set(
                                "pattern",
                                sim::patternName(pattern));
                            run.params.set("design", kname);
                            run.params.set("process", pname);
                            run.params.set("rate", rate);
                            run.body = [n, pattern, kind, process,
                                        rate, phases](
                                           const RunContext &rc)
                                -> Json {
                                const auto topo =
                                    topos::cachedTopology(
                                        kind, n, rc.baseSeed);
                                const sim::SimConfig cfg =
                                    simConfigFor(rc);
                                sim::ArrivalConfig arrivals;
                                arrivals.process = process;
                                const auto r = sim::runOpenLoop(
                                    *topo, pattern, arrivals,
                                    rate, cfg, phases,
                                    rc.executor);
                                Json m = Json::object();
                                setTailMetrics(m, r);
                                return m;
                            };
                            runs.push_back(std::move(run));
                        }
                    }
                }
            }
        }
        return runs;
    };
    return spec;
}

/**
 * Open-loop engine wall clock (BENCH rows): runOpenLoop on the
 * 1024-node String Figure network per arrival process, at a mid
 * and a near-saturation load point. Wall-clock metrics are
 * machine-dependent (non-deterministic spec), but the row also
 * carries measured_packets / p99 — equal values across reruns are
 * determinism evidence for the generator itself.
 */
ExperimentSpec
microOpenLoopSpec()
{
    ExperimentSpec spec;
    spec.name = "micro_openloop";
    spec.artefact = "Sec VI";
    spec.title = "open-loop generator + histogram hot-path wall "
                 "clock on 1024-node runs (non-deterministic)";
    spec.deterministic = false;
    spec.plan = [](const PlanContext &ctx) {
        const int reps = pick(ctx.effort, 1, 2, 3);
        const struct {
            const char *label;
            double rate;
        } points[] = {
            {"mid", 0.020},
            {"high", 0.045},
        };
        std::vector<RunSpec> runs;
        for (const auto &point : points) {
            // Quick effort keeps one load point per process so the
            // row set stays CI-affordable.
            if (ctx.effort == Effort::Quick &&
                std::string_view(point.label) != "high")
                continue;
            for (const auto process : sim::kAllArrivalProcesses) {
                RunSpec run;
                const std::string pname =
                    sim::arrivalProcessName(process);
                run.id = fmt("n1024/uniform/%s/%s",
                             pname.c_str(), point.label);
                run.params.set("nodes", 1024);
                run.params.set("pattern", "uniform");
                run.params.set("process", pname);
                run.params.set("load", point.label);
                run.params.set("rate", point.rate);
                run.params.set("reps", reps);
                const double rate = point.rate;
                const std::string point_id =
                    fmt("n1024/uniform/%s", point.label);
                run.body = [rate, reps, process, point_id](
                               const RunContext &rc) -> Json {
                    const auto topo = topos::cachedTopology(
                        topos::TopoKind::SF, 1024, rc.baseSeed);
                    sim::SimConfig cfg;
                    // Seeded per load point so every process row
                    // of a point is comparable run to run.
                    cfg.seed = deriveSeed("micro_openloop",
                                          point_id, rc.baseSeed);
                    sim::ArrivalConfig arrivals;
                    arrivals.process = process;
                    const auto phases =
                        sim::RunPhases::openLoopQuick();
                    using clock = std::chrono::steady_clock;
                    double best_s = 0.0;
                    sim::RunResult result;
                    for (int r = 0; r < reps; ++r) {
                        const auto start = clock::now();
                        result = sim::runOpenLoop(
                            *topo,
                            sim::TrafficPattern::UniformRandom,
                            arrivals, rate, cfg, phases);
                        const double s =
                            std::chrono::duration<double>(
                                clock::now() - start)
                                .count();
                        if (r == 0 || s < best_s)
                            best_s = s;
                    }
                    Json m = Json::object();
                    m.set("cycles_per_sec",
                          best_s > 0.0
                              ? static_cast<double>(
                                    result.simulatedCycles) /
                                    best_s
                              : 0.0);
                    m.set("wall_s_min", best_s);
                    m.set("simulated_cycles",
                          static_cast<std::uint64_t>(
                              result.simulatedCycles));
                    m.set("measured_packets",
                          result.measuredPackets);
                    m.set("p99", static_cast<std::int64_t>(
                                     result.tailTotal.p99));
                    m.set("saturated", result.saturated);
                    return m;
                };
                runs.push_back(std::move(run));
            }
        }
        return runs;
    };
    return spec;
}

} // namespace

void
registerOpenLoopExperiments(Registry &r)
{
    r.add(hockeyStickSpec());
    r.add(microOpenLoopSpec());
}

} // namespace sf::exp

/**
 * @file
 * Routing-overhead microbenchmarks (paper Section III-B claims):
 * forwarding decisions cost a fixed, small number of distance
 * computations independent of scale; routing state stays bounded
 * at p(p+1) entries; construction and reconfiguration are cheap.
 *
 * Replaces the old google-benchmark harness with steady_clock
 * timing loops so the experiment rides the same registry, CLI, and
 * report as everything else. Timing metrics are inherently
 * machine-dependent, so the spec is marked non-deterministic and
 * excluded from byte-identical report checks.
 */

#include <chrono>
#include <vector>

#include "core/string_figure.hpp"
#include "core/topology_builder.hpp"
#include "exp/experiments/builtin.hpp"
#include "exp/experiments/common.hpp"
#include "exp/registry.hpp"
#include "net/rng.hpp"

namespace sf::exp {

namespace {

core::SFParams
paramsFor(std::size_t n, std::uint64_t seed)
{
    core::SFParams params;
    params.numNodes = n;
    params.routerPorts = n <= 128 ? 4 : 8;
    params.seed = seed;
    return params;
}

/**
 * Run @p op in a timing loop for ~@p budget_ms and return average
 * nanoseconds per iteration (includes a short warmup batch).
 */
template <typename Op>
double
nsPerIteration(Op &&op, double budget_ms)
{
    using clock = std::chrono::steady_clock;
    for (int i = 0; i < 64; ++i)
        op();
    std::uint64_t iterations = 0;
    const auto start = clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        budget_ms));
    auto now = start;
    while (now < deadline) {
        for (int i = 0; i < 256; ++i)
            op();
        iterations += 256;
        now = clock::now();
    }
    const double ns =
        std::chrono::duration<double, std::nano>(now - start)
            .count();
    return ns / static_cast<double>(iterations);
}

ExperimentSpec
microSpec()
{
    ExperimentSpec spec;
    spec.name = "micro_routing";
    spec.artefact = "Sec III-B";
    spec.title = "routing/decision/construction latency "
                 "microbenchmarks (wall-clock; non-deterministic)";
    spec.deterministic = false;
    spec.plan = [](const PlanContext &ctx) {
        const double budget_ms = pick(ctx.effort, 20.0, 80.0, 300.0);
        std::vector<RunSpec> runs;

        const auto add_decision =
            [&](const char *which, std::size_t n, bool widen) {
                RunSpec run;
                run.id = fmt("%s/n%zu", which, n);
                run.params.set("op", which);
                run.params.set("nodes", n);
                run.body = [n, widen, budget_ms](
                               const RunContext &rc) -> Json {
                    const core::StringFigure topo(
                        paramsFor(n, rc.baseSeed));
                    Rng rng(rc.seed);
                    std::vector<LinkId> out;
                    const double ns = nsPerIteration(
                        [&] {
                            const auto s = static_cast<NodeId>(
                                rng.below(n));
                            const auto t = static_cast<NodeId>(
                                rng.below(n));
                            if (s == t)
                                return;
                            out.clear();
                            topo.routeCandidates(s, t, widen,
                                                 out);
                        },
                        budget_ms);
                    Json m = Json::object();
                    m.set("ns_per_decision", ns);
                    m.set("table_entries_max",
                          topo.tables().maxEntriesSeen());
                    return m;
                };
                runs.push_back(std::move(run));
            };
        for (const std::size_t n : {64u, 256u, 1296u})
            add_decision("greedy_decision", n, false);
        for (const std::size_t n : {256u, 1296u})
            add_decision("adaptive_first_hop", n, true);

        for (const std::size_t n : {256u, 1296u}) {
            RunSpec run;
            run.id = fmt("routed_walk/n%zu", n);
            run.params.set("op", "routed_walk");
            run.params.set("nodes", n);
            run.body = [n, budget_ms](const RunContext &rc)
                -> Json {
                const core::StringFigure topo(
                    paramsFor(n, rc.baseSeed));
                Rng rng(rc.seed);
                long long sink = 0;
                const double ns = nsPerIteration(
                    [&] {
                        const auto s =
                            static_cast<NodeId>(rng.below(n));
                        const auto t =
                            static_cast<NodeId>(rng.below(n));
                        if (s == t)
                            return;
                        sink += net::routedHops(topo, s, t);
                    },
                    budget_ms);
                Json m = Json::object();
                m.set("ns_per_walk", ns);
                m.set("checksum", sink >= 0);
                return m;
            };
            runs.push_back(std::move(run));
        }

        for (const std::size_t n : {128u, 1296u}) {
            RunSpec run;
            run.id = fmt("topology_build/n%zu", n);
            run.params.set("op", "topology_build");
            run.params.set("nodes", n);
            run.body = [n, budget_ms](const RunContext &rc)
                -> Json {
                std::size_t links = 0;
                const double ns = nsPerIteration(
                    [&] {
                        const auto data = core::buildTopology(
                            paramsFor(n, rc.baseSeed));
                        links = data.graph.numLinks();
                    },
                    // Construction is ms-scale; one batch is
                    // enough at quick effort.
                    budget_ms * 10.0);
                Json m = Json::object();
                m.set("ms_per_build", ns / 1e6);
                m.set("links", links);
                return m;
            };
            runs.push_back(std::move(run));
        }

        for (const std::size_t n : {256u, 1296u}) {
            RunSpec run;
            run.id = fmt("reconfig_round_trip/n%zu", n);
            run.params.set("op", "reconfig_round_trip");
            run.params.set("nodes", n);
            run.body = [n, budget_ms](const RunContext &rc)
                -> Json {
                core::StringFigure topo(
                    paramsFor(n, rc.baseSeed));
                Rng rng(rc.seed);
                const double ns = nsPerIteration(
                    [&] {
                        const auto u =
                            static_cast<NodeId>(rng.below(n));
                        if (!topo.reconfig().canGate(u))
                            return;
                        topo.gate(u);
                        topo.ungate(u);
                    },
                    budget_ms);
                Json m = Json::object();
                m.set("us_per_round_trip", ns / 1e3);
                m.set("table_rebuilds",
                      topo.reconfig().stats().tableRebuilds);
                return m;
            };
            runs.push_back(std::move(run));
        }
        return runs;
    };
    return spec;
}

} // namespace

void
registerMicroExperiments(Registry &r)
{
    r.add(microSpec());
}

void
registerBuiltinExperiments(Registry &r)
{
    registerStructureExperiments(r);
    registerTrafficExperiments(r);
    registerWorkloadExperiments(r);
    registerAblationExperiments(r);
    registerMicroExperiments(r);
}

} // namespace sf::exp

/**
 * @file
 * Routing-overhead microbenchmarks (paper Section III-B claims):
 * forwarding decisions cost a fixed, small number of distance
 * computations independent of scale; routing state stays bounded
 * at p(p+1) entries; construction and reconfiguration are cheap.
 *
 * Replaces the old google-benchmark harness with steady_clock
 * timing loops so the experiment rides the same registry, CLI, and
 * report as everything else; like google-benchmark's repetitions,
 * every run repeats its timing loop and reports min / mean /
 * stddev, so scheduling jitter is visible instead of folded into a
 * single mean. Timing metrics are inherently machine-dependent, so
 * the spec is marked non-deterministic and excluded from
 * byte-identical report checks.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/route_cache.hpp"
#include "core/string_figure.hpp"
#include "core/topology_builder.hpp"
#include "exp/experiments/builtin.hpp"
#include "exp/experiments/common.hpp"
#include "exp/registry.hpp"
#include "exp/work_pool.hpp"
#include "net/rng.hpp"
#include "sim/simulator.hpp"
#include "topos/factory.hpp"

namespace sf::exp {

namespace {

core::SFParams
paramsFor(std::size_t n, std::uint64_t seed)
{
    core::SFParams params;
    params.numNodes = n;
    params.routerPorts = n <= 128 ? 4 : 8;
    params.seed = seed;
    return params;
}

/**
 * Run @p op in a timing loop for ~@p budget_ms and return average
 * nanoseconds per iteration (includes a short warmup batch).
 */
template <typename Op>
double
nsPerIteration(Op &&op, double budget_ms)
{
    using clock = std::chrono::steady_clock;
    for (int i = 0; i < 64; ++i)
        op();
    std::uint64_t iterations = 0;
    const auto start = clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        budget_ms));
    auto now = start;
    while (now < deadline) {
        for (int i = 0; i < 256; ++i)
            op();
        iterations += 256;
        now = clock::now();
    }
    const double ns =
        std::chrono::duration<double, std::nano>(now - start)
            .count();
    return ns / static_cast<double>(iterations);
}

/** min / mean / population stddev over timing repetitions. */
struct TimingStats {
    double min = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
};

/**
 * Repeat the @p budget_ms timing loop @p reps times (what the old
 * google-benchmark harness did with --benchmark_repetitions) so a
 * run reports scheduling noise instead of hiding it: min is the
 * least-disturbed estimate, stddev the jitter.
 */
template <typename Op>
TimingStats
timedReps(Op &&op, int reps, double budget_ms)
{
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r)
        samples.push_back(nsPerIteration(op, budget_ms));
    TimingStats stats;
    stats.min = samples[0];
    for (const double s : samples) {
        stats.min = std::min(stats.min, s);
        stats.mean += s;
    }
    stats.mean /= static_cast<double>(samples.size());
    double var = 0.0;
    for (const double s : samples)
        var += (s - stats.mean) * (s - stats.mean);
    stats.stddev =
        std::sqrt(var / static_cast<double>(samples.size()));
    return stats;
}

/** Emit "<key>_min/_mean/_stddev", scaled by @p scale. */
void
setTimingMetrics(Json &m, const char *key,
                 const TimingStats &stats, double scale = 1.0)
{
    const std::string base(key);
    m.set(base + "_min", stats.min * scale);
    m.set(base + "_mean", stats.mean * scale);
    m.set(base + "_stddev", stats.stddev * scale);
}

ExperimentSpec
microSpec()
{
    ExperimentSpec spec;
    spec.name = "micro_routing";
    spec.artefact = "Sec III-B";
    spec.title = "routing/decision/construction latency "
                 "microbenchmarks (wall-clock; non-deterministic)";
    spec.deterministic = false;
    spec.plan = [](const PlanContext &ctx) {
        const double budget_ms = pick(ctx.effort, 10.0, 40.0, 120.0);
        const int reps = pick(ctx.effort, 3, 5, 8);
        std::vector<RunSpec> runs;

        const auto add_decision =
            [&](const char *which, std::size_t n, bool widen) {
                RunSpec run;
                run.id = fmt("%s/n%zu", which, n);
                run.params.set("op", which);
                run.params.set("nodes", n);
                run.params.set("reps", reps);
                run.body = [n, widen, budget_ms, reps](
                               const RunContext &rc) -> Json {
                    const core::StringFigure topo(
                        paramsFor(n, rc.baseSeed));
                    Rng rng(rc.seed);
                    LinkId out[net::kMaxRouteCandidates];
                    const auto stats = timedReps(
                        [&] {
                            const auto s = static_cast<NodeId>(
                                rng.below(n));
                            const auto t = static_cast<NodeId>(
                                rng.below(n));
                            if (s == t)
                                return;
                            topo.routeCandidates(s, t, widen,
                                                 out);
                        },
                        reps, budget_ms);
                    Json m = Json::object();
                    setTimingMetrics(m, "ns_per_decision",
                                     stats);
                    m.set("table_entries_max",
                          topo.tables().maxEntriesSeen());
                    return m;
                };
                runs.push_back(std::move(run));
            };
        for (const std::size_t n : {64u, 256u, 1296u})
            add_decision("greedy_decision", n, false);
        for (const std::size_t n : {256u, 1296u})
            add_decision("adaptive_first_hop", n, true);

        // The memoized route plane's unit cost: the same decision
        // served from a warm core::RouteCache instead of the table
        // scan + multi-space distance ranking. The gap between
        // this and greedy_decision is the per-lookup saving the
        // simulator's cached fast path banks.
        for (const std::size_t n : {256u, 1296u}) {
            for (const bool first_hop : {false, true}) {
                RunSpec run;
                const char *which = first_hop
                                        ? "cached_first_hop"
                                        : "cached_decision";
                run.id = fmt("%s/n%zu", which, n);
                run.params.set("op", which);
                run.params.set("nodes", n);
                run.params.set("reps", reps);
                run.body = [n, first_hop, budget_ms, reps](
                               const RunContext &rc) -> Json {
                    const core::StringFigure topo(
                        paramsFor(n, rc.baseSeed));
                    core::RouteCache cache(topo);
                    Rng rng(rc.seed);
                    LinkId out[net::kMaxRouteCandidates];
                    const auto stats = timedReps(
                        [&] {
                            const auto s = static_cast<NodeId>(
                                rng.below(n));
                            const auto t = static_cast<NodeId>(
                                rng.below(n));
                            if (s == t)
                                return;
                            cache.candidates(s, t, first_hop,
                                             out);
                        },
                        reps, budget_ms);
                    Json m = Json::object();
                    setTimingMetrics(m, "ns_per_decision",
                                     stats);
                    m.set("cache_rows",
                          first_hop ? cache.firstHopRows()
                                    : cache.committedRows());
                    return m;
                };
                runs.push_back(std::move(run));
            }
        }

        for (const std::size_t n : {256u, 1296u}) {
            RunSpec run;
            run.id = fmt("routed_walk/n%zu", n);
            run.params.set("op", "routed_walk");
            run.params.set("nodes", n);
            run.params.set("reps", reps);
            run.body = [n, budget_ms,
                        reps](const RunContext &rc) -> Json {
                const core::StringFigure topo(
                    paramsFor(n, rc.baseSeed));
                Rng rng(rc.seed);
                long long sink = 0;
                const auto stats = timedReps(
                    [&] {
                        const auto s =
                            static_cast<NodeId>(rng.below(n));
                        const auto t =
                            static_cast<NodeId>(rng.below(n));
                        if (s == t)
                            return;
                        sink += net::routedHops(topo, s, t);
                    },
                    reps, budget_ms);
                Json m = Json::object();
                setTimingMetrics(m, "ns_per_walk", stats);
                m.set("checksum", sink >= 0);
                return m;
            };
            runs.push_back(std::move(run));
        }

        for (const std::size_t n : {128u, 1296u}) {
            RunSpec run;
            run.id = fmt("topology_build/n%zu", n);
            run.params.set("op", "topology_build");
            run.params.set("nodes", n);
            run.params.set("reps", reps);
            run.body = [n, budget_ms,
                        reps](const RunContext &rc) -> Json {
                std::size_t links = 0;
                const auto stats = timedReps(
                    [&] {
                        // The deployed-network build: wire
                        // construction, routing tables, and the
                        // reconfiguration engine.
                        const auto topo = core::buildTopology(
                            paramsFor(n, rc.baseSeed));
                        links = topo->graph().numLinks();
                    },
                    reps,
                    // Construction is ms-scale; one batch is
                    // enough at quick effort.
                    budget_ms * 10.0);
                Json m = Json::object();
                setTimingMetrics(m, "ms_per_build", stats,
                                 1.0 / 1e6);
                m.set("links", links);
                return m;
            };
            runs.push_back(std::move(run));
        }

        for (const std::size_t n : {256u, 1296u}) {
            RunSpec run;
            run.id = fmt("reconfig_round_trip/n%zu", n);
            run.params.set("op", "reconfig_round_trip");
            run.params.set("nodes", n);
            run.params.set("reps", reps);
            run.body = [n, budget_ms,
                        reps](const RunContext &rc) -> Json {
                // Private instance: gating mutates the topology.
                core::StringFigure topo(
                    paramsFor(n, rc.baseSeed));
                Rng rng(rc.seed);
                const auto stats = timedReps(
                    [&] {
                        const auto u =
                            static_cast<NodeId>(rng.below(n));
                        if (!topo.reconfig().canGate(u))
                            return;
                        topo.gate(u);
                        topo.ungate(u);
                    },
                    reps, budget_ms);
                Json m = Json::object();
                setTimingMetrics(m, "us_per_round_trip", stats,
                                 1.0 / 1e3);
                m.set("table_rebuilds",
                      topo.reconfig().stats().tableRebuilds);
                return m;
            };
            runs.push_back(std::move(run));
        }
        return runs;
    };
    return spec;
}

/**
 * Peak resident set of this process, in kilobytes (Linux VmHWM; 0
 * where /proc is unavailable). VmHWM is monotonic for the process
 * lifetime, so each run calls resetPeakRss() first; without that
 * reset a low-load row would inherit the peak of whatever ran
 * before it. Whole-process either way, so only meaningful at
 * --jobs 1 with nothing else in flight — which is exactly how the
 * CI perf-smoke job invokes it.
 */
std::size_t
processPeakRssKb()
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    char line[256];
    std::size_t kb = 0;
    while (std::fgets(line, sizeof line, f)) {
        if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1)
            break;
    }
    std::fclose(f);
    return kb;
}

/** Reset VmHWM to the current RSS (Linux: "5" into clear_refs);
 *  best-effort — where unsupported, VmHWM stays monotonic. */
void
resetPeakRss()
{
    std::FILE *f = std::fopen("/proc/self/clear_refs", "w");
    if (!f)
        return;
    std::fputs("5", f);
    std::fclose(f);
}

/**
 * Cycle-engine hot-path benchmark (BENCH_sim_hotpath.json): wall
 * clock of full runSynthetic simulations on the paper's largest
 * Fig 11 configuration — 1024 nodes, uniform-random traffic — at a
 * low, a mid, and a high (near-saturation) load point, each at a
 * sweep of route-plane shard counts so the report carries the
 * scaling curve of the sharded engine. Every row owns a WorkPool of
 * exactly its shard count (independent of --jobs), so the s1 row is
 * the serial engine's number and the s>1 rows measure the sharded
 * one. Each (point, shards) cell runs with the memoized route
 * plane on (the default engine) and off (`.../nocache` rows), so
 * the report carries the cache's speedup next to the shard curve;
 * `simulated_cycles` / `measured_packets` / `flit_hops` must agree
 * across every row of one load point — shard count and cache state
 * alike — so the benchmark doubles as determinism evidence. The
 * `cycles_per_sec` metric is the engine's headline throughput; the
 * perf-smoke CI job archives the report so the trajectory is
 * visible PR over PR.
 *
 * The per-point `wavefront` rows run the serial engine with
 * SimConfig::profileWavefront and report the measured commit-
 * wavefront cost model (ROADMAP item 5): arbitration-walk length
 * and graph-adjacent dependency-chain depth per cycle. Their
 * ratio (avg_walk / avg_depth) bounds the speedup any order-
 * preserving out-of-order arbitration schedule could extract.
 *
 * The per-point `phases` rows run the serial engine with
 * SimConfig::profilePhases and report wall time per pipeline phase
 * of docs/engine_phases.md (land / snapshot / route / arbitrate-
 * decide / commit, ns per cycle), so any wavefront speedup — or
 * its absence — is attributable to the phase it did or didn't
 * shrink. The `w<N>` rows are the wavefront engine's own
 * wall-clock twins of the shard rows: cfg.wavefront = N over a
 * private N-thread pool, same metric set as the `s<N>` rows so
 * cycles_per_sec compares directly against the serial `s1` row.
 */
ExperimentSpec
microSimulatorSpec()
{
    ExperimentSpec spec;
    spec.name = "micro_simulator";
    spec.artefact = "Sec VI";
    spec.title = "cycle-engine hot-path wall clock on 1024-node "
                 "uniform-random runs, per shard count "
                 "(non-deterministic)";
    spec.deterministic = false;
    spec.plan = [](const PlanContext &ctx) {
        const int reps = pick(ctx.effort, 1, 2, 3);
        // The CI perf-smoke job runs quick effort, so shards 1 and
        // 2 ride every CI run; the wider counts need real cores to
        // say anything and stay on default/full.
        const std::vector<int> shard_counts =
            pick<std::vector<int>>(ctx.effort, {1, 2},
                                   {1, 2, 4, 8}, {1, 2, 4, 8});
        // Commit-wavefront widths for the `w<N>` wall-clock rows;
        // like the shard counts, quick keeps one CI-sized width and
        // the wider ones need real cores.
        const std::vector<int> wavefront_widths =
            pick<std::vector<int>>(ctx.effort, {2}, {2, 4, 8},
                                   {2, 4, 8});
        std::vector<RunSpec> runs;
        // Beyond-saturation rates trip the backlog early-abort
        // within a few hundred cycles and measure almost nothing,
        // so "high" is the heaviest sustained load: just under the
        // 1024-node SF saturation point of the Fig 11 curve.
        const struct {
            const char *label;
            double rate;
        } points[] = {
            {"low", 0.005},
            {"mid", 0.020},
            {"high", 0.045},
        };
        for (const auto &point : points) {
            for (const int shards : shard_counts) {
              for (const bool cache : {true, false}) {
                RunSpec run;
                // Cache-on rows keep the historical ids so the
                // perf trajectory stays comparable PR over PR;
                // the A/B twin rides a `/nocache` suffix.
                run.id = cache
                             ? fmt("n1024/uniform/%s/s%d",
                                   point.label, shards)
                             : fmt("n1024/uniform/%s/s%d/nocache",
                                   point.label, shards);
                run.params.set("nodes", 1024);
                run.params.set("pattern", "uniform");
                run.params.set("load", point.label);
                run.params.set("rate", point.rate);
                run.params.set("shards", shards);
                run.params.set("route_cache", cache);
                run.params.set("reps", reps);
                const double rate = point.rate;
                const std::string point_id =
                    fmt("n1024/uniform/%s", point.label);
                run.body = [rate, reps, shards, cache,
                            point_id](const RunContext &rc) -> Json {
                    resetPeakRss();
                    const auto topo = topos::cachedTopology(
                        topos::TopoKind::SF, 1024, rc.baseSeed);
                    sim::SimConfig cfg;
                    // Seeded per load point, not per row: every
                    // shard and cache row of one point then
                    // simulates the identical event sequence, so
                    // equal simulated_cycles / measured_packets /
                    // flit_hops across the point's rows are
                    // determinism evidence right in the benchmark
                    // report.
                    cfg.seed = deriveSeed("micro_simulator",
                                          point_id, rc.baseSeed);
                    cfg.shards = shards;
                    cfg.routeCache = cache;
                    // A private pool sized to the shard count:
                    // the row measures the sharded engine itself,
                    // not whatever --jobs left idle. (Thread
                    // stacks nudge peak RSS up slightly on s>1
                    // rows; the s1 row stays pool-free.)
                    std::unique_ptr<WorkPool> pool;
                    if (shards > 1)
                        pool =
                            std::make_unique<WorkPool>(shards);
                    const auto phases =
                        sim::RunPhases::latencyCurve();
                    using clock = std::chrono::steady_clock;
                    double best_s = 0.0;
                    double sum_s = 0.0;
                    sim::RunResult result;
                    for (int r = 0; r < reps; ++r) {
                        const auto start = clock::now();
                        result = sim::runSynthetic(
                            *topo,
                            sim::TrafficPattern::UniformRandom,
                            rate, cfg, phases, pool.get());
                        const double s =
                            std::chrono::duration<double>(
                                clock::now() - start)
                                .count();
                        sum_s += s;
                        if (r == 0 || s < best_s)
                            best_s = s;
                    }
                    Json m = Json::object();
                    m.set("cycles_per_sec",
                          best_s > 0.0
                              ? static_cast<double>(
                                    result.simulatedCycles) /
                                    best_s
                              : 0.0);
                    m.set("wall_s_min", best_s);
                    m.set("wall_s_mean",
                          sum_s / static_cast<double>(reps));
                    m.set("simulated_cycles",
                          static_cast<std::uint64_t>(
                              result.simulatedCycles));
                    m.set("measured_packets",
                          result.measuredPackets);
                    m.set("flit_hops", result.flitHops);
                    m.set("saturated", result.saturated);
                    m.set("process_peak_rss_kb",
                          processPeakRssKb());
                    return m;
                };
                runs.push_back(std::move(run));
              }
            }
            // Commit-wavefront cost model row (ROADMAP item 5):
            // one serial profiled run per load point. Reported
            // metrics are pure functions of the deterministic
            // event stream; only this experiment's wall-clock
            // framing keeps them out of byte-identity gates.
            {
                RunSpec run;
                run.id = fmt("n1024/uniform/%s/wavefront",
                             point.label);
                run.params.set("nodes", 1024);
                run.params.set("pattern", "uniform");
                run.params.set("load", point.label);
                run.params.set("rate", point.rate);
                run.params.set("op", "wavefront_profile");
                const double rate = point.rate;
                const std::string point_id =
                    fmt("n1024/uniform/%s", point.label);
                run.body = [rate,
                            point_id](const RunContext &rc) -> Json {
                    const auto topo = topos::cachedTopology(
                        topos::TopoKind::SF, 1024, rc.baseSeed);
                    sim::SimConfig cfg;
                    cfg.seed = deriveSeed("micro_simulator",
                                          point_id, rc.baseSeed);
                    cfg.profileWavefront = true;
                    const auto result = sim::runSynthetic(
                        *topo,
                        sim::TrafficPattern::UniformRandom, rate,
                        cfg, sim::RunPhases::latencyCurve());
                    Json m = Json::object();
                    m.set("wavefront_cycles",
                          result.wavefrontCycles);
                    m.set("avg_walk", result.wavefrontAvgWalk);
                    m.set("max_walk", result.wavefrontMaxWalk);
                    m.set("avg_depth", result.wavefrontAvgDepth);
                    m.set("max_depth", result.wavefrontMaxDepth);
                    m.set("walk_over_depth",
                          result.wavefrontAvgDepth > 0.0
                              ? result.wavefrontAvgWalk /
                                    result.wavefrontAvgDepth
                              : 0.0);
                    m.set("simulated_cycles",
                          static_cast<std::uint64_t>(
                              result.simulatedCycles));
                    return m;
                };
                runs.push_back(std::move(run));
            }
            // Per-phase wall-time breakdown (serial engine,
            // SimConfig::profilePhases): where each simulated
            // cycle's nanoseconds actually go, phase by phase of
            // docs/engine_phases.md.
            {
                RunSpec run;
                run.id =
                    fmt("n1024/uniform/%s/phases", point.label);
                run.params.set("nodes", 1024);
                run.params.set("pattern", "uniform");
                run.params.set("load", point.label);
                run.params.set("rate", point.rate);
                run.params.set("op", "phase_profile");
                const double rate = point.rate;
                const std::string point_id =
                    fmt("n1024/uniform/%s", point.label);
                run.body = [rate,
                            point_id](const RunContext &rc) -> Json {
                    const auto topo = topos::cachedTopology(
                        topos::TopoKind::SF, 1024, rc.baseSeed);
                    sim::SimConfig cfg;
                    cfg.seed = deriveSeed("micro_simulator",
                                          point_id, rc.baseSeed);
                    cfg.profilePhases = true;
                    const auto result = sim::runSynthetic(
                        *topo,
                        sim::TrafficPattern::UniformRandom, rate,
                        cfg, sim::RunPhases::latencyCurve());
                    const double cycles =
                        result.phaseProfiledCycles > 0
                            ? static_cast<double>(
                                  result.phaseProfiledCycles)
                            : 1.0;
                    Json m = Json::object();
                    m.set("profiled_cycles",
                          result.phaseProfiledCycles);
                    m.set("land_ns_per_cycle",
                          static_cast<double>(result.phaseLandNs) /
                              cycles);
                    m.set("snapshot_ns_per_cycle",
                          static_cast<double>(
                              result.phaseSnapshotNs) /
                              cycles);
                    m.set("route_ns_per_cycle",
                          static_cast<double>(
                              result.phaseRouteNs) /
                              cycles);
                    m.set("decide_ns_per_cycle",
                          static_cast<double>(
                              result.phaseDecideNs) /
                              cycles);
                    m.set("commit_ns_per_cycle",
                          static_cast<double>(
                              result.phaseCommitNs) /
                              cycles);
                    m.set("simulated_cycles",
                          static_cast<std::uint64_t>(
                              result.simulatedCycles));
                    return m;
                };
                runs.push_back(std::move(run));
            }
            // Wavefront-engine wall-clock rows: the decide/commit
            // pipeline at width N over a private N-thread pool,
            // same metrics as the shard rows so cycles_per_sec
            // compares against the serial s1 row directly.
            for (const int width : wavefront_widths) {
                RunSpec run;
                run.id = fmt("n1024/uniform/%s/w%d", point.label,
                             width);
                run.params.set("nodes", 1024);
                run.params.set("pattern", "uniform");
                run.params.set("load", point.label);
                run.params.set("rate", point.rate);
                run.params.set("wavefront", width);
                run.params.set("reps", reps);
                const double rate = point.rate;
                const std::string point_id =
                    fmt("n1024/uniform/%s", point.label);
                run.body = [rate, reps, width,
                            point_id](const RunContext &rc) -> Json {
                    resetPeakRss();
                    const auto topo = topos::cachedTopology(
                        topos::TopoKind::SF, 1024, rc.baseSeed);
                    sim::SimConfig cfg;
                    cfg.seed = deriveSeed("micro_simulator",
                                          point_id, rc.baseSeed);
                    cfg.wavefront = width;
                    WorkPool pool(width);
                    const auto phases =
                        sim::RunPhases::latencyCurve();
                    using clock = std::chrono::steady_clock;
                    double best_s = 0.0;
                    double sum_s = 0.0;
                    sim::RunResult result;
                    for (int r = 0; r < reps; ++r) {
                        const auto start = clock::now();
                        result = sim::runSynthetic(
                            *topo,
                            sim::TrafficPattern::UniformRandom,
                            rate, cfg, phases, &pool);
                        const double s =
                            std::chrono::duration<double>(
                                clock::now() - start)
                                .count();
                        sum_s += s;
                        if (r == 0 || s < best_s)
                            best_s = s;
                    }
                    Json m = Json::object();
                    m.set("cycles_per_sec",
                          best_s > 0.0
                              ? static_cast<double>(
                                    result.simulatedCycles) /
                                    best_s
                              : 0.0);
                    m.set("wall_s_min", best_s);
                    m.set("wall_s_mean",
                          sum_s / static_cast<double>(reps));
                    m.set("simulated_cycles",
                          static_cast<std::uint64_t>(
                              result.simulatedCycles));
                    m.set("measured_packets",
                          result.measuredPackets);
                    m.set("flit_hops", result.flitHops);
                    m.set("saturated", result.saturated);
                    m.set("process_peak_rss_kb",
                          processPeakRssKb());
                    return m;
                };
                runs.push_back(std::move(run));
            }
        }
        return runs;
    };
    return spec;
}

} // namespace

void
registerMicroExperiments(Registry &r)
{
    r.add(microSpec());
    r.add(microSimulatorSpec());
}

void
registerBuiltinExperiments(Registry &r)
{
    registerStructureExperiments(r);
    registerTrafficExperiments(r);
    registerWorkloadExperiments(r);
    registerAblationExperiments(r);
    registerMicroExperiments(r);
    registerOpenLoopExperiments(r);
    registerRoutingExperiments(r);
    registerElasticExperiments(r);
}

} // namespace sf::exp

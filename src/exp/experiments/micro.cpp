/**
 * @file
 * Routing-overhead microbenchmarks (paper Section III-B claims):
 * forwarding decisions cost a fixed, small number of distance
 * computations independent of scale; routing state stays bounded
 * at p(p+1) entries; construction and reconfiguration are cheap.
 *
 * Replaces the old google-benchmark harness with steady_clock
 * timing loops so the experiment rides the same registry, CLI, and
 * report as everything else; like google-benchmark's repetitions,
 * every run repeats its timing loop and reports min / mean /
 * stddev, so scheduling jitter is visible instead of folded into a
 * single mean. Timing metrics are inherently machine-dependent, so
 * the spec is marked non-deterministic and excluded from
 * byte-identical report checks.
 */

#include <chrono>
#include <cmath>
#include <vector>

#include "core/string_figure.hpp"
#include "core/topology_builder.hpp"
#include "exp/experiments/builtin.hpp"
#include "exp/experiments/common.hpp"
#include "exp/registry.hpp"
#include "net/rng.hpp"

namespace sf::exp {

namespace {

core::SFParams
paramsFor(std::size_t n, std::uint64_t seed)
{
    core::SFParams params;
    params.numNodes = n;
    params.routerPorts = n <= 128 ? 4 : 8;
    params.seed = seed;
    return params;
}

/**
 * Run @p op in a timing loop for ~@p budget_ms and return average
 * nanoseconds per iteration (includes a short warmup batch).
 */
template <typename Op>
double
nsPerIteration(Op &&op, double budget_ms)
{
    using clock = std::chrono::steady_clock;
    for (int i = 0; i < 64; ++i)
        op();
    std::uint64_t iterations = 0;
    const auto start = clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        budget_ms));
    auto now = start;
    while (now < deadline) {
        for (int i = 0; i < 256; ++i)
            op();
        iterations += 256;
        now = clock::now();
    }
    const double ns =
        std::chrono::duration<double, std::nano>(now - start)
            .count();
    return ns / static_cast<double>(iterations);
}

/** min / mean / population stddev over timing repetitions. */
struct TimingStats {
    double min = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
};

/**
 * Repeat the @p budget_ms timing loop @p reps times (what the old
 * google-benchmark harness did with --benchmark_repetitions) so a
 * run reports scheduling noise instead of hiding it: min is the
 * least-disturbed estimate, stddev the jitter.
 */
template <typename Op>
TimingStats
timedReps(Op &&op, int reps, double budget_ms)
{
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r)
        samples.push_back(nsPerIteration(op, budget_ms));
    TimingStats stats;
    stats.min = samples[0];
    for (const double s : samples) {
        stats.min = std::min(stats.min, s);
        stats.mean += s;
    }
    stats.mean /= static_cast<double>(samples.size());
    double var = 0.0;
    for (const double s : samples)
        var += (s - stats.mean) * (s - stats.mean);
    stats.stddev =
        std::sqrt(var / static_cast<double>(samples.size()));
    return stats;
}

/** Emit "<key>_min/_mean/_stddev", scaled by @p scale. */
void
setTimingMetrics(Json &m, const char *key,
                 const TimingStats &stats, double scale = 1.0)
{
    const std::string base(key);
    m.set(base + "_min", stats.min * scale);
    m.set(base + "_mean", stats.mean * scale);
    m.set(base + "_stddev", stats.stddev * scale);
}

ExperimentSpec
microSpec()
{
    ExperimentSpec spec;
    spec.name = "micro_routing";
    spec.artefact = "Sec III-B";
    spec.title = "routing/decision/construction latency "
                 "microbenchmarks (wall-clock; non-deterministic)";
    spec.deterministic = false;
    spec.plan = [](const PlanContext &ctx) {
        const double budget_ms = pick(ctx.effort, 10.0, 40.0, 120.0);
        const int reps = pick(ctx.effort, 3, 5, 8);
        std::vector<RunSpec> runs;

        const auto add_decision =
            [&](const char *which, std::size_t n, bool widen) {
                RunSpec run;
                run.id = fmt("%s/n%zu", which, n);
                run.params.set("op", which);
                run.params.set("nodes", n);
                run.params.set("reps", reps);
                run.body = [n, widen, budget_ms, reps](
                               const RunContext &rc) -> Json {
                    const core::StringFigure topo(
                        paramsFor(n, rc.baseSeed));
                    Rng rng(rc.seed);
                    std::vector<LinkId> out;
                    const auto stats = timedReps(
                        [&] {
                            const auto s = static_cast<NodeId>(
                                rng.below(n));
                            const auto t = static_cast<NodeId>(
                                rng.below(n));
                            if (s == t)
                                return;
                            out.clear();
                            topo.routeCandidates(s, t, widen,
                                                 out);
                        },
                        reps, budget_ms);
                    Json m = Json::object();
                    setTimingMetrics(m, "ns_per_decision",
                                     stats);
                    m.set("table_entries_max",
                          topo.tables().maxEntriesSeen());
                    return m;
                };
                runs.push_back(std::move(run));
            };
        for (const std::size_t n : {64u, 256u, 1296u})
            add_decision("greedy_decision", n, false);
        for (const std::size_t n : {256u, 1296u})
            add_decision("adaptive_first_hop", n, true);

        for (const std::size_t n : {256u, 1296u}) {
            RunSpec run;
            run.id = fmt("routed_walk/n%zu", n);
            run.params.set("op", "routed_walk");
            run.params.set("nodes", n);
            run.params.set("reps", reps);
            run.body = [n, budget_ms,
                        reps](const RunContext &rc) -> Json {
                const core::StringFigure topo(
                    paramsFor(n, rc.baseSeed));
                Rng rng(rc.seed);
                long long sink = 0;
                const auto stats = timedReps(
                    [&] {
                        const auto s =
                            static_cast<NodeId>(rng.below(n));
                        const auto t =
                            static_cast<NodeId>(rng.below(n));
                        if (s == t)
                            return;
                        sink += net::routedHops(topo, s, t);
                    },
                    reps, budget_ms);
                Json m = Json::object();
                setTimingMetrics(m, "ns_per_walk", stats);
                m.set("checksum", sink >= 0);
                return m;
            };
            runs.push_back(std::move(run));
        }

        for (const std::size_t n : {128u, 1296u}) {
            RunSpec run;
            run.id = fmt("topology_build/n%zu", n);
            run.params.set("op", "topology_build");
            run.params.set("nodes", n);
            run.params.set("reps", reps);
            run.body = [n, budget_ms,
                        reps](const RunContext &rc) -> Json {
                std::size_t links = 0;
                const auto stats = timedReps(
                    [&] {
                        // The deployed-network build: wire
                        // construction, routing tables, and the
                        // reconfiguration engine.
                        const auto topo = core::buildTopology(
                            paramsFor(n, rc.baseSeed));
                        links = topo->graph().numLinks();
                    },
                    reps,
                    // Construction is ms-scale; one batch is
                    // enough at quick effort.
                    budget_ms * 10.0);
                Json m = Json::object();
                setTimingMetrics(m, "ms_per_build", stats,
                                 1.0 / 1e6);
                m.set("links", links);
                return m;
            };
            runs.push_back(std::move(run));
        }

        for (const std::size_t n : {256u, 1296u}) {
            RunSpec run;
            run.id = fmt("reconfig_round_trip/n%zu", n);
            run.params.set("op", "reconfig_round_trip");
            run.params.set("nodes", n);
            run.params.set("reps", reps);
            run.body = [n, budget_ms,
                        reps](const RunContext &rc) -> Json {
                // Private instance: gating mutates the topology.
                core::StringFigure topo(
                    paramsFor(n, rc.baseSeed));
                Rng rng(rc.seed);
                const auto stats = timedReps(
                    [&] {
                        const auto u =
                            static_cast<NodeId>(rng.below(n));
                        if (!topo.reconfig().canGate(u))
                            return;
                        topo.gate(u);
                        topo.ungate(u);
                    },
                    reps, budget_ms);
                Json m = Json::object();
                setTimingMetrics(m, "us_per_round_trip", stats,
                                 1.0 / 1e3);
                m.set("table_rebuilds",
                      topo.reconfig().stats().tableRebuilds);
                return m;
            };
            runs.push_back(std::move(run));
        }
        return runs;
    };
    return spec;
}

} // namespace

void
registerMicroExperiments(Registry &r)
{
    r.add(microSpec());
}

void
registerBuiltinExperiments(Registry &r)
{
    registerStructureExperiments(r);
    registerTrafficExperiments(r);
    registerWorkloadExperiments(r);
    registerAblationExperiments(r);
    registerMicroExperiments(r);
}

} // namespace sf::exp

/**
 * @file
 * The routing bake-off (ROADMAP item 3): race the paper's greedy
 * routing against a UGAL-L-style adaptive competitor and a static
 * shortest-path oracle across topology designs and adversarial
 * traffic patterns. Every grid cell pins one (policy, design,
 * pattern, scale) combination, searches its saturation rate, then
 * measures the latency distribution just below the knee (0.9 x
 * saturation) so the tail percentiles are comparable across
 * policies at equivalent relative load.
 *
 * The policy is a grid parameter here — each cell sets
 * SimConfig::policy itself — unlike the global `sfx --policy`
 * knob, which retargets entire sweeps. Everything else rides the
 * usual execution knobs (rc.shards / rc.routeCache), which stay
 * byte-identical-invisible; the quick slice of this grid is
 * golden-pinned across the jobs x shards matrix in
 * tests/test_routing_policy.cpp.
 */

#include <cstdint>
#include <vector>

#include "core/routing_policy.hpp"
#include "exp/experiments/builtin.hpp"
#include "exp/experiments/common.hpp"
#include "exp/registry.hpp"
#include "sim/simulator.hpp"
#include "topos/factory.hpp"

namespace sf::exp {

namespace {

ExperimentSpec
routingBakeoffSpec()
{
    ExperimentSpec spec;
    spec.name = "routing_bakeoff";
    spec.artefact = "routing bake-off";
    spec.title = "saturation rate + latency tail at 0.9x "
                 "saturation, per routing policy x design x "
                 "pattern";
    spec.plan = [](const PlanContext &ctx) {
        const std::vector<std::size_t> sizes =
            pick<std::vector<std::size_t>>(ctx.effort, {64},
                                           {64, 256},
                                           {64, 256, 1024});
        // Quick keeps three designs at one scale so the pinned
        // slice still exercises a full >=3x3x3 matrix; larger
        // efforts race every supported design.
        const std::vector<topos::TopoKind> kinds =
            ctx.effort == Effort::Quick
                ? std::vector<topos::TopoKind>{
                      topos::TopoKind::DM, topos::TopoKind::S2,
                      topos::TopoKind::SF}
                : std::vector<topos::TopoKind>(
                      std::begin(topos::kAllKinds),
                      std::end(topos::kAllKinds));
        const std::vector<sim::TrafficPattern> patterns{
            sim::TrafficPattern::UniformRandom,
            sim::TrafficPattern::Tornado,
            sim::TrafficPattern::Hotspot};
        const double tolerance =
            ctx.effort == Effort::Full ? 0.07 : 0.12;
        // One abbreviated phase set for both the search probes and
        // the tail measurement: at 0.9x saturation a 2000-cycle
        // window already measures thousands of packets, and a
        // shared definition keeps cells cheap enough for a
        // hundred-cell matrix.
        const sim::RunPhases phases =
            sim::RunPhases::saturationProbe();
        std::vector<RunSpec> runs;
        for (const std::size_t n : sizes) {
            for (const auto pattern : patterns) {
                for (const auto kind : kinds) {
                    if (!topos::supported(kind, n))
                        continue;
                    for (const auto pol :
                         core::kAllRoutingPolicies) {
                        RunSpec run;
                        const std::string kname =
                            topos::kindName(kind);
                        const std::string pname =
                            core::routingPolicyName(pol);
                        run.id = fmt(
                            "n%zu/%s/%s/%s", n,
                            sim::patternName(pattern).c_str(),
                            kname.c_str(), pname.c_str());
                        run.params.set(
                            "pattern",
                            sim::patternName(pattern));
                        run.params.set("nodes", n);
                        run.params.set("design", kname);
                        run.params.set("policy", pname);
                        run.body = [n, pattern, kind, pol,
                                    tolerance, phases](
                                       const RunContext &rc)
                            -> Json {
                            const auto topo =
                                topos::cachedTopology(
                                    kind, n, rc.baseSeed);
                            sim::SimConfig cfg;
                            cfg.seed = rc.seed;
                            cfg.shards = rc.shards;
                            cfg.routeCache = rc.routeCache;
                            cfg.wavefront = rc.wavefront;
                            // The cell's policy, not the global
                            // --policy knob: the bake-off races
                            // policies against each other inside
                            // one sweep.
                            cfg.policy = pol;
                            const double sat =
                                sim::findSaturationRate(
                                    *topo, pattern, cfg, phases,
                                    tolerance, rc.executor);
                            const double probe = 0.9 * sat;
                            const auto r = sim::runSynthetic(
                                *topo, pattern, probe, cfg,
                                phases, rc.executor);
                            Json m = Json::object();
                            m.set("saturation_rate", sat);
                            m.set("saturation_pct",
                                  100.0 * sat);
                            m.set("probe_rate", probe);
                            m.set("avg_latency",
                                  r.avgTotalLatency);
                            m.set("p50",
                                  static_cast<std::int64_t>(
                                      r.tailTotal.p50));
                            m.set("p99",
                                  static_cast<std::int64_t>(
                                      r.tailTotal.p99));
                            m.set("p999",
                                  static_cast<std::int64_t>(
                                      r.tailTotal.p999));
                            m.set("avg_hops", r.avgHops);
                            m.set("accepted_load",
                                  r.acceptedLoad);
                            return m;
                        };
                        runs.push_back(std::move(run));
                    }
                }
            }
        }
        return runs;
    };
    return spec;
}

} // namespace

void
registerRoutingExperiments(Registry &r)
{
    r.add(routingBakeoffSpec());
}

} // namespace sf::exp

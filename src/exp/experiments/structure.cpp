/**
 * @file
 * Graph-structure experiments — everything measured without the
 * flit simulator: Fig 5 (average shortest path of Jellyfish / S2 /
 * SF), Fig 9(a) (hop counts of every design), Table II (feature
 * matrix), and the Section V bisection-bandwidth methodology.
 */

#include <vector>

#include "core/string_figure.hpp"
#include "exp/experiments/builtin.hpp"
#include "exp/experiments/common.hpp"
#include "exp/registry.hpp"
#include "net/bisection.hpp"
#include "net/paths.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "topos/factory.hpp"
#include "topos/jellyfish.hpp"
#include "topos/space_shuffle.hpp"

namespace sf::exp {

namespace {

ExperimentSpec
fig05Spec()
{
    ExperimentSpec spec;
    spec.name = "fig05_path_lengths";
    spec.artefact = "Fig 5";
    spec.title = "avg shortest path length vs network size "
                 "(Jellyfish / S2 / SF, p = 8)";
    spec.plan = [](const PlanContext &ctx) {
        const int seeds = pick(ctx.effort, 1, 3, 5);
        std::vector<RunSpec> runs;
        for (const std::size_t n : {100u, 200u, 400u, 800u, 1200u}) {
            for (const std::string design :
                 {"jellyfish", "s2", "sf"}) {
                RunSpec run;
                run.id = fmt("n%zu/%s", n, design.c_str());
                run.params.set("nodes", n);
                run.params.set("design", design);
                run.params.set("seeds", seeds);
                run.body = [n, design,
                            seeds](const RunContext &rc) -> Json {
                    double avg = 0.0;
                    double p10 = 0.0;
                    double p90 = 0.0;
                    double diam = 0.0;
                    for (int s = 0; s < seeds; ++s) {
                        const std::uint64_t seed =
                            rc.baseSeed + static_cast<unsigned>(s);
                        net::PathStats stats;
                        if (design == "jellyfish") {
                            // Degree 8 = the same wire budget as
                            // the random-topology memory networks.
                            const topos::Jellyfish jf(n, 8, seed);
                            stats =
                                net::allPairsStats(jf.graph());
                        } else if (design == "s2") {
                            const topos::SpaceShuffle s2(n, 8,
                                                         seed);
                            stats =
                                net::allPairsStats(s2.graph());
                        } else {
                            core::SFParams params;
                            params.numNodes = n;
                            params.routerPorts = 8;
                            params.seed = seed;
                            const core::StringFigure sf_net(
                                params);
                            stats = net::allPairsStats(
                                sf_net.graph());
                        }
                        avg += stats.average;
                        p10 += stats.p10;
                        p90 += stats.p90;
                        diam += stats.diameter;
                    }
                    const double k = seeds;
                    Json m = Json::object();
                    m.set("avg_path", avg / k);
                    m.set("p10", p10 / k);
                    m.set("p90", p90 / k);
                    m.set("diameter", diam / k);
                    return m;
                };
                runs.push_back(std::move(run));
            }
        }
        return runs;
    };
    return spec;
}

ExperimentSpec
fig09aSpec()
{
    ExperimentSpec spec;
    spec.name = "fig09a_hop_counts";
    spec.artefact = "Fig 9(a)";
    spec.title = "average shortest and routed hop count vs number "
                 "of memory nodes";
    spec.plan = [](const PlanContext &ctx) {
        std::vector<std::size_t> sizes{16, 17, 32, 61, 64, 113,
                                       128, 256, 512, 1024, 1296};
        if (ctx.effort == Effort::Quick)
            sizes = {16, 64, 256, 1024};
        std::vector<RunSpec> runs;
        for (const std::size_t n : sizes) {
            for (const auto kind : topos::kAllKinds) {
                if (!topos::supported(kind, n))
                    continue;
                RunSpec run;
                const std::string kname = topos::kindName(kind);
                run.id = fmt("n%zu/%s", n, kname.c_str());
                run.params.set("nodes", n);
                run.params.set("design", kname);
                run.params.set(
                    "ports", kind == topos::TopoKind::S2 ||
                                     kind == topos::TopoKind::SF
                                 ? topos::randomTopologyPorts(n)
                                 : topos::paperRouterPorts(kind, n));
                run.body = [n, kind](const RunContext &rc) -> Json {
                    // ODM with its base multiplier: Fig 9(a)
                    // compares hop structure, not bandwidth.
                    const int odm_mult =
                        kind == topos::TopoKind::ODM ? 1 : 0;
                    const auto topo = topos::cachedTopology(
                        kind, n, rc.baseSeed, odm_mult);
                    Rng rng(rc.seed);
                    // All pairs when small; sampled beyond.
                    const auto probe = net::probeRoutedHops(
                        *topo, rng, n <= 256 ? 0 : 40000);
                    Json m = Json::object();
                    m.set("shortest_avg",
                          net::allPairsStats(topo->graph())
                              .average);
                    m.set("routed_avg", probe.avgHops);
                    return m;
                };
                runs.push_back(std::move(run));
            }
        }
        // Percentile detail for the largest SF instances
        // (paper text: p10 = 4, p90 = 5 beyond 1000 nodes).
        for (const std::size_t n : {1024u, 1296u}) {
            RunSpec run;
            run.id = fmt("sf_percentiles/n%zu", n);
            run.params.set("nodes", n);
            run.params.set("design", "SF");
            run.body = [n](const RunContext &rc) -> Json {
                core::SFParams params;
                params.numNodes = n;
                params.routerPorts = 8;
                params.seed = rc.baseSeed;
                const core::StringFigure sf_net(params);
                const auto stats =
                    net::allPairsStats(sf_net.graph());
                Json m = Json::object();
                m.set("shortest_avg", stats.average);
                m.set("p10", static_cast<std::int64_t>(stats.p10));
                m.set("p90", static_cast<std::int64_t>(stats.p90));
                m.set("diameter",
                      static_cast<std::int64_t>(stats.diameter));
                return m;
            };
            runs.push_back(std::move(run));
        }
        return runs;
    };
    return spec;
}

ExperimentSpec
table2Spec()
{
    ExperimentSpec spec;
    spec.name = "table2_features";
    spec.artefact = "Table II";
    spec.title = "topology features and requirements";
    spec.plan = [](const PlanContext &) {
        std::vector<RunSpec> runs;
        for (const auto kind :
             {topos::TopoKind::ODM, topos::TopoKind::AFB,
              topos::TopoKind::S2, topos::TopoKind::SF}) {
            RunSpec run;
            const std::string kname = topos::kindName(kind);
            run.id = kname;
            run.params.set("design", kname);
            run.body = [kind](const RunContext &rc) -> Json {
                const auto small = topos::cachedTopology(
                    kind, 256, rc.baseSeed, 2);
                const auto large = topos::cachedTopology(
                    kind, 1024, rc.baseSeed, 2);
                const auto f = small->features();
                Json m = Json::object();
                m.set("high_radix", f.requiresHighRadix);
                m.set("port_scaling", f.portCountScales);
                m.set("reconfigurable", f.reconfigurable);
                m.set("ports_at_256", small->routerPorts());
                m.set("ports_at_1024", large->routerPorts());
                return m;
            };
            runs.push_back(std::move(run));
        }
        return runs;
    };
    return spec;
}

ExperimentSpec
bisectionSpec()
{
    ExperimentSpec spec;
    spec.name = "bisection_bandwidth";
    spec.artefact = "Section V";
    spec.title = "empirical min bisection bandwidth (max-flow, "
                 "unit-capacity links)";
    spec.plan = [](const PlanContext &ctx) {
        const int partitions = pick(ctx.effort, 12, 12, 50);
        const int instances = pick(ctx.effort, 2, 5, 20);
        std::vector<std::size_t> sizes{64, 256, 1024};
        if (ctx.effort == Effort::Quick)
            sizes = {64, 256};
        std::vector<RunSpec> runs;
        for (const std::size_t n : sizes) {
            for (const auto kind :
                 {topos::TopoKind::DM, topos::TopoKind::FB,
                  topos::TopoKind::AFB, topos::TopoKind::S2,
                  topos::TopoKind::SF}) {
                if (!topos::supported(kind, n))
                    continue;
                RunSpec run;
                const std::string kname = topos::kindName(kind);
                run.id = fmt("n%zu/%s", n, kname.c_str());
                run.params.set("nodes", n);
                run.params.set("design", kname);
                run.params.set("partitions", partitions);
                const bool random_topology =
                    kind == topos::TopoKind::S2 ||
                    kind == topos::TopoKind::SF;
                const int reps = random_topology ? instances : 1;
                run.params.set("instances", reps);
                run.body = [n, kind, reps, partitions](
                               const RunContext &rc) -> Json {
                    double sum = 0.0;
                    for (int i = 0; i < reps; ++i) {
                        // Only the base-seed instance is shared
                        // with the other sweeps; the extra
                        // seed-varied instances are single-use
                        // and would just flood the cache.
                        const auto topo =
                            i == 0 ? topos::cachedTopology(
                                         kind, n, rc.baseSeed)
                                   : topos::makeTopology(
                                         kind, n,
                                         rc.baseSeed +
                                             static_cast<unsigned>(
                                                 i));
                        Rng rng(rc.baseSeed * 31 +
                                static_cast<unsigned>(i));
                        sum += static_cast<double>(
                            net::minBisectionBandwidth(
                                topo->graph(), rng, partitions));
                    }
                    Json m = Json::object();
                    m.set("bisection_flows", sum / reps);
                    return m;
                };
                runs.push_back(std::move(run));
            }
            // The parallel-link factor every other harness uses to
            // bandwidth-match ODM to SF at this scale.
            RunSpec mult;
            mult.id = fmt("n%zu/odm_multiplier", n);
            mult.params.set("nodes", n);
            mult.params.set("design", "ODM");
            mult.body = [n](const RunContext &rc) -> Json {
                Json m = Json::object();
                m.set("odm_multiplier",
                      topos::matchOdmMultiplier(n, rc.baseSeed));
                return m;
            };
            runs.push_back(std::move(mult));
        }
        return runs;
    };
    return spec;
}

} // namespace

void
registerStructureExperiments(Registry &r)
{
    r.add(fig05Spec());
    r.add(fig09aSpec());
    r.add(table2Spec());
    r.add(bisectionSpec());
}

} // namespace sf::exp

/**
 * @file
 * elastic_serving: the paper's elasticity claim (Section III-C) as
 * a serving-system measurement. Each cell drives sim::runElastic —
 * open-loop traffic at a fixed nominal rate while a seeded
 * sim::ReconfigSchedule gates/ungates nodes mid-run — and reports
 * the degradation window per reconfiguration wave: pre-event
 * baseline p99, worst window p99 (the blip), drop and escalation
 * bursts, and cycles-to-reconverge. The grid is design x pattern x
 * schedule severity x rate; String Figure is the one reconfigurable
 * design, so the design axis filters to it.
 *
 * Every metric is a pure function of the simulated event stream:
 * reports are byte-identical across --jobs, --shards, and
 * --route-cache (the golden matrix in tests/test_elastic.cpp pins
 * exactly that), and knob-dependent evidence like route-cache
 * rebuild counts deliberately never appears here — tests assert it
 * on NetStats instead.
 *
 * Runs build PRIVATE StringFigure instances (never the process-wide
 * topology cache): gating mutates the topology in place, and a
 * shared instance would leak one run's liveness into another.
 */

#include <string>
#include <vector>

#include "core/string_figure.hpp"
#include "exp/experiments/builtin.hpp"
#include "exp/experiments/common.hpp"
#include "exp/registry.hpp"
#include "sim/reconfig_schedule.hpp"
#include "sim/simulator.hpp"
#include "topos/factory.hpp"

namespace sf::exp {

namespace {

sim::SimConfig
simConfigFor(const RunContext &rc)
{
    sim::SimConfig cfg;
    cfg.seed = rc.seed;
    cfg.shards = rc.shards;
    cfg.routeCache = rc.routeCache;
    cfg.wavefront = rc.wavefront;
    cfg.policy = rc.policy;
    return cfg;
}

/**
 * Metrics of one elastic run, in reporting order: the open-loop
 * tail cut, the elasticity aggregates, then per-wave degradation
 * windows. Suffix conventions are load-bearing for `sfx diff`:
 * `*_p99` hits the percentile exact-compare rule, and `*_blip`,
 * `*_burst`, `*_reconverge` hit the reconvergence exact-compare
 * rule — every one of these is deterministic, so any drift is a
 * regression no tolerance should forgive.
 */
void
setElasticMetrics(Json &m, const sim::RunResult &r)
{
    m.set("saturated", r.saturated);
    m.set("offered_load", r.offeredLoad);
    m.set("realized_load", r.realizedLoad);
    m.set("accepted_load", r.acceptedLoad);
    m.set("avg_latency", r.avgTotalLatency);
    m.set("p50", static_cast<std::int64_t>(r.tailTotal.p50));
    m.set("p95", static_cast<std::int64_t>(r.tailTotal.p95));
    m.set("p99", static_cast<std::int64_t>(r.tailTotal.p99));
    m.set("p999", static_cast<std::int64_t>(r.tailTotal.p999));
    m.set("max", static_cast<std::int64_t>(r.tailTotal.max));
    m.set("net_p99", static_cast<std::int64_t>(r.tailNetwork.p99));
    m.set("measured_packets", r.measuredPackets);

    std::int64_t gated = 0, ungated = 0, refused = 0, forced = 0;
    std::int64_t holes = 0;
    for (const auto &ev : r.reconfigEvents) {
        gated += ev.gated;
        ungated += ev.ungated;
        refused += ev.refused;
        forced += ev.failForced;
        holes += ev.holes;
    }
    m.set("epochs", r.topologyEpochs);
    m.set("waves", static_cast<std::uint64_t>(
                       r.reconfigEvents.size()));
    m.set("gated", gated);
    m.set("ungated", ungated);
    m.set("refused", refused);
    m.set("fail_forced", forced);
    m.set("holes", holes);
    m.set("drops", r.droppedUnroutable);
    m.set("escalations", r.escapeTransfers);

    for (std::size_t k = 0; k < r.reconfigEvents.size(); ++k) {
        const auto &ev = r.reconfigEvents[k];
        m.set(fmt("ev%zu_at", k),
              static_cast<std::uint64_t>(ev.at));
        m.set(fmt("ev%zu_holes", k),
              static_cast<std::int64_t>(ev.holes));
        m.set(fmt("ev%zu_base_p99", k),
              static_cast<std::int64_t>(ev.baselineP99));
        m.set(fmt("ev%zu_blip", k),
              static_cast<std::int64_t>(ev.blipP99));
        m.set(fmt("ev%zu_drop_burst", k),
              static_cast<std::uint64_t>(ev.dropBurst));
        m.set(fmt("ev%zu_esc_burst", k),
              static_cast<std::uint64_t>(ev.escalationBurst));
        m.set(fmt("ev%zu_reconverge", k),
              static_cast<std::uint64_t>(ev.reconvergeCycles));
        m.set(fmt("ev%zu_reconverged", k), ev.reconverged);
    }
}

ExperimentSpec
elasticServingSpec()
{
    ExperimentSpec spec;
    spec.name = "elastic_serving";
    spec.artefact = "Sec III-C";
    spec.title = "degradation window per live reconfig wave (p99 "
                 "blip, drop/escalation burst, cycles-to-"
                 "reconverge) under open-loop load, per pattern x "
                 "schedule severity";
    spec.plan = [](const PlanContext &ctx) {
        const std::vector<std::size_t> sizes = pick<
            std::vector<std::size_t>>(ctx.effort, {64}, {64, 256},
                                      {64, 256, 1024});
        const std::vector<sim::TrafficPattern> patterns =
            pick<std::vector<sim::TrafficPattern>>(
                ctx.effort,
                {sim::TrafficPattern::UniformRandom},
                {sim::TrafficPattern::UniformRandom,
                 sim::TrafficPattern::Tornado,
                 sim::TrafficPattern::Hotspot},
                {sim::TrafficPattern::UniformRandom,
                 sim::TrafficPattern::Tornado,
                 sim::TrafficPattern::Hotspot,
                 sim::TrafficPattern::Complement});
        // Serving rates well under the SF knee (~0.045-0.06): the
        // blip must come from the reconfiguration, not from driving
        // the network into saturation before any node gates.
        const std::vector<double> rates =
            pick<std::vector<double>>(ctx.effort, {0.02},
                                      {0.01, 0.03},
                                      {0.01, 0.02, 0.04});
        const sim::RunPhases phases =
            ctx.effort == Effort::Quick
                ? sim::RunPhases::openLoopQuick()
                : sim::RunPhases::openLoop();
        std::vector<RunSpec> runs;
        for (const std::size_t n : sizes) {
            for (const auto pattern : patterns) {
                for (const auto kind : topos::kAllKinds) {
                    // The design axis filters to reconfigurable
                    // topologies; String Figure is the only one.
                    if (kind != topos::TopoKind::SF ||
                        !topos::supported(kind, n))
                        continue;
                    for (const auto severity :
                         sim::kAllReconfigSeverities) {
                        if (!ctx.reconfigSchedule.empty() &&
                            ctx.reconfigSchedule != severity)
                            continue;
                        for (const double rate : rates) {
                            RunSpec run;
                            const std::string kname =
                                topos::kindName(kind);
                            const std::string sname(severity);
                            run.id = fmt(
                                "n%zu/%s/%s/%s/r%.4f", n,
                                sim::patternName(pattern)
                                    .c_str(),
                                kname.c_str(), sname.c_str(),
                                rate);
                            run.params.set("nodes", n);
                            run.params.set(
                                "pattern",
                                sim::patternName(pattern));
                            run.params.set("design", kname);
                            run.params.set("schedule", sname);
                            run.params.set("rate", rate);
                            run.body = [n, pattern, sname, rate,
                                        phases](
                                           const RunContext &rc)
                                -> Json {
                                core::SFParams params;
                                params.numNodes = n;
                                params.routerPorts =
                                    topos::randomTopologyPorts(n);
                                params.seed = rc.baseSeed;
                                core::StringFigure topo(params);
                                const sim::SimConfig cfg =
                                    simConfigFor(rc);
                                const sim::ArrivalConfig arrivals;
                                const auto schedule =
                                    sim::planReconfigSchedule(
                                        sname, params,
                                        phases.warmup,
                                        phases.measure, rc.seed);
                                const auto r = sim::runElastic(
                                    topo, pattern, arrivals,
                                    rate, schedule, cfg, phases,
                                    rc.executor);
                                Json m = Json::object();
                                setElasticMetrics(m, r);
                                return m;
                            };
                            runs.push_back(std::move(run));
                        }
                    }
                }
            }
        }
        return runs;
    };
    return spec;
}

} // namespace

void
registerElasticExperiments(Registry &r)
{
    r.add(elasticServingSpec());
}

} // namespace sf::exp

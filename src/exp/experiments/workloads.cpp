/**
 * @file
 * Real-workload replay experiments: Fig 12 (throughput and dynamic
 * memory energy across designs) and Fig 9(b) (EDP under power
 * gating). Runs report raw per-cell metrics (IPC, picojoules, EDP);
 * the paper's normalisations (vs DM, vs AFB, vs 0% gated) are
 * ratios any report consumer can form — keeping cells independent
 * is what lets them all run in parallel.
 */

#include <vector>

#include "core/string_figure.hpp"
#include "exp/experiments/builtin.hpp"
#include "exp/experiments/common.hpp"
#include "exp/registry.hpp"
#include "topos/factory.hpp"
#include "workloads/generators.hpp"
#include "workloads/replay.hpp"

namespace sf::exp {

namespace {

std::size_t
traceOps(Effort effort)
{
    return pick<std::size_t>(effort, 10000, 30000, 100000);
}

ExperimentSpec
fig12Spec()
{
    ExperimentSpec spec;
    spec.name = "fig12_workloads";
    spec.artefact = "Fig 12";
    spec.title = "workload throughput and dynamic energy across "
                 "designs (raw IPC / pJ per cell)";
    spec.plan = [](const PlanContext &ctx) {
        const std::size_t n =
            ctx.effort == Effort::Full ? 1024 : 256;
        const std::size_t ops = traceOps(ctx.effort);
        const std::vector<topos::TopoKind> kinds{
            topos::TopoKind::DM, topos::TopoKind::ODM,
            topos::TopoKind::AFB, topos::TopoKind::S2,
            topos::TopoKind::SF};
        std::vector<RunSpec> runs;
        for (const wl::Workload w : wl::kAllWorkloads) {
            for (const auto kind : kinds) {
                RunSpec run;
                const std::string wname = wl::workloadName(w);
                const std::string kname = topos::kindName(kind);
                run.id = fmt("%s/%s", wname.c_str(),
                             kname.c_str());
                run.params.set("workload", wname);
                run.params.set("design", kname);
                run.params.set("nodes", n);
                run.params.set("trace_ops", ops);
                run.body = [w, kind, n,
                            ops](const RunContext &rc) -> Json {
                    // Memoised: all five designs replay the
                    // identical trace, and every workload of one
                    // design replays over one shared topology
                    // (replay never mutates it).
                    const auto trace =
                        wl::sharedTrace(w, rc.baseSeed, ops);
                    const auto topo = topos::cachedTopology(
                        kind, n, rc.baseSeed);
                    sim::SimConfig sim_cfg;
                    sim_cfg.seed = rc.seed;
                    wl::ReplayConfig cfg;
                    const auto r = wl::replayTrace(
                        *trace, *topo, sim_cfg, cfg);
                    Json m = Json::object();
                    m.set("ipc", r.ipc);
                    m.set("network_pj", r.networkPj);
                    m.set("dram_pj", r.dramPj);
                    m.set("dynamic_pj",
                          r.networkPj + r.dramPj);
                    m.set("avg_hops", r.avgHops);
                    m.set("avg_op_latency", r.avgOpLatency);
                    m.set("finished", r.finished);
                    return m;
                };
                runs.push_back(std::move(run));
            }
        }
        return runs;
    };
    return spec;
}

ExperimentSpec
fig09bSpec()
{
    ExperimentSpec spec;
    spec.name = "fig09b_power_gating_edp";
    spec.artefact = "Fig 9(b)";
    spec.title = "EDP vs fraction of memory nodes power-gated "
                 "(SF; raw joule-seconds per cell)";
    spec.plan = [](const PlanContext &ctx) {
        const std::size_t n =
            ctx.effort == Effort::Full ? 1296 : 324;
        const std::size_t ops = traceOps(ctx.effort);
        const std::vector<double> gate_fractions{0.0, 0.1, 0.2,
                                                 0.3};
        std::vector<wl::Workload> workloads(
            wl::kAllWorkloads.begin(), wl::kAllWorkloads.end());
        if (ctx.effort == Effort::Quick)
            workloads = {wl::Workload::SparkGrep,
                         wl::Workload::Redis,
                         wl::Workload::MatMul};
        std::vector<RunSpec> runs;
        // The savable component is background (SerDes/clock)
        // energy; 0 pJ isolates the pure Table I constants.
        for (const double idle_pj : {10.0, 0.0}) {
            for (const wl::Workload w : workloads) {
                for (const double f : gate_fractions) {
                    RunSpec run;
                    const std::string wname =
                        wl::workloadName(w);
                    run.id = fmt("idle%.0f/%s/gate%.0f%%",
                                 idle_pj, wname.c_str(),
                                 100.0 * f);
                    run.params.set("idle_pj_per_node_cycle",
                                   idle_pj);
                    run.params.set("workload", wname);
                    run.params.set("gate_fraction", f);
                    run.params.set("nodes", n);
                    run.params.set("trace_ops", ops);
                    run.body = [idle_pj, w, f, n,
                                ops](const RunContext &rc)
                        -> Json {
                        const auto trace = wl::sharedTrace(
                            w, rc.baseSeed, ops);
                        core::SFParams params;
                        params.numNodes = n;
                        params.routerPorts = 8;
                        params.seed = rc.baseSeed;
                        // Private instance: gating mutates the
                        // topology, so it must not come from the
                        // shared cache.
                        core::StringFigure topo(params);
                        sim::SimConfig sim_cfg;
                        sim_cfg.seed = rc.seed;
                        wl::ReplayConfig cfg;
                        cfg.energy.idlePjPerNodeCycle = idle_pj;
                        const std::size_t target =
                            f == 0.0
                                ? 0
                                : static_cast<std::size_t>(
                                      n * (1.0 - f));
                        const auto r = wl::replayTrace(
                            *trace, topo, sim_cfg, cfg, target);
                        Json m = Json::object();
                        m.set("edp_joule_seconds",
                              r.edpJouleSeconds);
                        m.set("total_pj", r.totalPj);
                        m.set("runtime_cycles",
                              static_cast<std::int64_t>(
                                  r.runtimeCycles));
                        m.set("live_nodes",
                              topo.reconfig().numAlive());
                        m.set("avg_hops", r.avgHops);
                        return m;
                    };
                    runs.push_back(std::move(run));
                }
            }
        }
        return runs;
    };
    return spec;
}

} // namespace

void
registerWorkloadExperiments(Registry &r)
{
    r.add(fig12Spec());
    r.add(fig09bSpec());
}

} // namespace sf::exp

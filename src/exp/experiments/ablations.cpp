/**
 * @file
 * Design-knob ablations (the old ablation_* harnesses):
 *
 *   ablation_adaptive        — first-hop adaptive vs pure greediest
 *   ablation_balance         — balanced vs i.i.d. uniform coordinates
 *   ablation_two_hop         — one-hop-only vs one+two-hop tables
 *   ablation_coord_bits      — quantised table coordinate precision
 *   ablation_unidir          — uni- vs bidirectional wiring
 *   ablation_reconfig_repair — repair-wire inventory under gating
 *   ablation_reconfig_envelope — how far sequential gating shrinks
 */

#include <algorithm>
#include <memory>
#include <vector>

#include "core/string_figure.hpp"
#include "exp/experiments/builtin.hpp"
#include "exp/experiments/common.hpp"
#include "exp/registry.hpp"
#include "net/paths.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "topos/factory.hpp"

namespace sf::exp {

namespace {

core::SFParams
sfParams(std::size_t n, std::uint64_t seed)
{
    core::SFParams params;
    params.numNodes = n;
    params.routerPorts = n <= 128 ? 4 : 8;
    params.seed = seed;
    return params;
}

ExperimentSpec
adaptiveSpec()
{
    ExperimentSpec spec;
    spec.name = "ablation_adaptive";
    spec.artefact = "Sec III-B";
    spec.title = "first-hop adaptive routing vs pure greediest "
                 "(saturation rate)";
    spec.plan = [](const PlanContext &ctx) {
        const std::size_t n =
            ctx.effort == Effort::Quick ? 64 : 256;
        std::vector<RunSpec> runs;
        for (const auto pattern :
             {sim::TrafficPattern::UniformRandom,
              sim::TrafficPattern::Tornado,
              sim::TrafficPattern::Hotspot}) {
            for (const bool adaptive : {true, false}) {
                RunSpec run;
                run.id = fmt("%s/%s",
                             sim::patternName(pattern).c_str(),
                             adaptive ? "adaptive" : "greedy");
                run.params.set("pattern",
                               sim::patternName(pattern));
                run.params.set("adaptive", adaptive);
                run.params.set("nodes", n);
                run.body = [pattern, adaptive,
                            n](const RunContext &rc) -> Json {
                    // Adaptivity is a simulator knob, so both arms
                    // share the same immutable topology.
                    const auto topo = topos::cachedTopology(
                        sfParams(n, rc.baseSeed));
                    sim::SimConfig cfg;
                    cfg.seed = rc.seed;
                    cfg.shards = rc.shards;
                    cfg.routeCache = rc.routeCache;
                    cfg.wavefront = rc.wavefront;
                    cfg.policy = rc.policy;
                    cfg.adaptive = adaptive;
                    Json m = Json::object();
                    m.set("saturation_rate",
                          sim::findSaturationRate(
                              *topo, pattern, cfg,
                              sim::RunPhases::saturationProbe(),
                              0.12, rc.executor));
                    return m;
                };
                runs.push_back(std::move(run));
            }
        }
        return runs;
    };
    return spec;
}

ExperimentSpec
balanceSpec()
{
    ExperimentSpec spec;
    spec.name = "ablation_balance";
    spec.artefact = "Fig 4";
    spec.title = "balanced ring slots vs i.i.d. uniform "
                 "coordinates";
    spec.plan = [](const PlanContext &ctx) {
        const std::size_t n =
            ctx.effort == Effort::Quick ? 64 : 256;
        std::vector<RunSpec> runs;
        for (const auto mode : {core::CoordMode::Balanced,
                                core::CoordMode::UniformRandom}) {
            RunSpec run;
            const char *mname =
                mode == core::CoordMode::Balanced ? "balanced"
                                                  : "uniform";
            run.id = mname;
            run.params.set("coords", mname);
            run.params.set("nodes", n);
            run.body = [mode, n](const RunContext &rc) -> Json {
                core::SFParams params = sfParams(n, rc.baseSeed);
                params.coordMode = mode;
                const auto topo = topos::cachedTopology(params);
                const auto stats =
                    net::allPairsStats(topo->graph());
                sim::SimConfig cfg;
                cfg.seed = rc.seed;
                cfg.shards = rc.shards;
                cfg.routeCache = rc.routeCache;
                cfg.wavefront = rc.wavefront;
                cfg.policy = rc.policy;
                Json m = Json::object();
                m.set("avg_hops", stats.average);
                m.set("diameter", static_cast<std::int64_t>(
                                      stats.diameter));
                m.set("saturation_uniform",
                      sim::findSaturationRate(
                          *topo,
                          sim::TrafficPattern::UniformRandom,
                          cfg, sim::RunPhases::saturationProbe(),
                          0.12, rc.executor));
                return m;
            };
            runs.push_back(std::move(run));
        }
        return runs;
    };
    return spec;
}

ExperimentSpec
twoHopSpec()
{
    ExperimentSpec spec;
    spec.name = "ablation_two_hop";
    spec.artefact = "Sec III-B";
    spec.title = "one-hop-only vs one+two-hop routing tables";
    spec.plan = [](const PlanContext &ctx) {
        const int samples =
            ctx.effort == Effort::Full ? 60000 : 20000;
        std::vector<std::size_t> sizes{64, 256, 1024};
        if (ctx.effort == Effort::Quick)
            sizes = {64, 256};
        std::vector<RunSpec> runs;
        for (const std::size_t n : sizes) {
            for (const bool two_hop : {false, true}) {
                RunSpec run;
                run.id = fmt("n%zu/%s", n,
                             two_hop ? "2hop" : "1hop");
                run.params.set("nodes", n);
                run.params.set("two_hop", two_hop);
                run.params.set("samples", samples);
                run.body = [n, two_hop,
                            samples](const RunContext &rc)
                    -> Json {
                    core::SFParams params =
                        sfParams(n, rc.baseSeed);
                    params.twoHopTable = two_hop;
                    const auto shared =
                        topos::cachedTopology(params);
                    const auto topo = std::dynamic_pointer_cast<
                        const core::StringFigure>(shared);
                    Rng rng(rc.seed);
                    const auto probe = net::probeRoutedHops(
                        *topo, rng, samples);
                    // A one-hop-only router needs only the
                    // one-hop rows.
                    std::size_t max_entries = 0;
                    for (NodeId u = 0; u < n; ++u) {
                        std::size_t entries = 0;
                        for (const auto &e : topo->tables()
                                                 .table(u)
                                                 .entries())
                            entries +=
                                (two_hop || e.hops == 1) ? 1 : 0;
                        max_entries =
                            std::max(max_entries, entries);
                    }
                    Json m = Json::object();
                    m.set("routed_avg", probe.avgHops);
                    m.set("table_entries_max", max_entries);
                    return m;
                };
                runs.push_back(std::move(run));
            }
        }
        return runs;
    };
    return spec;
}

ExperimentSpec
coordBitsSpec()
{
    ExperimentSpec spec;
    spec.name = "ablation_coord_bits";
    spec.artefact = "Sec III-B";
    spec.title = "coordinate quantisation (256 nodes, p=8; "
                 "0 bits = exact)";
    spec.plan = [](const PlanContext &ctx) {
        const int samples =
            ctx.effort == Effort::Full ? 60000 : 20000;
        std::vector<RunSpec> runs;
        for (const int bits : {0, 10, 8, 7, 6, 5}) {
            RunSpec run;
            run.id = bits == 0 ? "exact" : fmt("%dbit", bits);
            run.params.set("coord_bits", bits);
            run.params.set("nodes", 256);
            run.params.set("samples", samples);
            run.body = [bits,
                        samples](const RunContext &rc) -> Json {
                core::SFParams params =
                    sfParams(256, rc.baseSeed);
                params.routerPorts = 8;
                params.coordBits = bits;
                // Private instance: the metric below reads the
                // accumulating fallback counter, which a shared
                // cached topology would carry across runs.
                const core::StringFigure topo(params);
                Rng rng(rc.seed);
                const auto probe =
                    net::probeRoutedHops(topo, rng, samples);
                Json m = Json::object();
                m.set("routed_avg", probe.avgHops);
                m.set("fallback_hops_per_pkt",
                      static_cast<double>(topo.fallbackCount()) /
                          std::max<std::size_t>(probe.attempted,
                                                1));
                m.set("delivered_pct", probe.deliveredPct);
                return m;
            };
            runs.push_back(std::move(run));
        }
        return runs;
    };
    return spec;
}

ExperimentSpec
unidirSpec()
{
    ExperimentSpec spec;
    spec.name = "ablation_unidir";
    spec.artefact = "Sec IV/VI";
    spec.title = "unidirectional vs bidirectional String Figure "
                 "wiring";
    spec.plan = [](const PlanContext &ctx) {
        std::vector<std::size_t> sizes{64, 256, 1024};
        if (ctx.effort == Effort::Quick)
            sizes = {64, 256};
        std::vector<RunSpec> runs;
        for (const std::size_t n : sizes) {
            for (const auto mode :
                 {core::LinkMode::Unidirectional,
                  core::LinkMode::Bidirectional}) {
                RunSpec run;
                const char *mname =
                    mode == core::LinkMode::Unidirectional
                        ? "uni"
                        : "bi";
                run.id = fmt("n%zu/%s", n, mname);
                run.params.set("nodes", n);
                run.params.set("wiring", mname);
                run.body = [n, mode](const RunContext &rc)
                    -> Json {
                    core::SFParams params =
                        sfParams(n, rc.baseSeed);
                    params.linkMode = mode;
                    const auto topo =
                        topos::cachedTopology(params);
                    sim::SimConfig cfg;
                    cfg.seed = rc.seed;
                    cfg.shards = rc.shards;
                    cfg.routeCache = rc.routeCache;
                    cfg.wavefront = rc.wavefront;
                    cfg.policy = rc.policy;
                    Json m = Json::object();
                    m.set("avg_hops",
                          net::allPairsStats(topo->graph())
                              .average);
                    m.set("saturation_rate",
                          sim::findSaturationRate(
                              *topo,
                              sim::TrafficPattern::
                                  UniformRandom,
                              cfg,
                              sim::RunPhases::saturationProbe(),
                              0.12, rc.executor));
                    return m;
                };
                runs.push_back(std::move(run));
            }
        }
        return runs;
    };
    return spec;
}

ExperimentSpec
reconfigRepairSpec()
{
    ExperimentSpec spec;
    spec.name = "ablation_reconfig_repair";
    spec.artefact = "Sec III-C";
    spec.title = "repair-wire inventory while scaling the network "
                 "down";
    spec.plan = [](const PlanContext &ctx) {
        const std::size_t n =
            ctx.effort == Effort::Quick ? 128 : 256;
        const int samples =
            ctx.effort == Effort::Full ? 40000 : 15000;
        std::vector<RunSpec> runs;
        for (const double fraction : {0.1, 0.25, 0.4}) {
            for (const auto mode :
                 {core::RepairMode::AllSpaces,
                  core::RepairMode::ShortcutsOnly}) {
                RunSpec run;
                const char *mname =
                    mode == core::RepairMode::AllSpaces
                        ? "all-spaces"
                        : "shortcuts";
                run.id = fmt("down%.0f%%/%s", 100.0 * fraction,
                             mname);
                run.params.set("gate_fraction", fraction);
                run.params.set("repair_mode", mname);
                run.params.set("nodes", n);
                run.body = [n, fraction, mode,
                            samples](const RunContext &rc)
                    -> Json {
                    core::SFParams params;
                    params.numNodes = n;
                    params.routerPorts = 8;
                    params.seed = rc.baseSeed;
                    params.repairMode = mode;
                    core::StringFigure topo(params);
                    Rng gate_rng(rc.seed);
                    topo.reduceTo(
                        static_cast<std::size_t>(
                            n * (1.0 - fraction)),
                        gate_rng);
                    Rng probe_rng(rc.seed ^ 0x9E3779B9ULL);
                    const auto probe = net::probeRoutedHops(
                        topo, probe_rng, samples);
                    Json m = Json::object();
                    m.set("target",
                          static_cast<std::int64_t>(
                              n * (1.0 - fraction)));
                    m.set("live", topo.reconfig().numAlive());
                    m.set("holes",
                          topo.reconfig().currentHoles());
                    m.set("routed_avg", probe.avgHops);
                    m.set("escape_hops", topo.fallbackCount());
                    m.set("delivered_pct", probe.deliveredPct);
                    return m;
                };
                runs.push_back(std::move(run));
            }
        }
        return runs;
    };
    return spec;
}

ExperimentSpec
reconfigEnvelopeSpec()
{
    ExperimentSpec spec;
    spec.name = "ablation_reconfig_envelope";
    spec.artefact = "Sec III-C";
    spec.title = "down-scaling envelope of sequential gating "
                 "(all-spaces wires)";
    spec.plan = [](const PlanContext &ctx) {
        std::vector<std::size_t> sizes{128, 256, 1024};
        if (ctx.effort == Effort::Quick)
            sizes = {128, 256};
        std::vector<RunSpec> runs;
        for (const std::size_t size : sizes) {
            RunSpec run;
            run.id = fmt("n%zu", size);
            run.params.set("nodes", size);
            run.params.set("requested_live", 8);
            run.body = [size](const RunContext &rc) -> Json {
                core::SFParams params;
                params.numNodes = size;
                params.routerPorts = 8;
                params.seed = rc.baseSeed;
                core::StringFigure topo(params);
                Rng rng(rc.seed);
                topo.reduceTo(8, rng); // extreme reduction
                const std::size_t live =
                    topo.reconfig().numAlive();
                Json m = Json::object();
                m.set("achieved_live", live);
                m.set("achieved_pct",
                      100.0 * static_cast<double>(live) / size);
                return m;
            };
            runs.push_back(std::move(run));
        }
        return runs;
    };
    return spec;
}

} // namespace

void
registerAblationExperiments(Registry &r)
{
    r.add(adaptiveSpec());
    r.add(balanceSpec());
    r.add(twoHopSpec());
    r.add(coordBitsSpec());
    r.add(unidirSpec());
    r.add(reconfigRepairSpec());
    r.add(reconfigEnvelopeSpec());
}

} // namespace sf::exp

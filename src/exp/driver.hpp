/**
 * @file
 * The unified experiment driver behind the `sfx` CLI and the
 * per-figure bench wrappers.
 *
 *   sfx list                          — registry contents
 *   sfx run <name|glob>... [options]  — plan, schedule, report
 *   sfx resume <dir> [options]        — finish an interrupted
 *                                       --checkpoint invocation
 *   sfx diff <base.json> <new.json>   — per-run metric deltas,
 *                                       tolerance-gated exit code
 *
 * Options: --jobs N, --out FILE, --effort quick|default|full
 * (plus the legacy --quick/--full spellings), --seed S, --timing,
 * --list-runs, --quiet, --no-topo-cache, --checkpoint DIR,
 * --max-runs N (simulated interrupt, exit 3); diff takes
 * --tolerance F, --json, and --bless.
 *
 * A bench wrapper is the same driver pinned to one glob:
 * benchMain("fig10_saturation", argc, argv).
 */

#pragma once

#include <string>

namespace sf::exp {

/** Entry point of the sfx binary. */
int sfxMain(int argc, char **argv);

/**
 * Entry point of a single-figure bench wrapper: behaves like
 * `sfx run <patterns>` with the remaining argv options applied.
 * @p patterns may be comma-separated globs.
 */
int benchMain(const std::string &patterns, int argc, char **argv);

} // namespace sf::exp

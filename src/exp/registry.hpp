/**
 * @file
 * The experiment registry: every paper figure / table / ablation
 * registers one ExperimentSpec under a stable name; the sfx CLI and
 * the bench wrappers resolve names or globs against it.
 */

#pragma once

#include <string_view>
#include <vector>

#include "exp/spec.hpp"

namespace sf::exp {

/**
 * Shell-style glob match supporting '*' (any run, including empty)
 * and '?' (any single character).
 */
bool globMatch(std::string_view pattern, std::string_view text);

class Registry {
  public:
    /** Add a spec. Throws std::invalid_argument on duplicate name. */
    void add(ExperimentSpec spec);

    /** All specs, sorted by name. */
    const std::vector<ExperimentSpec> &all() const { return specs_; }

    /** Lookup by exact name; nullptr when absent. */
    const ExperimentSpec *find(std::string_view name) const;

    /**
     * Specs matching any of the comma-separated glob @p patterns,
     * in registry (name-sorted) order, deduplicated.
     */
    std::vector<const ExperimentSpec *>
    match(std::string_view patterns) const;

  private:
    std::vector<ExperimentSpec> specs_;
};

/**
 * The process-wide registry, populated with every built-in
 * experiment on first use.
 */
Registry &registry();

} // namespace sf::exp

#include "exp/render.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace sf::exp {

namespace {

/** One parsed fig10 run: its grouping key, design, and rate. */
struct SaturationCell {
    std::string group;
    std::string design;
    double rate = 0.0;
};

std::string
fixed2(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

/** Aligned-column rendering, matching renderTable()'s layout. */
std::string
renderRows(const std::vector<std::vector<std::string>> &rows)
{
    std::vector<std::size_t> widths;
    for (const auto &row : rows) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    std::string out;
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out.append(widths[c] - row[c].size() + 2, ' ');
        }
        out.push_back('\n');
    }
    return out;
}

const Json &
findExperiment(const Json &report, const std::string &name)
{
    const Json *exps = report.find("experiments");
    if (!exps || !exps->isArray())
        throw std::runtime_error(
            "not an sf-exp-report-v1 document: no experiments "
            "array");
    for (const Json &e : exps->asArray()) {
        const Json *n = e.find("name");
        if (n && n->isString() && n->asString() == name)
            return e;
    }
    throw std::runtime_error("report has no '" + name +
                             "' experiment; run it first (the "
                             "table is derived, not stored)");
}

std::string
throughputVsDm(const Json &report)
{
    const Json &exp = findExperiment(report, "fig10_saturation");
    const Json *runs = exp.find("runs");
    if (!runs || !runs->isArray() || runs->asArray().empty())
        throw std::runtime_error(
            "fig10_saturation has no runs in this report");

    // Parse every run into (group, design, rate); groups and
    // designs keep first-appearance order so the table reads like
    // the report.
    std::vector<SaturationCell> cells;
    std::vector<std::string> groups;
    std::vector<std::string> designs;
    for (const Json &run : runs->asArray()) {
        if (const Json *failed = run.find("failed");
            failed && failed->isBool() && failed->asBool())
            continue;
        const Json *params = run.find("params");
        const Json *metrics = run.find("metrics");
        if (!params || !metrics)
            continue;
        const Json *pattern = params->find("pattern");
        const Json *nodes = params->find("nodes");
        const Json *design = params->find("design");
        const Json *rate = metrics->find("saturation_rate");
        if (!pattern || !nodes || !design || !rate ||
            !rate->isNumber())
            continue;
        SaturationCell cell;
        cell.group = pattern->asString() + "/n" +
                     std::to_string(nodes->asInt());
        cell.design = design->asString();
        cell.rate = rate->asDouble();
        bool group_known = false;
        for (const std::string &g : groups)
            group_known = group_known || g == cell.group;
        if (!group_known)
            groups.push_back(cell.group);
        bool design_known = false;
        for (const std::string &d : designs)
            design_known = design_known || d == cell.design;
        if (!design_known)
            designs.push_back(cell.design);
        cells.push_back(std::move(cell));
    }
    if (cells.empty())
        throw std::runtime_error(
            "no fig10_saturation run carries (pattern, nodes, "
            "design, saturation_rate)");

    std::vector<std::vector<std::string>> rows;
    {
        std::vector<std::string> header{"pattern/nodes"};
        for (const std::string &d : designs)
            header.push_back(d == "DM" ? "DM (=1.00)"
                                       : d + " vs DM");
        rows.push_back(std::move(header));
    }
    for (const std::string &group : groups) {
        double dm_rate = 0.0;
        for (const SaturationCell &cell : cells) {
            if (cell.group == group && cell.design == "DM")
                dm_rate = cell.rate;
        }
        if (dm_rate <= 0.0)
            throw std::runtime_error(
                "group '" + group +
                "' has no DM baseline with a positive "
                "saturation_rate to normalise against");
        std::vector<std::string> row{group};
        for (const std::string &design : designs) {
            const SaturationCell *found = nullptr;
            for (const SaturationCell &cell : cells) {
                if (cell.group == group && cell.design == design)
                    found = &cell;
            }
            row.push_back(found ? fixed2(found->rate / dm_rate)
                                : "-");
        }
        rows.push_back(std::move(row));
    }
    return renderRows(rows);
}

} // namespace

std::string
renderReportTable(const Json &report, const std::string &table)
{
    if (table == "throughput-vs-dm")
        return throughputVsDm(report);
    throw std::runtime_error(
        "unknown table '" + table +
        "' (known tables: throughput-vs-dm)");
}

} // namespace sf::exp

#include "exp/driver.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <vector>

#include <atomic>
#include <memory>

#include "exp/diff.hpp"
#include "exp/registry.hpp"
#include "exp/render.hpp"
#include "exp/report.hpp"
#include "exp/run_store.hpp"
#include "exp/scheduler.hpp"
#include "sim/reconfig_schedule.hpp"
#include "topos/factory.hpp"

namespace sf::exp {

namespace {

struct CliOptions {
    std::vector<std::string> patterns;
    int jobs = 0; // 0 = hardware concurrency
    /** Route-plane shards per simulation (sim.shards). Like
     *  --jobs, an execution knob: reports are byte-identical at
     *  every value, so resume may override it freely. */
    int shards = 1;
    /** Memoized route plane (sim.routeCache). An execution knob
     *  like --shards — byte-identical on or off — kept as a flag
     *  for A/B benchmarking; resume may override it freely. */
    bool routeCache = true;
    /** Commit-wavefront width (sim.wavefront). An execution knob
     *  like --shards — byte-identical at any width — so resume may
     *  override it freely. */
    int wavefront = 0;
    /** Routing policy (sim.policy). NOT an execution knob:
     *  non-greedy policies change simulated events, so the value
     *  is part of the sweep — recorded in checkpoint meta.json and
     *  rejected on resume. */
    core::RoutingPolicyKind policy =
        core::RoutingPolicyKind::Greedy;
    /** Reconfig-schedule severity filter (PlanContext::
     *  reconfigSchedule). NOT an execution knob: it changes which
     *  runs the elastic family plans, so like --policy it is
     *  recorded in checkpoint meta.json and rejected on resume.
     *  Empty = plan every severity. */
    std::string reconfigSchedule;
    std::string outPath;
    Effort effort = Effort::Default;
    std::uint64_t baseSeed = kBaseSeed;
    std::string runFilter;
    std::string checkpointDir;
    /** 0 = unlimited; otherwise stop (exit 3) after this many
     *  executed runs — a deterministic simulated interrupt. */
    std::size_t maxRuns = 0;
    bool timing = false;
    bool listRuns = false;
    bool quiet = false;
    bool noTopoCache = false;
    /** --help was handled: exit 0, not a usage error. */
    bool helpShown = false;
};

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage:\n"
        "  sfx list                       list registered "
        "experiments\n"
        "  sfx run <name|glob>...         run experiments\n"
        "  sfx resume <dir>               finish a checkpointed "
        "run\n"
        "  sfx checkpoint status <dir>    completed/pending/stale "
        "counts\n"
        "  sfx checkpoint gc <dir>        delete stale/orphaned/"
        "quarantined\n"
        "                                 entries, prune empty "
        "directories\n"
        "  sfx diff <base.json> <new.json>  compare two reports\n"
        "  sfx render <report.json> --table <name>  normalised\n"
        "                                 paper-table view of a "
        "report\n"
        "                                 (tables: "
        "throughput-vs-dm)\n"
        "\n"
        "run options:\n"
        "  --jobs N      worker threads (default: all cores)\n"
        "  --shards N    route-plane shards inside each cycle\n"
        "                 simulation (default 1 = serial engine;\n"
        "                 reports are byte-identical at any N)\n"
        "  --route-cache on|off  memoized route plane (default on;\n"
        "                 reports are byte-identical either way)\n"
        "  --wavefront N  commit-wavefront width: up to N per-node\n"
        "                 decide stages in flight ahead of the\n"
        "                 serial commit cursor (default 0 = serial\n"
        "                 walk; reports are byte-identical at any "
        "N)\n"
        "  --policy P    routing policy: greedy | ugal | "
        "table_oracle\n"
        "                 (default greedy; non-greedy changes "
        "results and\n"
        "                 disables the route cache)\n"
        "  --reconfig-schedule S  restrict elastic experiments to "
        "one\n"
        "                 schedule severity: leave_join | fail | "
        "cascade\n"
        "                 (default: plan all; changes the run grid "
        "like\n"
        "                 --policy, so resume cannot override it)\n"
        "  --out FILE    write the JSON report to FILE\n"
        "  --effort E    quick | default | full\n"
        "  --quick       same as --effort quick\n"
        "  --full        same as --effort full\n"
        "  --seed S      base seed (default %llu)\n"
        "  --runs GLOB   keep only run ids matching GLOB\n"
        "  --timing      include wall-clock metadata in the "
        "report\n"
        "  --list-runs   print the planned run grid and exit\n"
        "  --quiet       suppress tables, print a summary only\n"
        "  --no-topo-cache  rebuild topologies per run (identical "
        "results)\n"
        "  --checkpoint DIR  persist completed runs under DIR and "
        "skip runs\n"
        "                 already stored there (resumable sweeps)\n"
        "  --max-runs N  stop after N executed runs (simulated "
        "interrupt,\n"
        "                 exit 3); finish with `sfx resume DIR`\n"
        "\n"
        "resume options: --jobs, --shards, --route-cache, "
        "--wavefront, --out, --timing, --quiet, --max-runs\n"
        "(pattern, effort, seed, policy, --reconfig-schedule, and "
        "--runs come from the checkpoint's meta.json)\n"
        "\n"
        "diff options:\n"
        "  --tolerance F  accept relative metric drift up to F "
        "(e.g. 0.05);\n"
        "                 exits 1 on regressions beyond it\n"
        "  --json         structured sf-exp-diff-v1 output instead "
        "of text\n"
        "  --bless        overwrite <base.json> with <new.json>'s "
        "bytes\n"
        "                 (regenerate a committed baseline in "
        "place)\n"
        "\n"
        "checkpoint status options:\n"
        "  --json         structured sf-exp-checkpoint-status-v1 "
        "output\n"
        "(exit 0 when every planned run is stored, 3 when runs "
        "are pending)\n"
        "\n"
        "checkpoint gc options:\n"
        "  --json         structured sf-exp-checkpoint-gc-v1 "
        "output\n"
        "(valid entries always survive; a gc never changes what "
        "resume computes)\n",
        static_cast<unsigned long long>(kBaseSeed));
}

/** Parse options shared by `sfx run`, `sfx resume`, and the bench
 *  wrappers. With @p execution_knobs_only (resume), flags that
 *  define the sweep itself — which the checkpoint's meta.json owns
 *  — are rejected rather than parsed. Returns false (after
 *  printing a message) on bad usage. */
bool
parseRunOptions(int argc, char **argv, int first, CliOptions &opts,
                bool accept_patterns,
                bool execution_knobs_only = false)
{
    for (int i = first; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (execution_knobs_only &&
            (arg == "--effort" || arg == "--quick" ||
             arg == "--full" || arg == "--seed" ||
             arg == "--runs" || arg == "--checkpoint" ||
             arg == "--policy" ||
             arg == "--reconfig-schedule" ||
             arg == "--list-runs" ||
             arg == "--no-topo-cache")) {
            std::fprintf(stderr,
                         "sfx: %s cannot be overridden on resume "
                         "(the sweep comes from the checkpoint's "
                         "meta.json)\n",
                         argv[i]);
            return false;
        }
        const auto need_value = [&](const char *flag) -> char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "sfx: %s needs a value\n",
                             flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            char *v = need_value("--jobs");
            if (!v)
                return false;
            opts.jobs = std::atoi(v);
            if (opts.jobs < 1) {
                std::fprintf(stderr,
                             "sfx: --jobs must be >= 1\n");
                return false;
            }
        } else if (arg == "--shards") {
            char *v = need_value("--shards");
            if (!v)
                return false;
            opts.shards = std::atoi(v);
            if (opts.shards < 1) {
                std::fprintf(stderr,
                             "sfx: --shards must be >= 1\n");
                return false;
            }
        } else if (arg == "--wavefront") {
            char *v = need_value("--wavefront");
            if (!v)
                return false;
            opts.wavefront = std::atoi(v);
            if (opts.wavefront < 0) {
                std::fprintf(stderr,
                             "sfx: --wavefront must be >= 0\n");
                return false;
            }
        } else if (arg == "--route-cache") {
            char *v = need_value("--route-cache");
            if (!v)
                return false;
            const std::string_view val = v;
            if (val == "on") {
                opts.routeCache = true;
            } else if (val == "off") {
                opts.routeCache = false;
            } else {
                std::fprintf(stderr,
                             "sfx: --route-cache needs on or off, "
                             "got '%s'\n",
                             v);
                return false;
            }
        } else if (arg == "--policy") {
            char *v = need_value("--policy");
            if (!v)
                return false;
            if (!core::parseRoutingPolicy(v, opts.policy)) {
                std::fprintf(stderr,
                             "sfx: --policy needs greedy, ugal, "
                             "or table_oracle, got '%s'\n",
                             v);
                return false;
            }
        } else if (arg == "--reconfig-schedule") {
            char *v = need_value("--reconfig-schedule");
            if (!v)
                return false;
            if (!sim::isReconfigSeverity(v)) {
                std::fprintf(stderr,
                             "sfx: --reconfig-schedule needs "
                             "leave_join, fail, or cascade, got "
                             "'%s'\n",
                             v);
                return false;
            }
            opts.reconfigSchedule = v;
        } else if (arg == "--out" || arg == "-o") {
            char *v = need_value("--out");
            if (!v)
                return false;
            opts.outPath = v;
        } else if (arg == "--effort") {
            char *v = need_value("--effort");
            if (!v)
                return false;
            try {
                opts.effort = parseEffort(v);
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "sfx: %s\n", e.what());
                return false;
            }
        } else if (arg == "--quick") {
            opts.effort = Effort::Quick;
        } else if (arg == "--full") {
            opts.effort = Effort::Full;
        } else if (arg == "--seed") {
            char *v = need_value("--seed");
            if (!v)
                return false;
            char *end = nullptr;
            errno = 0;
            opts.baseSeed = std::strtoull(v, &end, 10);
            if (errno != 0 || end == v || *end != '\0') {
                std::fprintf(stderr,
                             "sfx: --seed needs an unsigned "
                             "integer, got '%s'\n",
                             v);
                return false;
            }
        } else if (arg == "--runs") {
            char *v = need_value("--runs");
            if (!v)
                return false;
            opts.runFilter = v;
        } else if (arg == "--checkpoint") {
            char *v = need_value("--checkpoint");
            if (!v)
                return false;
            opts.checkpointDir = v;
        } else if (arg == "--max-runs") {
            char *v = need_value("--max-runs");
            if (!v)
                return false;
            const int n = std::atoi(v);
            if (n < 1) {
                std::fprintf(stderr,
                             "sfx: --max-runs must be >= 1\n");
                return false;
            }
            opts.maxRuns = static_cast<std::size_t>(n);
        } else if (arg == "--timing") {
            opts.timing = true;
        } else if (arg == "--no-topo-cache") {
            opts.noTopoCache = true;
        } else if (arg == "--list-runs") {
            opts.listRuns = true;
        } else if (arg == "--quiet" || arg == "-q") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            opts.helpShown = true;
            return false;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "sfx: unknown option: %s\n",
                         argv[i]);
            return false;
        } else if (accept_patterns) {
            opts.patterns.emplace_back(arg);
        } else {
            std::fprintf(stderr, "sfx: unexpected argument: %s\n",
                         argv[i]);
            return false;
        }
    }
    return true;
}

int
doList()
{
    const Registry &r = registry();
    std::size_t width = 0;
    for (const ExperimentSpec &spec : r.all())
        width = std::max(width, spec.name.size());
    for (const ExperimentSpec &spec : r.all())
        std::printf("%-*s  [%s]  %s\n", static_cast<int>(width),
                    spec.name.c_str(), spec.artefact.c_str(),
                    spec.title.c_str());
    return 0;
}

/**
 * Plan one experiment's run grid and apply the `--runs` id filter —
 * the single definition of "which runs does this invocation
 * execute", shared by `sfx run`/`resume` (via doRun) and
 * `sfx checkpoint status` so the two can never plan different
 * grids.
 */
std::vector<RunSpec>
plannedRuns(const ExperimentSpec &spec, const PlanContext &plan_ctx,
            const std::string &run_filter)
{
    auto runs = spec.plan(plan_ctx);
    if (!run_filter.empty())
        std::erase_if(runs, [&](const RunSpec &run) {
            return !globMatch(run_filter, run.id);
        });
    return runs;
}

int
doRun(const CliOptions &opts)
{
    std::string joined;
    for (const std::string &p : opts.patterns) {
        if (!joined.empty())
            joined.push_back(',');
        joined += p;
    }
    const auto specs = registry().match(joined);
    if (specs.empty()) {
        std::fprintf(stderr,
                     "sfx: no experiment matches '%s' (try `sfx "
                     "list`)\n",
                     joined.c_str());
        return 2;
    }

    PlanContext plan_ctx;
    plan_ctx.effort = opts.effort;
    plan_ctx.baseSeed = opts.baseSeed;
    plan_ctx.reconfigSchedule = opts.reconfigSchedule;

    // Plan every matched experiment, applying the run-id filter.
    const auto plan_runs = [&](const ExperimentSpec *spec) {
        return plannedRuns(*spec, plan_ctx, opts.runFilter);
    };

    if (opts.listRuns) {
        for (const ExperimentSpec *spec : specs) {
            const auto runs = plan_runs(spec);
            std::printf("%s (%zu runs)\n", spec->name.c_str(),
                        runs.size());
            for (const RunSpec &run : runs)
                std::printf("  %s\n", run.id.c_str());
        }
        return 0;
    }

    topos::setTopologyCacheEnabled(!opts.noTopoCache);

    // Resumable sweeps: bind (or create) the checkpoint directory
    // before any work, so meta mismatches fail fast.
    std::unique_ptr<RunStore> store;
    if (!opts.checkpointDir.empty()) {
        try {
            store =
                std::make_unique<RunStore>(opts.checkpointDir);
            Json meta = Json::object();
            meta.set("schema", RunStore::kSchema);
            meta.set("suite", "string-figure");
            meta.set("patterns", joined);
            meta.set("effort",
                     std::string(effortName(opts.effort)));
            meta.set("base_seed", opts.baseSeed);
            meta.set("run_filter", opts.runFilter);
            // Sweep-defining like effort/seed: a checkpoint taken
            // under one policy must never be finished under
            // another (results would silently mix event streams).
            meta.set("policy",
                     core::routingPolicyName(opts.policy));
            // Sweep-defining too: the severity filter changes which
            // runs the elastic family plans.
            meta.set("reconfig_schedule", opts.reconfigSchedule);
            store->bindInvocation(meta);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "sfx: %s\n", e.what());
            return 2;
        }
    }

    std::atomic<std::size_t> executed{0};

    SchedulerOptions sched;
    sched.jobs = opts.jobs;
    sched.shards = opts.shards;
    sched.routeCache = opts.routeCache;
    sched.wavefront = opts.wavefront;
    sched.policy = opts.policy;
    sched.effort = opts.effort;
    sched.baseSeed = opts.baseSeed;
    sched.store = store.get();
    sched.maxExecuted = opts.maxRuns;
    sched.executedCount = &executed;

    std::vector<ExperimentResults> all;
    all.reserve(specs.size());
    bool any_failed = false;
    const auto suite_start = std::chrono::steady_clock::now();
    for (const ExperimentSpec *spec : specs) {
        const auto runs = plan_runs(spec);
        if (runs.empty() && !opts.runFilter.empty())
            continue;
        if (!opts.quiet) {
            std::printf("== %s [%s] — %s\n", spec->name.c_str(),
                        spec->artefact.c_str(),
                        spec->title.c_str());
            std::printf("   effort %s, %zu runs, %d jobs\n",
                        std::string(effortName(opts.effort))
                            .c_str(),
                        runs.size(),
                        poolJobs(sched, runs.size()));
            std::fflush(stdout);
        }
        ExperimentResults results;
        results.spec = spec;
        sched.specHash =
            store ? specHash(*spec, runs, opts.effort,
                             opts.baseSeed)
                  : std::string();
        const auto start = std::chrono::steady_clock::now();
        results.runs = runExperiment(*spec, runs, sched);
        results.wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        for (const RunResult &r : results.runs) {
            if (r.failed) {
                any_failed = true;
                std::fprintf(stderr, "sfx: %s/%s FAILED: %s\n",
                             spec->name.c_str(), r.id.c_str(),
                             r.error.c_str());
            }
        }
        if (!opts.quiet) {
            std::fputs(renderTable(results).c_str(), stdout);
            std::printf("   (%.1f ms)\n\n", results.wallMs);
            std::fflush(stdout);
        }
        all.push_back(std::move(results));
    }
    const double suite_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - suite_start)
            .count();

    std::size_t total_runs = 0;
    std::size_t reused = 0;
    std::size_t pending = 0;
    std::size_t ran = 0;
    for (const ExperimentResults &er : all) {
        total_runs += er.runs.size();
        for (const RunResult &r : er.runs) {
            reused += r.fromCheckpoint ? 1 : 0;
            pending += r.skipped ? 1 : 0;
            ran += (!r.fromCheckpoint && !r.skipped) ? 1 : 0;
        }
    }
    if (total_runs == 0 && !opts.runFilter.empty()) {
        std::fprintf(stderr,
                     "sfx: --runs '%s' matched no run in any "
                     "selected experiment (try --list-runs)\n",
                     opts.runFilter.c_str());
        return 2;
    }
    std::printf("%zu experiment(s), %zu run(s) in %.1f ms%s\n",
                all.size(), total_runs, suite_ms,
                any_failed ? " — FAILURES above" : "");
    if (store && !opts.quiet) {
        const RunStore::Stats cs = store->stats();
        std::printf("checkpoint %s: %zu reused, %zu stored, %zu "
                    "stale, %zu quarantined\n",
                    store->dir().c_str(), reused, cs.writes,
                    cs.stale, cs.quarantined);
    }
    if (store && store->stats().writeErrors > 0)
        std::fprintf(stderr,
                     "sfx: warning: %zu checkpoint write(s) "
                     "failed; those runs will re-execute on "
                     "resume\n",
                     store->stats().writeErrors);
    if (!opts.quiet && !opts.noTopoCache) {
        const auto cache = topos::topologyCache().stats();
        if (cache.hits + cache.misses > 0)
            std::printf("topology cache: %llu hits, %llu builds"
                        ", %llu evictions\n",
                        static_cast<unsigned long long>(
                            cache.hits),
                        static_cast<unsigned long long>(
                            cache.misses),
                        static_cast<unsigned long long>(
                            cache.evictions));
    }

    if (pending > 0) {
        // The simulated interrupt fired: the sweep is incomplete,
        // so no report may be written (it would not match an
        // uninterrupted run).
        std::string hint;
        if (store)
            hint = " — resume with `sfx resume " +
                   opts.checkpointDir + "`";
        std::fprintf(stderr,
                     "sfx: stopped after %zu executed run(s) "
                     "(--max-runs); %zu run(s) pending%s\n",
                     ran, pending, hint.c_str());
        return 3;
    }

    if (!opts.outPath.empty()) {
        ReportOptions ropts;
        ropts.effort = opts.effort;
        ropts.baseSeed = opts.baseSeed;
        ropts.jobs = opts.jobs;
        ropts.shards = opts.shards;
        ropts.wavefront = opts.wavefront;
        ropts.policy = opts.policy;
        ropts.includeTiming = opts.timing;
        try {
            writeFile(opts.outPath,
                      buildReport(all, ropts).dump(2) + "\n");
        } catch (const std::exception &e) {
            std::fprintf(stderr, "sfx: %s\n", e.what());
            return 1;
        }
        std::printf("report: %s\n", opts.outPath.c_str());
    }
    return any_failed ? 1 : 0;
}

/**
 * Load the sweep-defining fields (patterns, effort, base seed, run
 * filter) of a checkpoint's meta.json into @p opts — the single
 * source of truth for what a checkpointed invocation plans, shared
 * by `sfx resume` and `sfx checkpoint status` so the two can never
 * re-plan different grids. Throws on a non-checkpoint directory.
 */
void
optionsFromMeta(const std::string &dir, CliOptions &opts)
{
    const Json meta = RunStore::readInvocationMeta(dir);
    opts.patterns = {meta.at("patterns").asString()};
    opts.effort = parseEffort(meta.at("effort").asString());
    opts.baseSeed = meta.at("base_seed").asUint();
    opts.runFilter = meta.at("run_filter").asString();
    // Absent in checkpoints taken before the policy seam existed:
    // those sweeps all ran greedy, the default.
    if (const Json *p = meta.find("policy")) {
        if (!core::parseRoutingPolicy(p->asString(), opts.policy))
            throw std::runtime_error(
                "unknown policy in checkpoint meta.json: " +
                p->asString());
    }
    // Absent in checkpoints taken before the elastic family
    // existed: those sweeps planned every severity (the default).
    if (const Json *s = meta.find("reconfig_schedule")) {
        if (!s->asString().empty() &&
            !sim::isReconfigSeverity(s->asString()))
            throw std::runtime_error(
                "unknown reconfig_schedule in checkpoint "
                "meta.json: " +
                s->asString());
        opts.reconfigSchedule = s->asString();
    }
}

/**
 * `sfx resume DIR`: re-enter an interrupted `sfx run --checkpoint
 * DIR` invocation. What to run (patterns, effort, base seed, run
 * filter) comes from the checkpoint's meta.json so the resumed
 * sweep is exactly the interrupted one; only execution knobs
 * (--jobs, --out, --quiet, --timing, --max-runs) may be given.
 */
int
doResume(int argc, char **argv)
{
    if (argc >= 3 && (std::string_view(argv[2]) == "--help" ||
                      std::string_view(argv[2]) == "-h")) {
        printUsage(stdout);
        return 0;
    }
    if (argc < 3 || argv[2][0] == '-') {
        std::fprintf(
            stderr,
            "sfx: resume needs a checkpoint directory\n");
        return 2;
    }
    const std::string dir = argv[2];
    CliOptions opts;
    if (!parseRunOptions(argc, argv, 3, opts,
                         /*accept_patterns=*/false,
                         /*execution_knobs_only=*/true))
        return opts.helpShown ? 0 : 2;
    try {
        optionsFromMeta(dir, opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sfx: %s\n", e.what());
        return 2;
    }
    opts.checkpointDir = dir;
    return doRun(opts);
}

int
doRender(int argc, char **argv)
{
    std::string table;
    std::string path;
    for (int i = 2; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--table") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "sfx: --table needs a name\n");
                return 2;
            }
            table = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "sfx: unknown option: %s\n",
                         argv[i]);
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr, "sfx: unexpected argument: %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (path.empty() || table.empty()) {
        std::fprintf(stderr,
                     "sfx: usage: sfx render <report.json> "
                     "--table <name>\n");
        return 2;
    }
    try {
        const Json report = Json::parse(readFile(path));
        std::fputs(renderReportTable(report, table).c_str(),
                   stdout);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sfx: %s\n", e.what());
        return 2;
    }
}

int
doDiff(int argc, char **argv)
{
    DiffOptions opts;
    bool json_out = false;
    bool bless = false;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--tolerance" || arg == "-t") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "sfx: --tolerance needs a value\n");
                return 2;
            }
            char *end = nullptr;
            opts.tolerance = std::strtod(argv[++i], &end);
            // isfinite also rejects NaN, which would otherwise
            // disable the gate (every comparison false).
            if (end == argv[i] || *end != '\0' ||
                !std::isfinite(opts.tolerance) ||
                opts.tolerance < 0.0) {
                std::fprintf(stderr,
                             "sfx: --tolerance needs a "
                             "non-negative number, got '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--json") {
            json_out = true;
        } else if (arg == "--bless") {
            bless = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "sfx: unknown option: %s\n",
                         argv[i]);
            return 2;
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.size() != 2) {
        std::fprintf(stderr,
                     "sfx: diff needs exactly two report files\n");
        return 2;
    }
    try {
        const std::string base_text = readFile(paths[0]);
        const std::string current_text = readFile(paths[1]);
        const Json base = Json::parse(base_text);
        const Json current = Json::parse(current_text);
        const ReportDiff diff = diffReports(base, current, opts);
        if (json_out) {
            std::fputs((diffToJson(diff).dump(2) + "\n").c_str(),
                       stdout);
        } else {
            std::fputs(renderDiff(diff).c_str(), stdout);
            std::printf("%zu metric(s) compared, %zu changed, %zu "
                        "regression(s), %zu structural issue(s)\n",
                        diff.compared, diff.changed.size(),
                        diff.regressions, diff.structural.size());
        }
        if (bless) {
            // Byte-exact copy, not a re-dump: the blessed baseline
            // must be the candidate file verbatim.
            if (base_text != current_text)
                writeFile(paths[0], current_text);
            if (!json_out)
                std::printf("blessed: %s\n", paths[0].c_str());
            return 0;
        }
        return diff.clean() ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sfx: %s\n", e.what());
        return 2;
    }
}

/**
 * Shared walk behind `sfx checkpoint status` and `sfx checkpoint
 * gc`: re-plan every experiment the checkpoint's meta.json selects
 * and classify each planned run's on-disk entry. Key construction
 * mirrors the scheduler's store lookup (scheduler.cpp) — same
 * plannedRuns, same specHash over the same grid, same deriveSeed
 * inputs — and lives in exactly one place, so status, gc, and the
 * scheduler can never disagree about which entry file a planned
 * run maps to. @p on_spec fires once per selected experiment (in
 * the same order `sfx run` would sweep them), then @p on_entry
 * once per planned run with the classification and entry path.
 */
void
forEachPlannedEntry(
    const RunStore &store,
    const std::vector<const ExperimentSpec *> &specs,
    const CliOptions &opts,
    const std::function<void(const ExperimentSpec &)> &on_spec,
    const std::function<void(RunStore::EntryState,
                             const std::string &)> &on_entry)
{
    PlanContext plan_ctx;
    plan_ctx.effort = opts.effort;
    plan_ctx.baseSeed = opts.baseSeed;
    plan_ctx.reconfigSchedule = opts.reconfigSchedule;
    for (const ExperimentSpec *spec : specs) {
        const auto runs =
            plannedRuns(*spec, plan_ctx, opts.runFilter);
        if (runs.empty() && !opts.runFilter.empty())
            continue;  // as `sfx run` skips filtered-out specs
        on_spec(*spec);
        const std::string hash =
            specHash(*spec, runs, opts.effort, opts.baseSeed);
        for (const RunSpec &run : runs) {
            const RunStore::Key key{
                spec->name, run.id,
                deriveSeed(spec->name, run.id, opts.baseSeed),
                hash};
            on_entry(store.inspect(key),
                     store.entryPath(spec->name, run.id));
        }
    }
}

/**
 * `sfx checkpoint status DIR`: classify every run the checkpointed
 * invocation plans against the entries on disk — completed (valid
 * under the current spec hash), stale (outdated key, will re-run),
 * corrupt (checksum/parse failure, will re-run), pending (no usable
 * entry) — plus the quarantine backlog and the journal event tally.
 * Read-only: inspecting never quarantines or journals, so a status
 * check can never change what a later `sfx resume` observes.
 */
int
doCheckpointStatus(const std::string &dir, bool json_out)
{
    namespace fs = std::filesystem;
    CliOptions opts;
    try {
        optionsFromMeta(dir, opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sfx: %s\n", e.what());
        return 2;
    }
    const auto specs = registry().match(opts.patterns[0]);
    if (specs.empty()) {
        std::fprintf(stderr,
                     "sfx: checkpoint %s plans '%s', which matches "
                     "no registered experiment\n",
                     dir.c_str(), opts.patterns[0].c_str());
        return 2;
    }
    RunStore store(dir);

    struct Row {
        std::string name;
        std::size_t planned = 0;
        std::size_t completed = 0;
        std::size_t stale = 0;
        std::size_t corrupt = 0;

        std::size_t
        pending() const
        {
            return planned - completed;
        }
    };
    std::vector<Row> rows;
    Row total{"total"};
    forEachPlannedEntry(
        store, specs, opts,
        [&](const ExperimentSpec &spec) {
            rows.push_back(Row{spec.name});
        },
        [&](RunStore::EntryState state, const std::string &) {
            Row &row = rows.back();
            ++row.planned;
            ++total.planned;
            switch (state) {
            case RunStore::EntryState::Valid:
                ++row.completed;
                ++total.completed;
                break;
            case RunStore::EntryState::Stale:
                ++row.stale;
                ++total.stale;
                break;
            case RunStore::EntryState::Corrupt:
                ++row.corrupt;
                ++total.corrupt;
                break;
            case RunStore::EntryState::Missing:
                break;
            }
        });

    std::size_t quarantined = 0;
    std::error_code ec;
    for (fs::directory_iterator it(fs::path(dir) / "quarantine",
                                   ec),
         end;
         !ec && it != end; it.increment(ec))
        ++quarantined;

    // Journal event tally (diagnostic; tolerate a missing or
    // truncated journal).
    std::size_t journal_events = 0;
    Json journal_counts = Json::object();
    try {
        const auto lines = Json::parseLines(
            readFile((fs::path(dir) / "journal.jsonl").string()),
            /*dropTruncatedTail=*/true);
        for (const Json &line : lines) {
            ++journal_events;
            const Json *event = line.find("event");
            if (!event || !event->isString())
                continue;
            const std::string &name = event->asString();
            const Json *have = journal_counts.find(name);
            journal_counts.set(
                name, (have ? have->asUint() : 0) + 1);
        }
    } catch (const std::exception &) {
    }

    if (json_out) {
        Json doc = Json::object();
        doc.set("schema", "sf-exp-checkpoint-status-v1");
        doc.set("dir", dir);
        Json experiments = Json::array();
        const auto row_json = [](const Row &row) {
            Json r = Json::object();
            r.set("experiment", row.name);
            r.set("planned", row.planned);
            r.set("completed", row.completed);
            r.set("pending", row.pending());
            r.set("stale", row.stale);
            r.set("corrupt", row.corrupt);
            return r;
        };
        for (const Row &row : rows)
            experiments.push(row_json(row));
        doc.set("experiments", std::move(experiments));
        doc.set("total", row_json(total));
        doc.set("quarantined_files", quarantined);
        doc.set("journal_events", journal_events);
        doc.set("journal_event_counts", std::move(journal_counts));
        std::fputs((doc.dump(2) + "\n").c_str(), stdout);
    } else {
        std::size_t width = total.name.size();
        for (const Row &row : rows)
            width = std::max(width, row.name.size());
        std::printf("%-*s  %9s  %9s  %9s  %6s  %7s\n",
                    static_cast<int>(width), "experiment",
                    "planned", "completed", "pending", "stale",
                    "corrupt");
        const auto print_row = [&](const Row &row) {
            std::printf("%-*s  %9zu  %9zu  %9zu  %6zu  %7zu\n",
                        static_cast<int>(width), row.name.c_str(),
                        row.planned, row.completed, row.pending(),
                        row.stale, row.corrupt);
        };
        for (const Row &row : rows)
            print_row(row);
        print_row(total);
        std::printf("quarantine: %zu file(s); journal: %zu "
                    "event(s)\n",
                    quarantined, journal_events);
        if (total.pending() > 0)
            std::printf("resume with: sfx resume %s\n",
                        dir.c_str());
    }
    return total.pending() > 0 ? 3 : 0;
}

/**
 * `sfx checkpoint gc DIR`: reclaim everything a resume can no
 * longer use — stale entries (outdated spec hash; they would be
 * re-run and overwritten anyway), corrupt entries (they would be
 * quarantined and re-run), orphaned files under runs/ that no
 * planned run maps to (left behind by registry renames, removed
 * grid cells, or interrupted temp writes), and the quarantine
 * backlog — then prunes emptied directories. Valid entries are
 * never touched, so gc cannot change what a later `sfx resume`
 * computes; it only shrinks multi-day sweep directories.
 */
int
doCheckpointGc(const std::string &dir, bool json_out)
{
    namespace fs = std::filesystem;
    CliOptions opts;
    try {
        optionsFromMeta(dir, opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sfx: %s\n", e.what());
        return 2;
    }
    // A pattern matching no registered experiment usually means
    // the wrong (newer) binary, not true garbage — the planned-run
    // walk would then keep nothing and pass 2 would reap every
    // completed entry as an orphan. Refuse, exactly as status
    // does; a checkpoint that really is all garbage is `rm -r`
    // territory, not gc's.
    const auto specs = registry().match(opts.patterns[0]);
    if (specs.empty()) {
        std::fprintf(stderr,
                     "sfx: checkpoint %s plans '%s', which matches "
                     "no registered experiment; refusing to gc "
                     "(every entry would count as orphaned)\n",
                     dir.c_str(), opts.patterns[0].c_str());
        return 2;
    }
    RunStore store(dir);

    std::size_t stale = 0;
    std::size_t corrupt = 0;
    std::size_t orphaned = 0;
    std::size_t quarantined = 0;
    std::size_t kept = 0;
    std::size_t pruned_dirs = 0;
    std::size_t errors = 0;
    std::error_code ec;
    // Deletions count only when they actually happened: a
    // read-only or foreign-owned checkpoint must report failures
    // (and exit nonzero), not pretend the space was reclaimed.
    const auto reap = [&](const fs::path &p, std::size_t &n) {
        std::error_code rec;
        if (fs::remove(p, rec) && !rec)
            ++n;
        else
            ++errors;
    };
    // A directory that cannot be *iterated* (foreign owner, mode
    // 000) is a failure too — the sweep silently covered nothing —
    // but a directory that simply does not exist is the normal
    // shape of "nothing to do" (no quarantine/ yet, an experiment
    // dir without runs/).
    const auto iter_failed = [&](const std::error_code &it_ec) {
        if (it_ec &&
            it_ec != std::errc::no_such_file_or_directory)
            ++errors;
    };

    // Pass 1: classify every planned run's entry — via the same
    // walk status uses, so "valid" is precisely "resume would
    // reuse it". Every path this pass touched (kept, or a
    // deletion attempt regardless of outcome) is off-limits to
    // the orphan sweep: a stale entry whose removal failed must
    // not be re-attempted — and re-counted — as an orphan.
    std::vector<std::string> handled;
    forEachPlannedEntry(
        store, specs, opts, [](const ExperimentSpec &) {},
        [&](RunStore::EntryState state, const std::string &path) {
            switch (state) {
            case RunStore::EntryState::Valid:
                handled.push_back(path);
                ++kept;
                break;
            case RunStore::EntryState::Stale:
                handled.push_back(path);
                reap(path, stale);
                break;
            case RunStore::EntryState::Corrupt:
                handled.push_back(path);
                reap(path, corrupt);
                break;
            case RunStore::EntryState::Missing:
                break;
            }
        });
    std::sort(handled.begin(), handled.end());
    const auto pass1_handled = [&](const fs::path &p) {
        return std::binary_search(handled.begin(), handled.end(),
                                  p.string());
    };

    // Pass 2: orphan sweep — anything under an experiment's runs/
    // that pass 1 did not mark as a valid planned entry (renamed
    // experiments, removed grid cells, stray temp files).
    for (fs::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_directory() ||
            it->path().filename() == "quarantine")
            continue;
        const fs::path runs_dir = it->path() / "runs";
        std::error_code rec;
        for (fs::directory_iterator rit(runs_dir, rec), rend;
             !rec && rit != rend; rit.increment(rec)) {
            if (rit->is_regular_file() &&
                !pass1_handled(rit->path()))
                reap(rit->path(), orphaned);
        }
        iter_failed(rec);
        // Prune what emptied (remove() refuses non-empty dirs).
        if (fs::remove(runs_dir, rec))
            ++pruned_dirs;
        if (fs::remove(it->path(), rec))
            ++pruned_dirs;
    }
    iter_failed(ec);

    // Pass 3: the quarantine backlog is post-mortem evidence, and
    // gc is its explicit retention limit.
    const fs::path quarantine_dir = fs::path(dir) / "quarantine";
    for (fs::directory_iterator it(quarantine_dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file())
            reap(it->path(), quarantined);
    }
    iter_failed(ec);
    fs::remove(quarantine_dir, ec);  // only if emptied

    // One journal line so the event stream explains the shrink.
    try {
        Json line = Json::object();
        line.set("event", "gc");
        line.set("kept", kept);
        line.set("stale", stale);
        line.set("corrupt", corrupt);
        line.set("orphaned", orphaned);
        line.set("quarantined", quarantined);
        line.set("errors", errors);
        appendJsonLine(
            (fs::path(dir) / "journal.jsonl").string(), line);
    } catch (const std::exception &) {
    }

    if (json_out) {
        Json doc = Json::object();
        doc.set("schema", "sf-exp-checkpoint-gc-v1");
        doc.set("dir", dir);
        doc.set("kept", kept);
        doc.set("stale_deleted", stale);
        doc.set("corrupt_deleted", corrupt);
        doc.set("orphaned_deleted", orphaned);
        doc.set("quarantine_deleted", quarantined);
        doc.set("pruned_dirs", pruned_dirs);
        doc.set("errors", errors);
        std::fputs((doc.dump(2) + "\n").c_str(), stdout);
    } else {
        std::printf("gc %s: kept %zu, deleted %zu stale + %zu "
                    "corrupt + %zu orphaned + %zu quarantined, "
                    "pruned %zu dir(s)%s\n",
                    dir.c_str(), kept, stale, corrupt, orphaned,
                    quarantined, pruned_dirs,
                    errors ? " — DELETIONS FAILED" : "");
    }
    if (errors > 0) {
        std::fprintf(stderr,
                     "sfx: gc: %zu deletion(s) failed (permissions"
                     "?); the files are still on disk\n",
                     errors);
        return 1;
    }
    return 0;
}

} // namespace

int
sfxMain(int argc, char **argv)
{
    if (argc < 2) {
        printUsage(stderr);
        return 2;
    }
    const std::string_view command = argv[1];
    if (command == "list")
        return doList();
    if (command == "diff")
        return doDiff(argc, argv);
    if (command == "render")
        return doRender(argc, argv);
    if (command == "resume")
        return doResume(argc, argv);
    if (command == "checkpoint") {
        std::string sub;
        std::string dir;
        bool json_out = false;
        for (int i = 2; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg == "--json") {
                json_out = true;
            } else if (arg == "--help" || arg == "-h") {
                printUsage(stdout);
                return 0;
            } else if (sub.empty()) {
                if (arg != "status" && arg != "gc") {
                    std::fprintf(stderr,
                                 "sfx: unknown checkpoint "
                                 "subcommand: %s\n",
                                 argv[i]);
                    return 2;
                }
                sub = arg;
            } else if (dir.empty() && !arg.empty() &&
                       arg[0] != '-') {
                dir = arg;
            } else {
                std::fprintf(stderr,
                             "sfx: unexpected argument: %s\n",
                             argv[i]);
                return 2;
            }
        }
        if (sub.empty() || dir.empty()) {
            std::fprintf(stderr,
                         "sfx: usage: sfx checkpoint "
                         "status|gc <dir> [--json]\n");
            return 2;
        }
        return sub == "gc" ? doCheckpointGc(dir, json_out)
                           : doCheckpointStatus(dir, json_out);
    }
    if (command == "run") {
        CliOptions opts;
        if (!parseRunOptions(argc, argv, 2, opts, true))
            return opts.helpShown ? 0 : 2;
        if (opts.patterns.empty()) {
            std::fprintf(stderr,
                         "sfx: run needs at least one experiment "
                         "name or glob\n");
            return 2;
        }
        return doRun(opts);
    }
    if (command == "--help" || command == "-h") {
        printUsage(stdout);
        return 0;
    }
    std::fprintf(stderr, "sfx: unknown command: %s\n", argv[1]);
    printUsage(stderr);
    return 2;
}

int
benchMain(const std::string &patterns, int argc, char **argv)
{
    CliOptions opts;
    if (!parseRunOptions(argc, argv, 1, opts, false))
        return opts.helpShown ? 0 : 2;
    opts.patterns = {patterns};
    return doRun(opts);
}

} // namespace sf::exp

#include "exp/driver.hpp"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "exp/diff.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/scheduler.hpp"
#include "topos/factory.hpp"

namespace sf::exp {

namespace {

struct CliOptions {
    std::vector<std::string> patterns;
    int jobs = 0; // 0 = hardware concurrency
    std::string outPath;
    Effort effort = Effort::Default;
    std::uint64_t baseSeed = kBaseSeed;
    std::string runFilter;
    bool timing = false;
    bool listRuns = false;
    bool quiet = false;
    bool noTopoCache = false;
    /** --help was handled: exit 0, not a usage error. */
    bool helpShown = false;
};

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage:\n"
        "  sfx list                       list registered "
        "experiments\n"
        "  sfx run <name|glob>...         run experiments\n"
        "  sfx diff <base.json> <new.json>  compare two reports\n"
        "\n"
        "run options:\n"
        "  --jobs N      worker threads (default: all cores)\n"
        "  --out FILE    write the JSON report to FILE\n"
        "  --effort E    quick | default | full\n"
        "  --quick       same as --effort quick\n"
        "  --full        same as --effort full\n"
        "  --seed S      base seed (default %llu)\n"
        "  --runs GLOB   keep only run ids matching GLOB\n"
        "  --timing      include wall-clock metadata in the "
        "report\n"
        "  --list-runs   print the planned run grid and exit\n"
        "  --quiet       suppress tables, print a summary only\n"
        "  --no-topo-cache  rebuild topologies per run (identical "
        "results)\n"
        "\n"
        "diff options:\n"
        "  --tolerance F  accept relative metric drift up to F "
        "(e.g. 0.05);\n"
        "                 exits 1 on regressions beyond it\n",
        static_cast<unsigned long long>(kBaseSeed));
}

/** Parse options shared by `sfx run` and the bench wrappers.
 *  Returns false (after printing a message) on bad usage. */
bool
parseRunOptions(int argc, char **argv, int first, CliOptions &opts,
                bool accept_patterns)
{
    for (int i = first; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto need_value = [&](const char *flag) -> char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "sfx: %s needs a value\n",
                             flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            char *v = need_value("--jobs");
            if (!v)
                return false;
            opts.jobs = std::atoi(v);
            if (opts.jobs < 1) {
                std::fprintf(stderr,
                             "sfx: --jobs must be >= 1\n");
                return false;
            }
        } else if (arg == "--out" || arg == "-o") {
            char *v = need_value("--out");
            if (!v)
                return false;
            opts.outPath = v;
        } else if (arg == "--effort") {
            char *v = need_value("--effort");
            if (!v)
                return false;
            try {
                opts.effort = parseEffort(v);
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "sfx: %s\n", e.what());
                return false;
            }
        } else if (arg == "--quick") {
            opts.effort = Effort::Quick;
        } else if (arg == "--full") {
            opts.effort = Effort::Full;
        } else if (arg == "--seed") {
            char *v = need_value("--seed");
            if (!v)
                return false;
            char *end = nullptr;
            errno = 0;
            opts.baseSeed = std::strtoull(v, &end, 10);
            if (errno != 0 || end == v || *end != '\0') {
                std::fprintf(stderr,
                             "sfx: --seed needs an unsigned "
                             "integer, got '%s'\n",
                             v);
                return false;
            }
        } else if (arg == "--runs") {
            char *v = need_value("--runs");
            if (!v)
                return false;
            opts.runFilter = v;
        } else if (arg == "--timing") {
            opts.timing = true;
        } else if (arg == "--no-topo-cache") {
            opts.noTopoCache = true;
        } else if (arg == "--list-runs") {
            opts.listRuns = true;
        } else if (arg == "--quiet" || arg == "-q") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            opts.helpShown = true;
            return false;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "sfx: unknown option: %s\n",
                         argv[i]);
            return false;
        } else if (accept_patterns) {
            opts.patterns.emplace_back(arg);
        } else {
            std::fprintf(stderr, "sfx: unexpected argument: %s\n",
                         argv[i]);
            return false;
        }
    }
    return true;
}

int
doList()
{
    const Registry &r = registry();
    std::size_t width = 0;
    for (const ExperimentSpec &spec : r.all())
        width = std::max(width, spec.name.size());
    for (const ExperimentSpec &spec : r.all())
        std::printf("%-*s  [%s]  %s\n", static_cast<int>(width),
                    spec.name.c_str(), spec.artefact.c_str(),
                    spec.title.c_str());
    return 0;
}

int
doRun(const CliOptions &opts)
{
    std::string joined;
    for (const std::string &p : opts.patterns) {
        if (!joined.empty())
            joined.push_back(',');
        joined += p;
    }
    const auto specs = registry().match(joined);
    if (specs.empty()) {
        std::fprintf(stderr,
                     "sfx: no experiment matches '%s' (try `sfx "
                     "list`)\n",
                     joined.c_str());
        return 2;
    }

    PlanContext plan_ctx;
    plan_ctx.effort = opts.effort;
    plan_ctx.baseSeed = opts.baseSeed;

    // Plan every matched experiment, applying the run-id filter.
    const auto plan_runs = [&](const ExperimentSpec *spec) {
        auto runs = spec->plan(plan_ctx);
        if (!opts.runFilter.empty())
            std::erase_if(runs, [&](const RunSpec &run) {
                return !globMatch(opts.runFilter, run.id);
            });
        return runs;
    };

    if (opts.listRuns) {
        for (const ExperimentSpec *spec : specs) {
            const auto runs = plan_runs(spec);
            std::printf("%s (%zu runs)\n", spec->name.c_str(),
                        runs.size());
            for (const RunSpec &run : runs)
                std::printf("  %s\n", run.id.c_str());
        }
        return 0;
    }

    topos::setTopologyCacheEnabled(!opts.noTopoCache);

    SchedulerOptions sched;
    sched.jobs = opts.jobs;
    sched.effort = opts.effort;
    sched.baseSeed = opts.baseSeed;

    std::vector<ExperimentResults> all;
    all.reserve(specs.size());
    bool any_failed = false;
    const auto suite_start = std::chrono::steady_clock::now();
    for (const ExperimentSpec *spec : specs) {
        const auto runs = plan_runs(spec);
        if (runs.empty() && !opts.runFilter.empty())
            continue;
        if (!opts.quiet) {
            std::printf("== %s [%s] — %s\n", spec->name.c_str(),
                        spec->artefact.c_str(),
                        spec->title.c_str());
            std::printf("   effort %s, %zu runs, %d jobs\n",
                        std::string(effortName(opts.effort))
                            .c_str(),
                        runs.size(),
                        poolJobs(sched, runs.size()));
            std::fflush(stdout);
        }
        ExperimentResults results;
        results.spec = spec;
        const auto start = std::chrono::steady_clock::now();
        results.runs = runExperiment(*spec, runs, sched);
        results.wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        for (const RunResult &r : results.runs) {
            if (r.failed) {
                any_failed = true;
                std::fprintf(stderr, "sfx: %s/%s FAILED: %s\n",
                             spec->name.c_str(), r.id.c_str(),
                             r.error.c_str());
            }
        }
        if (!opts.quiet) {
            std::fputs(renderTable(results).c_str(), stdout);
            std::printf("   (%.1f ms)\n\n", results.wallMs);
            std::fflush(stdout);
        }
        all.push_back(std::move(results));
    }
    const double suite_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - suite_start)
            .count();

    std::size_t total_runs = 0;
    for (const ExperimentResults &er : all)
        total_runs += er.runs.size();
    if (total_runs == 0 && !opts.runFilter.empty()) {
        std::fprintf(stderr,
                     "sfx: --runs '%s' matched no run in any "
                     "selected experiment (try --list-runs)\n",
                     opts.runFilter.c_str());
        return 2;
    }
    std::printf("%zu experiment(s), %zu run(s) in %.1f ms%s\n",
                all.size(), total_runs, suite_ms,
                any_failed ? " — FAILURES above" : "");
    if (!opts.quiet && !opts.noTopoCache) {
        const auto cache = topos::topologyCache().stats();
        if (cache.hits + cache.misses > 0)
            std::printf("topology cache: %llu hits, %llu builds"
                        ", %llu evictions\n",
                        static_cast<unsigned long long>(
                            cache.hits),
                        static_cast<unsigned long long>(
                            cache.misses),
                        static_cast<unsigned long long>(
                            cache.evictions));
    }

    if (!opts.outPath.empty()) {
        ReportOptions ropts;
        ropts.effort = opts.effort;
        ropts.baseSeed = opts.baseSeed;
        ropts.jobs = opts.jobs;
        ropts.includeTiming = opts.timing;
        try {
            writeFile(opts.outPath,
                      buildReport(all, ropts).dump(2) + "\n");
        } catch (const std::exception &e) {
            std::fprintf(stderr, "sfx: %s\n", e.what());
            return 1;
        }
        std::printf("report: %s\n", opts.outPath.c_str());
    }
    return any_failed ? 1 : 0;
}

int
doDiff(int argc, char **argv)
{
    DiffOptions opts;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--tolerance" || arg == "-t") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "sfx: --tolerance needs a value\n");
                return 2;
            }
            char *end = nullptr;
            opts.tolerance = std::strtod(argv[++i], &end);
            // isfinite also rejects NaN, which would otherwise
            // disable the gate (every comparison false).
            if (end == argv[i] || *end != '\0' ||
                !std::isfinite(opts.tolerance) ||
                opts.tolerance < 0.0) {
                std::fprintf(stderr,
                             "sfx: --tolerance needs a "
                             "non-negative number, got '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "sfx: unknown option: %s\n",
                         argv[i]);
            return 2;
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.size() != 2) {
        std::fprintf(stderr,
                     "sfx: diff needs exactly two report files\n");
        return 2;
    }
    try {
        const Json base = Json::parse(readFile(paths[0]));
        const Json current = Json::parse(readFile(paths[1]));
        const ReportDiff diff = diffReports(base, current, opts);
        std::fputs(renderDiff(diff).c_str(), stdout);
        std::printf("%zu metric(s) compared, %zu changed, %zu "
                    "regression(s), %zu structural issue(s)\n",
                    diff.compared, diff.changed.size(),
                    diff.regressions, diff.structural.size());
        return diff.clean() ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sfx: %s\n", e.what());
        return 2;
    }
}

} // namespace

int
sfxMain(int argc, char **argv)
{
    if (argc < 2) {
        printUsage(stderr);
        return 2;
    }
    const std::string_view command = argv[1];
    if (command == "list")
        return doList();
    if (command == "diff")
        return doDiff(argc, argv);
    if (command == "run") {
        CliOptions opts;
        if (!parseRunOptions(argc, argv, 2, opts, true))
            return opts.helpShown ? 0 : 2;
        if (opts.patterns.empty()) {
            std::fprintf(stderr,
                         "sfx: run needs at least one experiment "
                         "name or glob\n");
            return 2;
        }
        return doRun(opts);
    }
    if (command == "--help" || command == "-h") {
        printUsage(stdout);
        return 0;
    }
    std::fprintf(stderr, "sfx: unknown command: %s\n", argv[1]);
    printUsage(stderr);
    return 2;
}

int
benchMain(const std::string &patterns, int argc, char **argv)
{
    CliOptions opts;
    if (!parseRunOptions(argc, argv, 1, opts, false))
        return opts.helpShown ? 0 : 2;
    opts.patterns = {patterns};
    return doRun(opts);
}

} // namespace sf::exp

/**
 * @file
 * Minimal JSON value model for experiment reports.
 *
 * Objects preserve insertion order and numbers print through
 * std::to_chars (shortest round-trip form), so a report serialises
 * byte-identically regardless of scheduling order or thread count —
 * the property the determinism tests pin down. The parser exists for
 * round-trip tests and for tools that post-process reports; it
 * accepts exactly the grammar dump() emits (strict JSON, UTF-8
 * passthrough).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace sf::exp {

/** Error raised by Json::parse on malformed input. */
class JsonError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/** An ordered JSON value (null / bool / int / double / string /
 *  array / object). */
class Json {
  public:
    using Array = std::vector<Json>;
    using Member = std::pair<std::string, Json>;
    using Object = std::vector<Member>;

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(std::int64_t i) : value_(i) {}
    Json(int i) : value_(static_cast<std::int64_t>(i)) {}
    /** Full-range unsigned (seeds are 64-bit hashes; values above
     *  INT64_MAX must serialise as their decimal unsigned form,
     *  not wrap negative). */
    Json(std::uint64_t u) : value_(u) {}
    Json(double d) : value_(d) {}
    Json(const char *s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(Array a) : value_(std::move(a)) {}
    Json(Object o) : value_(std::move(o)) {}

    static Json object() { return Json(Object{}); }
    static Json array() { return Json(Array{}); }

    bool isNull() const { return holds<std::nullptr_t>(); }
    bool isBool() const { return holds<bool>(); }
    bool isInt() const { return holds<std::int64_t>(); }
    bool isUint() const { return holds<std::uint64_t>(); }
    bool isDouble() const { return holds<double>(); }
    bool isNumber() const
    {
        return isInt() || isUint() || isDouble();
    }
    bool isString() const { return holds<std::string>(); }
    bool isArray() const { return holds<Array>(); }
    bool isObject() const { return holds<Object>(); }

    bool asBool() const { return std::get<bool>(value_); }
    /** Signed integer value (uints in signed range convert). */
    std::int64_t asInt() const
    {
        if (isUint())
            return static_cast<std::int64_t>(asUint());
        return std::get<std::int64_t>(value_);
    }
    /** Unsigned value (non-negative ints convert). */
    std::uint64_t asUint() const
    {
        if (isInt())
            return static_cast<std::uint64_t>(
                std::get<std::int64_t>(value_));
        return std::get<std::uint64_t>(value_);
    }
    /** Numeric value as double (ints widen). */
    double asDouble() const
    {
        if (isInt())
            return static_cast<double>(
                std::get<std::int64_t>(value_));
        if (isUint())
            return static_cast<double>(
                std::get<std::uint64_t>(value_));
        return std::get<double>(value_);
    }
    const std::string &asString() const
    {
        return std::get<std::string>(value_);
    }
    const Array &asArray() const { return std::get<Array>(value_); }
    Array &asArray() { return std::get<Array>(value_); }
    const Object &asObject() const { return std::get<Object>(value_); }
    Object &asObject() { return std::get<Object>(value_); }

    /** Append to an array value. */
    void push(Json v) { asArray().push_back(std::move(v)); }

    /**
     * Set a key on an object value (append; replaces an existing
     * key in place, keeping its original position).
     */
    void set(std::string_view key, Json v);

    /** Member lookup on an object, or nullptr. */
    const Json *find(std::string_view key) const;

    /** Member lookup that throws JsonError when absent. */
    const Json &at(std::string_view key) const;

    /** Structural equality. */
    bool operator==(const Json &other) const;

    /**
     * Serialise. @p indent 0 means compact one-line output;
     * otherwise pretty-print with that many spaces per level.
     */
    std::string dump(int indent = 0) const;

    /** Strict parse of a complete JSON document. */
    static Json parse(std::string_view text);

    /**
     * Parse a whitespace-separated stream of JSON documents — the
     * JSON-Lines form appendJsonLine() writes. Returns the
     * documents in stream order (possibly none); throws JsonError
     * on a malformed document. With @p dropTruncatedTail, a final
     * document cut off by end-of-input — the at-most-one partial
     * trailing line a crashed appendJsonLine() writer leaves — is
     * silently discarded and the complete prefix returned;
     * mid-stream corruption still throws.
     */
    static std::vector<Json>
    parseLines(std::string_view text,
               bool dropTruncatedTail = false);

  private:
    template <typename T> bool holds() const
    {
        return std::holds_alternative<T>(value_);
    }
    void dumpTo(std::string &out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, std::int64_t,
                 std::uint64_t, double, std::string, Array, Object>
        value_;
};

/**
 * Streaming append: write @p value compactly plus a trailing
 * newline to @p path, creating the file as needed. One O_APPEND
 * write per call, so an interrupted writer leaves at most one
 * partial trailing line and never damages earlier records; throws
 * std::runtime_error on I/O failure.
 */
void appendJsonLine(const std::string &path, const Json &value);

} // namespace sf::exp

#include "exp/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

namespace sf::exp {

int
effectiveJobs(const SchedulerOptions &opts, std::size_t n)
{
    int jobs = opts.jobs;
    if (jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw ? static_cast<int>(hw) : 1;
    }
    if (static_cast<std::size_t>(jobs) > n)
        jobs = static_cast<int>(n ? n : 1);
    return jobs;
}

std::vector<RunResult>
runExperiment(const ExperimentSpec &exp,
              const std::vector<RunSpec> &runs,
              const SchedulerOptions &opts)
{
    std::vector<RunResult> results(runs.size());
    if (runs.empty())
        return results;

    const int jobs = effectiveJobs(opts, runs.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;

    const auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= runs.size())
                return;
            const RunSpec &run = runs[i];
            RunResult &result = results[i];
            result.id = run.id;
            result.params = run.params;
            RunContext ctx;
            ctx.seed = deriveSeed(exp.name, run.id, opts.baseSeed);
            ctx.baseSeed = opts.baseSeed;
            ctx.effort = opts.effort;
            result.seed = ctx.seed;
            const auto start =
                std::chrono::steady_clock::now();
            try {
                result.metrics = run.body(ctx);
            } catch (const std::exception &e) {
                result.failed = true;
                result.error = e.what();
            } catch (...) {
                result.failed = true;
                result.error = "unknown exception";
            }
            result.wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            const std::size_t completed =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opts.onRunDone) {
                const std::lock_guard<std::mutex> lock(
                    progress_mutex);
                opts.onRunDone(completed, runs.size(), result);
            }
        }
    };

    if (jobs == 1) {
        worker();
        return results;
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace sf::exp

#include "exp/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "exp/run_store.hpp"
#include "exp/work_pool.hpp"

namespace sf::exp {

int
effectiveJobs(const SchedulerOptions &opts, std::size_t n)
{
    int jobs = opts.jobs;
    if (jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw ? static_cast<int>(hw) : 1;
    }
    if (static_cast<std::size_t>(jobs) > n)
        jobs = static_cast<int>(n ? n : 1);
    return jobs;
}

int
poolJobs(const SchedulerOptions &opts, std::size_t n)
{
    return effectiveJobs(opts, n * 8);
}

std::vector<RunResult>
runExperiment(const ExperimentSpec &exp,
              const std::vector<RunSpec> &runs,
              const SchedulerOptions &opts)
{
    std::vector<RunResult> results(runs.size());
    if (runs.empty())
        return results;

    // One pool serves the whole sweep: run bodies are its top-level
    // tasks, and a body's nested batches (saturation probes) ride
    // the same workers, so idle capacity at the sweep tail drains
    // the long-running stragglers instead of sitting out.
    WorkPool pool(poolJobs(opts, runs.size()));
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> executed_local{0};
    std::atomic<std::size_t> *executed =
        opts.executedCount ? opts.executedCount : &executed_local;
    std::mutex progress_mutex;

    std::vector<std::function<void()>> tasks;
    tasks.reserve(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        tasks.push_back([&, i] {
            const RunSpec &run = runs[i];
            RunResult &result = results[i];
            result.id = run.id;
            result.params = run.params;
            RunContext ctx;
            ctx.seed = deriveSeed(exp.name, run.id, opts.baseSeed);
            ctx.baseSeed = opts.baseSeed;
            ctx.effort = opts.effort;
            ctx.executor = &pool;
            ctx.shards = opts.shards > 0 ? opts.shards : 1;
            ctx.routeCache = opts.routeCache;
            ctx.wavefront =
                opts.wavefront > 0 ? opts.wavefront : 0;
            ctx.policy = opts.policy;
            result.seed = ctx.seed;
            const auto progress = [&] {
                const std::size_t completed =
                    done.fetch_add(1, std::memory_order_relaxed) +
                    1;
                if (opts.onRunDone) {
                    const std::lock_guard<std::mutex> lock(
                        progress_mutex);
                    opts.onRunDone(completed, runs.size(), result);
                }
            };
            const RunStore::Key key{exp.name, run.id, ctx.seed,
                                    opts.specHash};
            if (opts.store && opts.store->load(key, result)) {
                result.fromCheckpoint = true;
                progress();
                return;
            }
            if (opts.maxExecuted &&
                executed->fetch_add(1,
                                    std::memory_order_relaxed) >=
                    opts.maxExecuted) {
                result.skipped = true;
                progress();
                return;
            }
            const auto start = std::chrono::steady_clock::now();
            try {
                result.metrics = run.body(ctx);
            } catch (const std::exception &e) {
                result.failed = true;
                result.error = e.what();
            } catch (...) {
                result.failed = true;
                result.error = "unknown exception";
            }
            result.wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (opts.store && !result.failed)
                opts.store->store(key, result);
            progress();
        });
    }
    pool.runAll(tasks);
    return results;
}

} // namespace sf::exp

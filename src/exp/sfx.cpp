/**
 * @file
 * `sfx` — the unified String Figure experiment CLI.
 */

#include "exp/driver.hpp"

int
main(int argc, char **argv)
{
    return sf::exp::sfxMain(argc, argv);
}

#include "exp/diff.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "exp/report.hpp"

namespace sf::exp {

namespace {

/** Indexable view of a report's experiments / runs / metrics. */
const Json::Array &
experimentsOf(const Json &report, const char *which)
{
    if (!report.isObject())
        throw JsonError(std::string(which) +
                        ": not a JSON object");
    const Json *schema = report.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != kReportSchema)
        throw JsonError(std::string(which) + ": not an " +
                        kReportSchema + " document");
    const Json *exps = report.find("experiments");
    if (!exps || !exps->isArray())
        throw JsonError(std::string(which) +
                        ": missing experiments array");
    return exps->asArray();
}

const Json *
findByKey(const Json::Array &items, const char *key,
          const std::string &value)
{
    for (const Json &item : items) {
        const Json *k = item.find(key);
        if (k && k->isString() && k->asString() == value)
            return &item;
    }
    return nullptr;
}

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace

bool
isPercentileMetric(std::string_view key)
{
    // Strip a family prefix ("net_p99" compares like "p99").
    const std::size_t underscore = key.rfind('_');
    if (underscore != std::string_view::npos)
        key = key.substr(underscore + 1);
    if (key == "max")
        return true;
    if (key.size() < 2 || key[0] != 'p')
        return false;
    for (const char c : key.substr(1)) {
        if (c < '0' || c > '9')
            return false;
    }
    return true;
}

bool
isReconvergenceMetric(std::string_view key)
{
    // Strip the per-wave prefix ("ev0_drop_burst" compares like
    // "burst"). Deliberately suffix-based so it can never swallow
    // aggregate counters like "holes" or "drops".
    const std::size_t underscore = key.rfind('_');
    if (underscore != std::string_view::npos)
        key = key.substr(underscore + 1);
    return key == "blip" || key == "burst" || key == "reconverge";
}

ReportDiff
diffReports(const Json &a, const Json &b, const DiffOptions &opts)
{
    ReportDiff diff;
    const Json::Array &exps_a = experimentsOf(a, "baseline");
    const Json::Array &exps_b = experimentsOf(b, "current");

    const auto note_structural = [&](std::string text) {
        diff.structural.push_back(std::move(text));
    };

    for (const Json &eb : exps_b) {
        const std::string name = eb.at("name").asString();
        if (!findByKey(exps_a, "name", name))
            note_structural("experiment " + name +
                            " only in current");
    }

    for (const Json &ea : exps_a) {
        const std::string exp_name = ea.at("name").asString();
        const Json *eb = findByKey(exps_b, "name", exp_name);
        if (!eb) {
            note_structural("experiment " + exp_name +
                            " only in baseline");
            continue;
        }
        const Json *det = ea.find("deterministic");
        const bool deterministic =
            !det || !det->isBool() || det->asBool();

        const Json::Array &runs_a = ea.at("runs").asArray();
        const Json::Array &runs_b = eb->at("runs").asArray();
        for (const Json &rb : runs_b) {
            const std::string id = rb.at("id").asString();
            if (!findByKey(runs_a, "id", id))
                note_structural("run " + exp_name + "/" + id +
                                " only in current");
        }
        for (const Json &ra : runs_a) {
            const std::string run_id = ra.at("id").asString();
            const Json *rb = findByKey(runs_b, "id", run_id);
            if (!rb) {
                note_structural("run " + exp_name + "/" + run_id +
                                " only in baseline");
                continue;
            }
            const bool failed_a = ra.find("failed") != nullptr;
            const bool failed_b = rb->find("failed") != nullptr;
            if (failed_a != failed_b) {
                note_structural(
                    "run " + exp_name + "/" + run_id +
                    (failed_b ? " fails in current"
                              : " fails in baseline only"));
                continue;
            }
            const Json &ma = ra.at("metrics");
            const Json &mb = rb->at("metrics");
            if (!ma.isObject() || !mb.isObject())
                continue;
            for (const Json::Member &metric : mb.asObject()) {
                if (!ma.find(metric.first))
                    note_structural("metric " + exp_name + "/" +
                                    run_id + "/" + metric.first +
                                    " only in current");
            }
            for (const Json::Member &metric : ma.asObject()) {
                const std::string &key = metric.first;
                const Json *vb = mb.find(key);
                if (!vb) {
                    note_structural("metric " + exp_name + "/" +
                                    run_id + "/" + key +
                                    " only in baseline");
                    continue;
                }
                ++diff.compared;
                // JSON has no NaN/Inf, so reports serialise them
                // as null (json.cpp appendNumber); a null metric
                // value therefore rides the numeric path as NaN —
                // through the CLI that is the *only* shape a NaN
                // metric can arrive in.
                const auto numeric_ish = [](const Json &v) {
                    return v.isNumber() || v.isNull();
                };
                const auto as_nanable = [](const Json &v) {
                    return v.isNull() ? std::numeric_limits<
                                            double>::quiet_NaN()
                                      : v.asDouble();
                };
                if (numeric_ish(metric.second) &&
                    numeric_ish(*vb)) {
                    const double va = as_nanable(metric.second);
                    const double vb_d = as_nanable(*vb);
                    const bool nan_a = std::isnan(va);
                    const bool nan_b = std::isnan(vb_d);
                    // NaN never compares equal to itself, so an
                    // unchanged-NaN metric must be matched
                    // explicitly or it reports as changed on
                    // every diff.
                    if (va == vb_d || (nan_a && nan_b))
                        continue;
                    MetricDelta delta;
                    delta.experiment = exp_name;
                    delta.run = run_id;
                    delta.metric = key;
                    delta.before = va;
                    delta.after = vb_d;
                    delta.relDelta =
                        (vb_d - va) /
                        std::max(std::fabs(va), 1e-300);
                    delta.deterministic = deterministic;
                    // A NaN on either side defeats the tolerance
                    // comparison (every <, > is false), which
                    // used to wave the worst possible regression
                    // — a metric *becoming* NaN — through CI. No
                    // tolerance can excuse a NaN flip in either
                    // direction: becoming NaN is a broken metric,
                    // and recovering from one means the baseline
                    // no longer describes the current code.
                    // Percentile and reconvergence metrics
                    // exact-compare: they are integral functions
                    // of the deterministic event stream, so any
                    // drift gates no matter the tolerance.
                    delta.regression =
                        deterministic &&
                        (nan_a != nan_b ||
                         isPercentileMetric(key) ||
                         isReconvergenceMetric(key) ||
                         std::fabs(delta.relDelta) >
                             opts.tolerance);
                    if (delta.regression)
                        ++diff.regressions;
                    diff.changed.push_back(std::move(delta));
                } else if (!(metric.second == *vb)) {
                    // Non-numeric flip (bool / string): no
                    // tolerance applies.
                    note_structural(
                        "metric " + exp_name + "/" + run_id +
                        "/" + key + " changed: " +
                        metric.second.dump() + " -> " +
                        vb->dump());
                }
            }
        }
    }
    return diff;
}

Json
diffToJson(const ReportDiff &diff)
{
    Json doc = Json::object();
    doc.set("schema", "sf-exp-diff-v1");
    doc.set("compared", static_cast<std::int64_t>(diff.compared));
    doc.set("regressions",
            static_cast<std::int64_t>(diff.regressions));
    doc.set("clean", diff.clean());
    Json changed = Json::array();
    for (const MetricDelta &d : diff.changed) {
        Json c = Json::object();
        c.set("experiment", d.experiment);
        c.set("run", d.run);
        c.set("metric", d.metric);
        c.set("before", d.before);
        c.set("after", d.after);
        c.set("rel_delta", d.relDelta);
        c.set("deterministic", d.deterministic);
        c.set("regression", d.regression);
        changed.push(std::move(c));
    }
    doc.set("changed", std::move(changed));
    Json structural = Json::array();
    for (const std::string &s : diff.structural)
        structural.push(s);
    doc.set("structural", std::move(structural));
    return doc;
}

std::string
renderDiff(const ReportDiff &diff)
{
    std::string out;
    for (const std::string &s : diff.structural)
        out += "! " + s + "\n";
    for (const MetricDelta &d : diff.changed) {
        char line[256];
        std::snprintf(
            line, sizeof line, "%c %s/%s %s: %s -> %s (%+.2f%%)%s\n",
            d.regression ? '!' : '~', d.experiment.c_str(),
            d.run.c_str(), d.metric.c_str(),
            fmtDouble(d.before).c_str(), fmtDouble(d.after).c_str(),
            100.0 * d.relDelta,
            d.deterministic ? "" : " [non-deterministic]");
        out += line;
    }
    return out;
}

} // namespace sf::exp

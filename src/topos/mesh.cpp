#include "topos/mesh.hpp"

#include <cmath>
#include <stdexcept>

namespace sf::topos {

MeshTopology::MeshTopology(int rows, int cols, int link_multiplier)
    : graph_(static_cast<std::size_t>(rows) * cols), rows_(rows),
      cols_(cols), multiplier_(link_multiplier)
{
    if (rows < 2 || cols < 2)
        throw std::invalid_argument("mesh needs at least a 2x2 grid");
    if (link_multiplier < 1)
        throw std::invalid_argument("link multiplier must be >= 1");
    for (int row = 0; row < rows_; ++row) {
        for (int col = 0; col < cols_; ++col) {
            for (int m = 0; m < multiplier_; ++m) {
                if (col + 1 < cols_) {
                    graph_.addBidirectional(at(col, row),
                                            at(col + 1, row));
                }
                if (row + 1 < rows_) {
                    graph_.addBidirectional(at(col, row),
                                            at(col, row + 1));
                }
            }
        }
    }
}

std::pair<int, int>
MeshTopology::gridShape(std::size_t n)
{
    // Prefer the squarest factorisation with both sides >= 2.
    const int root = static_cast<int>(std::sqrt(
        static_cast<double>(n)));
    for (int rows = root; rows >= 2; --rows) {
        if (n % static_cast<std::size_t>(rows) == 0) {
            const int cols = static_cast<int>(n) / rows;
            if (cols >= 2)
                return {rows, cols};
        }
    }
    return {0, 0};
}

std::size_t
MeshTopology::routeCandidates(NodeId current, NodeId dest,
                              bool first_hop,
                              std::span<LinkId> out) const
{
    (void)first_hop;
    if (current == dest)
        return 0;
    // XY dimension order: finish the column dimension first. All
    // parallel wires of the chosen direction are candidates, giving
    // the adaptive selector room to spread load (ODM).
    NodeId next;
    if (x(current) != x(dest)) {
        next = x(current) < x(dest) ? current + 1 : current - 1;
    } else {
        next = y(current) < y(dest)
                   ? current + static_cast<NodeId>(cols_)
                   : current - static_cast<NodeId>(cols_);
    }
    std::size_t count = 0;
    for (LinkId id : graph_.outLinks(current)) {
        if (count == out.size())
            break;
        const net::Link &l = graph_.link(id);
        if (l.enabled && l.dst == next)
            out[count++] = id;
    }
    return count;
}

} // namespace sf::topos

/**
 * @file
 * Space Shuffle (S2) baseline.
 *
 * S2 (Yu & Qian, ICNP'14) is the random multi-ring topology String
 * Figure builds on: the same virtual-space construction and greedy
 * MD routing, but without shortcuts, without two-hop table lookahead,
 * without adaptive first-hop diversion, and without any
 * reconfiguration support. The paper evaluates "S2-ideal": a fresh
 * S2 topology regenerated at every network scale (because S2 cannot
 * down-scale in place), which this class reproduces by construction.
 */

#pragma once

#include <string>

#include "core/string_figure.hpp"

namespace sf::topos {

/** S2: String Figure minus shortcuts, lookahead, and adaptivity. */
class SpaceShuffle : public core::StringFigure
{
  public:
    SpaceShuffle(std::size_t num_nodes, int router_ports,
                 std::uint64_t seed,
                 core::LinkMode mode = core::LinkMode::Unidirectional)
        : core::StringFigure(makeParams(num_nodes, router_ports,
                                        seed, mode))
    {
    }

    std::string name() const override { return "S2"; }

    std::size_t
    routeCandidates(NodeId current, NodeId dest, bool first_hop,
                    std::span<LinkId> out) const override
    {
        // No adaptive widening: S2 commits to the greediest choice.
        (void)first_hop;
        return core::StringFigure::routeCandidates(current, dest,
                                                   false, out);
    }

    net::TopologyFeatures
    features() const override
    {
        return net::TopologyFeatures{
            .requiresHighRadix = false,
            .portCountScales = false,
            .reconfigurable = false,
        };
    }

  private:
    static core::SFParams
    makeParams(std::size_t n, int ports, std::uint64_t seed,
               core::LinkMode mode)
    {
        core::SFParams p;
        p.numNodes = n;
        p.routerPorts = ports;
        p.seed = seed;
        p.linkMode = mode;
        p.buildShortcuts = false;
        p.twoHopTable = false;
        p.repairMode = core::RepairMode::ShortcutsOnly;
        return p;
    }
};

} // namespace sf::topos

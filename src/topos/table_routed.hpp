/**
 * @file
 * Base class for baselines routed by precomputed minimal tables.
 *
 * "Minimal + adaptive" routing (paper Fig 8, FB/AFB rows): every
 * enabled out-link that lies on some shortest path to the
 * destination is a candidate; the simulator's adaptive selector
 * picks among them by congestion. The distance table is recomputed
 * lazily after any link/liveness change.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/paths.hpp"
#include "net/topology.hpp"

namespace sf::topos {

/** Topology with BFS-minimal adaptive routing. */
class TableRoutedTopology : public net::Topology
{
  public:
    const net::Graph &graph() const override { return graph_; }

    std::size_t
    routeCandidates(NodeId current, NodeId dest, bool first_hop,
                    std::span<LinkId> out) const override
    {
        (void)first_hop;
        ensureTable();
        const std::size_t n = graph_.numNodes();
        const std::uint16_t here = dist_[current * n + dest];
        if (here == net::kUnreachable)
            return 0;
        std::size_t count = 0;
        for (LinkId id : graph_.outLinks(current)) {
            if (count == out.size())
                break;
            const net::Link &l = graph_.link(id);
            if (l.enabled && dist_[l.dst * n + dest] + 1 == here)
                out[count++] = id;
        }
        return count;
    }

    /** Hop distance between two nodes (analysis helper). */
    std::uint16_t
    hopDistance(NodeId u, NodeId v) const
    {
        ensureTable();
        return dist_[u * graph_.numNodes() + v];
    }

  protected:
    /** Subclasses populate this and call invalidateTable(). */
    net::Graph graph_;

    /** Drop the cached distance table after topology changes
     *  (construction-time only; shared const instances never
     *  invalidate). */
    void invalidateTable()
    {
        tableValid_.store(false, std::memory_order_release);
    }

  private:
    /**
     * Build the distance table on first use. Thread-safe: shared
     * immutable instances route from many simulator threads at
     * once, so the lazy build is double-checked under a mutex and
     * published with release ordering.
     */
    void
    ensureTable() const
    {
        if (tableValid_.load(std::memory_order_acquire))
            return;
        const std::lock_guard<std::mutex> lock(tableMutex_);
        if (!tableValid_.load(std::memory_order_relaxed)) {
            dist_ = net::distanceTable(graph_);
            tableValid_.store(true, std::memory_order_release);
        }
    }

    mutable std::mutex tableMutex_;
    mutable std::vector<std::uint16_t> dist_;
    mutable std::atomic<bool> tableValid_{false};
};

} // namespace sf::topos

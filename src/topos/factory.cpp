#include "topos/factory.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "core/string_figure.hpp"
#include "net/bisection.hpp"
#include "topos/flattened_butterfly.hpp"
#include "topos/jellyfish.hpp"
#include "topos/mesh.hpp"
#include "topos/space_shuffle.hpp"

namespace sf::topos {

std::string
kindName(TopoKind kind)
{
    switch (kind) {
      case TopoKind::DM: return "DM";
      case TopoKind::ODM: return "ODM";
      case TopoKind::FB: return "FB";
      case TopoKind::AFB: return "AFB";
      case TopoKind::S2: return "S2";
      case TopoKind::SF: return "SF";
    }
    return "?";
}

bool
supported(TopoKind kind, std::size_t n)
{
    switch (kind) {
      case TopoKind::DM:
      case TopoKind::ODM:
        return MeshTopology::gridShape(n).first != 0;
      case TopoKind::FB:
      case TopoKind::AFB:
        return n >= 256 && MeshTopology::gridShape(n).first != 0;
      case TopoKind::S2:
      case TopoKind::SF:
        return n >= 5;
    }
    return false;
}

int
paperRouterPorts(TopoKind kind, std::size_t n)
{
    switch (kind) {
      case TopoKind::DM:
      case TopoKind::ODM:
        return supported(kind, n) ? 4 : -1;
      case TopoKind::FB: {
        static const std::map<std::size_t, int> ports{
            {256, 20}, {512, 24}, {1024, 31}, {1296, 33}};
        const auto it = ports.find(n);
        return it == ports.end() ? -1 : it->second;
      }
      case TopoKind::AFB: {
        static const std::map<std::size_t, int> ports{
            {256, 13}, {512, 17}, {1024, 23}, {1296, 25}};
        const auto it = ports.find(n);
        return it == ports.end() ? -1 : it->second;
      }
      case TopoKind::S2:
      case TopoKind::SF:
        return randomTopologyPorts(n);
    }
    return -1;
}

int
randomTopologyPorts(std::size_t n)
{
    return n <= 128 ? 4 : 8;
}

namespace {

std::atomic<bool> g_cache_enabled{true};

/** Canonical cache-key encoding of every SF construction knob
 *  except numNodes and seed (those are separate key fields). */
std::string
sfVariant(const core::SFParams &p)
{
    std::string v = "p" + std::to_string(p.routerPorts);
    v += p.linkMode == core::LinkMode::Unidirectional ? ",uni"
                                                      : ",bi";
    v += p.repairMode == core::RepairMode::AllSpaces ? ",as"
                                                     : ",so";
    v += p.coordMode == core::CoordMode::Balanced ? ",bal"
                                                  : ",iid";
    v += p.buildShortcuts ? ",sc1" : ",sc0";
    v += p.twoHopTable ? ",th1" : ",th0";
    v += ",cb" + std::to_string(p.coordBits);
    return v;
}

/** The factory's SF configuration: default knobs at the scale's
 *  paper port policy. Single source for both the fresh build and
 *  the cache key, so cache-on and cache-off stay value-identical. */
core::SFParams
defaultSfParams(std::size_t n, std::uint64_t seed)
{
    core::SFParams params;
    params.numNodes = n;
    params.routerPorts = randomTopologyPorts(n);
    params.seed = seed;
    return params;
}

} // namespace

std::shared_ptr<const net::Topology>
makeTopology(TopoKind kind, std::size_t n, std::uint64_t seed,
             int odm_multiplier)
{
    if (!supported(kind, n)) {
        throw std::invalid_argument(
            kindName(kind) + " does not support " +
            std::to_string(n) + " nodes");
    }
    const auto [rows, cols] = MeshTopology::gridShape(n);
    switch (kind) {
      case TopoKind::DM:
        return std::make_shared<const MeshTopology>(rows, cols, 1);
      case TopoKind::ODM: {
        const int mult = odm_multiplier > 0
                             ? odm_multiplier
                             : matchOdmMultiplier(n, seed);
        return std::make_shared<const MeshTopology>(rows, cols,
                                                    mult);
      }
      case TopoKind::FB:
        return std::make_shared<const FlattenedButterfly>(
            rows, cols, false);
      case TopoKind::AFB:
        return std::make_shared<const FlattenedButterfly>(
            rows, cols, true);
      case TopoKind::S2:
        return std::make_shared<const SpaceShuffle>(
            n, randomTopologyPorts(n), seed);
      case TopoKind::SF:
        return std::make_shared<const core::StringFigure>(
            defaultSfParams(n, seed));
    }
    throw std::invalid_argument("unknown topology kind");
}

net::TopologyCache &
topologyCache()
{
    static net::TopologyCache cache;
    return cache;
}

void
setTopologyCacheEnabled(bool enabled)
{
    g_cache_enabled.store(enabled, std::memory_order_relaxed);
}

bool
topologyCacheEnabled()
{
    return g_cache_enabled.load(std::memory_order_relaxed);
}

std::shared_ptr<const net::Topology>
cachedTopology(TopoKind kind, std::size_t n, std::uint64_t seed,
               int odm_multiplier)
{
    // SF shares entries with the SFParams overload: the factory's
    // SF configuration is just the default-knob parameter set.
    if (kind == TopoKind::SF && supported(kind, n))
        return cachedTopology(defaultSfParams(n, seed));
    if (!topologyCacheEnabled())
        return makeTopology(kind, n, seed, odm_multiplier);
    net::TopologyKey key;
    key.kind = kindName(kind);
    key.nodes = n;
    key.seed = seed;
    if (kind == TopoKind::ODM)
        key.variant = "odm=" + std::to_string(odm_multiplier);
    return topologyCache().getOrBuild(key, [&] {
        return makeTopology(kind, n, seed, odm_multiplier);
    });
}

std::shared_ptr<const net::Topology>
cachedTopology(const core::SFParams &params)
{
    const auto build = [&params] {
        return std::shared_ptr<const net::Topology>(
            std::make_shared<const core::StringFigure>(params));
    };
    if (!topologyCacheEnabled())
        return build();
    net::TopologyKey key;
    key.kind = "SF";
    key.nodes = params.numNodes;
    key.seed = params.seed;
    key.variant = sfVariant(params);
    return topologyCache().getOrBuild(key, build);
}

int
matchOdmMultiplier(std::size_t n, std::uint64_t seed)
{
    // Cache: the empirical bisection ratio is stable per scale and
    // the max-flow evaluation is not free at 1296 nodes. Guarded —
    // concurrent scheduler threads resolve ODM multipliers too.
    static std::mutex mutex;
    static std::map<std::size_t, int> cache;
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(n);
    if (it != cache.end())
        return it->second;

    core::SFParams params;
    params.numNodes = n;
    params.routerPorts = randomTopologyPorts(n);
    params.seed = seed;
    const core::StringFigure sf_net(params);
    Rng rng_sf(seed * 7 + 1);
    const auto sf_bw =
        net::minBisectionBandwidth(sf_net.graph(), rng_sf, 10);

    const auto [rows, cols] = MeshTopology::gridShape(n);
    const MeshTopology mesh(rows, cols, 1);
    Rng rng_dm(seed * 7 + 2);
    const auto dm_bw =
        net::minBisectionBandwidth(mesh.graph(), rng_dm, 10);

    // A mesh's O(sqrt N) bisection can only match a random graph's
    // O(N) bisection with an O(sqrt N) link multiplier — dozens of
    // parallel wires at 1024 nodes, which no real router carries.
    // Cap the optimisation at 4x (the paper never states ODM's
    // multiplier; see DESIGN.md interpretation notes) and let the
    // bisection bench print the uncapped ratio.
    const int mult = std::max(
        1, static_cast<int>(std::lround(
               static_cast<double>(sf_bw) /
               static_cast<double>(std::max<std::uint64_t>(
                   dm_bw, 1)))));
    cache[n] = std::min(mult, 4);
    return cache[n];
}

} // namespace sf::topos

/**
 * @file
 * Jellyfish baseline: a sufficiently uniform random regular graph.
 *
 * Jellyfish (Singla et al., NSDI'12) wires top-of-rack switches into
 * a uniform random r-regular graph. The paper compares String
 * Figure's average shortest path length against Jellyfish (Fig 5) to
 * argue its topology is a "sufficiently uniform random graph". The
 * generator uses the standard incremental edge-swap construction:
 * grow the graph by inserting nodes into random existing edges, then
 * randomise further with degree-preserving double-edge swaps.
 */

#pragma once

#include <string>

#include "net/rng.hpp"
#include "topos/table_routed.hpp"

namespace sf::topos {

/** Random r-regular graph with bidirectional wires. */
class Jellyfish : public TableRoutedTopology
{
  public:
    /**
     * @param num_nodes Node count N.
     * @param degree Wires per node r (N * r must be even).
     * @param seed Generator seed.
     */
    Jellyfish(std::size_t num_nodes, int degree, std::uint64_t seed);

    std::string name() const override { return "Jellyfish"; }
    int routerPorts() const override { return degree_; }
    net::TopologyFeatures
    features() const override
    {
        // k-shortest-path forwarding state grows superlinearly in N;
        // the paper rules Jellyfish out of memory networks for it.
        return net::TopologyFeatures{
            .requiresHighRadix = false,
            .portCountScales = false,
            .reconfigurable = false,
        };
    }

  private:
    int degree_;
};

} // namespace sf::topos

#include "topos/flattened_butterfly.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

namespace sf::topos {

FlattenedButterfly::FlattenedButterfly(int rows, int cols,
                                       bool adapted)
    : rows_(rows), cols_(cols), adapted_(adapted)
{
    if (rows < 2 || cols < 2)
        throw std::invalid_argument("FB needs at least a 2x2 grid");
    graph_ = net::Graph(static_cast<std::size_t>(rows) * cols);

    // Offsets within one dimension of size k: a full clique (FB) or
    // power-of-two circulant jumps with wraparound (AFB).
    const auto offsets = [&](int k) {
        std::vector<int> result;
        if (!adapted_) {
            for (int d = 1; d < k; ++d)
                result.push_back(d);
        } else {
            for (int d = 1; d < k; d *= 2)
                result.push_back(d);
        }
        return result;
    };

    // Collect undirected wires with set-based dedup (the circulant
    // wrap can name one wire twice, e.g. offset k/2).
    std::set<std::pair<NodeId, NodeId>> edges;
    const auto note = [&](NodeId u, NodeId v) {
        if (u != v)
            edges.insert({std::min(u, v), std::max(u, v)});
    };
    const auto row_offsets = offsets(cols_);
    const auto col_offsets = offsets(rows_);
    for (int row = 0; row < rows_; ++row) {
        for (int col = 0; col < cols_; ++col) {
            for (int d : row_offsets) {
                const int peer = adapted_ ? (col + d) % cols_
                                          : col + d;
                if (peer < cols_)
                    note(at(col, row), at(peer, row));
            }
            for (int d : col_offsets) {
                const int peer = adapted_ ? (row + d) % rows_
                                          : row + d;
                if (peer < rows_)
                    note(at(col, row), at(col, peer));
            }
        }
    }
    for (const auto &[u, v] : edges)
        graph_.addBidirectional(u, v);

    for (NodeId u = 0; u < graph_.numNodes(); ++u) {
        maxPorts_ = std::max(
            maxPorts_, static_cast<int>(graph_.degreeOut(u)));
    }
    invalidateTable();
}

} // namespace sf::topos

#include "topos/jellyfish.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sf::topos {

Jellyfish::Jellyfish(std::size_t num_nodes, int degree,
                     std::uint64_t seed)
    : degree_(degree)
{
    if (num_nodes <= static_cast<std::size_t>(degree))
        throw std::invalid_argument("jellyfish needs N > degree");
    if ((num_nodes * static_cast<std::size_t>(degree)) % 2 != 0)
        throw std::invalid_argument("N * degree must be even");

    Rng rng(seed);
    using Edge = std::pair<NodeId, NodeId>;
    const auto norm = [](NodeId a, NodeId b) {
        return Edge{std::min(a, b), std::max(a, b)};
    };

    // Start from a ring (connected, degree 2 everywhere), then add
    // random edges between free-port pairs, resolving clashes with
    // degree-preserving swaps — the Jellyfish construction.
    std::set<Edge> edges;
    std::vector<int> deg(num_nodes, 0);
    for (NodeId u = 0; u < num_nodes; ++u) {
        edges.insert(norm(u, (u + 1) % num_nodes));
        deg[u] = 2;
    }

    std::vector<NodeId> free;
    const auto refill = [&] {
        free.clear();
        for (NodeId u = 0; u < num_nodes; ++u) {
            for (int i = deg[u]; i < degree; ++i)
                free.push_back(u);
        }
    };
    refill();
    int stuck = 0;
    while (free.size() >= 2 && stuck < 1000) {
        const std::size_t i = rng.below(free.size());
        std::size_t j = rng.below(free.size());
        if (i == j) {
            ++stuck;
            continue;
        }
        const NodeId a = free[i];
        const NodeId b = free[j];
        if (a == b || edges.count(norm(a, b))) {
            // Clash: swap with a random existing edge (x, y) so that
            // (a, x) and (b, y) replace it, preserving degrees.
            auto it = edges.begin();
            std::advance(it, rng.below(edges.size()));
            const auto [x, y] = *it;
            if (a == x || a == y || b == x || b == y ||
                edges.count(norm(a, x)) || edges.count(norm(b, y))) {
                ++stuck;
                continue;
            }
            edges.erase(it);
            edges.insert(norm(a, x));
            edges.insert(norm(b, y));
        } else {
            edges.insert(norm(a, b));
        }
        ++deg[a];
        ++deg[b];
        stuck = 0;
        refill();
    }

    graph_ = net::Graph(num_nodes);
    for (const auto &[u, v] : edges)
        graph_.addBidirectional(u, v);
    invalidateTable();
}

} // namespace sf::topos

/**
 * @file
 * Factory producing the evaluated network configurations (paper
 * Fig 8): DM, ODM, FB, AFB, S2-ideal, and SF at each node count,
 * with the per-scale router-port policies the paper uses.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/params.hpp"
#include "net/topology.hpp"
#include "net/topology_cache.hpp"

namespace sf::topos {

/** The six evaluated network designs. */
enum class TopoKind { DM, ODM, FB, AFB, S2, SF };

/** All kinds, in the paper's reporting order. */
inline constexpr TopoKind kAllKinds[] = {
    TopoKind::DM,  TopoKind::ODM, TopoKind::FB,
    TopoKind::AFB, TopoKind::S2,  TopoKind::SF,
};

/** Short display name ("DM", "ODM", ...). */
std::string kindName(TopoKind kind);

/**
 * Whether the paper's Fig 8 evaluates @p kind at @p n nodes
 * (meshes need rectangular grids; FB/AFB start at 256; SF/S2 accept
 * any scale).
 */
bool supported(TopoKind kind, std::size_t n);

/**
 * Router ports used by the paper at this scale (Fig 8), or -1 when
 * the paper does not report the configuration. Our construction may
 * realise a different radix for FB/AFB (documented in DESIGN.md);
 * benches print both.
 */
int paperRouterPorts(TopoKind kind, std::size_t n);

/** SF/S2 port policy: 4 ports up to 128 nodes, 8 beyond (Fig 8). */
int randomTopologyPorts(std::size_t n);

/**
 * Build a fresh topology instance.
 *
 * Topologies are immutable after construction and returned shared:
 * every analysis/simulation consumer takes `const net::Topology &`,
 * so one instance may be held by many runs at once. Callers that
 * need mutation (gating / reconfiguration) construct a private
 * core::StringFigure directly.
 *
 * @param odm_multiplier Parallel links per edge for ODM; 0 picks the
 *        multiplier that matches String Figure's empirical bisection
 *        bandwidth at this scale (paper Section V), via
 *        matchOdmMultiplier().
 * @throws std::invalid_argument for unsupported (kind, n) pairs.
 */
std::shared_ptr<const net::Topology> makeTopology(
    TopoKind kind, std::size_t n, std::uint64_t seed,
    int odm_multiplier = 0);

/**
 * Shared instance for (kind, n, seed, odm_multiplier) via the
 * process-wide topology cache: repeated requests — e.g. every rate
 * point of a latency sweep, or concurrent runs across scheduler
 * threads — receive the same immutable topology, built once. Falls
 * back to a fresh makeTopology() build while caching is disabled.
 */
std::shared_ptr<const net::Topology> cachedTopology(
    TopoKind kind, std::size_t n, std::uint64_t seed,
    int odm_multiplier = 0);

/**
 * Shared immutable StringFigure for arbitrary construction knobs
 * (the ablation sweeps): every SFParams field participates in the
 * cache key. Callers that will gate/reconfigure must construct a
 * private core::StringFigure instead.
 */
std::shared_ptr<const net::Topology>
cachedTopology(const core::SFParams &params);

/** The process-wide topology cache behind cachedTopology(). */
net::TopologyCache &topologyCache();

/**
 * Toggle cachedTopology() cache use (on by default). Results are
 * identical either way — a cached topology is value-identical to a
 * fresh build — so this only trades memory for build time; the
 * sfx `--no-topo-cache` flag and the determinism tests use it.
 */
void setTopologyCacheEnabled(bool enabled);

/** Current cachedTopology() cache-use setting. */
bool topologyCacheEnabled();

/**
 * Parallel-link multiplier that brings a mesh's empirical bisection
 * bandwidth to String Figure's at @p n nodes (>= 1).
 */
int matchOdmMultiplier(std::size_t n, std::uint64_t seed);

} // namespace sf::topos

/**
 * @file
 * Factory producing the evaluated network configurations (paper
 * Fig 8): DM, ODM, FB, AFB, S2-ideal, and SF at each node count,
 * with the per-scale router-port policies the paper uses.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/topology.hpp"

namespace sf::topos {

/** The six evaluated network designs. */
enum class TopoKind { DM, ODM, FB, AFB, S2, SF };

/** All kinds, in the paper's reporting order. */
inline constexpr TopoKind kAllKinds[] = {
    TopoKind::DM,  TopoKind::ODM, TopoKind::FB,
    TopoKind::AFB, TopoKind::S2,  TopoKind::SF,
};

/** Short display name ("DM", "ODM", ...). */
std::string kindName(TopoKind kind);

/**
 * Whether the paper's Fig 8 evaluates @p kind at @p n nodes
 * (meshes need rectangular grids; FB/AFB start at 256; SF/S2 accept
 * any scale).
 */
bool supported(TopoKind kind, std::size_t n);

/**
 * Router ports used by the paper at this scale (Fig 8), or -1 when
 * the paper does not report the configuration. Our construction may
 * realise a different radix for FB/AFB (documented in DESIGN.md);
 * benches print both.
 */
int paperRouterPorts(TopoKind kind, std::size_t n);

/** SF/S2 port policy: 4 ports up to 128 nodes, 8 beyond (Fig 8). */
int randomTopologyPorts(std::size_t n);

/**
 * Build a topology instance.
 *
 * @param odm_multiplier Parallel links per edge for ODM; 0 picks the
 *        multiplier that matches String Figure's empirical bisection
 *        bandwidth at this scale (paper Section V), via
 *        matchOdmMultiplier().
 * @throws std::invalid_argument for unsupported (kind, n) pairs.
 */
std::unique_ptr<net::Topology> makeTopology(TopoKind kind,
                                            std::size_t n,
                                            std::uint64_t seed,
                                            int odm_multiplier = 0);

/**
 * Parallel-link multiplier that brings a mesh's empirical bisection
 * bandwidth to String Figure's at @p n nodes (>= 1).
 */
int matchOdmMultiplier(std::size_t n, std::uint64_t seed);

} // namespace sf::topos

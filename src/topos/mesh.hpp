/**
 * @file
 * Distributed mesh baselines: DM and ODM.
 *
 * DM is the 2D mesh memory network explored by Kim et al. and Zhan
 * et al. — each memory node has a 4-port router wired to its grid
 * neighbours. ODM ("optimized DM", paper Section V) widens every
 * mesh edge to @c linkMultiplier parallel wires so its bisection
 * bandwidth matches String Figure's at the same node count.
 *
 * Routing is XY dimension-order — deterministic and deadlock-free —
 * with adaptivity across the parallel wires of the chosen direction
 * (the simulator picks the least-loaded one), which is where ODM's
 * extra links pay off.
 */

#pragma once

#include <string>
#include <vector>

#include "net/topology.hpp"

namespace sf::topos {

/** 2D mesh with optional parallel links per edge. */
class MeshTopology : public net::Topology
{
  public:
    /**
     * @param rows,cols Grid shape (rows * cols = node count).
     * @param link_multiplier Parallel wires per mesh edge (ODM > 1).
     */
    MeshTopology(int rows, int cols, int link_multiplier = 1);

    /** The grid shape that fits @p n nodes, or {0,0} if none. */
    static std::pair<int, int> gridShape(std::size_t n);

    std::string name() const override
    {
        return multiplier_ > 1 ? "ODM" : "DM";
    }
    const net::Graph &graph() const override { return graph_; }
    int routerPorts() const override { return 4 * multiplier_; }
    std::size_t routeCandidates(NodeId current, NodeId dest,
                                bool first_hop,
                                std::span<LinkId> out) const override;
    net::TopologyFeatures
    features() const override
    {
        return net::TopologyFeatures{
            .requiresHighRadix = false,
            .portCountScales = false,
            .reconfigurable = false,
        };
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }

  private:
    int x(NodeId u) const { return static_cast<int>(u) % cols_; }
    int y(NodeId u) const { return static_cast<int>(u) / cols_; }
    NodeId
    at(int col, int row) const
    {
        return static_cast<NodeId>(row * cols_ + col);
    }

    net::Graph graph_;
    int rows_;
    int cols_;
    int multiplier_;
};

} // namespace sf::topos

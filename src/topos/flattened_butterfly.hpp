/**
 * @file
 * Flattened Butterfly (FB) and Adapted FB (AFB) baselines.
 *
 * FB (Kim, Dally, Abts): nodes on a k1 x k2 grid, every node
 * directly linked to all nodes sharing its row and all sharing its
 * column. Radix grows as (k1 - 1) + (k2 - 1), the "high-radix
 * routers whose port count scales with N" cost the paper holds
 * against it (Table II).
 *
 * AFB approximates the paper's partitioned FB: the row/column
 * cliques are thinned to circulant connections at power-of-two
 * offsets (1, 2, 4, ...; with wraparound), cutting the radix to
 * ~2 log2(k) per dimension while keeping a small diameter — the
 * standard way to match String Figure's bisection bandwidth with
 * fewer links (paper Section V). The exact partitioning of the
 * paper's AFB is not specified; the achieved radix is reported by
 * routerPorts() and printed by the benches next to the paper's
 * target values.
 *
 * Both route minimal-adaptively over a precomputed distance table.
 */

#pragma once

#include <string>

#include "topos/table_routed.hpp"

namespace sf::topos {

/** Full or thinned (adapted) 2D flattened butterfly. */
class FlattenedButterfly : public TableRoutedTopology
{
  public:
    /**
     * @param rows,cols Grid shape.
     * @param adapted True builds the thinned AFB variant.
     */
    FlattenedButterfly(int rows, int cols, bool adapted);

    std::string name() const override
    {
        return adapted_ ? "AFB" : "FB";
    }
    int routerPorts() const override { return maxPorts_; }
    net::TopologyFeatures
    features() const override
    {
        return net::TopologyFeatures{
            .requiresHighRadix = true,
            .portCountScales = true,
            .reconfigurable = false,
        };
    }

  private:
    NodeId
    at(int col, int row) const
    {
        return static_cast<NodeId>(row * cols_ + col);
    }

    int rows_;
    int cols_;
    bool adapted_;
    int maxPorts_ = 0;
};

} // namespace sf::topos

/**
 * @file
 * Trace replay: drives a workload trace through the memory network.
 *
 * Four CPU sockets (paper Table I) attach to disjoint sets of
 * memory nodes. Trace operations are distributed round-robin over
 * the sockets (parallel worker threads); each socket issues an
 * operation when its timestamp has arrived and an MSHR-like
 * outstanding window has room. A read sends a one-flit request and
 * returns a five-flit data reply; a write sends five flits and
 * returns a one-flit acknowledgement. The destination memory node
 * models banked DRAM timing before answering. Energy follows the
 * paper's per-bit constants; runtime, IPC-style throughput, and EDP
 * come out per run.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "mem/address_map.hpp"
#include "mem/dram_timing.hpp"
#include "mem/energy.hpp"
#include "net/topology.hpp"
#include "sim/sim_config.hpp"
#include "workloads/trace.hpp"

namespace sf::wl {

/** Replay parameters. */
struct ReplayConfig {
    int sockets = 4;
    /** Memory nodes each socket attaches to (terminal ports). */
    int attachPerSocket = 4;
    /** Outstanding requests per socket (MSHR window). */
    int window = 64;
    double cpi = 1.0;
    int readRequestFlits = 1;
    int readReplyFlits = 5;
    int writeRequestFlits = 5;
    int writeAckFlits = 1;
    /**
     * Gate op issue on trace timestamps (CPU-bound replay). The
     * default issues as fast as the window allows (memory-bound
     * replay): the paper's throughput comparison only differentiates
     * networks when the memory system is the bottleneck.
     */
    bool respectTimestamps = false;
    /** Interleave granularity of the address map. */
    std::uint64_t interleaveBytes = 4096;
    mem::DramTiming dram;
    mem::EnergyParams energy;
    /** Hard cycle cap (safety against livelocked configs). */
    Cycle maxCycles = 30'000'000;
    /**
     * When gating is requested: true gates the victims up front
     * (static reduction, the Fig 9(b) sweep), false lets the power
     * manager gate dynamically during the run, one victim per
     * 100 us reconfiguration window.
     */
    bool staticGating = true;
};

/** Outcome of one replay. */
struct ReplayResult {
    Cycle runtimeCycles = 0;
    /** Instructions per 2 GHz CPU cycle (paper's throughput). */
    double ipc = 0.0;
    double opsPerCycle = 0.0;
    double avgOpLatency = 0.0;   ///< request issue -> reply, cycles
    double avgHops = 0.0;
    double networkPj = 0.0;
    double dramPj = 0.0;
    double backgroundPj = 0.0;
    double totalPj = 0.0;
    double edpJouleSeconds = 0.0;
    std::uint64_t opsCompleted = 0;
    std::uint64_t escapeTransfers = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    bool finished = false;
};

/**
 * Replay @p trace on an immutable topology. Read-only on @p topo,
 * so a shared (cached) instance may serve many concurrent replays.
 */
ReplayResult replayTrace(const Trace &trace,
                         const net::Topology &topo,
                         const sim::SimConfig &sim_cfg,
                         const ReplayConfig &cfg);

/**
 * Replay @p trace with power gating.
 *
 * @param gate_to_live When non-zero and the topology is a
 *        StringFigure, nodes are gated until only this many stay
 *        live — up front (cfg.staticGating) or mid-run through a
 *        PowerManager (paper Fig 9(b)). The topology must be a
 *        private instance; never pass a shared cached one.
 */
ReplayResult replayTrace(const Trace &trace, net::Topology &topo,
                         const sim::SimConfig &sim_cfg,
                         const ReplayConfig &cfg,
                         std::size_t gate_to_live);

} // namespace sf::wl

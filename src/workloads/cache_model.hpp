/**
 * @file
 * The trace generator's cache hierarchy (paper Section V): 32 KB L1,
 * 2 MB L2, 32 MB L3 with associativities 4, 8, and 16, 64-byte
 * lines, LRU replacement, write-back write-allocate. CPU-side
 * accesses filter through all three levels; only the resulting DRAM
 * traffic (miss fills and dirty evictions) reaches the memory
 * network, exactly like the paper's Pin-based tool.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace sf::wl {

/** One set-associative write-back cache level. */
class CacheLevel
{
  public:
    CacheLevel(std::uint64_t size_bytes, int associativity,
               int line_bytes = 64);

    /** Result of looking a line up (and inserting it on miss). */
    struct Outcome {
        bool hit = false;
        bool evictedDirty = false;
        std::uint64_t evictedLine = 0;  ///< line address (bytes)
    };

    /**
     * Access the line containing @p addr; allocates on miss and
     * reports any dirty eviction.
     */
    Outcome access(std::uint64_t addr, bool is_write);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Way {
        std::uint64_t tag = 0;
        std::uint32_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    int lineShift_;
    std::size_t numSets_;
    int ways_;
    std::vector<Way> ways_storage_;
    std::uint32_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    Way *set(std::uint64_t line) ;
};

/** A DRAM access produced by the hierarchy. */
struct MemAccess {
    std::uint64_t addr = 0;
    bool isWrite = false;
};

/** The paper's three-level hierarchy. */
class CacheHierarchy
{
  public:
    CacheHierarchy()
        : l1_(32 * 1024, 4), l2_(2 * 1024 * 1024, 8),
          l3_(32ull * 1024 * 1024, 16)
    {
    }

    /**
     * Run one CPU access through L1/L2/L3.
     *
     * @param[out] dram DRAM accesses appended (miss fill read
     *             and/or L3 dirty writeback).
     */
    void access(std::uint64_t addr, bool is_write,
                std::vector<MemAccess> &dram);

    const CacheLevel &l1() const { return l1_; }
    const CacheLevel &l2() const { return l2_; }
    const CacheLevel &l3() const { return l3_; }

  private:
    CacheLevel l1_;
    CacheLevel l2_;
    CacheLevel l3_;
};

} // namespace sf::wl

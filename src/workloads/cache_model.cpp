#include "workloads/cache_model.hpp"

#include <bit>
#include <cassert>

namespace sf::wl {

CacheLevel::CacheLevel(std::uint64_t size_bytes, int associativity,
                       int line_bytes)
    : lineShift_(std::countr_zero(
          static_cast<unsigned>(line_bytes))),
      numSets_(size_bytes /
               (static_cast<std::uint64_t>(line_bytes) *
                associativity)),
      ways_(associativity),
      ways_storage_(numSets_ * associativity)
{
    assert(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0);
}

CacheLevel::Way *
CacheLevel::set(std::uint64_t line)
{
    const std::size_t index = line & (numSets_ - 1);
    return &ways_storage_[index * static_cast<std::size_t>(ways_)];
}

CacheLevel::Outcome
CacheLevel::access(std::uint64_t addr, bool is_write)
{
    const std::uint64_t line = addr >> lineShift_;
    const std::uint64_t tag = line / numSets_;
    Way *ways = set(line);
    ++useClock_;

    Outcome outcome;
    Way *lru = &ways[0];
    for (int w = 0; w < ways_; ++w) {
        Way &way = ways[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock_;
            way.dirty |= is_write;
            ++hits_;
            outcome.hit = true;
            return outcome;
        }
        if (!way.valid) {
            lru = &way;  // free way beats any victim
            break;
        }
        if (way.lastUse < lru->lastUse)
            lru = &way;
    }
    ++misses_;
    if (lru->valid && lru->dirty) {
        outcome.evictedDirty = true;
        const std::uint64_t victim_line =
            lru->tag * numSets_ + (line & (numSets_ - 1));
        outcome.evictedLine = victim_line << lineShift_;
    }
    lru->valid = true;
    lru->tag = tag;
    lru->dirty = is_write;
    lru->lastUse = useClock_;
    return outcome;
}

namespace {

/** Write a victim line back into L3; dirty L3 victims hit DRAM. */
void
writebackToL3(CacheLevel &l3, std::uint64_t line,
              std::vector<MemAccess> &dram)
{
    const auto out = l3.access(line, true);
    // A full-line writeback allocates without fetching
    // (write-validate); only a displaced dirty line reaches DRAM.
    if (!out.hit && out.evictedDirty)
        dram.push_back(MemAccess{out.evictedLine, true});
}

} // namespace

void
CacheHierarchy::access(std::uint64_t addr, bool is_write,
                       std::vector<MemAccess> &dram)
{
    // Write-back write-allocate at every level: dirty victims
    // cascade down; fills propagate up as clean copies.
    const auto r1 = l1_.access(addr, is_write);
    if (r1.evictedDirty) {
        const auto r2 = l2_.access(r1.evictedLine, true);
        if (!r2.hit && r2.evictedDirty)
            writebackToL3(l3_, r2.evictedLine, dram);
    }
    if (r1.hit)
        return;

    const auto r2 = l2_.access(addr, false);
    if (r2.evictedDirty)
        writebackToL3(l3_, r2.evictedLine, dram);
    if (r2.hit)
        return;

    const auto r3 = l3_.access(addr, false);
    if (r3.evictedDirty)
        dram.push_back(MemAccess{r3.evictedLine, true});
    if (r3.hit)
        return;
    dram.push_back(MemAccess{addr, false});
}

} // namespace sf::wl

#include "workloads/replay.hpp"

#include <algorithm>
#include <memory>
#include <queue>

#include "core/string_figure.hpp"
#include "mem/memory_node.hpp"
#include "mem/power_manager.hpp"
#include "sim/network.hpp"

namespace sf::wl {

namespace {

/** A pending DRAM reply scheduled for injection. */
struct PendingReply {
    Cycle at;
    NodeId from;
    NodeId to;
    int flits;
    std::uint64_t opIndex;
    bool operator>(const PendingReply &o) const { return at > o.at; }
};

/** Per-socket issue state. */
struct Socket {
    std::vector<NodeId> attach;
    std::size_t nextAttach = 0;
    std::size_t nextOp = 0;     ///< index into its op list
    int outstanding = 0;
};

} // namespace

namespace {

/**
 * Shared implementation: replay is read-only on @p topo except for
 * the optional power gating, which requires the caller to pass the
 * mutable StringFigure view in @p sf_mutable.
 */
ReplayResult
replayImpl(const Trace &trace, const net::Topology &topo,
           core::StringFigure *sf_mutable,
           const sim::SimConfig &sim_cfg, const ReplayConfig &cfg,
           std::size_t gate_to_live)
{
    ReplayResult result;
    if (trace.ops.empty()) {
        result.finished = true;
        return result;
    }

    // Static down-scaling happens before anything attaches or maps.
    if (gate_to_live > 0 && cfg.staticGating &&
        sf_mutable != nullptr) {
        Rng gate_rng(sim_cfg.seed * 13 + 5);
        sf_mutable->reduceTo(gate_to_live, gate_rng);
    }

    sim::NetworkModel net(topo, sim_cfg);
    mem::AddressMap map(topo, cfg.interleaveBytes);
    mem::EnergyModel energy(cfg.energy);
    std::vector<mem::MemoryNode> memory;
    memory.reserve(topo.numNodes());
    for (std::size_t i = 0; i < topo.numNodes(); ++i)
        memory.emplace_back(cfg.dram);

    // Attach sockets to evenly spaced live nodes.
    const auto &live = map.nodes();
    std::vector<Socket> sockets(
        static_cast<std::size_t>(cfg.sockets));
    std::vector<NodeId> attachments;
    for (int s = 0; s < cfg.sockets; ++s) {
        for (int a = 0; a < cfg.attachPerSocket; ++a) {
            const std::size_t pick =
                (static_cast<std::size_t>(s) * cfg.attachPerSocket +
                 a) * live.size() /
                (static_cast<std::size_t>(cfg.sockets) *
                 cfg.attachPerSocket);
            sockets[s].attach.push_back(live[pick]);
            attachments.push_back(live[pick]);
        }
    }

    // Optional mid-run power management (StringFigure only);
    // socket attachment points are never gated.
    core::StringFigure *sf_topo =
        cfg.staticGating ? nullptr : sf_mutable;
    std::unique_ptr<mem::PowerManager> pm;
    if (gate_to_live > 0 && sf_topo != nullptr) {
        pm = std::make_unique<mem::PowerManager>(*sf_topo, net,
                                                 mem::PowerParams{},
                                                 sim_cfg.seed);
        pm->setTarget(gate_to_live);
        pm->setProtected(attachments);
    }

    // Round-robin op distribution across sockets.
    std::vector<std::vector<std::uint64_t>> socket_ops(
        sockets.size());
    for (std::uint64_t i = 0; i < trace.ops.size(); ++i)
        socket_ops[i % sockets.size()].push_back(i);

    // Per-op bookkeeping.
    std::vector<Cycle> issued_at(trace.ops.size(), 0);
    std::vector<NodeId> reply_to(trace.ops.size(), 0);
    std::uint64_t completed = 0;
    std::uint64_t latency_sum = 0;
    std::uint64_t hops_sum = 0;

    std::priority_queue<PendingReply, std::vector<PendingReply>,
                        std::greater<>> replies;
    /** Ops to reissue after their target node was gated away. */
    std::vector<std::uint64_t> reissue;

    net.setDropHandler([&](const sim::Packet &p, Cycle) {
        // The address's page now lives on a surviving node
        // (migration); retry the whole operation there.
        reissue.push_back(p.payload);
    });

    net.setDeliverHandler([&](const sim::Packet &p, Cycle at) {
        const std::uint64_t op_index = p.payload;
        const TraceOp &op = trace.ops[op_index];
        hops_sum += p.hops;
        if (p.msgClass == sim::kRequest) {
            // Arrived at the memory node: access DRAM, then reply.
            const Cycle done = memory[p.dst].access(
                map.localAddr(op.addr), op.isWrite, at);
            energy.addDram(64ull * 8);
            const int flits = op.isWrite ? cfg.writeAckFlits
                                         : cfg.readReplyFlits;
            replies.push(PendingReply{done, p.dst,
                                      reply_to[op_index], flits,
                                      op_index});
        } else {
            // Reply back at the socket: the op completes.
            ++completed;
            latency_sum += at - issued_at[op_index];
            const std::uint64_t sock = op_index % sockets.size();
            --sockets[sock].outstanding;
        }
    });

    std::uint64_t background_node_cycles = 0;
    std::uint64_t reconfigs_seen = 0;
    Cycle cycle = 0;
    for (; completed < trace.ops.size() && cycle < cfg.maxCycles;
         ++cycle) {
        if (pm) {
            pm->tick(cycle);
            if (pm->reconfigOps() != reconfigs_seen) {
                reconfigs_seen = pm->reconfigOps();
                map.rebuild(topo);
            }
        }

        // Retry operations whose packets were dropped by a
        // reconfiguration, against the rebuilt address map.
        if (!reissue.empty()) {
            for (const std::uint64_t op_index : reissue) {
                const TraceOp &op = trace.ops[op_index];
                const NodeId attach = reply_to[op_index];
                const NodeId target = map.node(op.addr);
                const int flits = op.isWrite
                                      ? cfg.writeRequestFlits
                                      : cfg.readRequestFlits;
                net.inject(attach, target, flits, sim::kRequest,
                           cycle, op_index, true);
            }
            reissue.clear();
        }

        // Issue ready ops (timestamp arrived, window open).
        for (auto &sock : sockets) {
            const std::uint64_t sock_index =
                static_cast<std::uint64_t>(&sock - sockets.data());
            while (sock.nextOp < socket_ops[sock_index].size() &&
                   sock.outstanding < cfg.window) {
                const std::uint64_t op_index =
                    socket_ops[sock_index][sock.nextOp];
                const TraceOp &op = trace.ops[op_index];
                if (cfg.respectTimestamps &&
                    Trace::instrToCycles(op.instrId, cfg.cpi) >
                        cycle)
                    break;
                const NodeId attach =
                    sock.attach[sock.nextAttach++ %
                                sock.attach.size()];
                if (!topo.nodeAlive(attach))
                    break;  // attachment gated: stall this socket
                const NodeId target = map.node(op.addr);
                issued_at[op_index] = cycle;
                reply_to[op_index] = attach;
                const int flits = op.isWrite
                                      ? cfg.writeRequestFlits
                                      : cfg.readRequestFlits;
                net.inject(attach, target, flits, sim::kRequest,
                           cycle, op_index, true);
                ++sock.outstanding;
                ++sock.nextOp;
            }
        }

        // Inject DRAM replies that are ready.
        while (!replies.empty() && replies.top().at <= cycle) {
            const PendingReply &r = replies.top();
            net.inject(r.from, r.to, r.flits, sim::kReply, cycle,
                       r.opIndex, true);
            replies.pop();
        }

        net.step(cycle);
        background_node_cycles += map.numNodes();
    }

    result.runtimeCycles = cycle;
    result.opsCompleted = completed;
    result.finished = completed == trace.ops.size();
    result.opsPerCycle = cycle ? static_cast<double>(completed) /
                                 static_cast<double>(cycle)
                               : 0.0;
    // Network cycles are 3.2 ns; the 2 GHz CPU runs 6.4 CPU cycles
    // per network cycle.
    const double cpu_cycles = static_cast<double>(cycle) * 6.4;
    result.ipc = cpu_cycles > 0
                     ? static_cast<double>(trace.totalInstructions) *
                       (static_cast<double>(completed) /
                        static_cast<double>(trace.ops.size())) /
                       cpu_cycles
                     : 0.0;
    result.avgOpLatency =
        completed ? static_cast<double>(latency_sum) /
                    static_cast<double>(completed)
                  : 0.0;
    result.avgHops = completed ? static_cast<double>(hops_sum) /
                                 (2.0 * static_cast<double>(
                                            completed))
                               : 0.0;

    energy.addFlitHops(net.stats().flitHops, sim_cfg.flitBits);
    energy.addBackground(background_node_cycles);
    result.networkPj = energy.networkPj();
    result.dramPj = energy.dramPj();
    result.backgroundPj = energy.backgroundPj();
    result.totalPj = energy.totalPj();
    result.edpJouleSeconds = energy.edp(cycle);
    result.escapeTransfers = net.stats().escapeTransfers;
    for (const auto &node : memory) {
        result.rowHits += node.rowHits();
        result.rowMisses += node.rowMisses();
    }
    return result;
}

} // namespace

ReplayResult
replayTrace(const Trace &trace, const net::Topology &topo,
            const sim::SimConfig &sim_cfg, const ReplayConfig &cfg)
{
    return replayImpl(trace, topo, nullptr, sim_cfg, cfg, 0);
}

ReplayResult
replayTrace(const Trace &trace, net::Topology &topo,
            const sim::SimConfig &sim_cfg, const ReplayConfig &cfg,
            std::size_t gate_to_live)
{
    return replayImpl(trace, topo,
                      dynamic_cast<core::StringFigure *>(&topo),
                      sim_cfg, cfg, gate_to_live);
}

} // namespace sf::wl

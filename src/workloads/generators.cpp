#include "workloads/generators.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "net/rng.hpp"
#include "workloads/cache_model.hpp"

namespace sf::wl {

namespace {

/** One CPU-side memory access emitted by a workload. */
struct CpuAccess {
    std::uint64_t instrGap = 1;  ///< instructions since previous
    std::uint64_t addr = 0;
    bool isWrite = false;
};

/** Interface the workload state machines implement. */
class Stream
{
  public:
    virtual ~Stream() = default;
    virtual CpuAccess next(Rng &rng) = 0;
};

constexpr std::uint64_t kMiB = 1024ull * 1024;
constexpr std::uint64_t kGiB = 1024ull * kMiB;

/**
 * Zipf-like popularity via a log-uniform rank: P(rank < k) grows
 * as ln(k)/ln(n), giving a realistic hot head plus a heavy tail
 * (a pure Zipf(~1) sampler concentrates half the mass on rank 0,
 * which makes cache-filtered traces degenerate).
 */
std::uint64_t
zipfRank(Rng &rng, std::uint64_t n, double spread = 1.0)
{
    const double u = rng.uniform() * spread;
    const double r =
        std::exp(u * std::log(static_cast<double>(n) + 1.0)) - 1.0;
    const auto rank = static_cast<std::uint64_t>(r);
    return rank < n ? rank : n - 1;
}

/**
 * Spark wordcount: stream the text corpus sequentially word by
 * word, hashing each word into a large aggregation table
 * (read-modify-write at a random-ish bucket).
 */
class WordcountStream : public Stream
{
  public:
    CpuAccess
    next(Rng &rng)
    {
        switch (phase_++) {
          case 0:  // read the next word from the corpus
            cursor_ = (cursor_ + 8) % (1 * kGiB);
            return {14, kCorpusBase + cursor_, false};
          case 1:  // probe the hash bucket
            bucket_ = rng.below(128 * kMiB / 64) * 64;
            return {6, kTableBase + bucket_, false};
          default:  // bump the counter
            phase_ = 0;
            return {3, kTableBase + bucket_, true};
        }
    }

  private:
    static constexpr std::uint64_t kCorpusBase = 0;
    static constexpr std::uint64_t kTableBase = 2 * kGiB;
    std::uint64_t cursor_ = 0;
    std::uint64_t bucket_ = 0;
    int phase_ = 0;
};

/**
 * Spark grep: an almost pure sequential scan; rare matches append
 * to a small result buffer.
 */
class GrepStream : public Stream
{
  public:
    CpuAccess
    next(Rng &rng)
    {
        if (rng.chance(0.002)) {
            out_ += 64;
            return {4, kOutBase + out_ % (16 * kMiB), true};
        }
        cursor_ = (cursor_ + 16) % (2 * kGiB);
        return {9, cursor_, false};
    }

  private:
    static constexpr std::uint64_t kOutBase = 3 * kGiB;
    std::uint64_t cursor_ = 0;
    std::uint64_t out_ = 0;
};

/**
 * Spark sort: partition phase (sequential read, scattered partition
 * writes) alternating with merge phase (round-robin partition
 * reads, sequential writes).
 */
class SortStream : public Stream
{
  public:
    CpuAccess
    next(Rng &rng)
    {
        constexpr std::uint64_t kIn = 0;
        constexpr std::uint64_t kPart = 2 * kGiB;
        constexpr std::uint64_t kOut = 4 * kGiB;
        constexpr std::uint64_t kRegion = 1 * kGiB;
        constexpr int kPartitions = 64;

        if ((steps_++ / 262144) % 2 == 0) {
            // Partition phase: read a record, write it to a bucket.
            if (steps_ % 2 == 1) {
                in_ = (in_ + 32) % kRegion;
                return {8, kIn + in_, false};
            }
            const auto p = rng.below(kPartitions);
            partCursor_[p] = (partCursor_[p] + 32) %
                             (kRegion / kPartitions);
            return {6, kPart + p * (kRegion / kPartitions) +
                        partCursor_[p], true};
        }
        // Merge phase: round-robin partition reads, ordered writes.
        if (steps_ % 2 == 1) {
            const auto p = merge_++ % kPartitions;
            partCursor_[p] = (partCursor_[p] + 32) %
                             (kRegion / kPartitions);
            return {7, kPart + p * (kRegion / kPartitions) +
                        partCursor_[p], false};
        }
        out_ = (out_ + 32) % kRegion;
        return {5, kOut + out_, true};
    }

  private:
    std::uint64_t steps_ = 0;
    std::uint64_t in_ = 0;
    std::uint64_t out_ = 0;
    std::uint64_t merge_ = 0;
    std::uint64_t partCursor_[64] = {};
};

/**
 * Pagerank on a power-law graph (11M vertices, paper's Twitter
 * set): sequential offsets/edges, random gathers of neighbour
 * ranks, sequential rank writes.
 */
class PagerankStream : public Stream
{
  public:
    CpuAccess
    next(Rng &rng)
    {
        constexpr std::uint64_t kVertices = 11 * 1000 * 1000;
        constexpr std::uint64_t kOffsets = 0;        // 4B/vertex
        constexpr std::uint64_t kEdges = 1 * kGiB;
        constexpr std::uint64_t kRanks = 3 * kGiB;   // 8B/vertex

        if (edgesLeft_ == 0) {
            // Next vertex: read its offset, draw its degree.
            vertex_ = (vertex_ + 1) % kVertices;
            edgesLeft_ = 1 + zipfRank(rng, 64, 0.8);
            pendingWrite_ = true;
            return {5, kOffsets + vertex_ * 4, false};
        }
        --edgesLeft_;
        if (edgesLeft_ == 0 && pendingWrite_) {
            pendingWrite_ = false;
            return {4, kRanks + vertex_ * 8, true};
        }
        // Edge id (sequential) then neighbour rank (random gather);
        // fold both into alternating accesses.
        if ((toggle_ ^= 1) != 0) {
            edgeCursor_ = (edgeCursor_ + 4) % (2 * kGiB);
            return {3, kEdges + edgeCursor_, false};
        }
        return {3, kRanks + rng.below(kVertices) * 8, false};
    }

  private:
    std::uint64_t vertex_ = 0;
    std::uint64_t edgesLeft_ = 0;
    std::uint64_t edgeCursor_ = 0;
    int toggle_ = 0;
    bool pendingWrite_ = false;
};

/**
 * Redis: 50 clients issuing uniform-random GET/SET over a large
 * keyspace; values span a few cache lines.
 */
class RedisStream : public Stream
{
  public:
    CpuAccess
    next(Rng &rng)
    {
        constexpr std::uint64_t kKeys = 8 * 1000 * 1000;
        constexpr std::uint64_t kIndex = 0;          // hash table
        constexpr std::uint64_t kValues = 1 * kGiB;  // 256B objects

        if (linesLeft_ == 0) {
            key_ = rng.below(kKeys);
            isSet_ = rng.chance(0.3);
            linesLeft_ = 1 + rng.below(4);  // 64..256B values
            return {42, kIndex + key_ * 16, false};  // dict probe
        }
        --linesLeft_;
        return {6, kValues + key_ * 256 +
                   (3 - linesLeft_) * 64, isSet_};
    }

  private:
    std::uint64_t key_ = 0;
    std::uint64_t linesLeft_ = 0;
    bool isSet_ = false;
};

/**
 * Memcached (CloudSuite data caching): zipfian key popularity,
 * get/set ratio 0.8, small objects.
 */
class MemcachedStream : public Stream
{
  public:
    CpuAccess
    next(Rng &rng)
    {
        constexpr std::uint64_t kKeys = 4 * 1000 * 1000;
        constexpr std::uint64_t kIndex = 0;
        constexpr std::uint64_t kSlabs = 1 * kGiB;

        if (phase_ == 0) {
            key_ = zipfRank(rng, kKeys);
            isSet_ = !rng.chance(0.8);
            phase_ = 1;
            return {35, kIndex + key_ * 8, false};  // hash probe
        }
        if (phase_ == 1) {
            phase_ = 2;
            return {5, kSlabs + key_ * 128, isSet_};
        }
        phase_ = 0;
        return {4, kSlabs + key_ * 128 + 64, isSet_};
    }

  private:
    std::uint64_t key_ = 0;
    int phase_ = 0;
    bool isSet_ = false;
};

/**
 * K-means: repeated sequential sweeps over a point set far larger
 * than the L3, against a tiny hot centroid table.
 */
class KmeansStream : public Stream
{
  public:
    CpuAccess
    next(Rng &rng)
    {
        constexpr std::uint64_t kPoints = 512 * kMiB;  // point data
        constexpr std::uint64_t kCentroids = 2 * kGiB;
        constexpr std::uint64_t kAssign = 3 * kGiB;

        switch (phase_++) {
          case 0:  // next point (32B of features)
            point_ = (point_ + 32) % kPoints;
            return {10, point_, false};
          case 1:  // a centroid (hot, stays cached)
            return {18, kCentroids + rng.below(64) * 32, false};
          default:  // assignment write every few points
            phase_ = 0;
            if (rng.chance(0.25))
                return {4, kAssign + point_ / 8, true};
            return {4, kCentroids + rng.below(64) * 32, false};
        }
    }

  private:
    std::uint64_t point_ = 0;
    int phase_ = 0;
};

/**
 * Blocked dense matrix multiply (2048x2048 doubles): streaming A,
 * strided B columns (the cache-hostile part), accumulate into C.
 */
class MatMulStream : public Stream
{
  public:
    CpuAccess
    next(Rng &rng)
    {
        (void)rng;
        constexpr std::uint64_t kN = 2048;
        constexpr std::uint64_t kA = 0;
        constexpr std::uint64_t kB = 64 * kMiB;
        constexpr std::uint64_t kC = 128 * kMiB;
        constexpr std::uint64_t kBlock = 64;

        // Walk i,k,j in kBlock tiles; emit A[i][k], B[k][j],
        // C[i][j] per step with j fastest.
        const std::uint64_t bi = (tile_ / 3) % (kN / kBlock);
        const std::uint64_t bk = (tile_ / 3 / (kN / kBlock)) %
                                 (kN / kBlock);
        const std::uint64_t i = bi * kBlock + (step_ / kBlock) %
                                kBlock;
        const std::uint64_t k = bk * kBlock + step_ % kBlock;
        const std::uint64_t j = (step_ * 7) % kN;  // strided cols

        switch (phase_++) {
          case 0:
            return {2, kA + (i * kN + k) * 8, false};
          case 1:
            return {2, kB + (k * kN + j) * 8, false};
          default:
            phase_ = 0;
            ++step_;
            if (step_ % (kBlock * kBlock) == 0)
                ++tile_;
            return {2, kC + (i * kN + j) * 8, true};
        }
    }

  private:
    std::uint64_t step_ = 0;
    std::uint64_t tile_ = 0;
    int phase_ = 0;
};

std::unique_ptr<Stream>
makeStream(Workload w)
{
    switch (w) {
      case Workload::SparkWordcount:
        return std::make_unique<WordcountStream>();
      case Workload::SparkGrep:
        return std::make_unique<GrepStream>();
      case Workload::SparkSort:
        return std::make_unique<SortStream>();
      case Workload::Pagerank:
        return std::make_unique<PagerankStream>();
      case Workload::Redis:
        return std::make_unique<RedisStream>();
      case Workload::Memcached:
        return std::make_unique<MemcachedStream>();
      case Workload::Kmeans:
        return std::make_unique<KmeansStream>();
      case Workload::MatMul:
        return std::make_unique<MatMulStream>();
    }
    return nullptr;
}

} // namespace

std::string
workloadName(Workload w)
{
    switch (w) {
      case Workload::SparkWordcount: return "wordcount";
      case Workload::SparkGrep: return "grep";
      case Workload::SparkSort: return "sort";
      case Workload::Pagerank: return "pagerank";
      case Workload::Redis: return "redis";
      case Workload::Memcached: return "memcached";
      case Workload::Kmeans: return "kmeans";
      case Workload::MatMul: return "matmul";
    }
    return "?";
}

Trace
generateTrace(Workload w, std::uint64_t seed, std::size_t num_ops,
              std::size_t warmup_ops)
{
    Trace trace;
    trace.workload = workloadName(w);
    trace.ops.reserve(num_ops);

    Rng rng(seed ^ (static_cast<std::uint64_t>(w) << 32));
    auto stream = makeStream(w);
    CacheHierarchy caches;
    std::vector<MemAccess> dram;
    std::uint64_t instr = 0;
    std::uint64_t instr_base = 0;
    std::uint64_t discarded = 0;
    // Guard against pathological cache-friendliness: bound the CPU
    // stream at 400 accesses per requested DRAM op.
    const std::uint64_t access_cap = (num_ops + warmup_ops) * 400ull;

    for (std::uint64_t produced = 0;
         trace.ops.size() < num_ops && produced < access_cap;
         ++produced) {
        const CpuAccess access = stream->next(rng);
        instr += access.instrGap;
        dram.clear();
        caches.access(access.addr, access.isWrite, dram);
        for (const MemAccess &op : dram) {
            if (discarded < warmup_ops) {
                ++discarded;
                instr_base = instr;  // trace time starts after warmup
                continue;
            }
            if (trace.ops.size() >= num_ops)
                break;
            trace.ops.push_back(
                TraceOp{instr - instr_base, op.addr, op.isWrite});
        }
    }
    trace.totalInstructions = instr - instr_base;
    const auto &l1 = caches.l1();
    const auto &l3 = caches.l3();
    const auto rate = [](std::uint64_t h, std::uint64_t m) {
        return h + m ? static_cast<double>(h) /
                       static_cast<double>(h + m)
                     : 0.0;
    };
    trace.l1HitRate = rate(l1.hits(), l1.misses());
    trace.l3HitRate = rate(l3.hits(), l3.misses());
    return trace;
}

std::shared_ptr<const Trace>
sharedTrace(Workload w, std::uint64_t seed, std::size_t num_ops,
            std::size_t warmup_ops)
{
    struct Key {
        Workload w;
        std::uint64_t seed;
        std::size_t numOps;
        std::size_t warmupOps;
        bool operator<(const Key &o) const
        {
            return std::tie(w, seed, numOps, warmupOps) <
                   std::tie(o.w, o.seed, o.numOps, o.warmupOps);
        }
    };
    // Strong entries: a trace is a few MB and the key space of one
    // process (workloads x one or two op counts) stays tiny, while
    // a run that releases its reference must not evict the trace
    // the next sequential run wants.
    static std::mutex mutex;
    static std::map<Key, std::shared_ptr<const Trace>> cache;

    const Key key{w, seed, num_ops, warmup_ops};
    {
        const std::lock_guard<std::mutex> lock(mutex);
        if (const auto it = cache.find(key); it != cache.end())
            return it->second;
    }
    // Generate outside the lock: traces take seconds to build, and
    // different keys should not serialise each other. Concurrent
    // first requests for the same key may generate twice; both
    // results are identical and the first insert wins.
    auto made = std::make_shared<const Trace>(
        generateTrace(w, seed, num_ops, warmup_ops));
    const std::lock_guard<std::mutex> lock(mutex);
    const auto [it, inserted] = cache.emplace(key, std::move(made));
    return it->second;
}

} // namespace sf::wl

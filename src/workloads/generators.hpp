/**
 * @file
 * Synthetic generators for the paper's real workloads (Table IV).
 *
 * The paper collects Pin traces of Spark jobs, CloudSuite services,
 * Redis, and two kernels on a Xeon server. Those traces are not
 * redistributable, so each workload is reproduced as a synthetic
 * CPU-access stream with the workload's characteristic footprint,
 * locality, and read/write mix, filtered through the same
 * 32KB/2MB/32MB cache hierarchy the paper's tool models (see
 * DESIGN.md, substitutions). Trace timestamps come from instruction
 * ids at an average CPI, exactly like the paper.
 */

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "workloads/trace.hpp"

namespace sf::wl {

/** The eight evaluated workloads (paper Table IV). */
enum class Workload {
    SparkWordcount,
    SparkGrep,
    SparkSort,
    Pagerank,
    Redis,
    Memcached,
    Kmeans,
    MatMul,
};

/** All workloads in the paper's Fig 12 order. */
inline constexpr std::array<Workload, 8> kAllWorkloads{
    Workload::SparkWordcount, Workload::SparkGrep,
    Workload::SparkSort,      Workload::Pagerank,
    Workload::Redis,          Workload::Memcached,
    Workload::Kmeans,         Workload::MatMul,
};

/** Display name matching the paper's figure labels. */
std::string workloadName(Workload w);

/**
 * Generate a DRAM trace of @p num_ops operations (paper: 100,000)
 * by streaming the workload through the cache hierarchy.
 *
 * @param warmup_ops DRAM operations discarded before collection
 *        begins. The paper records traces "after workload
 *        initialization": with cold caches a 32 MB L3 absorbs the
 *        first ~512K line fills without a single dirty writeback,
 *        so a realistic steady-state trace needs the hierarchy
 *        warmed past its capacity first.
 */
Trace generateTrace(Workload w, std::uint64_t seed,
                    std::size_t num_ops = 100000,
                    std::size_t warmup_ops = 700000);

/**
 * Memoised, thread-safe variant of generateTrace: experiment sweeps
 * replay the identical trace against every network design, and
 * regenerating it per cell (700K warmup ops through the cache
 * hierarchy each time) dominated their runtime. The shared pointer
 * keeps entries immutable and safe to hand to concurrent runs.
 */
std::shared_ptr<const Trace>
sharedTrace(Workload w, std::uint64_t seed,
            std::size_t num_ops = 100000,
            std::size_t warmup_ops = 700000);

} // namespace sf::wl

/**
 * @file
 * Memory traces: the timestamped DRAM-access streams the paper's
 * Pin-based tool collects (100,000 operations per workload after
 * initialisation, timestamps from instruction id x average CPI).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sf::wl {

/** One DRAM operation of a trace. */
struct TraceOp {
    /** Instruction id of the triggering instruction. */
    std::uint64_t instrId = 0;
    std::uint64_t addr = 0;
    bool isWrite = false;
};

/** A complete workload trace. */
struct Trace {
    std::string workload;
    std::vector<TraceOp> ops;
    /** Total instructions the stream represents (IPC denominator). */
    std::uint64_t totalInstructions = 0;
    /** Cache hit statistics of the generating hierarchy. */
    double l1HitRate = 0.0;
    double l3HitRate = 0.0;

    /**
     * Timestamp of op @p i in network cycles: instruction id x CPI
     * at a 2 GHz core, converted to 3.2 ns network cycles.
     */
    static std::uint64_t
    instrToCycles(std::uint64_t instr_id, double cpi = 1.0)
    {
        const double ns = static_cast<double>(instr_id) * cpi * 0.5;
        return static_cast<std::uint64_t>(ns / 3.2);
    }
};

} // namespace sf::wl

/**
 * @file
 * Synthetic traffic patterns (paper Table III).
 */

#pragma once

#include <array>
#include <string>

#include "net/rng.hpp"
#include "net/types.hpp"

namespace sf::sim {

/** The seven evaluated patterns. */
enum class TrafficPattern {
    UniformRandom,
    Tornado,
    Hotspot,
    Opposite,
    NearestNeighbor,
    Complement,
    Partition2,
};

/** All patterns, in the paper's Table III order. */
inline constexpr std::array<TrafficPattern, 7> kAllPatterns{
    TrafficPattern::UniformRandom,  TrafficPattern::Tornado,
    TrafficPattern::Hotspot,        TrafficPattern::Opposite,
    TrafficPattern::NearestNeighbor, TrafficPattern::Complement,
    TrafficPattern::Partition2,
};

/** Display name matching the paper's tables. */
std::string patternName(TrafficPattern pattern);

/**
 * Destination for a packet from @p src under @p pattern in an
 * @p n node network (Table III formulas, generalised to arbitrary
 * n by reducing modulo n). May return src; callers skip such
 * injections.
 */
NodeId trafficDestination(TrafficPattern pattern, NodeId src,
                          std::size_t n, Rng &rng);

} // namespace sf::sim

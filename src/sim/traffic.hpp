/**
 * @file
 * Synthetic traffic: destination patterns (paper Table III) and
 * open-loop arrival processes.
 *
 * The arrival seam separates *when* a node injects from *where*
 * the packet goes. The historical closed-ish generator draws a
 * per-cycle Bernoulli from one shared RNG; the open-loop sources
 * below instead schedule injections by arrival time — like a load
 * generator driving a serving system — so offered load does not
 * back off when the network congests, which is what makes tail
 * latency under a fixed arrival process measurable at all.
 *
 * Every source is a pure function of (config, rate, seed): the
 * schedule it emits is independent of network state, query timing,
 * thread count, and shard count, so runs replay identically.
 */

#pragma once

#include <array>
#include <string>

#include "net/rng.hpp"
#include "net/types.hpp"

namespace sf::sim {

/** The seven evaluated patterns. */
enum class TrafficPattern {
    UniformRandom,
    Tornado,
    Hotspot,
    Opposite,
    NearestNeighbor,
    Complement,
    Partition2,
};

/** All patterns, in the paper's Table III order. */
inline constexpr std::array<TrafficPattern, 7> kAllPatterns{
    TrafficPattern::UniformRandom,  TrafficPattern::Tornado,
    TrafficPattern::Hotspot,        TrafficPattern::Opposite,
    TrafficPattern::NearestNeighbor, TrafficPattern::Complement,
    TrafficPattern::Partition2,
};

/** Display name matching the paper's tables. */
std::string patternName(TrafficPattern pattern);

/**
 * Destination for a packet from @p src under @p pattern in an
 * @p n node network (Table III formulas, generalised to arbitrary
 * n by reducing modulo n). May return src; callers skip such
 * injections.
 */
NodeId trafficDestination(TrafficPattern pattern, NodeId src,
                          std::size_t n, Rng &rng);

// ------------------------------------------------------- open loop

/** The evaluated open-loop arrival processes. */
enum class ArrivalProcess {
    /** Memoryless: exponential inter-arrival times. */
    Poisson,
    /** Two-state MMPP: exponential on/off dwell times; the on
     *  state injects at a multiple of the mean rate. */
    Bursty,
    /** Heavy-tailed (Pareto) on/off dwell times; superposing many
     *  such sources — one per node — yields the self-similar
     *  aggregate of Willinger et al. */
    SelfSimilar,
};

/** All processes, in reporting order. */
inline constexpr std::array<ArrivalProcess, 3> kAllArrivalProcesses{
    ArrivalProcess::Poisson,
    ArrivalProcess::Bursty,
    ArrivalProcess::SelfSimilar,
};

/** Display name ("poisson" / "bursty" / "selfsim"). */
std::string arrivalProcessName(ArrivalProcess process);

/** Parse an arrival-process name; throws std::invalid_argument. */
ArrivalProcess parseArrivalProcess(std::string_view name);

/** Shape knobs of the on/off processes (defaults are the
 *  experiment family's reporting configuration). */
struct ArrivalConfig {
    ArrivalProcess process = ArrivalProcess::Poisson;
    /**
     * On-state rate multiplier B of the bursty/self-similar
     * sources: the on state injects at B x the mean rate and the
     * duty cycle is 1/B, so the long-run offered load matches the
     * Poisson source at the same nominal rate.
     */
    double burstFactor = 8.0;
    /** Mean on-state dwell, cycles (off dwell = (B-1) x this). */
    double onMean = 200.0;
    /** Pareto tail index of the self-similar dwell times; in
     *  (1, 2) the durations have finite mean but infinite
     *  variance, the regime that produces long-range dependence. */
    double paretoShape = 1.5;
};

/**
 * Deterministic open-loop arrival schedule for one node: a stream
 * of injection cycles whose statistics follow @p config at a mean
 * rate of @p rate packets/cycle. next() yields the arrival cycles
 * in nondecreasing order (several arrivals may share a cycle).
 *
 * The stream is a pure function of (config, rate, seed): no call
 * reads anything but the source's own state, so schedules are
 * byte-identical across runs, job counts, and shard counts.
 */
class OpenLoopSource
{
  public:
    OpenLoopSource(const ArrivalConfig &config, double rate,
                   std::uint64_t seed);

    /** The cycle of the next arrival (monotone nondecreasing). */
    Cycle next();

  private:
    /** Inverse-CDF exponential draw with mean @p mean. */
    double expo(double mean);
    /** Inverse-CDF Pareto draw with mean @p mean (shape fixed). */
    double pareto(double mean);
    /** Enter the opposite dwell state and draw its duration. */
    void toggleState();

    ArrivalConfig cfg_;
    Rng rng_;
    double time_ = 0.0;      ///< continuous arrival clock, cycles
    double onRate_;          ///< arrival rate while on
    bool on_ = true;         ///< current dwell state (on/off pair)
    double stateEnd_ = 0.0;  ///< continuous end of current dwell
    bool modulated_;         ///< false for Poisson (always on)
};

} // namespace sf::sim

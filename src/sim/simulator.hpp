/**
 * @file
 * Experiment harness over the network model: open-loop synthetic
 * traffic runs with warmup / measurement / drain phases, saturation
 * detection, zero-load latency, latency-vs-injection sweeps
 * (paper Fig 11), and saturation-point search (paper Fig 10).
 */

#pragma once

#include <vector>

#include "net/topology.hpp"
#include "sim/executor.hpp"
#include "sim/network.hpp"
#include "sim/reconfig_schedule.hpp"
#include "sim/sim_config.hpp"
#include "sim/traffic.hpp"

namespace sf::core {
class StringFigure;
}

namespace sf::sim {

/** Phase lengths of one run, in cycles. */
struct RunPhases {
    Cycle warmup = 1000;
    Cycle measure = 3000;
    Cycle drainLimit = 20000;

    /**
     * The abbreviated phases every figure sweep uses for saturation
     * searches (Fig 10 and the ablations): long enough to reach
     * steady state, short enough to afford hundreds of grid cells.
     */
    static constexpr RunPhases saturationProbe()
    {
        return {800, 2000, 12000};
    }

    /** The longer measurement window of the Fig 11 latency curves. */
    static constexpr RunPhases latencyCurve()
    {
        return {800, 2500, 15000};
    }

    /**
     * Open-loop tail-latency runs (the hockey-stick family): a
     * longer measure window — p999 needs thousands of measured
     * packets — and a cooldown generous enough to drain a network
     * that was driven near its knee. Injection continues through
     * cooldown, so the measured tail is not flattered by an
     * emptying system.
     */
    static constexpr RunPhases openLoop()
    {
        return {1500, 6000, 25000};
    }

    /** Abbreviated open-loop phases for quick-effort sweeps. */
    static constexpr RunPhases openLoopQuick()
    {
        return {800, 3000, 12000};
    }
};

/**
 * Degradation-window telemetry of one reconfiguration wave (all
 * schedule events sharing a cycle): what the wave did to the
 * topology, and how the serving tail responded. Window percentiles
 * come from the log-bucket histogram's bin deltas over fixed
 * 256-cycle windows, so every field is a pure function of the
 * simulated event stream — byte-identical across jobs, shards, and
 * route-cache settings.
 */
struct ReconfigEventStats {
    Cycle at = 0;       ///< wave cycle (events applied at its start)
    int gated = 0;      ///< Leave/Fail gates applied
    int ungated = 0;    ///< Join ungates applied
    int refused = 0;    ///< Leaves skipped (canGate said no)
    int failForced = 0; ///< Fails applied where canGate said no
    int holes = 0;      ///< ring holes this wave left open
    /** p99 of the last non-empty pre-wave window (cumulative p99
     *  when the wave precedes any complete window). */
    Cycle baselineP99 = 0;
    /** Worst window p99 between the wave and reconvergence. */
    Cycle blipP99 = 0;
    /**
     * Cycles until a window p99 returned within the tolerance band
     * (<= 1.25x baseline); the degradation-window SLO. When the
     * wave never reconverged (reconverged == false), the span to
     * the end of observation instead.
     */
    Cycle reconvergeCycles = 0;
    bool reconverged = false;
    /** Packets dropped (destination gated away) in the window. */
    std::uint64_t dropBurst = 0;
    /** Packets escalated to escape channels in the window. */
    std::uint64_t escalationBurst = 0;
};

/** Outcome of one synthetic-traffic run. */
struct RunResult {
    double avgTotalLatency = 0.0;   ///< create -> eject, cycles
    double avgNetworkLatency = 0.0; ///< entry -> eject, cycles
    Cycle p50Latency = 0;
    Cycle p99Latency = 0;
    double avgHops = 0.0;
    double offeredLoad = 0.0;   ///< flits / node / cycle offered
    double acceptedLoad = 0.0;  ///< flits / node / cycle delivered
    bool saturated = false;
    std::uint64_t measuredPackets = 0;
    std::uint64_t escapeTransfers = 0;
    std::uint64_t flitHops = 0;     ///< full-run flit-hops (energy)
    Cycle simulatedCycles = 0;
    /** Tail-latency cut of the measured window, from the
     *  log-bucket histograms (full dynamic range — unlike
     *  p50Latency/p99Latency these stay meaningful past the linear
     *  histograms' range): create -> eject and entry -> eject. */
    LatencySummary tailTotal;
    LatencySummary tailNetwork;
    /** Flits / node / cycle actually injected in the measure
     *  window (open-loop runs: the schedule's realized rate). */
    double realizedLoad = 0.0;
    /** Commit-wavefront cost model (SimConfig::profileWavefront,
     *  all zero otherwise): average/max arbitration-walk length
     *  and dependency-chain depth per profiled cycle — see
     *  NetStats. avgWalk / avgDepth bounds the speedup of any
     *  order-preserving parallel arbitration schedule. */
    double wavefrontAvgWalk = 0.0;
    double wavefrontAvgDepth = 0.0;
    std::uint64_t wavefrontMaxWalk = 0;
    std::uint64_t wavefrontMaxDepth = 0;
    std::uint64_t wavefrontCycles = 0;
    /** Per-phase wall time of the cycle engine
     *  (SimConfig::profilePhases, all zero otherwise): total
     *  steady-clock nanoseconds spent in each pipeline phase of
     *  docs/engine_phases.md across the profiled cycles. Divide by
     *  phaseProfiledCycles for ns/cycle. */
    std::uint64_t phaseProfiledCycles = 0;
    std::uint64_t phaseLandNs = 0;
    std::uint64_t phaseSnapshotNs = 0;
    std::uint64_t phaseRouteNs = 0;
    std::uint64_t phaseDecideNs = 0;
    std::uint64_t phaseCommitNs = 0;
    /** Packets dropped because their destination was gated away
     *  mid-flight (elastic runs; 0 on immutable topologies). */
    std::uint64_t droppedUnroutable = 0;
    /** Topology generations applied during the run. */
    std::uint64_t topologyEpochs = 0;
    /** Per-wave degradation-window telemetry (runElastic only). */
    std::vector<ReconfigEventStats> reconfigEvents;
};

/**
 * Run open-loop synthetic traffic: every live node injects a
 * @c cfg.packetFlits packet with probability @p rate each cycle
 * toward @p pattern destinations. Injection continues during drain;
 * a run that cannot drain its measured packets (or whose source
 * backlog keeps growing) reports saturated.
 *
 * With @p executor non-null and cfg.shards > 1 the cycle engine
 * shards its route plane across the executor's threads (see
 * network.hpp); the result is byte-identical at every shard count
 * and with a null executor, so callers may thread any available
 * pool through without a determinism risk.
 */
RunResult runSynthetic(const net::Topology &topo,
                       TrafficPattern pattern, double rate,
                       const SimConfig &cfg,
                       const RunPhases &phases = {},
                       Executor *executor = nullptr);

/**
 * Run open-loop traffic: every live node injects on its own
 * deterministic arrival schedule — a pure function of (arrival
 * config, rate, cfg.seed, node) produced by an OpenLoopSource —
 * instead of the per-cycle Bernoulli draw of runSynthetic. Offered
 * load therefore never backs off under congestion, which is what
 * makes the result's tail percentiles (RunResult::tailTotal /
 * tailNetwork, recorded into fixed-size log-bucket histograms on
 * the allocation-free measure path) a serving-system metric: the
 * latency distribution under a fixed arrival process.
 *
 * Phases run warmup -> measure -> cooldown (drainLimit): only
 * packets injected inside the measure window are recorded, and
 * injection continues through cooldown so the tail is not
 * flattered by an emptying network. Deterministic like
 * runSynthetic: byte-identical at every job and shard count.
 */
RunResult runOpenLoop(const net::Topology &topo,
                      TrafficPattern pattern,
                      const ArrivalConfig &arrivals, double rate,
                      const SimConfig &cfg,
                      const RunPhases &phases = RunPhases::openLoop(),
                      Executor *executor = nullptr);

/**
 * Run open-loop traffic (exactly as runOpenLoop) while applying
 * @p schedule's reconfiguration events to @p topo mid-run: each
 * wave of same-cycle events gates/ungates serially at the cycle
 * barrier before injection, then advances the network model's
 * topology generation once. Leave events honour the canGate
 * feasibility courtesy (a refused victim is skipped and counted);
 * Fail events gate unconditionally, exercising the escalation and
 * drop paths for in-flight packets whose destination vanished —
 * measured drops count toward the drain condition so the run still
 * terminates. Per-wave degradation-window telemetry (p99 blip,
 * drop/escalation bursts, cycles-to-reconverge) lands in
 * RunResult::reconfigEvents.
 *
 * The sharded route plane and the memoized route cache stay
 * enabled across every reconfiguration: both shard/memoize against
 * an immutable-within-epoch snapshot (network.hpp), so results are
 * byte-identical at every job, shard, and route-cache setting —
 * with an empty schedule, byte-identical to runOpenLoop. @p topo
 * is gated in place and finishes in the schedule's final liveness
 * state (callers own restoration).
 */
RunResult runElastic(core::StringFigure &topo, TrafficPattern pattern,
                     const ArrivalConfig &arrivals, double rate,
                     const ReconfigSchedule &schedule,
                     const SimConfig &cfg,
                     const RunPhases &phases = RunPhases::openLoop(),
                     Executor *executor = nullptr);

/** Zero-load average packet latency (very light uniform traffic). */
double zeroLoadLatency(const net::Topology &topo,
                       const SimConfig &cfg,
                       TrafficPattern pattern =
                           TrafficPattern::UniformRandom,
                       Executor *executor = nullptr);

/**
 * Saturation injection rate in packets/node/cycle: the highest rate
 * (within @p tolerance, geometric) that is not saturated. 1.0 means
 * the network absorbs full injection bandwidth.
 *
 * Every probe is a pure function of its rate (the traffic RNG
 * derives from cfg.seed alone), so when @p executor offers idle
 * parallelism the search evaluates the probes the bisection may
 * need next speculatively and concurrently — and still selects the
 * exact rate the serial search would. With a null executor (or
 * availableParallelism() == 1) the probe sequence is identical to
 * the classic serial geometric-descent-plus-bisection.
 */
double findSaturationRate(const net::Topology &topo,
                          TrafficPattern pattern,
                          const SimConfig &cfg,
                          const RunPhases &phases = {},
                          double tolerance = 0.07,
                          Executor *executor = nullptr);

/** Latency-vs-rate curve point. */
struct SweepPoint {
    double rate;
    RunResult result;
};

/** Evaluate a list of injection rates (Fig 11 curves). */
std::vector<SweepPoint>
latencySweep(const net::Topology &topo, TrafficPattern pattern,
             const std::vector<double> &rates, const SimConfig &cfg,
             const RunPhases &phases = {},
             Executor *executor = nullptr);

} // namespace sf::sim

/**
 * @file
 * Experiment harness over the network model: open-loop synthetic
 * traffic runs with warmup / measurement / drain phases, saturation
 * detection, zero-load latency, latency-vs-injection sweeps
 * (paper Fig 11), and saturation-point search (paper Fig 10).
 */

#pragma once

#include <vector>

#include "net/topology.hpp"
#include "sim/executor.hpp"
#include "sim/network.hpp"
#include "sim/sim_config.hpp"
#include "sim/traffic.hpp"

namespace sf::sim {

/** Phase lengths of one run, in cycles. */
struct RunPhases {
    Cycle warmup = 1000;
    Cycle measure = 3000;
    Cycle drainLimit = 20000;

    /**
     * The abbreviated phases every figure sweep uses for saturation
     * searches (Fig 10 and the ablations): long enough to reach
     * steady state, short enough to afford hundreds of grid cells.
     */
    static constexpr RunPhases saturationProbe()
    {
        return {800, 2000, 12000};
    }

    /** The longer measurement window of the Fig 11 latency curves. */
    static constexpr RunPhases latencyCurve()
    {
        return {800, 2500, 15000};
    }

    /**
     * Open-loop tail-latency runs (the hockey-stick family): a
     * longer measure window — p999 needs thousands of measured
     * packets — and a cooldown generous enough to drain a network
     * that was driven near its knee. Injection continues through
     * cooldown, so the measured tail is not flattered by an
     * emptying system.
     */
    static constexpr RunPhases openLoop()
    {
        return {1500, 6000, 25000};
    }

    /** Abbreviated open-loop phases for quick-effort sweeps. */
    static constexpr RunPhases openLoopQuick()
    {
        return {800, 3000, 12000};
    }
};

/** Outcome of one synthetic-traffic run. */
struct RunResult {
    double avgTotalLatency = 0.0;   ///< create -> eject, cycles
    double avgNetworkLatency = 0.0; ///< entry -> eject, cycles
    Cycle p50Latency = 0;
    Cycle p99Latency = 0;
    double avgHops = 0.0;
    double offeredLoad = 0.0;   ///< flits / node / cycle offered
    double acceptedLoad = 0.0;  ///< flits / node / cycle delivered
    bool saturated = false;
    std::uint64_t measuredPackets = 0;
    std::uint64_t escapeTransfers = 0;
    std::uint64_t flitHops = 0;     ///< full-run flit-hops (energy)
    Cycle simulatedCycles = 0;
    /** Tail-latency cut of the measured window, from the
     *  log-bucket histograms (full dynamic range — unlike
     *  p50Latency/p99Latency these stay meaningful past the linear
     *  histograms' range): create -> eject and entry -> eject. */
    LatencySummary tailTotal;
    LatencySummary tailNetwork;
    /** Flits / node / cycle actually injected in the measure
     *  window (open-loop runs: the schedule's realized rate). */
    double realizedLoad = 0.0;
    /** Commit-wavefront cost model (SimConfig::profileWavefront,
     *  all zero otherwise): average/max arbitration-walk length
     *  and dependency-chain depth per profiled cycle — see
     *  NetStats. avgWalk / avgDepth bounds the speedup of any
     *  order-preserving parallel arbitration schedule. */
    double wavefrontAvgWalk = 0.0;
    double wavefrontAvgDepth = 0.0;
    std::uint64_t wavefrontMaxWalk = 0;
    std::uint64_t wavefrontMaxDepth = 0;
    std::uint64_t wavefrontCycles = 0;
};

/**
 * Run open-loop synthetic traffic: every live node injects a
 * @c cfg.packetFlits packet with probability @p rate each cycle
 * toward @p pattern destinations. Injection continues during drain;
 * a run that cannot drain its measured packets (or whose source
 * backlog keeps growing) reports saturated.
 *
 * With @p executor non-null and cfg.shards > 1 the cycle engine
 * shards its route plane across the executor's threads (see
 * network.hpp); the result is byte-identical at every shard count
 * and with a null executor, so callers may thread any available
 * pool through without a determinism risk.
 */
RunResult runSynthetic(const net::Topology &topo,
                       TrafficPattern pattern, double rate,
                       const SimConfig &cfg,
                       const RunPhases &phases = {},
                       Executor *executor = nullptr);

/**
 * Run open-loop traffic: every live node injects on its own
 * deterministic arrival schedule — a pure function of (arrival
 * config, rate, cfg.seed, node) produced by an OpenLoopSource —
 * instead of the per-cycle Bernoulli draw of runSynthetic. Offered
 * load therefore never backs off under congestion, which is what
 * makes the result's tail percentiles (RunResult::tailTotal /
 * tailNetwork, recorded into fixed-size log-bucket histograms on
 * the allocation-free measure path) a serving-system metric: the
 * latency distribution under a fixed arrival process.
 *
 * Phases run warmup -> measure -> cooldown (drainLimit): only
 * packets injected inside the measure window are recorded, and
 * injection continues through cooldown so the tail is not
 * flattered by an emptying network. Deterministic like
 * runSynthetic: byte-identical at every job and shard count.
 */
RunResult runOpenLoop(const net::Topology &topo,
                      TrafficPattern pattern,
                      const ArrivalConfig &arrivals, double rate,
                      const SimConfig &cfg,
                      const RunPhases &phases = RunPhases::openLoop(),
                      Executor *executor = nullptr);

/** Zero-load average packet latency (very light uniform traffic). */
double zeroLoadLatency(const net::Topology &topo,
                       const SimConfig &cfg,
                       TrafficPattern pattern =
                           TrafficPattern::UniformRandom,
                       Executor *executor = nullptr);

/**
 * Saturation injection rate in packets/node/cycle: the highest rate
 * (within @p tolerance, geometric) that is not saturated. 1.0 means
 * the network absorbs full injection bandwidth.
 *
 * Every probe is a pure function of its rate (the traffic RNG
 * derives from cfg.seed alone), so when @p executor offers idle
 * parallelism the search evaluates the probes the bisection may
 * need next speculatively and concurrently — and still selects the
 * exact rate the serial search would. With a null executor (or
 * availableParallelism() == 1) the probe sequence is identical to
 * the classic serial geometric-descent-plus-bisection.
 */
double findSaturationRate(const net::Topology &topo,
                          TrafficPattern pattern,
                          const SimConfig &cfg,
                          const RunPhases &phases = {},
                          double tolerance = 0.07,
                          Executor *executor = nullptr);

/** Latency-vs-rate curve point. */
struct SweepPoint {
    double rate;
    RunResult result;
};

/** Evaluate a list of injection rates (Fig 11 curves). */
std::vector<SweepPoint>
latencySweep(const net::Topology &topo, TrafficPattern pattern,
             const std::vector<double> &rates, const SimConfig &cfg,
             const RunPhases &phases = {},
             Executor *executor = nullptr);

} // namespace sf::sim

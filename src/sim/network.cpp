#include "sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace sf::sim {

namespace {

/** Comparator handed to the std heap algorithms: min-heap on at.
 *  Must stay at-only — the equal-key permutation the std heap
 *  produces is part of the engine's deterministic behaviour. */
const auto kLaterFirst = [](const auto &a, const auto &b) {
    return a > b;
};

/**
 * Route-plane fan-out floor: below this many collected jobs the
 * shards run inline on the calling thread — an Executor batch
 * costs more than the routes at light load. Results are identical
 * either way (the jobs are pure), so the threshold is a pure
 * wall-clock knob.
 */
constexpr std::size_t kRoutePhaseMinJobs = 32;

} // namespace

NetworkModel::NetworkModel(const net::Topology &topo,
                           const SimConfig &cfg)
    : topo_(&topo), cfg_(cfg),
      escapeBase_(topo.numVcClasses() * kNumMsgClasses),
      rng_(cfg.seed)
{
    const std::size_t n = topo.numNodes();
    const std::size_t links = topo.graph().numLinks();
    linkBusyUntil_.assign(links, 0);
    outputGrantAt_.assign(links, Cycle(-1));
    inputGrantAt_.assign(links, Cycle(-1));
    vcs_.resize(links * static_cast<std::size_t>(totalVcs()));
    for (LinkId l = 0; l < static_cast<LinkId>(links); ++l) {
        for (int v = 0; v < totalVcs(); ++v) {
            VcState &vc = vcs_[vcStateIndex(l, v)];
            vc.link = l;
            vc.vcIndex = static_cast<std::uint16_t>(v);
        }
    }
    sourceQueue_.resize(n);
    sourceBusyUntil_.assign(n, 0);
    ejectBusyUntil_.assign(n, 0);
    pendingArrivals_.assign(n, 0);
    activeVcs_.resize(n);
    nodeActive_.assign(n, 0);
    if (cfg.profileWavefront) {
        wfStamp_.assign(n, 0);
        wfDepth_.assign(n, 0);
    }
    policy_ = core::makeRoutingPolicy(cfg.policy, topo);
    if (policy_->congestionAware()) {
        // Sized once; re-filled (never resized) each cycle, so the
        // snapshot view stays valid for the model's lifetime.
        congestionFlits_.assign(links, 0);
        congestion_ = core::CongestionSnapshot(congestionFlits_);
    }
}

void
NetworkModel::pushArrival(std::vector<Arrival> &heap, Arrival a)
{
    heap.push_back(a);
    std::push_heap(heap.begin(), heap.end(), kLaterFirst);
}

void
NetworkModel::popArrival(std::vector<Arrival> &heap)
{
    std::pop_heap(heap.begin(), heap.end(), kLaterFirst);
    heap.pop_back();
}

void
NetworkModel::inject(NodeId src, NodeId dst, int flits, MsgClass mc,
                     Cycle now, std::uint64_t payload, bool measured)
{
    const std::uint32_t slot = pool_.alloc();
    Packet &p = pool_.at(slot);
    p.id = nextPacketId_++;
    p.src = src;
    p.dst = dst;
    p.flits = static_cast<std::uint16_t>(flits);
    p.msgClass = mc;
    p.vcClass = static_cast<std::uint8_t>(topo_->vcClass(src, dst));
    p.createdAt = now;
    p.measured = measured;
    p.payload = payload;
    ++stats_.injectedPackets;
    stats_.injectedFlits += static_cast<std::uint64_t>(flits);
    if (src == dst) {
        // Local access: the terminal port loops straight back.
        p.enteredNetworkAt = p.createdAt;
        pushArrival(localDeliveries_,
                    Arrival{now + 1, slot, kInvalidLink, 0});
        return;
    }
    sourceQueue_[src].push(pool_, slot);
    ++sourceBacklog_;
    activateNode(src);
}

std::uint64_t
NetworkModel::inFlight() const
{
    return stats_.injectedPackets - stats_.deliveredPackets -
           dropped_;
}

bool
NetworkModel::nodeQuiescent(NodeId u) const
{
    if (!sourceQueue_[u].empty() || pendingArrivals_[u] > 0)
        return false;
    for (LinkId id : topo_->graph().inLinks(u)) {
        for (int v = 0; v < totalVcs(); ++v) {
            if (vcs_[vcStateIndex(id, v)].flitsReserved > 0)
                return false;
        }
    }
    return true;
}

NetworkModel::Accounting
NetworkModel::audit() const
{
    Accounting acc;
    for (const PacketFifo &q : sourceQueue_)
        acc.sourceQueued += q.size;
    for (const VcState &vc : vcs_)
        acc.vcBuffered += vc.fifo.size;
    acc.onLinks = arrivals_.size();
    acc.localPending = localDeliveries_.size();
    acc.liveSlots = pool_.liveCount();
    return acc;
}

void
NetworkModel::onTopologyChanged()
{
    updown_.reset();
    ++stats_.topologyEpochs;
    // Epoch barrier: a precomputed route is only provably the value
    // the serial loop would compute while the topology is immutable,
    // so no route may outlive its epoch. The sharded plane can have
    // marked heads routed that arbitration then skipped (input port
    // busy) — carried across the boundary those would be the old
    // epoch's pure function. routed is only ever true on queue
    // heads (tryForward clears it on every hop, arrivals enqueue
    // with it false), so clearing the heads of every active VC and
    // source FIFO invalidates every precomputed route; both engines
    // then recompute against the new topology and stay
    // event-for-event identical.
    for (const NodeId node : activeNodes_) {
        for (const std::uint32_t flat : activeVcs_[node]) {
            const VcState &vc = vcs_[flat];
            if (!vc.fifo.empty())
                pool_.at(vc.fifo.head).routed = false;
        }
        if (!sourceQueue_[node].empty())
            pool_.at(sourceQueue_[node].head).routed = false;
    }
    // The memoized plane is a per-epoch object: retire the old
    // epoch's tables and rebuild fresh ones against the new
    // topology, after the policy has rebuilt its own tables. Runs
    // on the serial engine thread at a cycle barrier (the route
    // executor is quiescent between steps), so neither teardown
    // nor rebuild can race a route-plane shard.
    const bool rebuild = routeCache_ != nullptr;
    routeCache_.reset();
    policy_->onTopologyChanged();
    if (rebuild) {
        enableRouteCache();
        ++stats_.routeCacheRebuilds;
    }
}

void
NetworkModel::setRouteExecutor(Executor *executor)
{
    routeExecutor_ =
        (executor && cfg_.shards > 1) ? executor : nullptr;
    routeWork_.clear();
    routeTasks_.clear();
    if (routeExecutor_)
        routeWork_.resize(static_cast<std::size_t>(cfg_.shards));
}

void
NetworkModel::enableRouteCache()
{
    // A cache entry is keyed by (node, dest, first_hop) only — a
    // CongestionSnapshot can never be part of the key (it changes
    // every cycle), so only policies whose decisions are pure
    // functions of that key space may be memoized. Adaptive
    // policies therefore keep the cache disengaged for good.
    if (!cfg_.routeCache || routeCache_ || !policy_->cacheable())
        return;
    auto cache = std::make_unique<core::RouteCache>(*topo_);
    if (cache->active())
        routeCache_ = std::move(cache);
}

std::size_t
NetworkModel::routeCandidatesFor(NodeId node, Packet &p)
{
    if (routeCache_)
        return routeCache_->candidates(node, p.dst, p.hops == 0,
                                       p.candidates);
    return policy_->route(node, p.dst, p.hops == 0, congestion_,
                          p.candidates);
}

void
NetworkModel::fillCongestionSnapshot()
{
    // Sum flitsReserved over each link's VCs: flits committed to
    // land in that link's input buffers — the engine's queue-depth
    // estimate. Written only here, on the serial engine thread,
    // before any route (serial or sharded) is computed this cycle.
    const int vcs = totalVcs();
    const std::size_t links = congestionFlits_.size();
    for (std::size_t l = 0; l < links; ++l) {
        std::uint32_t sum = 0;
        const std::size_t base = l * static_cast<std::size_t>(vcs);
        for (int v = 0; v < vcs; ++v)
            sum += static_cast<std::uint32_t>(
                vcs_[base + static_cast<std::size_t>(v)]
                    .flitsReserved);
        congestionFlits_[l] = sum;
    }
}

void
NetworkModel::precomputeRoutes(Cycle now)
{
    // Serial barrier routing: with a congestion-aware policy and no
    // route executor (shards = 1), the same eligibility walk runs
    // here but routes inline. This keeps the policy's semantics —
    // "every cycle-start head routes against this cycle's frozen
    // snapshot" — identical at every shard count. (A greedy route
    // for a head the serial loop skips this cycle equals the route
    // it would compute next cycle, so greedy never needs this; a
    // snapshot-dependent route does NOT have that property, which
    // is exactly why lazy serial routing and barrier-sharded
    // routing would diverge without it.)
    const bool inline_routes = routeWork_.empty();
    const std::size_t shards = routeWork_.size();
    const std::size_t n = topo_->numNodes();
    std::size_t total = 0;
    for (const NodeId node : activeNodes_) {
        // Contiguous spatial blocks: nodes [k*n/S, (k+1)*n/S) form
        // shard k, so a shard owns its nodes' whole route workload.
        const std::size_t shard =
            inline_routes
                ? 0
                : static_cast<std::size_t>(node) * shards / n;
        const auto consider = [&](std::uint32_t slot) {
            Packet &p = pool_.at(slot);
            // Only the pure policy fast path is precomputable; the
            // loop owns every order-sensitive case: cached routes,
            // escape routing, escalation due this cycle (its stats
            // counter can land inside the measurement window), the
            // gated-destination drop path, and ejection heads.
            if (p.routed || p.escape || p.dst == node ||
                !topo_->nodeAlive(p.dst))
                return;
            if (inline_routes) {
                const std::size_t count =
                    routeCandidatesFor(node, p);
                if (count > 0) {
                    p.numCandidates =
                        static_cast<std::uint8_t>(count);
                    p.routed = true;
                }
                return;
            }
            routeWork_[shard].push_back(RouteJob{slot, node});
            ++total;
        };
        for (const std::uint32_t flat : activeVcs_[node]) {
            const VcState &vc = vcs_[flat];
            if (vc.fifo.empty())
                continue;
            if (!pool_.at(vc.fifo.head).escape &&
                now - vc.headSince > cfg_.escapeThreshold)
                continue;  // the loop escalates before routing
            consider(vc.fifo.head);
        }
        const PacketFifo &source = sourceQueue_[node];
        if (!source.empty() && sourceBusyUntil_[node] <= now)
            consider(source.head);
    }
    if (total == 0)
        return;
    if (total < kRoutePhaseMinJobs) {
        for (std::size_t s = 0; s < shards; ++s)
            routeShard(s);
    } else {
        if (routeTasks_.empty()) {
            routeTasks_.reserve(shards);
            for (std::size_t s = 0; s < shards; ++s)
                routeTasks_.push_back([this, s] { routeShard(s); });
        }
        routeExecutor_->runAll(routeTasks_);
    }
    for (std::vector<RouteJob> &work : routeWork_)
        work.clear();
}

void
NetworkModel::routeShard(std::size_t shard)
{
    // Runs concurrently with other shards: every job writes only
    // its own Packet record (a head sits in exactly one queue, so
    // slots never repeat across jobs) and reads only the immutable
    // topology, whose const routing paths are thread-safe. Route-
    // cache rows are keyed by the job's node, and a shard's node
    // block is exclusively its own, so the lazy fills inside
    // routeCandidatesFor are single-writer too.
    for (const RouteJob &job : routeWork_[shard]) {
        Packet &p = pool_.at(job.slot);
        const std::size_t count = routeCandidatesFor(job.node, p);
        if (count > 0) {
            p.numCandidates = static_cast<std::uint8_t>(count);
            p.routed = true;
        }
        // count == 0 (greedy stall on a degraded topology): leave
        // the packet untouched so the serial loop escalates it to
        // the escape path exactly as the unsharded engine does.
    }
}

void
NetworkModel::ensureEscapeTables() const
{
    if (updown_)
        return;
    std::vector<bool> alive(topo_->numNodes());
    for (NodeId u = 0; u < topo_->numNodes(); ++u)
        alive[u] = topo_->nodeAlive(u);
    updown_ = std::make_unique<net::UpDownRouting>(topo_->graph(),
                                                   alive);
}

void
NetworkModel::activateNode(NodeId node)
{
    if (!nodeActive_[node]) {
        nodeActive_[node] = 1;
        activeNodes_.push_back(node);
    }
}

void
NetworkModel::step(Cycle now)
{
    // 1. Land arrivals whose last flit reached the downstream
    //    buffer (space was reserved at grant time).
    while (!arrivals_.empty() && arrivals_.front().at <= now) {
        const Arrival top = arrivals_.front();
        popArrival(arrivals_);
        const NodeId at_node = topo_->graph().link(top.link).dst;
        const std::size_t flat =
            vcStateIndex(top.link, top.vcIndex);
        VcState &vc = vcs_[flat];
        if (vc.fifo.empty())
            vc.headSince = now;
        vc.fifo.push(pool_, top.slot);
        --pendingArrivals_[at_node];
        if (!vc.inActiveList) {
            vc.inActiveList = true;
            activeVcs_[at_node].push_back(
                static_cast<std::uint32_t>(flat));
        }
        activateNode(at_node);
    }
    // Local loopback deliveries. The handler runs before the heap
    // pop (as the historical engine did): it may inject new local
    // packets, whose strictly later arrival cycles cannot displace
    // the entry being delivered from the heap front.
    while (!localDeliveries_.empty() &&
           localDeliveries_.front().at <= now) {
        const Arrival top = localDeliveries_.front();
        recordDelivery(pool_.at(top.slot), top.at);
        popArrival(localDeliveries_);
        pool_.release(top.slot);
    }

    // 1b. Freeze this cycle's congestion snapshot (adaptive
    //     policies only): after arrivals landed, before any route —
    //     serial or sharded — is computed, so every route decision
    //     this cycle reads the same frozen queue depths regardless
    //     of shard count or arbitration order. Adaptive policies
    //     then route every cycle-start head at this barrier even
    //     without a route executor: a snapshot-dependent decision
    //     deferred to a later cycle would read a different
    //     snapshot, so lazy serial routing and barrier-sharded
    //     routing would diverge (see precomputeRoutes).
    if (policy_->congestionAware()) {
        fillCongestionSnapshot();
        if (!routeExecutor_)
            precomputeRoutes(now);
    }

    // 1c. Sharded route plane: fill in this cycle's pure routes
    //     concurrently before any serial state advances.
    if (routeExecutor_)
        precomputeRoutes(now);

    // 2. Arbitrate all routers with pending work.
    const bool profile =
        cfg_.profileWavefront && !activeNodes_.empty();
    std::uint64_t wfWalked = 0;
    std::uint64_t wfCycleDepth = 0;
    for (std::size_t i = 0; i < activeNodes_.size();) {
        const NodeId node = activeNodes_[i];
        if (profile) {
            // Dependency-chain depth of the walk in its real
            // order: this node depends on every graph-adjacent
            // node already arbitrated this cycle (their drains and
            // reservations touch link/VC state this node reads).
            ++wfWalked;
            const Cycle stamp = now + 1;
            std::uint32_t depth = 1;
            const net::Graph &g = topo_->graph();
            const auto relax = [&](NodeId v) {
                if (wfStamp_[v] == stamp)
                    depth = std::max(depth, wfDepth_[v] + 1);
            };
            for (const LinkId l : g.outLinks(node))
                relax(g.link(l).dst);
            for (const LinkId l : g.inLinks(node))
                relax(g.link(l).src);
            wfStamp_[node] = stamp;
            wfDepth_[node] = depth;
            wfCycleDepth = std::max<std::uint64_t>(wfCycleDepth,
                                                   depth);
        }
        arbitrateNode(node, now);
        if (activeVcs_[node].empty() && sourceQueue_[node].empty()) {
            nodeActive_[node] = 0;
            activeNodes_[i] = activeNodes_.back();
            activeNodes_.pop_back();
        } else {
            ++i;
        }
    }
    if (profile && wfWalked > 0) {
        ++stats_.wavefrontCycles;
        stats_.wavefrontNodesWalked += wfWalked;
        stats_.wavefrontMaxWalk =
            std::max(stats_.wavefrontMaxWalk, wfWalked);
        stats_.wavefrontDepthSum += wfCycleDepth;
        stats_.wavefrontMaxDepth =
            std::max(stats_.wavefrontMaxDepth, wfCycleDepth);
    }

    // 3. Deadlock watchdog.
    if (inFlight() == 0) {
        lastProgress_ = now;
    } else if (now - lastProgress_ > cfg_.watchdogCycles) {
        std::ostringstream os;
        os << "deadlock watchdog: no forward progress for "
           << cfg_.watchdogCycles << " cycles on " << topo_->name()
           << " with " << inFlight() << " packets in flight";
        throw std::runtime_error(os.str());
    }
}

void
NetworkModel::arbitrateNode(NodeId node, Cycle now)
{
    auto &active = activeVcs_[node];
    // Round-robin start offset for fairness.
    const std::size_t start =
        active.empty() ? 0 : static_cast<std::size_t>(
            (now + node) % active.size());

    for (std::size_t k = 0; k < active.size();) {
        const std::size_t idx = (start + k) % active.size();
        VcState &vc = vcs_[active[idx]];
        if (vc.fifo.empty()) {
            // Lazy deactivation (swap-remove preserves round-robin
            // closely enough).
            vc.inActiveList = false;
            active[idx] = active.back();
            active.pop_back();
            continue;
        }
        const LinkId link = vc.link;
        // One crossbar pass per input port per cycle.
        if (inputGrantAt_[link] == now) {
            ++k;
            continue;
        }
        const std::uint32_t slot = vc.fifo.head;
        Packet &p = pool_.at(slot);
        // Escalate to the escape VC after a long head-of-line wait.
        if (!p.escape && now - vc.headSince > cfg_.escapeThreshold) {
            p.escape = true;
            p.escapeUpPhase = true;
            p.routed = false;
            ++stats_.escapeTransfers;
        }
        if (!p.routed && !computeRoute(node, p, now)) {
            // Destination unreachable (gated): drop the packet.
            vc.flitsReserved -= p.flits;
            vc.fifo.pop(pool_);
            vc.headSince = now;
            ++dropped_;
            ++stats_.droppedUnroutable;
            lastProgress_ = now;
            if (onDrop_)
                onDrop_(p, now);
            pool_.release(slot);
            continue;
        }
        if (tryForward(node, p, slot, now)) {
            const bool ejected = p.dst == node;
            inputGrantAt_[link] = now;
            vc.flitsReserved -= p.flits;
            vc.fifo.pop(pool_);
            vc.headSince = now;
            lastProgress_ = now;
            if (ejected)
                pool_.release(slot);
        }
        ++k;
    }

    // Terminal port: inject at most one packet per cycle, at one
    // flit per cycle serialisation.
    PacketFifo &source = sourceQueue_[node];
    if (!source.empty() && sourceBusyUntil_[node] <= now) {
        const std::uint32_t slot = source.head;
        Packet &p = pool_.at(slot);
        if (!p.routed && !computeRoute(node, p, now)) {
            ++dropped_;
            ++stats_.droppedUnroutable;
            source.pop(pool_);
            --sourceBacklog_;
            lastProgress_ = now;
            if (onDrop_)
                onDrop_(p, now);
            pool_.release(slot);
            return;
        }
        if (p.routed) {
            p.enteredNetworkAt = now;
            if (tryForward(node, p, slot, now)) {
                sourceBusyUntil_[node] = now + p.flits;
                source.pop(pool_);
                --sourceBacklog_;
                lastProgress_ = now;
                // Source packets never have dst == node (inject
                // short-circuits those), so the packet moved into
                // the arrival queue — the slot stays live.
            }
        }
    }
}

bool
NetworkModel::computeRoute(NodeId node, Packet &p, Cycle now)
{
    (void)now;
    p.numCandidates = 0;
    p.routed = false;
    if (!topo_->nodeAlive(p.dst))
        return false;
    if (p.dst == node) {
        // Candidates empty + routed means "eject here".
        p.routed = true;
        return true;
    }

    if (!p.escape) {
        // Zero-copy fast path: candidates land directly in the
        // packet record (via the route cache when engaged).
        const std::size_t count = routeCandidatesFor(node, p);
        if (count > 0) {
            p.numCandidates = static_cast<std::uint8_t>(count);
            p.routed = true;
            return true;
        }
        // Greedy stall (degraded topology): escalate immediately.
        p.escape = true;
        p.escapeUpPhase = true;
        ++stats_.escapeTransfers;
    }

    LinkId link = kInvalidLink;
    if (topo_->escapeScheme() == net::EscapeScheme::Ring) {
        link = topo_->ringEscapeLink(node);
    }
    if (link == kInvalidLink) {
        ensureEscapeTables();
        link = updown_->nextLink(node, p.dst, p.escapeUpPhase);
    }
    if (link == kInvalidLink)
        return false;  // genuinely unreachable
    p.candidates[0] = link;
    p.numCandidates = 1;
    p.routed = true;
    return true;
}

bool
NetworkModel::tryForward(NodeId node, Packet &p, std::uint32_t slot,
                         Cycle now)
{
    // Ejection at the destination.
    if (p.dst == node) {
        if (ejectBusyUntil_[node] > now)
            return false;
        ejectBusyUntil_[node] = now + p.flits;
        recordDelivery(p, now + p.flits);
        return true;  // caller releases the slot
    }

    // Collect currently grantable candidates. The downstream VC is
    // a function of the packet alone, so it is hoisted out of the
    // candidate scan.
    LinkId usable[Packet::kMaxCandidates];
    double occupancy[Packet::kMaxCandidates];
    int usable_count = 0;
    bool stale = false;
    const int want_vc = downstreamVcIndex(p);
    for (int i = 0; i < p.numCandidates; ++i) {
        const LinkId link = p.candidates[i];
        const net::Link &l = topo_->graph().link(link);
        if (!l.enabled) {
            stale = true;  // reconfiguration invalidated the cache
            continue;
        }
        if (linkBusyUntil_[link] > now || outputGrantAt_[link] == now)
            continue;
        // Virtual cut-through: room for the entire packet downstream.
        const VcState &down = vcs_[vcStateIndex(link, want_vc)];
        if (down.flitsReserved + p.flits > cfg_.vcDepth)
            continue;
        usable[usable_count] = link;
        occupancy[usable_count] =
            static_cast<double>(down.flitsReserved) /
            static_cast<double>(cfg_.vcDepth);
        ++usable_count;
    }
    if (stale) {
        p.routed = false;
        if (usable_count == 0)
            return false;
    }
    if (usable_count == 0)
        return false;

    // Adaptive selection (paper: prefer the greediest choice unless
    // its port queue passed the threshold, then take the lightest).
    int pick = 0;
    if (cfg_.adaptive && usable_count > 1 &&
        occupancy[0] > cfg_.adaptiveThreshold) {
        for (int i = 1; i < usable_count; ++i) {
            if (occupancy[i] < occupancy[pick])
                pick = i;
        }
    }
    const LinkId link = usable[pick];
    const net::Link &l = topo_->graph().link(link);

    // Commit the hop: the packet mutates in place and its slot
    // moves from the VC queue to the arrival queue — no copy.
    outputGrantAt_[link] = now;
    linkBusyUntil_[link] = now + p.flits;

    p.hops += 1;
    p.routed = false;
    if (p.escape) {
        ++stats_.escapeHops;
        if (topo_->escapeScheme() == net::EscapeScheme::Ring) {
            if (topo_->ringPosition(l.dst) <
                topo_->ringPosition(node))
                p.escapeVcBit = 1;  // crossed the dateline
        } else {
            ensureEscapeTables();
            if (!updown_->isUp(link))
                p.escapeUpPhase = false;
        }
    }
    stats_.flitHops += p.flits;
    if (p.measured) {
        ++stats_.measuredHops;
        stats_.measuredFlitHops += p.flits;
    }

    const int dvc = downstreamVcIndex(p);
    vcs_[vcStateIndex(link, dvc)].flitsReserved += p.flits;
    ++pendingArrivals_[l.dst];
    const Cycle arrival = now + p.flits - 1 + l.latency +
                          cfg_.serdesCycles;
    pushArrival(arrivals_, Arrival{arrival, slot, link, dvc});
    return true;
}

void
NetworkModel::recordDelivery(const Packet &p, Cycle delivered_at)
{
    ++stats_.deliveredPackets;
    stats_.deliveredFlits += p.flits;
    if (p.measured) {
        ++stats_.measuredPackets;
        stats_.totalLatency.record(delivered_at - p.createdAt);
        stats_.networkLatency.record(delivered_at -
                                     p.enteredNetworkAt);
        stats_.totalLatencyLog.record(delivered_at - p.createdAt);
        stats_.networkLatencyLog.record(delivered_at -
                                        p.enteredNetworkAt);
    }
    if (onDeliver_)
        onDeliver_(p, delivered_at);
}

} // namespace sf::sim

#include "sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace sf::sim {

NetworkModel::NetworkModel(const net::Topology &topo,
                           const SimConfig &cfg)
    : topo_(&topo), cfg_(cfg),
      escapeBase_(topo.numVcClasses() * kNumMsgClasses),
      rng_(cfg.seed)
{
    const std::size_t n = topo.numNodes();
    const std::size_t links = topo.graph().numLinks();
    linkBusyUntil_.assign(links, 0);
    outputGrantAt_.assign(links, Cycle(-1));
    inputGrantAt_.assign(links, Cycle(-1));
    inputs_.resize(links);
    for (auto &unit : inputs_)
        unit.resize(static_cast<std::size_t>(totalVcs()));
    sourceQueue_.resize(n);
    sourceBusyUntil_.assign(n, 0);
    ejectBusyUntil_.assign(n, 0);
    pendingArrivals_.assign(n, 0);
    activeVcs_.resize(n);
    nodeActive_.assign(n, false);
}

void
NetworkModel::inject(NodeId src, NodeId dst, int flits, MsgClass mc,
                     Cycle now, std::uint64_t payload, bool measured)
{
    Packet p;
    p.id = nextPacketId_++;
    p.src = src;
    p.dst = dst;
    p.flits = static_cast<std::uint16_t>(flits);
    p.msgClass = mc;
    p.vcClass = static_cast<std::uint8_t>(topo_->vcClass(src, dst));
    p.createdAt = now;
    p.measured = measured;
    p.payload = payload;
    ++stats_.injectedPackets;
    stats_.injectedFlits += static_cast<std::uint64_t>(flits);
    if (src == dst) {
        // Local access: the terminal port loops straight back.
        deliverLocal(std::move(p), now + 1);
        return;
    }
    sourceQueue_[src].push_back(std::move(p));
    activateNode(src);
}

void
NetworkModel::deliverLocal(Packet &&p, Cycle at)
{
    p.enteredNetworkAt = p.createdAt;
    localDeliveries_.push(
        Arrival{at, kInvalidLink, 0, std::move(p)});
}

std::uint64_t
NetworkModel::inFlight() const
{
    return stats_.injectedPackets - stats_.deliveredPackets -
           dropped_;
}

std::uint64_t
NetworkModel::sourceQueueBacklog() const
{
    std::uint64_t total = 0;
    for (const auto &q : sourceQueue_)
        total += q.size();
    return total;
}

bool
NetworkModel::nodeQuiescent(NodeId u) const
{
    if (!sourceQueue_[u].empty() || pendingArrivals_[u] > 0)
        return false;
    for (LinkId id : topo_->graph().inLinks(u)) {
        for (const auto &vc : inputs_[id]) {
            if (vc.flitsReserved > 0)
                return false;
        }
    }
    return true;
}

void
NetworkModel::onTopologyChanged()
{
    updown_.reset();
    // Head packets revalidate their cached candidates lazily: every
    // forward attempt checks that the chosen link is still enabled.
}

void
NetworkModel::ensureEscapeTables() const
{
    if (updown_)
        return;
    std::vector<bool> alive(topo_->numNodes());
    for (NodeId u = 0; u < topo_->numNodes(); ++u)
        alive[u] = topo_->nodeAlive(u);
    updown_ = std::make_unique<net::UpDownRouting>(topo_->graph(),
                                                   alive);
}

double
NetworkModel::downstreamOccupancy(LinkId link, int vc_index) const
{
    const auto &vc = inputs_[link][static_cast<std::size_t>(
        vc_index)];
    return static_cast<double>(vc.flitsReserved) /
           static_cast<double>(cfg_.vcDepth);
}

void
NetworkModel::activateNode(NodeId node)
{
    if (!nodeActive_[node]) {
        nodeActive_[node] = true;
        activeNodes_.push_back(node);
    }
}

void
NetworkModel::step(Cycle now)
{
    // 1. Land arrivals whose last flit reached the downstream
    //    buffer (space was reserved at grant time).
    while (!arrivals_.empty() && arrivals_.top().at <= now) {
        const Arrival &top = arrivals_.top();
        const NodeId at_node = topo_->graph().link(top.link).dst;
        auto &vc = inputs_[top.link][static_cast<std::size_t>(
            top.vcIndex)];
        if (vc.queue.empty())
            vc.headSince = now;
        vc.queue.push_back(top.packet);
        --pendingArrivals_[at_node];
        auto &active = activeVcs_[at_node];
        const auto key = std::pair(top.link, top.vcIndex);
        if (std::find(active.begin(), active.end(), key) ==
            active.end())
            active.push_back(key);
        activateNode(at_node);
        arrivals_.pop();
    }
    // Local loopback deliveries.
    while (!localDeliveries_.empty() &&
           localDeliveries_.top().at <= now) {
        recordDelivery(localDeliveries_.top().packet,
                       localDeliveries_.top().at);
        localDeliveries_.pop();
    }

    // 2. Arbitrate all routers with pending work.
    for (std::size_t i = 0; i < activeNodes_.size();) {
        const NodeId node = activeNodes_[i];
        arbitrateNode(node, now);
        if (activeVcs_[node].empty() && sourceQueue_[node].empty()) {
            nodeActive_[node] = false;
            activeNodes_[i] = activeNodes_.back();
            activeNodes_.pop_back();
        } else {
            ++i;
        }
    }

    // 3. Deadlock watchdog.
    if (inFlight() == 0) {
        lastProgress_ = now;
    } else if (now - lastProgress_ > cfg_.watchdogCycles) {
        std::ostringstream os;
        os << "deadlock watchdog: no forward progress for "
           << cfg_.watchdogCycles << " cycles on " << topo_->name()
           << " with " << inFlight() << " packets in flight";
        throw std::runtime_error(os.str());
    }
}

void
NetworkModel::arbitrateNode(NodeId node, Cycle now)
{
    auto &active = activeVcs_[node];
    // Round-robin start offset for fairness.
    const std::size_t start =
        active.empty() ? 0 : static_cast<std::size_t>(
            (now + node) % active.size());

    for (std::size_t k = 0; k < active.size();) {
        const std::size_t idx = (start + k) % active.size();
        const auto [link, vc_index] = active[idx];
        auto &vc = inputs_[link][static_cast<std::size_t>(vc_index)];
        if (vc.queue.empty()) {
            // Lazy deactivation (swap-remove preserves round-robin
            // closely enough).
            active[idx] = active.back();
            active.pop_back();
            continue;
        }
        // One crossbar pass per input port per cycle.
        if (inputGrantAt_[link] == now) {
            ++k;
            continue;
        }
        Packet &p = vc.queue.front();
        // Escalate to the escape VC after a long head-of-line wait.
        if (!p.escape && now - vc.headSince > cfg_.escapeThreshold) {
            p.escape = true;
            p.escapeUpPhase = true;
            p.routed = false;
            ++stats_.escapeTransfers;
        }
        if (!p.routed && !computeRoute(node, p, now)) {
            // Destination unreachable (gated): drop the packet.
            const Packet dropped_packet = p;
            vc.flitsReserved -= p.flits;
            vc.queue.pop_front();
            vc.headSince = now;
            ++dropped_;
            ++stats_.droppedUnroutable;
            lastProgress_ = now;
            if (onDrop_)
                onDrop_(dropped_packet, now);
            continue;
        }
        if (tryForward(node, p, now)) {
            inputGrantAt_[link] = now;
            vc.flitsReserved -= p.flits;
            vc.queue.pop_front();
            vc.headSince = now;
            lastProgress_ = now;
        }
        ++k;
    }

    // Terminal port: inject at most one packet per cycle, at one
    // flit per cycle serialisation.
    auto &source = sourceQueue_[node];
    if (!source.empty() && sourceBusyUntil_[node] <= now) {
        Packet &p = source.front();
        if (!p.routed && !computeRoute(node, p, now)) {
            const Packet dropped_packet = p;
            ++dropped_;
            ++stats_.droppedUnroutable;
            source.pop_front();
            lastProgress_ = now;
            if (onDrop_)
                onDrop_(dropped_packet, now);
            return;
        }
        if (p.routed) {
            p.enteredNetworkAt = now;
            if (tryForward(node, p, now)) {
                sourceBusyUntil_[node] = now + p.flits;
                source.pop_front();
                lastProgress_ = now;
            }
        }
    }
}

bool
NetworkModel::computeRoute(NodeId node, Packet &p, Cycle now)
{
    (void)now;
    p.numCandidates = 0;
    p.routed = false;
    if (!topo_->nodeAlive(p.dst))
        return false;
    if (p.dst == node) {
        // Candidates empty + routed means "eject here".
        p.routed = true;
        return true;
    }

    if (!p.escape) {
        std::vector<LinkId> candidates;
        topo_->routeCandidates(node, p.dst, p.hops == 0, candidates);
        if (!candidates.empty()) {
            const auto count = std::min<std::size_t>(
                candidates.size(), Packet::kMaxCandidates);
            for (std::size_t i = 0; i < count; ++i)
                p.candidates[i] = candidates[i];
            p.numCandidates = static_cast<std::uint8_t>(count);
            p.routed = true;
            return true;
        }
        // Greedy stall (degraded topology): escalate immediately.
        p.escape = true;
        p.escapeUpPhase = true;
        ++stats_.escapeTransfers;
    }

    LinkId link = kInvalidLink;
    if (topo_->escapeScheme() == net::EscapeScheme::Ring) {
        link = topo_->ringEscapeLink(node);
    }
    if (link == kInvalidLink) {
        ensureEscapeTables();
        link = updown_->nextLink(node, p.dst, p.escapeUpPhase);
    }
    if (link == kInvalidLink)
        return false;  // genuinely unreachable
    p.candidates[0] = link;
    p.numCandidates = 1;
    p.routed = true;
    return true;
}

bool
NetworkModel::tryForward(NodeId node, Packet &p, Cycle now)
{
    // Ejection at the destination.
    if (p.dst == node) {
        if (ejectBusyUntil_[node] > now)
            return false;
        ejectBusyUntil_[node] = now + p.flits;
        recordDelivery(p, now + p.flits);
        return true;
    }

    // Collect currently grantable candidates.
    LinkId usable[Packet::kMaxCandidates];
    double occupancy[Packet::kMaxCandidates];
    int usable_count = 0;
    bool stale = false;
    for (int i = 0; i < p.numCandidates; ++i) {
        const LinkId link = p.candidates[i];
        const net::Link &l = topo_->graph().link(link);
        if (!l.enabled) {
            stale = true;  // reconfiguration invalidated the cache
            continue;
        }
        if (linkBusyUntil_[link] > now || outputGrantAt_[link] == now)
            continue;
        // Virtual cut-through: room for the entire packet downstream.
        const int dvc = downstreamVcIndex(p);
        const auto &down = inputs_[link][static_cast<std::size_t>(
            dvc)];
        if (down.flitsReserved + p.flits > cfg_.vcDepth)
            continue;
        usable[usable_count] = link;
        occupancy[usable_count] = downstreamOccupancy(link, dvc);
        ++usable_count;
    }
    if (stale) {
        p.routed = false;
        if (usable_count == 0)
            return false;
    }
    if (usable_count == 0)
        return false;

    // Adaptive selection (paper: prefer the greediest choice unless
    // its port queue passed the threshold, then take the lightest).
    int pick = 0;
    if (cfg_.adaptive && usable_count > 1 &&
        occupancy[0] > cfg_.adaptiveThreshold) {
        for (int i = 1; i < usable_count; ++i) {
            if (occupancy[i] < occupancy[pick])
                pick = i;
        }
    }
    const LinkId link = usable[pick];
    const net::Link &l = topo_->graph().link(link);

    // Commit the hop.
    outputGrantAt_[link] = now;
    linkBusyUntil_[link] = now + p.flits;

    Packet moved = p;
    moved.hops += 1;
    moved.routed = false;
    if (moved.escape) {
        ++stats_.escapeHops;
        if (topo_->escapeScheme() == net::EscapeScheme::Ring) {
            if (topo_->ringPosition(l.dst) <
                topo_->ringPosition(node))
                moved.escapeVcBit = 1;  // crossed the dateline
        } else {
            ensureEscapeTables();
            if (!updown_->isUp(link))
                moved.escapeUpPhase = false;
        }
    }
    stats_.flitHops += moved.flits;
    if (moved.measured) {
        ++stats_.measuredHops;
        stats_.measuredFlitHops += moved.flits;
    }

    const int dvc = downstreamVcIndex(moved);
    inputs_[link][static_cast<std::size_t>(dvc)].flitsReserved +=
        moved.flits;
    ++pendingArrivals_[l.dst];
    const Cycle arrival = now + moved.flits - 1 + l.latency +
                          cfg_.serdesCycles;
    arrivals_.push(Arrival{arrival, link, dvc, std::move(moved)});
    return true;
}

void
NetworkModel::recordDelivery(const Packet &p, Cycle delivered_at)
{
    ++stats_.deliveredPackets;
    stats_.deliveredFlits += p.flits;
    if (p.measured) {
        ++stats_.measuredPackets;
        stats_.totalLatency.record(delivered_at - p.createdAt);
        stats_.networkLatency.record(delivered_at -
                                     p.enteredNetworkAt);
    }
    if (onDeliver_)
        onDeliver_(p, delivered_at);
}

} // namespace sf::sim

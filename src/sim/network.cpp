#include "sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace sf::sim {

namespace {

/** Comparator handed to the std heap algorithms: min-heap on at.
 *  Must stay at-only — the equal-key permutation the std heap
 *  produces is part of the engine's deterministic behaviour. */
const auto kLaterFirst = [](const auto &a, const auto &b) {
    return a > b;
};

/**
 * Route-plane fan-out floor: below this many collected jobs the
 * shards run inline on the calling thread — an Executor batch
 * costs more than the routes at light load. Results are identical
 * either way (the jobs are pure), so the threshold is a pure
 * wall-clock knob.
 */
constexpr std::size_t kRoutePhaseMinJobs = 32;

/**
 * Wavefront fan-out floor: below this many active nodes the
 * arbitration phase runs the serial decide→commit loop even when a
 * wavefront executor is set — an Executor batch costs more than the
 * walk at light load. Results are identical either way (the commit
 * replay is σ-ordered in both paths), so the threshold is a pure
 * wall-clock knob. Low enough that n = 64 test topologies exercise
 * the parallel path near saturation.
 */
constexpr std::size_t kWavefrontMinWalk = 32;

/** Lifecycle phases packed into WavefrontJob::tag (pos * 4 + phase).
 *  Tag transitions for one σ-position: Ready → Claimed → Done; a
 *  refilled ring slot carries a strictly larger position, so a CAS
 *  on the exact observed tag can never claim a stale job (no ABA). */
constexpr std::uint64_t kWfReady = 1;
constexpr std::uint64_t kWfClaimed = 2;
constexpr std::uint64_t kWfDone = 3;

std::uint64_t
elapsedNs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to -
                                                             from)
            .count());
}

} // namespace

NetworkModel::NetworkModel(const net::Topology &topo,
                           const SimConfig &cfg)
    : topo_(&topo), cfg_(cfg),
      escapeBase_(topo.numVcClasses() * kNumMsgClasses),
      rng_(cfg.seed)
{
    const std::size_t n = topo.numNodes();
    const std::size_t links = topo.graph().numLinks();
    linkBusyUntil_.assign(links, 0);
    outputGrantAt_.assign(links, Cycle(-1));
    inputGrantAt_.assign(links, Cycle(-1));
    vcs_.resize(links * static_cast<std::size_t>(totalVcs()));
    for (LinkId l = 0; l < static_cast<LinkId>(links); ++l) {
        for (int v = 0; v < totalVcs(); ++v) {
            VcState &vc = vcs_[vcStateIndex(l, v)];
            vc.link = l;
            vc.vcIndex = static_cast<std::uint16_t>(v);
        }
    }
    sourceQueue_.resize(n);
    sourceBusyUntil_.assign(n, 0);
    ejectBusyUntil_.assign(n, 0);
    pendingArrivals_.assign(n, 0);
    activeVcs_.resize(n);
    nodeActive_.assign(n, 0);
    if (cfg.profileWavefront) {
        wfStamp_.assign(n, 0);
        wfDepth_.assign(n, 0);
    }
    anyGated_ = false;
    for (NodeId u = 0; u < topo.numNodes(); ++u) {
        if (!topo.nodeAlive(u)) {
            anyGated_ = true;
            break;
        }
    }
    policy_ = core::makeRoutingPolicy(cfg.policy, topo);
    if (policy_->congestionAware()) {
        // Sized once; re-filled (never resized) each cycle, so the
        // snapshot view stays valid for the model's lifetime.
        congestionFlits_.assign(links, 0);
        congestion_ = core::CongestionSnapshot(congestionFlits_);
    }
}

void
NetworkModel::pushArrival(std::vector<Arrival> &heap, Arrival a)
{
    heap.push_back(a);
    std::push_heap(heap.begin(), heap.end(), kLaterFirst);
}

void
NetworkModel::popArrival(std::vector<Arrival> &heap)
{
    std::pop_heap(heap.begin(), heap.end(), kLaterFirst);
    heap.pop_back();
}

void
NetworkModel::inject(NodeId src, NodeId dst, int flits, MsgClass mc,
                     Cycle now, std::uint64_t payload, bool measured)
{
    if (wfInWalk_) {
        // Decide stages may be reading the packet pool on Executor
        // workers, and alloc() can grow the pool's slab vector.
        // Handlers must buffer and inject between steps (every
        // workload already does).
        throw std::logic_error(
            "NetworkModel::inject during the wavefront walk");
    }
    const std::uint32_t slot = pool_.alloc();
    Packet &p = pool_.at(slot);
    p.id = nextPacketId_++;
    p.src = src;
    p.dst = dst;
    p.flits = static_cast<std::uint16_t>(flits);
    p.msgClass = mc;
    p.vcClass = static_cast<std::uint8_t>(topo_->vcClass(src, dst));
    p.createdAt = now;
    p.measured = measured;
    p.payload = payload;
    ++stats_.injectedPackets;
    stats_.injectedFlits += static_cast<std::uint64_t>(flits);
    if (src == dst) {
        // Local access: the terminal port loops straight back.
        p.enteredNetworkAt = p.createdAt;
        pushArrival(localDeliveries_,
                    Arrival{now + 1, slot, kInvalidLink, 0});
        return;
    }
    sourceQueue_[src].push(pool_, slot);
    ++sourceBacklog_;
    activateNode(src);
}

std::uint64_t
NetworkModel::inFlight() const
{
    return stats_.injectedPackets - stats_.deliveredPackets -
           dropped_;
}

bool
NetworkModel::nodeQuiescent(NodeId u) const
{
    if (!sourceQueue_[u].empty() || pendingArrivals_[u] > 0)
        return false;
    for (LinkId id : topo_->graph().inLinks(u)) {
        for (int v = 0; v < totalVcs(); ++v) {
            if (vcs_[vcStateIndex(id, v)].flitsReserved > 0)
                return false;
        }
    }
    return true;
}

NetworkModel::Accounting
NetworkModel::audit() const
{
    Accounting acc;
    for (const PacketFifo &q : sourceQueue_)
        acc.sourceQueued += q.size;
    for (const VcState &vc : vcs_)
        acc.vcBuffered += vc.fifo.size;
    acc.onLinks = arrivals_.size();
    acc.localPending = localDeliveries_.size();
    acc.liveSlots = pool_.liveCount();
    return acc;
}

void
NetworkModel::onTopologyChanged()
{
    updown_.reset();
    ++stats_.topologyEpochs;
    anyGated_ = false;
    for (NodeId u = 0; u < topo_->numNodes(); ++u) {
        if (!topo_->nodeAlive(u)) {
            anyGated_ = true;
            break;
        }
    }
    // Epoch barrier: a precomputed route is only provably the value
    // the serial loop would compute while the topology is immutable,
    // so no route may outlive its epoch. The sharded plane can have
    // marked heads routed that arbitration then skipped (input port
    // busy) — carried across the boundary those would be the old
    // epoch's pure function. routed is only ever true on queue
    // heads (tryForward clears it on every hop, arrivals enqueue
    // with it false), so clearing the heads of every active VC and
    // source FIFO invalidates every precomputed route; both engines
    // then recompute against the new topology and stay
    // event-for-event identical.
    for (const NodeId node : activeNodes_) {
        for (const std::uint32_t flat : activeVcs_[node]) {
            const VcState &vc = vcs_[flat];
            if (!vc.fifo.empty())
                pool_.at(vc.fifo.head).routed = false;
        }
        if (!sourceQueue_[node].empty())
            pool_.at(sourceQueue_[node].head).routed = false;
    }
    // The memoized plane is a per-epoch object: retire the old
    // epoch's tables and rebuild fresh ones against the new
    // topology, after the policy has rebuilt its own tables. Runs
    // on the serial engine thread at a cycle barrier (the route
    // executor is quiescent between steps), so neither teardown
    // nor rebuild can race a route-plane shard.
    const bool rebuild = routeCache_ != nullptr;
    routeCache_.reset();
    policy_->onTopologyChanged();
    if (rebuild) {
        enableRouteCache();
        ++stats_.routeCacheRebuilds;
    }
}

void
NetworkModel::setRouteExecutor(Executor *executor)
{
    routeExecutor_ =
        (executor && cfg_.shards > 1) ? executor : nullptr;
    routeWork_.clear();
    routeTasks_.clear();
    if (routeExecutor_)
        routeWork_.resize(static_cast<std::size_t>(cfg_.shards));
}

void
NetworkModel::setWavefrontExecutor(Executor *executor)
{
    wavefrontExecutor_ =
        (executor && cfg_.wavefront > 0) ? executor : nullptr;
    wfJobs_.clear();
    wfTasks_.clear();
    if (!wavefrontExecutor_)
        return;
    const std::size_t n = topo_->numNodes();
    const std::size_t width =
        static_cast<std::size_t>(cfg_.wavefront);
    wfJobs_.reserve(width);
    for (std::size_t i = 0; i < width; ++i)
        wfJobs_.push_back(std::make_unique<WavefrontJob>());
    wfSeqStamp_.assign(n, 0);
    wfSeqIdx_.assign(n, 0);
    // One driver (commits in σ-order, runs unclaimed decides
    // inline) plus width-1 opportunistic decide workers. WorkPool
    // hands tasks out in submission order and the caller
    // participates, so even with every worker thread busy
    // elsewhere the driver alone completes the walk.
    wfTasks_.reserve(width);
    wfTasks_.push_back([this] { wavefrontDriver(); });
    for (std::size_t i = 1; i < width; ++i)
        wfTasks_.push_back([this] { wavefrontWorker(); });
}

void
NetworkModel::enableRouteCache()
{
    // A cache entry is keyed by (node, dest, first_hop) only — a
    // CongestionSnapshot can never be part of the key (it changes
    // every cycle), so only policies whose decisions are pure
    // functions of that key space may be memoized. Adaptive
    // policies therefore keep the cache disengaged for good.
    if (!cfg_.routeCache || routeCache_ || !policy_->cacheable())
        return;
    auto cache = std::make_unique<core::RouteCache>(*topo_);
    if (cache->active())
        routeCache_ = std::move(cache);
}

std::size_t
NetworkModel::routeCandidatesFor(NodeId node, Packet &p)
{
    if (routeCache_)
        return routeCache_->candidates(node, p.dst, p.hops == 0,
                                       p.candidates);
    return policy_->route(node, p.dst, p.hops == 0, congestion_,
                          p.candidates);
}

void
NetworkModel::fillCongestionSnapshot()
{
    // Sum flitsReserved over each link's VCs: flits committed to
    // land in that link's input buffers — the engine's queue-depth
    // estimate. Written only here, on the serial engine thread,
    // before any route (serial or sharded) is computed this cycle.
    const int vcs = totalVcs();
    const std::size_t links = congestionFlits_.size();
    for (std::size_t l = 0; l < links; ++l) {
        std::uint32_t sum = 0;
        const std::size_t base = l * static_cast<std::size_t>(vcs);
        for (int v = 0; v < vcs; ++v)
            sum += static_cast<std::uint32_t>(
                vcs_[base + static_cast<std::size_t>(v)]
                    .flitsReserved);
        congestionFlits_[l] = sum;
    }
}

void
NetworkModel::precomputeRoutes(Cycle now)
{
    // Serial barrier routing: with a congestion-aware policy and no
    // route executor (shards = 1), the same eligibility walk runs
    // here but routes inline. This keeps the policy's semantics —
    // "every cycle-start head routes against this cycle's frozen
    // snapshot" — identical at every shard count. (A greedy route
    // for a head the serial loop skips this cycle equals the route
    // it would compute next cycle, so greedy never needs this; a
    // snapshot-dependent route does NOT have that property, which
    // is exactly why lazy serial routing and barrier-sharded
    // routing would diverge without it.)
    const bool inline_routes = routeWork_.empty();
    const std::size_t shards = routeWork_.size();
    const std::size_t n = topo_->numNodes();
    std::size_t total = 0;
    for (const NodeId node : activeNodes_) {
        // Contiguous spatial blocks: nodes [k*n/S, (k+1)*n/S) form
        // shard k, so a shard owns its nodes' whole route workload.
        const std::size_t shard =
            inline_routes
                ? 0
                : static_cast<std::size_t>(node) * shards / n;
        const auto consider = [&](std::uint32_t slot) {
            Packet &p = pool_.at(slot);
            // Only the pure policy fast path is precomputable; the
            // loop owns every order-sensitive case: cached routes,
            // escape routing, escalation due this cycle (its stats
            // counter can land inside the measurement window), the
            // gated-destination drop path, and ejection heads.
            if (p.routed || p.escape || p.dst == node ||
                !topo_->nodeAlive(p.dst))
                return;
            if (inline_routes) {
                const std::size_t count =
                    routeCandidatesFor(node, p);
                if (count > 0) {
                    p.numCandidates =
                        static_cast<std::uint8_t>(count);
                    p.routed = true;
                }
                return;
            }
            routeWork_[shard].push_back(RouteJob{slot, node});
            ++total;
        };
        for (const std::uint32_t flat : activeVcs_[node]) {
            const VcState &vc = vcs_[flat];
            if (vc.fifo.empty())
                continue;
            if (!pool_.at(vc.fifo.head).escape &&
                now - vc.headSince > cfg_.escapeThreshold)
                continue;  // the loop escalates before routing
            consider(vc.fifo.head);
        }
        const PacketFifo &source = sourceQueue_[node];
        if (!source.empty() && sourceBusyUntil_[node] <= now)
            consider(source.head);
    }
    if (total == 0)
        return;
    if (total < kRoutePhaseMinJobs) {
        for (std::size_t s = 0; s < shards; ++s)
            routeShard(s);
    } else {
        if (routeTasks_.empty()) {
            routeTasks_.reserve(shards);
            for (std::size_t s = 0; s < shards; ++s)
                routeTasks_.push_back([this, s] { routeShard(s); });
        }
        routeExecutor_->runAll(routeTasks_);
    }
    for (std::vector<RouteJob> &work : routeWork_)
        work.clear();
}

void
NetworkModel::routeShard(std::size_t shard)
{
    // Runs concurrently with other shards: every job writes only
    // its own Packet record (a head sits in exactly one queue, so
    // slots never repeat across jobs) and reads only the immutable
    // topology, whose const routing paths are thread-safe. Route-
    // cache rows are keyed by the job's node, and a shard's node
    // block is exclusively its own, so the lazy fills inside
    // routeCandidatesFor are single-writer too.
    for (const RouteJob &job : routeWork_[shard]) {
        Packet &p = pool_.at(job.slot);
        const std::size_t count = routeCandidatesFor(job.node, p);
        if (count > 0) {
            p.numCandidates = static_cast<std::uint8_t>(count);
            p.routed = true;
        }
        // count == 0 (greedy stall on a degraded topology): leave
        // the packet untouched so the serial loop escalates it to
        // the escape path exactly as the unsharded engine does.
    }
}

void
NetworkModel::ensureEscapeTables() const
{
    if (updown_)
        return;
    std::vector<bool> alive(topo_->numNodes());
    for (NodeId u = 0; u < topo_->numNodes(); ++u)
        alive[u] = topo_->nodeAlive(u);
    updown_ = std::make_unique<net::UpDownRouting>(topo_->graph(),
                                                   alive);
}

void
NetworkModel::activateNode(NodeId node)
{
    if (!nodeActive_[node]) {
        nodeActive_[node] = 1;
        activeNodes_.push_back(node);
    }
}

void
NetworkModel::step(Cycle now)
{
    // The five-phase pipeline (file header, docs/engine_phases.md):
    // Land → Snapshot → Route → Arbitrate(decide) → Commit. The
    // phase boundaries are exactly the barriers the interleaved
    // loop already respected, so the decomposition changes no
    // simulated event; cfg_.profilePhases adds steady-clock
    // accounting per phase (decide/commit are timed inside the
    // serial walk).
    if (cfg_.profilePhases) {
        using Clock = std::chrono::steady_clock;
        const Clock::time_point t0 = Clock::now();
        phaseLand(now);
        const Clock::time_point t1 = Clock::now();
        phaseSnapshot(now);
        const Clock::time_point t2 = Clock::now();
        phaseRoute(now);
        const Clock::time_point t3 = Clock::now();
        stats_.phaseLandNs += elapsedNs(t0, t1);
        stats_.phaseSnapshotNs += elapsedNs(t1, t2);
        stats_.phaseRouteNs += elapsedNs(t2, t3);
        ++stats_.phaseProfiledCycles;
    } else {
        phaseLand(now);
        phaseSnapshot(now);
        phaseRoute(now);
    }
    phaseArbitrate(now);

    // Deadlock watchdog (after commit: lastProgress_ is final).
    if (inFlight() == 0) {
        lastProgress_ = now;
    } else if (now - lastProgress_ > cfg_.watchdogCycles) {
        std::ostringstream os;
        os << "deadlock watchdog: no forward progress for "
           << cfg_.watchdogCycles << " cycles on " << topo_->name()
           << " with " << inFlight() << " packets in flight";
        throw std::runtime_error(os.str());
    }
}

void
NetworkModel::phaseLand(Cycle now)
{
    // Land arrivals whose last flit reached the downstream
    // buffer (space was reserved at grant time).
    while (!arrivals_.empty() && arrivals_.front().at <= now) {
        const Arrival top = arrivals_.front();
        popArrival(arrivals_);
        const NodeId at_node = topo_->graph().link(top.link).dst;
        const std::size_t flat =
            vcStateIndex(top.link, top.vcIndex);
        VcState &vc = vcs_[flat];
        if (vc.fifo.empty())
            vc.headSince = now;
        vc.fifo.push(pool_, top.slot);
        --pendingArrivals_[at_node];
        if (!vc.inActiveList) {
            vc.inActiveList = true;
            activeVcs_[at_node].push_back(
                static_cast<std::uint32_t>(flat));
        }
        activateNode(at_node);
    }
    // Local loopback deliveries. The handler runs before the heap
    // pop (as the historical engine did): it may inject new local
    // packets, whose strictly later arrival cycles cannot displace
    // the entry being delivered from the heap front.
    while (!localDeliveries_.empty() &&
           localDeliveries_.front().at <= now) {
        const Arrival top = localDeliveries_.front();
        recordDelivery(pool_.at(top.slot), top.at);
        popArrival(localDeliveries_);
        pool_.release(top.slot);
    }
}

void
NetworkModel::phaseSnapshot(Cycle now)
{
    // Freeze this cycle's congestion snapshot (adaptive policies
    // only): after arrivals landed, before any route — serial or
    // sharded — is computed, so every route decision this cycle
    // reads the same frozen queue depths regardless of shard count
    // or arbitration order. Adaptive policies then route every
    // cycle-start head at this barrier even without a route
    // executor: a snapshot-dependent decision deferred to a later
    // cycle would read a different snapshot, so lazy serial routing
    // and barrier-sharded routing would diverge (see
    // precomputeRoutes).
    if (policy_->congestionAware()) {
        fillCongestionSnapshot();
        if (!routeExecutor_)
            precomputeRoutes(now);
    }
}

void
NetworkModel::phaseRoute(Cycle now)
{
    // Sharded route plane: fill in this cycle's pure routes
    // concurrently before any serial state advances.
    if (routeExecutor_)
        precomputeRoutes(now);
}

void
NetworkModel::phaseArbitrate(Cycle now)
{
    // The wavefront scheduler pays an Executor batch per engaged
    // cycle; below the fan-out floor the serial loop wins outright.
    // profilePhases forces the serial walk — per-node decide/commit
    // timings summed across concurrent workers would be noise.
    if (wavefrontExecutor_ && !cfg_.profilePhases &&
        activeNodes_.size() >= kWavefrontMinWalk) {
        phaseArbitrateWavefront(now);
        return;
    }
    phaseArbitrateSerial(now, cfg_.profilePhases);
}

void
NetworkModel::phaseArbitrateSerial(Cycle now, bool time_phases)
{
    using Clock = std::chrono::steady_clock;
    const bool profile =
        cfg_.profileWavefront && !activeNodes_.empty();
    std::uint64_t wfWalked = 0;
    std::uint64_t wfCycleDepth = 0;
    for (std::size_t i = 0; i < activeNodes_.size();) {
        const NodeId node = activeNodes_[i];
        if (profile) {
            // Dependency-chain depth of the walk in its real
            // order: this node depends on every graph-adjacent
            // node already arbitrated this cycle (their drains and
            // reservations touch link/VC state this node reads).
            ++wfWalked;
            const Cycle stamp = now + 1;
            std::uint32_t depth = 1;
            const net::Graph &g = topo_->graph();
            const auto relax = [&](NodeId v) {
                if (wfStamp_[v] == stamp)
                    depth = std::max(depth, wfDepth_[v] + 1);
            };
            for (const LinkId l : g.outLinks(node))
                relax(g.link(l).dst);
            for (const LinkId l : g.inLinks(node))
                relax(g.link(l).src);
            wfStamp_[node] = stamp;
            wfDepth_[node] = depth;
            wfCycleDepth = std::max<std::uint64_t>(wfCycleDepth,
                                                   depth);
        }
        serialFx_.clear();
        if (time_phases) {
            const Clock::time_point t0 = Clock::now();
            decideNode(node, now, serialFx_);
            const Clock::time_point t1 = Clock::now();
            commitNode(node, now, serialFx_);
            stats_.phaseDecideNs += elapsedNs(t0, t1);
            stats_.phaseCommitNs += elapsedNs(t1, Clock::now());
        } else {
            decideNode(node, now, serialFx_);
            commitNode(node, now, serialFx_);
        }
        if (activeVcs_[node].empty() && sourceQueue_[node].empty()) {
            nodeActive_[node] = 0;
            activeNodes_[i] = activeNodes_.back();
            activeNodes_.pop_back();
        } else {
            ++i;
        }
    }
    if (profile && wfWalked > 0) {
        ++stats_.wavefrontCycles;
        stats_.wavefrontNodesWalked += wfWalked;
        stats_.wavefrontMaxWalk =
            std::max(stats_.wavefrontMaxWalk, wfWalked);
        stats_.wavefrontDepthSum += wfCycleDepth;
        stats_.wavefrontMaxDepth =
            std::max(stats_.wavefrontMaxDepth, wfCycleDepth);
    }
}

void
NetworkModel::decideNode(NodeId node, Cycle now, NodeEffects &fx)
{
    auto &active = activeVcs_[node];
    // Round-robin start offset for fairness.
    const std::size_t start =
        active.empty() ? 0 : static_cast<std::size_t>(
            (now + node) % active.size());

    for (std::size_t k = 0; k < active.size();) {
        const std::size_t idx = (start + k) % active.size();
        VcState &vc = vcs_[active[idx]];
        if (vc.fifo.empty()) {
            // Lazy deactivation (swap-remove preserves round-robin
            // closely enough).
            vc.inActiveList = false;
            active[idx] = active.back();
            active.pop_back();
            continue;
        }
        const LinkId link = vc.link;
        // One crossbar pass per input port per cycle.
        if (inputGrantAt_[link] == now) {
            ++k;
            continue;
        }
        const std::uint32_t slot = vc.fifo.head;
        Packet &p = pool_.at(slot);
        // Escalate to the escape VC after a long head-of-line wait.
        if (!p.escape && now - vc.headSince > cfg_.escapeThreshold) {
            p.escape = true;
            p.escapeUpPhase = true;
            p.routed = false;
            ++fx.escapeTransfers;
        }
        if (!p.routed && !computeRoute(node, p, now, fx)) {
            // Destination unreachable (gated): drop the packet.
            vc.flitsReserved -= p.flits;
            vc.fifo.pop(pool_);
            vc.headSince = now;
            fx.progressed = true;
            fx.ops.push_back(PendingOp{PendingOp::kDrop, 0, slot,
                                       kInvalidLink, now});
            continue;
        }
        if (tryForward(node, p, slot, now, false, fx)) {
            inputGrantAt_[link] = now;
            vc.flitsReserved -= p.flits;
            vc.fifo.pop(pool_);
            vc.headSince = now;
            fx.progressed = true;
        }
        ++k;
    }

    // Terminal port: inject at most one packet per cycle, at one
    // flit per cycle serialisation.
    PacketFifo &source = sourceQueue_[node];
    if (!source.empty() && sourceBusyUntil_[node] <= now) {
        const std::uint32_t slot = source.head;
        Packet &p = pool_.at(slot);
        if (!p.routed && !computeRoute(node, p, now, fx)) {
            source.pop(pool_);
            fx.progressed = true;
            fx.ops.push_back(PendingOp{PendingOp::kSourceDrop, 0,
                                       slot, kInvalidLink, now});
            return;
        }
        if (p.routed) {
            p.enteredNetworkAt = now;
            if (tryForward(node, p, slot, now, true, fx)) {
                sourceBusyUntil_[node] = now + p.flits;
                source.pop(pool_);
                fx.progressed = true;
                // Source packets never have dst == node (inject
                // short-circuits those), so the packet moved into
                // the arrival queue — the slot stays live.
            }
        }
    }
}

void
NetworkModel::commitNode(NodeId node, Cycle now, NodeEffects &fx)
{
    // σ-order replay: everything global the interleaved loop would
    // have applied at this node's position in the walk, in the
    // exact decision order. The packet record is read at replay
    // time — decide was the slot's last writer, so the reads are
    // the values the interleaved loop used.
    (void)node;
    const net::Graph &g = topo_->graph();
    for (const PendingOp &op : fx.ops) {
        Packet &p = pool_.at(op.slot);
        switch (op.kind) {
        case PendingOp::kForward:
        case PendingOp::kSourceForward: {
            if (p.escape)
                ++stats_.escapeHops;
            stats_.flitHops += p.flits;
            if (p.measured) {
                ++stats_.measuredHops;
                stats_.measuredFlitHops += p.flits;
            }
            vcs_[vcStateIndex(op.link, op.vcIndex)].flitsReserved +=
                p.flits;
            ++pendingArrivals_[g.link(op.link).dst];
            pushArrival(arrivals_,
                        Arrival{op.at, op.slot, op.link,
                                op.vcIndex});
            if (op.kind == PendingOp::kSourceForward)
                --sourceBacklog_;
            break;
        }
        case PendingOp::kEject:
            recordDelivery(p, op.at);
            pool_.release(op.slot);
            break;
        case PendingOp::kDrop:
        case PendingOp::kSourceDrop:
            ++dropped_;
            ++stats_.droppedUnroutable;
            if (op.kind == PendingOp::kSourceDrop)
                --sourceBacklog_;
            if (onDrop_)
                onDrop_(p, now);
            pool_.release(op.slot);
            break;
        }
    }
    stats_.escapeTransfers += fx.escapeTransfers;
    if (fx.progressed)
        lastProgress_ = now;
}

int
NetworkModel::reservedWithOverlay(const NodeEffects &fx,
                                  std::size_t flat) const
{
    // Committed occupancy plus this node's own not-yet-committed
    // reservations this cycle — exactly the downstream state the
    // interleaved loop read at this point of the node's scan. The
    // overlay holds at most one entry per forward this node made
    // this cycle (≤ out-degree), so a linear scan beats any map.
    int reserved = vcs_[flat].flitsReserved;
    const std::uint32_t key = static_cast<std::uint32_t>(flat);
    for (std::size_t i = 0; i < fx.resVc.size(); ++i) {
        if (fx.resVc[i] == key)
            reserved += fx.resFlits[i];
    }
    return reserved;
}

NetworkModel::RemovalClass
NetworkModel::classifyRemoval(NodeId node) const
{
    // Decide-free prediction of the post-arbitration removal check
    // (activeVcs_ empty and source empty), from pre-decide state
    // only. Sound rules:
    //  - ≥ 2 queued source packets pin the node active: at most
    //    one source packet leaves per cycle (a forward busies the
    //    port, a drop returns immediately).
    //  - A listed VC holding ≥ 2 packets pins the node active when
    //    no drop is possible (no gated nodes): at most one packet
    //    forwards per input port per cycle, so the FIFO stays
    //    nonempty and the VC is never lazily delisted. Unroutable
    //    drops break the bound (several heads can drop in one
    //    scan), so with gated nodes present this rule is skipped.
    //  - All listed VCs empty and source empty: every scan
    //    iteration delists one empty VC, nothing can enqueue
    //    mid-walk (inject is barred, arrivals landed in phase 1),
    //    so the node is certainly removed.
    // Anything else — single-packet VCs, a lone source packet —
    // depends on this cycle's forwards: the sequencer pauses until
    // the node's own decide resolves the real bit.
    const PacketFifo &source = sourceQueue_[node];
    if (source.size >= 2)
        return RemovalClass::kStays;
    bool any_nonempty = false;
    for (const std::uint32_t flat : activeVcs_[node]) {
        const PacketFifo &fifo = vcs_[flat].fifo;
        if (fifo.empty())
            continue;
        any_nonempty = true;
        if (!anyGated_ && fifo.size >= 2)
            return RemovalClass::kStays;
    }
    if (!any_nonempty && source.empty())
        return RemovalClass::kRemoved;
    return RemovalClass::kUncertain;
}

void
NetworkModel::phaseArbitrateWavefront(Cycle now)
{
    wfNow_ = now;
    wfCommitted_.store(0, std::memory_order_relaxed);
    wfDispatched_.store(0, std::memory_order_relaxed);
    wfWalkDone_.store(false, std::memory_order_relaxed);
    for (const auto &job : wfJobs_)
        job->tag.store(0, std::memory_order_relaxed);
    // The escape tables are a lazily built mutable cache; build
    // them at the barrier so no two decide stages race the build.
    ensureEscapeTables();
    wfInWalk_ = true;
    // runAll's internal synchronisation publishes the resets above
    // to every worker before any task runs.
    wavefrontExecutor_->runAll(wfTasks_);
    wfInWalk_ = false;
}

void
NetworkModel::wavefrontDriver()
{
    const Cycle now = wfNow_;
    const net::Graph &g = topo_->graph();
    const std::size_t width = wfJobs_.size();

    // Virtual σ-sequencing of the dynamic swap-removal walk: the
    // slice replays activeNodes_'s compaction using the decide-free
    // removal classification, pausing at uncertain nodes until
    // their own decide resolves the real bit. Each sequenced
    // position records how many σ-predecessor commits its decide
    // must wait for (graph-adjacent dependencies: the downstream
    // flitsReserved its VCT checks read are written by neighbour
    // commits).
    wfSlice_.assign(activeNodes_.begin(), activeNodes_.end());
    wfSeqNodes_.clear();
    wfSeqNeed_.clear();
    wfSeqPred_.clear();
    std::size_t vcur = 0;
    bool uncertain_pending = false;
    const Cycle stamp = now + 1;

    const bool profile = cfg_.profileWavefront;
    std::uint64_t wfWalked = 0;
    std::uint64_t wfCycleDepth = 0;

    std::size_t cpos = 0;   // commit cursor (σ-position)
    std::size_t dnext = 0;  // next σ-position to fill into the ring
    std::size_t rpos = 0;   // real activeNodes_ index of cpos

    const auto sequenceOne = [&](NodeId node) {
        const std::uint32_t pos =
            static_cast<std::uint32_t>(wfSeqNodes_.size());
        std::uint32_t need = 0;
        const auto relax = [&](NodeId v) {
            if (wfSeqStamp_[v] == stamp && wfSeqIdx_[v] < pos)
                need = std::max(need, wfSeqIdx_[v] + 1);
        };
        for (const LinkId l : g.outLinks(node))
            relax(g.link(l).dst);
        for (const LinkId l : g.inLinks(node))
            relax(g.link(l).src);
        wfSeqStamp_[node] = stamp;
        wfSeqIdx_[node] = pos;
        wfSeqNodes_.push_back(node);
        wfSeqNeed_.push_back(need);
    };

    const auto advanceSequencing = [&] {
        while (vcur < wfSlice_.size()) {
            if (uncertain_pending) {
                // The node at the last sequenced position occupies
                // virtual slot vcur; its removal bit resolves when
                // its decide completes (the bit reads only state
                // the decide owns).
                const std::size_t q = wfSeqNodes_.size() - 1;
                if (q >= dnext)
                    return;  // not dispatched yet
                const WavefrontJob &job = *wfJobs_[q % width];
                if (job.tag.load(std::memory_order_acquire) <
                    q * 4 + kWfDone)
                    return;  // decide still in flight
                const NodeId node = wfSeqNodes_[q];
                const bool removed = activeVcs_[node].empty() &&
                                     sourceQueue_[node].empty();
                wfSeqPred_[q] =
                    removed ? std::uint8_t(1) : std::uint8_t(0);
                if (removed) {
                    wfSlice_[vcur] = wfSlice_.back();
                    wfSlice_.pop_back();
                } else {
                    ++vcur;
                }
                uncertain_pending = false;
                continue;
            }
            const NodeId node = wfSlice_[vcur];
            const RemovalClass cls = classifyRemoval(node);
            sequenceOne(node);
            if (cls == RemovalClass::kStays) {
                wfSeqPred_.push_back(0);
                ++vcur;
            } else if (cls == RemovalClass::kRemoved) {
                wfSeqPred_.push_back(1);
                wfSlice_[vcur] = wfSlice_.back();
                wfSlice_.pop_back();
            } else {
                wfSeqPred_.push_back(2);
                uncertain_pending = true;
            }
        }
    };

    while (true) {
        advanceSequencing();
        const bool seq_complete =
            vcur >= wfSlice_.size() && !uncertain_pending;
        if (seq_complete && cpos == wfSeqNodes_.size())
            break;
        // Fill free ring slots up to the wavefront width. A slot
        // is free because its previous occupant (position
        // dnext - width) has committed: dnext < cpos + width.
        while (dnext < wfSeqNodes_.size() && dnext < cpos + width) {
            WavefrontJob &job = *wfJobs_[dnext % width];
            job.node = wfSeqNodes_[dnext];
            job.needCommits = wfSeqNeed_[dnext];
            job.fx.clear();
            job.tag.store(dnext * 4 + kWfReady,
                          std::memory_order_release);
            ++dnext;
            wfDispatched_.store(
                static_cast<std::uint32_t>(dnext),
                std::memory_order_release);
        }
        if (cpos < dnext) {
            WavefrontJob &job = *wfJobs_[cpos % width];
            // Run the commit-front decide inline when no worker
            // claimed it — the driver never waits on an unclaimed
            // job, so the walk cannot deadlock even when the
            // executor has no free worker at all.
            std::uint64_t expected = cpos * 4 + kWfReady;
            if (job.tag.compare_exchange_strong(
                    expected, cpos * 4 + kWfClaimed,
                    std::memory_order_acq_rel)) {
                decideNode(job.node, now, job.fx);
                job.tag.store(cpos * 4 + kWfDone,
                              std::memory_order_release);
            } else {
                while (job.tag.load(std::memory_order_acquire) !=
                       cpos * 4 + kWfDone)
                    std::this_thread::yield();
            }
            if (profile) {
                // Cost-model instrumentation, at the commit point
                // so the σ-order stamp sequence matches the serial
                // walk exactly.
                ++wfWalked;
                std::uint32_t depth = 1;
                const auto relax = [&](NodeId v) {
                    if (wfStamp_[v] == stamp)
                        depth = std::max(depth, wfDepth_[v] + 1);
                };
                for (const LinkId l : g.outLinks(job.node))
                    relax(g.link(l).dst);
                for (const LinkId l : g.inLinks(job.node))
                    relax(g.link(l).src);
                wfStamp_[job.node] = stamp;
                wfDepth_[job.node] = depth;
                wfCycleDepth =
                    std::max<std::uint64_t>(wfCycleDepth, depth);
            }
            commitNode(job.node, now, job.fx);
            // Real swap-removal on activeNodes_, exactly as the
            // serial walk applies it — and the sequencer's
            // prediction is checked against the real bit, so a
            // classification bug can never silently diverge.
            const NodeId node = job.node;
            const bool removed = activeVcs_[node].empty() &&
                                 sourceQueue_[node].empty();
            if (wfSeqPred_[cpos] != 2 &&
                (wfSeqPred_[cpos] != 0) != removed) {
                throw std::logic_error(
                    "wavefront removal misprediction");
            }
            if (removed) {
                nodeActive_[node] = 0;
                activeNodes_[rpos] = activeNodes_.back();
                activeNodes_.pop_back();
            } else {
                ++rpos;
            }
            ++cpos;
            wfCommitted_.store(static_cast<std::uint32_t>(cpos),
                               std::memory_order_release);
        }
    }
    wfWalkDone_.store(true, std::memory_order_release);

    if (profile && wfWalked > 0) {
        ++stats_.wavefrontCycles;
        stats_.wavefrontNodesWalked += wfWalked;
        stats_.wavefrontMaxWalk =
            std::max(stats_.wavefrontMaxWalk, wfWalked);
        stats_.wavefrontDepthSum += wfCycleDepth;
        stats_.wavefrontMaxDepth =
            std::max(stats_.wavefrontMaxDepth, wfCycleDepth);
    }
}

void
NetworkModel::wavefrontWorker()
{
    const Cycle now = wfNow_;
    const std::size_t width = wfJobs_.size();
    while (!wfWalkDone_.load(std::memory_order_acquire)) {
        const std::uint32_t committed =
            wfCommitted_.load(std::memory_order_acquire);
        const std::uint32_t dispatched =
            wfDispatched_.load(std::memory_order_acquire);
        bool ran = false;
        for (std::uint32_t pos = committed; pos < dispatched;
             ++pos) {
            WavefrontJob &job = *wfJobs_[pos % width];
            std::uint64_t t =
                job.tag.load(std::memory_order_acquire);
            if ((t & 3) != kWfReady)
                continue;
            // The tag's release-store published node/needCommits;
            // eligibility uses the slot's own values, so a slot
            // recycled for a later position is still claimed
            // correctly (the CAS on the exact tag is ABA-safe).
            if (job.needCommits >
                wfCommitted_.load(std::memory_order_acquire))
                continue;
            const std::uint64_t jpos = t >> 2;
            if (job.tag.compare_exchange_strong(
                    t, jpos * 4 + kWfClaimed,
                    std::memory_order_acq_rel)) {
                decideNode(job.node, now, job.fx);
                job.tag.store(jpos * 4 + kWfDone,
                              std::memory_order_release);
                ran = true;
                break;
            }
        }
        if (!ran)
            std::this_thread::yield();
    }
}

bool
NetworkModel::computeRoute(NodeId node, Packet &p, Cycle now,
                           NodeEffects &fx)
{
    (void)now;
    p.numCandidates = 0;
    p.routed = false;
    if (!topo_->nodeAlive(p.dst))
        return false;
    if (p.dst == node) {
        // Candidates empty + routed means "eject here".
        p.routed = true;
        return true;
    }

    if (!p.escape) {
        // Zero-copy fast path: candidates land directly in the
        // packet record (via the route cache when engaged).
        const std::size_t count = routeCandidatesFor(node, p);
        if (count > 0) {
            p.numCandidates = static_cast<std::uint8_t>(count);
            p.routed = true;
            return true;
        }
        // Greedy stall (degraded topology): escalate immediately.
        p.escape = true;
        p.escapeUpPhase = true;
        ++fx.escapeTransfers;
    }

    LinkId link = kInvalidLink;
    if (topo_->escapeScheme() == net::EscapeScheme::Ring) {
        link = topo_->ringEscapeLink(node);
    }
    if (link == kInvalidLink) {
        ensureEscapeTables();
        link = updown_->nextLink(node, p.dst, p.escapeUpPhase);
    }
    if (link == kInvalidLink)
        return false;  // genuinely unreachable
    p.candidates[0] = link;
    p.numCandidates = 1;
    p.routed = true;
    return true;
}

bool
NetworkModel::tryForward(NodeId node, Packet &p, std::uint32_t slot,
                         Cycle now, bool from_source,
                         NodeEffects &fx)
{
    // Ejection at the destination.
    if (p.dst == node) {
        if (ejectBusyUntil_[node] > now)
            return false;
        ejectBusyUntil_[node] = now + p.flits;
        fx.ops.push_back(PendingOp{PendingOp::kEject, 0, slot,
                                   kInvalidLink, now + p.flits});
        return true;
    }

    // Collect currently grantable candidates. The downstream VC is
    // a function of the packet alone, so it is hoisted out of the
    // candidate scan.
    LinkId usable[Packet::kMaxCandidates];
    double occupancy[Packet::kMaxCandidates];
    int usable_count = 0;
    bool stale = false;
    const int want_vc = downstreamVcIndex(p);
    for (int i = 0; i < p.numCandidates; ++i) {
        const LinkId link = p.candidates[i];
        const net::Link &l = topo_->graph().link(link);
        if (!l.enabled) {
            stale = true;  // reconfiguration invalidated the cache
            continue;
        }
        if (linkBusyUntil_[link] > now || outputGrantAt_[link] == now)
            continue;
        // Virtual cut-through: room for the entire packet
        // downstream — committed occupancy plus this node's own
        // pending reservations (the overlay), exactly what the
        // interleaved loop read here.
        const int reserved = reservedWithOverlay(
            fx, vcStateIndex(link, want_vc));
        if (reserved + p.flits > cfg_.vcDepth)
            continue;
        usable[usable_count] = link;
        occupancy[usable_count] =
            static_cast<double>(reserved) /
            static_cast<double>(cfg_.vcDepth);
        ++usable_count;
    }
    if (stale) {
        p.routed = false;
        if (usable_count == 0)
            return false;
    }
    if (usable_count == 0)
        return false;

    // Adaptive selection (paper: prefer the greediest choice unless
    // its port queue passed the threshold, then take the lightest).
    int pick = 0;
    if (cfg_.adaptive && usable_count > 1 &&
        occupancy[0] > cfg_.adaptiveThreshold) {
        for (int i = 1; i < usable_count; ++i) {
            if (occupancy[i] < occupancy[pick])
                pick = i;
        }
    }
    const LinkId link = usable[pick];
    const net::Link &l = topo_->graph().link(link);

    // Decide the hop: the packet and this node's own link state
    // mutate in place; the downstream reservation, the arrival
    // push, and the hop counters are buffered and replayed at the
    // node's σ-position (stats are recomputed at commit from the
    // packet record, which decide leaves final).
    outputGrantAt_[link] = now;
    linkBusyUntil_[link] = now + p.flits;

    p.hops += 1;
    p.routed = false;
    if (p.escape) {
        if (topo_->escapeScheme() == net::EscapeScheme::Ring) {
            if (topo_->ringPosition(l.dst) <
                topo_->ringPosition(node))
                p.escapeVcBit = 1;  // crossed the dateline
        } else {
            ensureEscapeTables();
            if (!updown_->isUp(link))
                p.escapeUpPhase = false;
        }
    }

    const int dvc = downstreamVcIndex(p);
    const std::uint32_t flat =
        static_cast<std::uint32_t>(vcStateIndex(link, dvc));
    bool merged = false;
    for (std::size_t i = 0; i < fx.resVc.size(); ++i) {
        if (fx.resVc[i] == flat) {
            fx.resFlits[i] += p.flits;
            merged = true;
            break;
        }
    }
    if (!merged) {
        fx.resVc.push_back(flat);
        fx.resFlits.push_back(p.flits);
    }
    const Cycle arrival = now + p.flits - 1 + l.latency +
                          cfg_.serdesCycles;
    fx.ops.push_back(PendingOp{from_source
                                   ? PendingOp::kSourceForward
                                   : PendingOp::kForward,
                               dvc, slot, link, arrival});
    return true;
}

void
NetworkModel::recordDelivery(const Packet &p, Cycle delivered_at)
{
    ++stats_.deliveredPackets;
    stats_.deliveredFlits += p.flits;
    if (p.measured) {
        ++stats_.measuredPackets;
        stats_.totalLatency.record(delivered_at - p.createdAt);
        stats_.networkLatency.record(delivered_at -
                                     p.enteredNetworkAt);
        stats_.totalLatencyLog.record(delivered_at - p.createdAt);
        stats_.networkLatencyLog.record(delivered_at -
                                        p.enteredNetworkAt);
    }
    if (onDeliver_)
        onDeliver_(p, delivered_at);
}

} // namespace sf::sim

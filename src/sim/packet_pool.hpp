/**
 * @file
 * Slab pool of in-flight packets with free-list recycling.
 *
 * Every live packet in the network model occupies exactly one slot
 * and is referred to by a 32-bit index: source queues, per-VC
 * buffers, and the arrival queue all chain indices instead of
 * copying ~100-byte Packet records around. Slots live in fixed-size
 * chunks so addresses are stable across growth — delivery handlers
 * may inject new packets (growing the pool) while the engine still
 * holds a reference to the packet being delivered.
 *
 * Steady state allocates nothing: slots freed by delivery or drop
 * are recycled LIFO through the free list, and a chunk is only
 * malloc'd when the number of simultaneously live packets reaches a
 * new high-water mark.
 */

#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/packet.hpp"

namespace sf::sim {

/** Chunked slab of Packet slots addressed by 32-bit index. */
class PacketPool
{
  public:
    /** Sentinel index: "no packet" / end of an intrusive chain. */
    static constexpr std::uint32_t kNil = 0xffffffffu;

    /** Claim a slot (recycled or fresh) holding a default Packet. */
    std::uint32_t
    alloc()
    {
        std::uint32_t idx;
        if (freeHead_ != kNil) {
            idx = freeHead_;
            freeHead_ = next_[idx];
        } else {
            if (size_ == chunks_.size() * kChunkSize)
                chunks_.push_back(
                    std::make_unique<Packet[]>(kChunkSize));
            next_.push_back(kNil);
            idx = static_cast<std::uint32_t>(size_++);
        }
        ++live_;
        at(idx) = Packet{};
        next_[idx] = kNil;
        return idx;
    }

    /** Release a slot back to the free list. */
    void
    release(std::uint32_t idx)
    {
        assert(idx < size_ && live_ > 0);
        next_[idx] = freeHead_;
        freeHead_ = idx;
        --live_;
    }

    Packet &
    at(std::uint32_t idx)
    {
        assert(idx < size_);
        return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
    }

    const Packet &
    at(std::uint32_t idx) const
    {
        assert(idx < size_);
        return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
    }

    /** Chain link following @p idx in whatever list holds it. */
    std::uint32_t next(std::uint32_t idx) const { return next_[idx]; }
    void setNext(std::uint32_t idx, std::uint32_t n) { next_[idx] = n; }

    /** Currently claimed slots (== packets alive in the network). */
    std::size_t liveCount() const { return live_; }

    /** Slots ever created (pool high-water mark). */
    std::size_t capacity() const { return size_; }

  private:
    static constexpr std::uint32_t kChunkShift = 10;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

    std::vector<std::unique_ptr<Packet[]>> chunks_;
    /** Free-list / FIFO chain per slot (parallel to the slab). */
    std::vector<std::uint32_t> next_;
    std::uint32_t freeHead_ = kNil;
    std::size_t live_ = 0;
    std::size_t size_ = 0;
};

/**
 * Intrusive FIFO of pool slots, chained through PacketPool's next
 * links. A slot is in at most one FIFO (or the arrival queue) at a
 * time, so one chain field per slot suffices.
 */
struct PacketFifo {
    std::uint32_t head = PacketPool::kNil;
    std::uint32_t tail = PacketPool::kNil;
    std::uint32_t size = 0;

    bool empty() const { return head == PacketPool::kNil; }

    void
    push(PacketPool &pool, std::uint32_t slot)
    {
        pool.setNext(slot, PacketPool::kNil);
        if (tail == PacketPool::kNil)
            head = slot;
        else
            pool.setNext(tail, slot);
        tail = slot;
        ++size;
    }

    /** Detach and return the head slot (FIFO must be non-empty). */
    std::uint32_t
    pop(PacketPool &pool)
    {
        assert(!empty());
        const std::uint32_t slot = head;
        head = pool.next(slot);
        if (head == PacketPool::kNil)
            tail = PacketPool::kNil;
        --size;
        return slot;
    }
};

} // namespace sf::sim

/**
 * @file
 * Cycle-level network model: virtual cut-through routers with
 * per-VC buffering, credit-limited forwarding, congestion-adaptive
 * output selection, escape channels, and a deadlock watchdog.
 *
 * Router microarchitecture (one per memory node):
 *  - one input unit per incoming link, holding V virtual channels of
 *    @c vcDepth flits each;
 *  - a source queue (terminal/processor port) injecting at one flit
 *    per cycle;
 *  - one ejection port delivering at one flit per cycle;
 *  - per cycle, each input port forwards at most one packet and each
 *    output link accepts at most one packet (crossbar constraints),
 *    chosen round-robin for fairness;
 *  - virtual cut-through: a packet moves only when the downstream VC
 *    has room for all its flits; the link then serialises it at one
 *    flit per cycle, plus wire latency and SerDes delay.
 *
 * Virtual channel map per input port:
 *    [0, C)            normal VCs: msgClass x topology vcClass
 *    [C, C+4)          escape VCs: msgClass x dateline parity
 * where C = numVcClasses() * 2. Escape routing follows the
 * topology's scheme (up*-down* or dateline ring); packets switch to
 * escape after a head-of-line wait threshold and stay there, which
 * keeps the escape network's channel dependencies acyclic.
 *
 * Data plane: the hot path is allocation-free in steady state.
 * Packets live in a slab pool (packet_pool.hpp) and every queue —
 * source FIFOs, per-VC buffers, the arrival queue — holds 32-bit
 * slot indices chained intrusively through the pool. Routing writes
 * candidates straight into the packet record via the span-based
 * Topology::routeCandidates, so no per-hop vector exists.
 *
 * The arrival queue is a binary min-heap of 24-byte entries driven
 * by std::push_heap / std::pop_heap with the same at-only ordering
 * the original std::priority_queue<Arrival> used. That keeps the
 * pop order of same-cycle arrivals bit-for-bit identical to the
 * historical engine — the tie order is load-bearing, because it
 * decides the round-robin order of newly activated VCs and routers.
 * (A cycle-bucketed FIFO calendar ring was prototyped and measured:
 * it lands O(1) but reorders same-cycle ties, which changes
 * simulated events and breaks byte-identical reports, so it was
 * rejected. With pooled packets the heap sifts 24-byte PODs over a
 * bounded horizon of flits + wire latency + SerDes cycles, so the
 * sift cost is a few word moves, not ~100-byte Packet copies.)
 *
 * Sharded route plane (cfg.shards > 1 + setRouteExecutor): the one
 * part of a cycle that is a pure function of immutable state — the
 * greedy route computation of every cycle-start head packet, ~3/4
 * of near-saturation runtime at n=1024 — is partitioned spatially:
 * nodes map to shards in contiguous blocks, each shard owns its
 * nodes' head packets, and the shards fill in Packet::candidates
 * concurrently on Executor threads between the arrival-landing and
 * arbitration phases (a cycle barrier: runAll returns before any
 * serial state advances). Everything whose *order* is load-bearing
 * stays on the serial commit path, because the engine's total event
 * order is defined by it: the global arrival heap's push
 * interleaving (pop ties replay insertion structure), the
 * activeNodes_ walk with its swap-removal compaction (same-cycle
 * neighbour drain-then-reserve ordering), escape escalation (its
 * stats can land in a report mid-window), drops, deliveries, and
 * every RNG draw. Because a precomputed route is the same pure
 * function the serial loop would evaluate at its own point in the
 * cycle — the topology is immutable *within an epoch* and a head's
 * (node, dst, hops, escape) inputs cannot change before the loop
 * consumes or invalidates the cache — the sharded engine is
 * event-for-event identical to the serial one at every shard
 * count, and the partition never appears in results.
 *
 * Topology generations: a reconfig (onTopologyChanged) advances an
 * epoch counter instead of disabling anything. Reconfig events
 * apply serially at a cycle barrier (between step() calls, before
 * injection), so each epoch's route plane shards against an
 * immutable-within-epoch snapshot and routing stays a pure
 * per-epoch function. The one cross-epoch hazard is a precomputed
 * route the serial loop deferred: the sharded plane may mark a
 * head routed that arbitration skips this cycle (input port busy),
 * and a route carried across the boundary would be the *previous*
 * epoch's pure function. The epoch barrier therefore clears the
 * routed flag on every queue head — routes never outlive their
 * epoch, both engines recompute against the new topology, and
 * byte-identity across shard counts survives reconfiguration.
 *
 * Memoized route plane (cfg.routeCache + enableRouteCache): the
 * same purity argument lets the greedy route computation be cached
 * outright in per-topology next-hop tables (core/route_cache.hpp)
 * instead of re-derived per head-packet cycle — a cached value is
 * the identical pure function's output, so the event stream is
 * byte-identical with the cache on or off, at any shard count.
 * Rows are keyed by the `current` node: under sharding a shard
 * only looks up its own contiguous node block, and the serial loop
 * only touches the cache outside the route phase (the executor
 * barrier), so the lazy fills are single-writer per row and need
 * no atomics. The cache is a per-epoch object: onTopologyChanged
 * retires the current instance and immediately rebuilds a fresh
 * one against the new topology (counted in
 * NetStats::routeCacheRebuilds), so memoization stays engaged
 * across reconfig boundaries and every cached row belongs to
 * exactly one epoch.
 *
 * Routing-policy seam (cfg.policy + core/routing_policy.hpp): every
 * normal-VC route query goes through one RoutingPolicy::route()
 * call. The greedy policy delegates straight to the topology's own
 * routeCandidates, so routing through the seam is the incumbent
 * behaviour byte for byte. Adaptive policies additionally read a
 * CongestionSnapshot — per-link queued flits summed over VCs —
 * filled exactly once per cycle in step(), after arrivals land and
 * before any route is computed (the same barrier the sharded route
 * plane fans out from). Freezing the snapshot there keeps every
 * policy a pure per-cycle function: the serial loop, the sharded
 * route plane, and any shard count all read identical inputs, so
 * reports stay byte-identical across shards for every policy. The
 * route cache only engages for policies that are pure functions of
 * (node, dest, first_hop) — its exact key space; congestion-aware
 * decisions are uncacheable by construction and enableRouteCache
 * refuses them (see docs/routing_policies.md).
 *
 * Phase-pipeline cycle engine (docs/engine_phases.md): step() is an
 * explicit five-phase pipeline — Land → Snapshot → Route →
 * Arbitrate(decide) → Commit. Arbitration is split per node into a
 * *decide* stage and a *commit* stage. Decide mutates only state
 * this node exclusively owns (its input-VC FIFOs and reservations,
 * its input/output link grants, its ejection/source ports, the
 * head packets themselves) and buffers every global or cross-node
 * effect — downstream VC reservations, arrival-heap pushes,
 * deliveries, drops, pool releases, shared stats counters — into
 * an ordered per-node effect set (NodeEffects). Commit replays
 * effect sets serially in exact activeNodes_ σ-order (the dynamic
 * swap-removal walk), so the arrival heap's push interleaving and
 * the same-cycle neighbour drain/reserve ordering — the PR 5
 * total-event-order constraint — are reproduced byte-for-byte.
 * Decide's one cross-node read is downstream VC occupancy on its
 * own out-links (the VCT admission check), satisfied from
 * committed state plus a local overlay of the node's own pending
 * reservations this cycle — exactly the values the interleaved
 * loop read.
 *
 * Commit-wavefront scheduler (cfg.wavefront > 0 +
 * setWavefrontExecutor): because decide's only cross-node input is
 * written by graph-adjacent σ-predecessors' commits, decide stages
 * may run concurrently on Executor workers once those predecessors
 * have committed. The walk order is pre-sequenced against a
 * virtual copy of activeNodes_ using a decide-free removal
 * classification (a listed VC holding ≥ 2 packets, or ≥ 2 queued
 * source packets, pins a node active — at most one packet leaves
 * per input port and per source port per cycle; all-empty pins it
 * removed; anything else pauses sequencing until that node's own
 * decide resolves the real bit — and when the topology has gated
 * nodes the ≥ 2 VC rule is downgraded too, because unroutable
 * drops can empty a deeper FIFO in one cycle). A ring of
 * cfg.wavefront decide jobs carries ABA-safe position-tagged
 * states; workers claim jobs whose σ-predecessor commit count has
 * been reached (acquire on the commit counter pairs with the
 * driver's release after each commit), and the driver task commits
 * strictly in σ-order, running any still-unclaimed job inline so
 * the walk never deadlocks. The schedule changes *wall-clock*
 * interleaving only — every simulated event replays in σ-order —
 * so reports are byte-identical at every wavefront width,
 * including 0 (the plain serial decide→commit loop).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/route_cache.hpp"
#include "core/routing_policy.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "net/updown.hpp"
#include "sim/executor.hpp"
#include "sim/packet.hpp"
#include "sim/packet_pool.hpp"
#include "sim/sim_config.hpp"
#include "sim/stats.hpp"

namespace sf::sim {

/** The simulated network: all routers, links, and queues. */
class NetworkModel
{
  public:
    /** Called when a packet fully ejects at its destination. */
    using DeliverHandler =
        std::function<void(const Packet &, Cycle)>;

    /**
     * Called when a packet is dropped because its destination was
     * gated away mid-flight (reconfiguration); callers typically
     * reissue the operation to the address's new owner.
     */
    using DropHandler = std::function<void(const Packet &, Cycle)>;

    NetworkModel(const net::Topology &topo, const SimConfig &cfg);

    /**
     * Queue a packet at @p src's terminal port. Packets with
     * src == dst bypass the network and deliver next cycle.
     */
    void inject(NodeId src, NodeId dst, int flits, MsgClass mc,
                Cycle now, std::uint64_t payload = 0,
                bool measured = false);

    /** Advance the network by one cycle. */
    void step(Cycle now);

    /** Packets injected but not yet delivered or dropped. */
    std::uint64_t inFlight() const;

    /** Total packets waiting in source queues (saturation signal).
     *  O(1): maintained at inject/dequeue, never recounted. */
    std::uint64_t sourceQueueBacklog() const
    {
        return sourceBacklog_;
    }

    /** No buffered, queued, or in-flight traffic touches @p u. */
    bool nodeQuiescent(NodeId u) const;

    /** Statistics. */
    const NetStats &stats() const { return stats_; }
    NetStats &stats() { return stats_; }

    void setDeliverHandler(DeliverHandler handler)
    {
        onDeliver_ = std::move(handler);
    }

    void setDropHandler(DropHandler handler)
    {
        onDrop_ = std::move(handler);
    }

    /**
     * Advance the topology generation after a reconfiguration:
     * escape tables rebuild lazily, every queue-head route is
     * invalidated (precomputed routes must not outlive their
     * epoch — see the file header), and the memoized route plane
     * is retired and rebuilt against the new topology. The sharded
     * route plane stays enabled: each epoch shards against an
     * immutable-within-epoch snapshot. Must be called serially at
     * a cycle barrier (never mid-step).
     */
    void onTopologyChanged();

    /** Current topology generation (onTopologyChanged calls). */
    std::uint64_t topologyEpoch() const
    {
        return stats_.topologyEpochs;
    }

    /**
     * Enable the sharded route plane (see the file header): with
     * cfg.shards > 1, each step() fans the cycle-start head-packet
     * route computations out over @p executor in cfg.shards spatial
     * node partitions. Pass nullptr (or leave cfg.shards at 1) for
     * the exact serial engine. The executor must outlive the model.
     * Results are byte-identical either way and at any shard count.
     */
    void setRouteExecutor(Executor *executor);

    /**
     * Enable the commit-wavefront scheduler (see the file header):
     * with cfg.wavefront > 0, each step()'s arbitration phase
     * pipelines per-node decide stages onto @p executor while the
     * calling side commits effect sets in exact serial σ-order.
     * Pass nullptr (or leave cfg.wavefront at 0) for the serial
     * decide→commit loop. The executor must outlive the model.
     * Results are byte-identical either way and at any width.
     *
     * While the wavefront walk is in flight, inject() is forbidden
     * (delivery/drop handlers must buffer and inject between
     * steps, which every workload already does — the packet pool's
     * slab vector may grow during alloc and decide stages read it
     * concurrently).
     */
    void setWavefrontExecutor(Executor *executor);

    /**
     * Enable the memoized route plane (see the file header): greedy
     * route lookups go through a lazily-filled core::RouteCache
     * instead of the virtual topology call. No-op when
     * cfg.routeCache is off or the topology cannot be
     * index-encoded. Supported at any epoch, including after
     * reconfigurations: the cache memoizes the current epoch's
     * topology, and onTopologyChanged retires-and-rebuilds it at
     * each epoch boundary. Byte-identical results either way.
     */
    void enableRouteCache();

    /** Is the memoized route plane currently engaged? (tests) */
    bool routeCacheActive() const { return routeCache_ != nullptr; }

    /** The active routing policy (never null). */
    const core::RoutingPolicy &routingPolicy() const
    {
        return *policy_;
    }

    /** The configured topology. */
    const net::Topology &topology() const { return *topo_; }

    /**
     * Where every live packet currently sits — a full walk of the
     * engine's queues, for conservation-invariant tests. The sum of
     * the four locations must equal both liveSlots and inFlight()
     * at every step boundary.
     */
    struct Accounting {
        std::uint64_t sourceQueued = 0;  ///< terminal-port FIFOs
        std::uint64_t vcBuffered = 0;    ///< per-VC input buffers
        std::uint64_t onLinks = 0;       ///< arrival queue (in wire)
        std::uint64_t localPending = 0;  ///< src == dst loopbacks
        std::uint64_t liveSlots = 0;     ///< pool slots claimed

        std::uint64_t
        total() const
        {
            return sourceQueued + vcBuffered + onLinks +
                   localPending;
        }
    };

    /** Audit packet conservation (walks every queue; test-only). */
    Accounting audit() const;

  private:
    /** One virtual-channel input buffer (flat per link x VC). */
    struct VcState {
        PacketFifo fifo;
        int flitsReserved = 0;  ///< includes packets still in flight
        Cycle headSince = 0;
        LinkId link = kInvalidLink;    ///< owning input port
        std::uint16_t vcIndex = 0;     ///< VC within the port
        bool inActiveList = false;     ///< O(1) activeVcs_ member?
    };

    /** A packet in flight on a link (or a local loopback). */
    struct Arrival {
        Cycle at;
        std::uint32_t slot;       ///< pool index of the packet
        LinkId link;              ///< kInvalidLink for loopbacks
        std::int32_t vcIndex;

        /** Heap order: earliest arrival first — at only, exactly
         *  like the historical priority_queue (tie order matters). */
        bool operator>(const Arrival &o) const { return at > o.at; }
    };

    int totalVcs() const { return escapeBase_ + 4; }
    int normalVcIndex(const Packet &p) const
    {
        return p.msgClass * topo_->numVcClasses() + p.vcClass;
    }
    int escapeVcIndex(const Packet &p) const
    {
        return escapeBase_ + p.msgClass * 2 + p.escapeVcBit;
    }
    /** VC index the packet occupies downstream of link @p l. */
    int downstreamVcIndex(const Packet &p) const
    {
        return p.escape ? escapeVcIndex(p) : normalVcIndex(p);
    }

    /** Flat VcState index of (link, vc). */
    std::size_t
    vcStateIndex(LinkId link, int vc_index) const
    {
        return static_cast<std::size_t>(link) *
                   static_cast<std::size_t>(totalVcs()) +
               static_cast<std::size_t>(vc_index);
    }

    /** One unit of route-plane work: the head packet in @p slot is
     *  parked at @p node and needs greedy candidates. */
    struct RouteJob {
        std::uint32_t slot;
        NodeId node;
    };

    /**
     * One buffered global effect of a node's decide stage, replayed
     * verbatim by commitNode in decision order. Everything the
     * effect needs beyond these fields is read from the packet
     * record at commit time — decide is the slot's last writer
     * until the commit, so the reads are exact.
     */
    struct PendingOp {
        enum Kind : std::uint8_t {
            kForward,        ///< hop: reserve downstream + arrival
            kSourceForward,  ///< kForward + source-backlog decrement
            kEject,          ///< delivered at the destination
            kDrop,           ///< unroutable VC head dropped
            kSourceDrop,     ///< unroutable source head dropped
        };
        Kind kind;
        std::int32_t vcIndex;  ///< downstream VC (forwards)
        std::uint32_t slot;    ///< pool slot of the packet
        LinkId link;           ///< output link (forwards)
        Cycle at;              ///< arrival / delivery cycle
    };

    /**
     * The buffered effect set of one node's decide stage: the
     * ordered global ops plus additive stat deltas, and decide's
     * private overlay of its own not-yet-committed downstream
     * reservations (flat VcState index → reserved flits) so the
     * VCT admission check sees exactly what the interleaved loop
     * saw. Cleared and reused — steady state allocates nothing.
     */
    struct NodeEffects {
        std::vector<PendingOp> ops;
        std::uint64_t escapeTransfers = 0;
        bool progressed = false;
        std::vector<std::uint32_t> resVc;
        std::vector<int> resFlits;

        void
        clear()
        {
            ops.clear();
            escapeTransfers = 0;
            progressed = false;
            resVc.clear();
            resFlits.clear();
        }
    };

    /** One slot of the wavefront decide-job ring. `tag` packs the
     *  σ-position with a lifecycle phase (pos * 4 + phase) so a
     *  recycled slot can never be claimed for a stale position. */
    struct WavefrontJob {
        std::atomic<std::uint64_t> tag{0};
        NodeId node = 0;
        std::uint32_t needCommits = 0;
        NodeEffects fx;
    };

    // Phase pipeline (see the file header / docs/engine_phases.md).
    void phaseLand(Cycle now);
    void phaseSnapshot(Cycle now);
    void phaseRoute(Cycle now);
    void phaseArbitrate(Cycle now);
    void phaseArbitrateSerial(Cycle now, bool time_phases);
    void phaseArbitrateWavefront(Cycle now);
    void wavefrontDriver();
    void wavefrontWorker();

    /**
     * Arbitration decide stage for @p node: the exact per-node
     * decision sequence of the historical interleaved loop, with
     * every global effect buffered into @p fx instead of applied.
     * Mutates only node-owned state; safe to run concurrently for
     * nodes whose graph-adjacent σ-predecessors have committed.
     */
    void decideNode(NodeId node, Cycle now, NodeEffects &fx);
    /** Serial σ-order replay of one node's buffered effect set. */
    void commitNode(NodeId node, Cycle now, NodeEffects &fx);
    /** Committed + this node's pending downstream reservation. */
    int reservedWithOverlay(const NodeEffects &fx,
                            std::size_t flat) const;
    /**
     * Decide-free removal prediction for the wavefront sequencer:
     * will the post-arbitration removal check pull @p node out of
     * activeNodes_ this cycle?
     */
    enum class RemovalClass : std::uint8_t {
        kStays,
        kRemoved,
        kUncertain
    };
    RemovalClass classifyRemoval(NodeId node) const;
    /**
     * Sharded route plane, between arrival landing and arbitration:
     * collect every cycle-start head the serial loop would route
     * through the pure greedy fast path this cycle (or a later one)
     * and fill in its candidates concurrently, one spatial node
     * partition per shard. Heads on the order-sensitive paths —
     * escape escalation due, dead destination, already routed —
     * are left for the serial loop untouched.
     */
    void precomputeRoutes(Cycle now);
    /** Compute one shard's collected routes (runs on any thread;
     *  writes only to its own jobs' Packet records). */
    void routeShard(std::size_t shard);
    /**
     * Compute (or escalate) the route of head packet @p p at
     * @p node. Runs inside decide: an escape escalation is counted
     * into @p fx, not the shared stats.
     *
     * @return False when the packet must be dropped (destination
     *         gated away and unreachable).
     */
    bool computeRoute(NodeId node, Packet &p, Cycle now,
                      NodeEffects &fx);
    /**
     * The fast-path lookup both route planes share: fill @p p's
     * candidates for its next hop from @p node, through the route
     * cache when one is engaged, through the policy seam otherwise
     * (for greedy the two are the same pure function).
     *
     * @return Number of candidates written into p.candidates.
     */
    std::size_t routeCandidatesFor(NodeId node, Packet &p);
    /** Freeze this cycle's CongestionSnapshot (per-link queued
     *  flits summed over VCs). Called once per step(), before any
     *  route is computed; only when the policy reads it. */
    void fillCongestionSnapshot();
    /**
     * Decide whether head packet @p p (pool slot @p slot) moves one
     * hop or ejects this cycle. Own-state link/port bookkeeping is
     * applied directly; the cross-node consequences (reservation,
     * arrival push, delivery) are buffered into @p fx.
     *
     * @return True when the packet left this router.
     */
    bool tryForward(NodeId node, Packet &p, std::uint32_t slot,
                    Cycle now, bool from_source, NodeEffects &fx);
    void activateNode(NodeId node);
    void ensureEscapeTables() const;
    void recordDelivery(const Packet &p, Cycle delivered_at);
    void pushArrival(std::vector<Arrival> &heap, Arrival a);
    void popArrival(std::vector<Arrival> &heap);

    const net::Topology *topo_;
    SimConfig cfg_;
    int escapeBase_;

    PacketPool pool_;

    std::vector<Cycle> linkBusyUntil_;   ///< per link
    std::vector<Cycle> outputGrantAt_;   ///< per link
    std::vector<Cycle> inputGrantAt_;    ///< per link (as input port)
    /** VC buffers at each link's destination, flattened to one
     *  contiguous array: index link * totalVcs() + vc. */
    std::vector<VcState> vcs_;
    std::vector<PacketFifo> sourceQueue_;  ///< per node
    std::uint64_t sourceBacklog_ = 0;
    std::vector<Cycle> sourceBusyUntil_;
    std::vector<Cycle> ejectBusyUntil_;
    std::vector<std::uint32_t> pendingArrivals_;  ///< per node

    /** Flat VcState indices that may hold a head packet, per node. */
    std::vector<std::vector<std::uint32_t>> activeVcs_;
    std::vector<std::uint8_t> nodeActive_;
    std::vector<NodeId> activeNodes_;

    /** Min-heaps ordered by Arrival::operator> (see file header). */
    std::vector<Arrival> arrivals_;
    /** Local (src == dst) deliveries scheduled for the next cycle. */
    std::vector<Arrival> localDeliveries_;

    // Sharded route plane (inert unless setRouteExecutor was
    // called with cfg_.shards > 1; see the file header).
    Executor *routeExecutor_ = nullptr;
    /** Per-shard job lists, cleared (capacity kept) every cycle. */
    std::vector<std::vector<RouteJob>> routeWork_;
    /** Reusable shard tasks, built once (steady state allocates
     *  nothing, matching the rest of the data plane). */
    std::vector<std::function<void()>> routeTasks_;

    /** Memoized route plane (null = direct virtual calls). */
    std::unique_ptr<core::RouteCache> routeCache_;
    /** The routing-policy seam (never null; greedy by default). */
    std::unique_ptr<core::RoutingPolicy> policy_;
    /** Per-link queued-flit totals frozen at the cycle barrier;
     *  sized once (only for congestion-aware policies). */
    std::vector<std::uint32_t> congestionFlits_;
    /** Read-only view over congestionFlits_ handed to route(). */
    core::CongestionSnapshot congestion_;

    // Commit-wavefront cost model (cfg_.profileWavefront): per-node
    // scratch for the dependency-depth recurrence, sized lazily.
    std::vector<Cycle> wfStamp_;          ///< cycle of last arb
    std::vector<std::uint32_t> wfDepth_;  ///< chain depth then

    /** Reused effect set of the serial decide→commit loop. */
    NodeEffects serialFx_;

    // Commit-wavefront scheduler (inert unless setWavefrontExecutor
    // was called with cfg_.wavefront > 0; see the file header).
    Executor *wavefrontExecutor_ = nullptr;
    /** Decide-job ring, cfg_.wavefront slots (non-copyable). */
    std::vector<std::unique_ptr<WavefrontJob>> wfJobs_;
    /** Reusable driver + worker tasks, built once. */
    std::vector<std::function<void()>> wfTasks_;
    /** σ-positions committed so far this cycle (driver releases
     *  after each commit; workers acquire before eligible claims —
     *  the happens-before edge the VCT cross-node reads ride). */
    std::atomic<std::uint32_t> wfCommitted_{0};
    /** σ-positions whose job slots have been filled (kReady). */
    std::atomic<std::uint32_t> wfDispatched_{0};
    /** Walk finished; workers drain and return. */
    std::atomic<bool> wfWalkDone_{false};
    /** The cycle the in-flight walk arbitrates (tasks are built
     *  once and cannot capture per-call locals). */
    Cycle wfNow_ = 0;
    /** Decide stages may be running on workers: inject() throws. */
    bool wfInWalk_ = false;
    /** True when the current topology epoch has gated nodes —
     *  unroutable drops become possible and the ≥ 2-packet VC
     *  stay-rule of classifyRemoval is no longer sound. */
    bool anyGated_ = false;
    // Sequencer scratch (reused; steady state allocates nothing).
    std::vector<NodeId> wfSlice_;      ///< virtual activeNodes_ walk
    std::vector<NodeId> wfSeqNodes_;   ///< σ-sequenced nodes
    std::vector<std::uint32_t> wfSeqNeed_;  ///< commits needed
    /** Predicted removal bit per σ-position (0 stay, 1 removed,
     *  2 resolved-at-decide); checked against reality at commit. */
    std::vector<std::uint8_t> wfSeqPred_;
    std::vector<Cycle> wfSeqStamp_;    ///< per-node: sequenced cycle
    std::vector<std::uint32_t> wfSeqIdx_;  ///< per-node: σ-position

    mutable std::unique_ptr<net::UpDownRouting> updown_;
    DeliverHandler onDeliver_;
    DropHandler onDrop_;
    NetStats stats_;
    Rng rng_;
    std::uint64_t nextPacketId_ = 1;
    std::uint64_t dropped_ = 0;
    Cycle lastProgress_ = 0;
};

} // namespace sf::sim

/**
 * @file
 * Cycle-level network model: virtual cut-through routers with
 * per-VC buffering, credit-limited forwarding, congestion-adaptive
 * output selection, escape channels, and a deadlock watchdog.
 *
 * Router microarchitecture (one per memory node):
 *  - one input unit per incoming link, holding V virtual channels of
 *    @c vcDepth flits each;
 *  - a source queue (terminal/processor port) injecting at one flit
 *    per cycle;
 *  - one ejection port delivering at one flit per cycle;
 *  - per cycle, each input port forwards at most one packet and each
 *    output link accepts at most one packet (crossbar constraints),
 *    chosen round-robin for fairness;
 *  - virtual cut-through: a packet moves only when the downstream VC
 *    has room for all its flits; the link then serialises it at one
 *    flit per cycle, plus wire latency and SerDes delay.
 *
 * Virtual channel map per input port:
 *    [0, C)            normal VCs: msgClass x topology vcClass
 *    [C, C+4)          escape VCs: msgClass x dateline parity
 * where C = numVcClasses() * 2. Escape routing follows the
 * topology's scheme (up*-down* or dateline ring); packets switch to
 * escape after a head-of-line wait threshold and stay there, which
 * keeps the escape network's channel dependencies acyclic.
 */

#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "net/rng.hpp"
#include "net/topology.hpp"
#include "net/updown.hpp"
#include "sim/packet.hpp"
#include "sim/sim_config.hpp"
#include "sim/stats.hpp"

namespace sf::sim {

/** The simulated network: all routers, links, and queues. */
class NetworkModel
{
  public:
    /** Called when a packet fully ejects at its destination. */
    using DeliverHandler =
        std::function<void(const Packet &, Cycle)>;

    /**
     * Called when a packet is dropped because its destination was
     * gated away mid-flight (reconfiguration); callers typically
     * reissue the operation to the address's new owner.
     */
    using DropHandler = std::function<void(const Packet &, Cycle)>;

    NetworkModel(const net::Topology &topo, const SimConfig &cfg);

    /**
     * Queue a packet at @p src's terminal port. Packets with
     * src == dst bypass the network and deliver next cycle.
     */
    void inject(NodeId src, NodeId dst, int flits, MsgClass mc,
                Cycle now, std::uint64_t payload = 0,
                bool measured = false);

    /** Advance the network by one cycle. */
    void step(Cycle now);

    /** Packets injected but not yet delivered or dropped. */
    std::uint64_t inFlight() const;

    /** Total packets waiting in source queues (saturation signal). */
    std::uint64_t sourceQueueBacklog() const;

    /** No buffered, queued, or in-flight traffic touches @p u. */
    bool nodeQuiescent(NodeId u) const;

    /** Statistics. */
    const NetStats &stats() const { return stats_; }
    NetStats &stats() { return stats_; }

    void setDeliverHandler(DeliverHandler handler)
    {
        onDeliver_ = std::move(handler);
    }

    void setDropHandler(DropHandler handler)
    {
        onDrop_ = std::move(handler);
    }

    /**
     * Invalidate routing caches after the topology changed
     * (reconfiguration): escape tables rebuild lazily, head packets
     * re-route on their next arbitration.
     */
    void onTopologyChanged();

    /** The configured topology. */
    const net::Topology &topology() const { return *topo_; }

  private:
    /** One virtual-channel buffer. */
    struct VcBuffer {
        std::deque<Packet> queue;
        int flitsReserved = 0;  ///< includes packets still in flight
        Cycle headSince = 0;
    };

    /** A packet in flight on a link. */
    struct Arrival {
        Cycle at;
        LinkId link;
        int vcIndex;
        Packet packet;
        bool operator>(const Arrival &o) const { return at > o.at; }
    };

    int totalVcs() const { return escapeBase_ + 4; }
    int normalVcIndex(const Packet &p) const
    {
        return p.msgClass * topo_->numVcClasses() + p.vcClass;
    }
    int escapeVcIndex(const Packet &p) const
    {
        return escapeBase_ + p.msgClass * 2 + p.escapeVcBit;
    }
    /** VC index the packet occupies downstream of link @p l. */
    int downstreamVcIndex(const Packet &p) const
    {
        return p.escape ? escapeVcIndex(p) : normalVcIndex(p);
    }

    void arbitrateNode(NodeId node, Cycle now);
    /**
     * Compute (or escalate) the route of head packet @p p at
     * @p node.
     *
     * @return False when the packet must be dropped (destination
     *         gated away and unreachable).
     */
    bool computeRoute(NodeId node, Packet &p, Cycle now);
    /**
     * Try to move head packet @p p one hop (or eject it).
     *
     * @return True when the packet left this router.
     */
    bool tryForward(NodeId node, Packet &p, Cycle now);
    void activateNode(NodeId node);
    void ensureEscapeTables() const;
    double downstreamOccupancy(LinkId link, int vc_index) const;
    void deliverLocal(Packet &&p, Cycle at);
    void recordDelivery(const Packet &p, Cycle delivered_at);

    const net::Topology *topo_;
    SimConfig cfg_;
    int escapeBase_;

    std::vector<Cycle> linkBusyUntil_;   ///< per link
    std::vector<Cycle> outputGrantAt_;   ///< per link
    std::vector<Cycle> inputGrantAt_;    ///< per link (as input port)
    /** inputs_[link] = VC buffers at the link's destination. */
    std::vector<std::vector<VcBuffer>> inputs_;
    std::vector<std::deque<Packet>> sourceQueue_;
    std::vector<Cycle> sourceBusyUntil_;
    std::vector<Cycle> ejectBusyUntil_;
    std::vector<std::uint32_t> pendingArrivals_;  ///< per node

    /** (link, vcIndex) pairs that may hold a head packet, per node. */
    std::vector<std::vector<std::pair<LinkId, int>>> activeVcs_;
    std::vector<bool> nodeActive_;
    std::vector<NodeId> activeNodes_;

    std::priority_queue<Arrival, std::vector<Arrival>,
                        std::greater<>> arrivals_;
    /** Local (src == dst) deliveries scheduled for the next cycle. */
    std::priority_queue<Arrival, std::vector<Arrival>,
                        std::greater<>> localDeliveries_;

    mutable std::unique_ptr<net::UpDownRouting> updown_;
    DeliverHandler onDeliver_;
    DropHandler onDrop_;
    NetStats stats_;
    Rng rng_;
    std::uint64_t nextPacketId_ = 1;
    std::uint64_t dropped_ = 0;
    Cycle lastProgress_ = 0;
};

} // namespace sf::sim

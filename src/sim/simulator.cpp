#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>

#include "core/string_figure.hpp"

namespace sf::sim {

namespace {

/** Live-node list of a (possibly down-scaled) topology. */
std::vector<NodeId>
liveNodes(const net::Topology &topo)
{
    std::vector<NodeId> nodes;
    for (NodeId u = 0; u < topo.numNodes(); ++u) {
        if (topo.nodeAlive(u))
            nodes.push_back(u);
    }
    return nodes;
}

/** Per-node deterministic stream seed: mixes the run seed with the
 *  node id (and a stream tag) so every node owns an independent
 *  sequence that is still a pure function of cfg.seed. */
std::uint64_t
nodeStreamSeed(std::uint64_t seed, NodeId node, std::uint64_t tag)
{
    std::uint64_t h = seed + tag * 0x9e3779b97f4a7c15ULL +
                      (static_cast<std::uint64_t>(node) + 1) *
                          0xbf58476d1ce4e5b9ULL;
    h ^= h >> 30;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

/** Copy the measured-window statistics into @p result. */
void
fillMeasuredStats(RunResult &result, const NetStats &stats)
{
    result.avgTotalLatency = stats.totalLatency.mean();
    result.avgNetworkLatency = stats.networkLatency.mean();
    result.p50Latency = stats.totalLatency.percentile(0.50);
    result.p99Latency = stats.totalLatency.percentile(0.99);
    result.avgHops = stats.avgHops();
    result.measuredPackets = stats.measuredPackets;
    result.escapeTransfers = stats.escapeTransfers;
    result.flitHops = stats.flitHops;
    result.tailTotal = stats.totalLatencyLog.summary();
    result.tailNetwork = stats.networkLatencyLog.summary();
    result.wavefrontCycles = stats.wavefrontCycles;
    result.wavefrontMaxWalk = stats.wavefrontMaxWalk;
    result.wavefrontMaxDepth = stats.wavefrontMaxDepth;
    result.phaseProfiledCycles = stats.phaseProfiledCycles;
    result.phaseLandNs = stats.phaseLandNs;
    result.phaseSnapshotNs = stats.phaseSnapshotNs;
    result.phaseRouteNs = stats.phaseRouteNs;
    result.phaseDecideNs = stats.phaseDecideNs;
    result.phaseCommitNs = stats.phaseCommitNs;
    result.droppedUnroutable = stats.droppedUnroutable;
    result.topologyEpochs = stats.topologyEpochs;
    if (stats.wavefrontCycles > 0) {
        const double cycles =
            static_cast<double>(stats.wavefrontCycles);
        result.wavefrontAvgWalk =
            static_cast<double>(stats.wavefrontNodesWalked) /
            cycles;
        result.wavefrontAvgDepth =
            static_cast<double>(stats.wavefrontDepthSum) / cycles;
    }
}

} // namespace

RunResult
runSynthetic(const net::Topology &topo, TrafficPattern pattern,
             double rate, const SimConfig &cfg,
             const RunPhases &phases, Executor *executor)
{
    NetworkModel net(topo, cfg);
    // Synthetic runs never reconfigure, so the whole run is one
    // topology epoch for both route planes (network.hpp).
    net.setRouteExecutor(executor);
    net.setWavefrontExecutor(executor);
    net.enableRouteCache();
    Rng traffic_rng(cfg.seed * 0x9e3779b9ULL + 17);
    const auto nodes = liveNodes(topo);
    const auto n_all = topo.numNodes();

    RunResult result;
    result.offeredLoad = rate * cfg.packetFlits;

    const Cycle measure_end = phases.warmup + phases.measure;
    const Cycle hard_end = measure_end + phases.drainLimit;
    std::uint64_t measured_injected = 0;
    std::uint64_t delivered_at_measure_start = 0;
    std::uint64_t delivered_at_measure_end = 0;
    // Early-abort when source queues pile several packets deep per
    // node: the network is saturated, no need to keep simulating.
    const std::uint64_t backlog_cap = nodes.size() * 6;

    Cycle cycle = 0;
    for (; cycle < hard_end; ++cycle) {
        if (cycle == phases.warmup)
            delivered_at_measure_start =
                net.stats().deliveredPackets;
        if (cycle == measure_end)
            delivered_at_measure_end = net.stats().deliveredPackets;

        const bool in_measure =
            cycle >= phases.warmup && cycle < measure_end;
        for (const NodeId src : nodes) {
            if (!traffic_rng.chance(rate))
                continue;
            const NodeId dst = trafficDestination(
                pattern, src, n_all, traffic_rng);
            if (dst == src || !topo.nodeAlive(dst))
                continue;
            net.inject(src, dst, cfg.packetFlits, kRequest, cycle,
                       0, in_measure);
            measured_injected += in_measure ? 1 : 0;
        }
        net.step(cycle);

        if ((cycle & 0xff) == 0 &&
            net.sourceQueueBacklog() > backlog_cap) {
            result.saturated = true;
            break;
        }
        if (cycle >= measure_end &&
            net.stats().measuredPackets >= measured_injected)
            break;  // drained
    }
    if (cycle >= hard_end)
        result.saturated = true;

    fillMeasuredStats(result, net.stats());
    result.simulatedCycles = cycle;
    if (cycle > phases.warmup && !nodes.empty()) {
        const Cycle window_end = std::min<Cycle>(cycle, measure_end);
        const std::uint64_t delivered_in_window =
            (delivered_at_measure_end > 0
                 ? delivered_at_measure_end
                 : net.stats().deliveredPackets) -
            delivered_at_measure_start;
        const double window = static_cast<double>(
            window_end - phases.warmup);
        if (window > 0) {
            result.acceptedLoad =
                static_cast<double>(delivered_in_window) *
                cfg.packetFlits /
                (window * static_cast<double>(nodes.size()));
            result.realizedLoad =
                static_cast<double>(measured_injected) *
                cfg.packetFlits /
                (window * static_cast<double>(nodes.size()));
        }
    }
    return result;
}

namespace {

/** Fixed degradation-window length for reconvergence telemetry:
 *  power of two, long enough for a stable window p99 at serving
 *  rates, short enough to resolve a blip inside one measure phase. */
constexpr Cycle kReconvergeWindow = 256;

/**
 * The open-loop driver behind runOpenLoop and runElastic. With
 * @p schedule null (or empty) this is the exact runOpenLoop
 * engine, event for event; otherwise @p elastic must alias
 * @p topo, and the schedule's waves apply serially at cycle
 * barriers with degradation-window telemetry around each.
 */
RunResult
runOpenLoopImpl(const net::Topology &topo, TrafficPattern pattern,
                const ArrivalConfig &arrivals, double rate,
                const SimConfig &cfg, const RunPhases &phases,
                Executor *executor, core::StringFigure *elastic,
                const ReconfigSchedule *schedule)
{
    NetworkModel net(topo, cfg);
    // Both route planes stay enabled even when the run
    // reconfigures: waves apply serially at a cycle barrier and
    // advance the topology generation, and each epoch shards and
    // memoizes against an immutable-within-epoch snapshot
    // (network.hpp).
    net.setRouteExecutor(executor);
    net.setWavefrontExecutor(executor);
    net.enableRouteCache();
    const auto nodes = liveNodes(topo);
    const auto n_all = topo.numNodes();

    // Per-node arrival schedules and destination streams. Both are
    // pure functions of (cfg.seed, node), so the whole injection
    // sequence is fixed before the first cycle executes —
    // congestion cannot push back on the offered load, and no
    // execution knob (jobs, shards) can reach it.
    std::vector<OpenLoopSource> sources;
    std::vector<Rng> destRng;
    std::vector<Cycle> nextArrival;
    sources.reserve(nodes.size());
    destRng.reserve(nodes.size());
    nextArrival.reserve(nodes.size());
    for (const NodeId src : nodes) {
        sources.emplace_back(arrivals, rate,
                             nodeStreamSeed(cfg.seed, src, 1));
        destRng.emplace_back(nodeStreamSeed(cfg.seed, src, 2));
        nextArrival.push_back(sources.back().next());
    }

    RunResult result;
    result.offeredLoad = rate * cfg.packetFlits;

    const Cycle measure_end = phases.warmup + phases.measure;
    const Cycle hard_end = measure_end + phases.drainLimit;
    std::uint64_t measured_injected = 0;
    std::uint64_t measured_dropped = 0;
    std::uint64_t delivered_at_measure_start = 0;
    std::uint64_t delivered_at_measure_end = 0;
    // Deeper early-abort cap than runSynthetic's: on/off arrival
    // processes legitimately pile transient bursts tens of packets
    // deep per node and then drain — only a backlog far beyond any
    // burst working set means the offered load exceeds capacity.
    const std::uint64_t backlog_cap = nodes.size() * 24;

    // Elastic bookkeeping: the schedule cursor, and the
    // degradation-window tracker of the wave in flight.
    const bool reconfiguring = schedule && !schedule->empty();
    std::size_t next_ev = 0;
    int active_wave = -1;
    std::uint64_t wave_drop_base = 0;
    std::uint64_t wave_esc_base = 0;
    LogHistogram window_snap;
    Cycle last_window_p99 = 0;
    bool last_window_valid = false;
    if (reconfiguring) {
        // Measured packets whose destination vanished must count
        // toward the drain condition, or the run would wait forever
        // for deliveries that can no longer happen.
        net.setDropHandler([&](const Packet &p, Cycle) {
            if (p.measured)
                ++measured_dropped;
        });
    }

    const auto finalize_wave = [&](Cycle end) {
        if (active_wave < 0)
            return;
        ReconfigEventStats &ev = result.reconfigEvents
            [static_cast<std::size_t>(active_wave)];
        ev.reconvergeCycles = end > ev.at ? end - ev.at : 0;
        ev.dropBurst =
            net.stats().droppedUnroutable - wave_drop_base;
        ev.escalationBurst =
            net.stats().escapeTransfers - wave_esc_base;
        active_wave = -1;
    };

    const auto apply_wave = [&](Cycle now) {
        finalize_wave(now);
        ReconfigEventStats ev;
        ev.at = now;
        int applied = 0;
        while (next_ev < schedule->events.size() &&
               schedule->events[next_ev].at <= now) {
            const ReconfigEvent &e = schedule->events[next_ev++];
            switch (e.action) {
            case ReconfigAction::Leave: {
                if (!elastic->reconfig().canGate(e.node)) {
                    ++ev.refused;
                    break;
                }
                const auto r = elastic->gate(e.node);
                ev.gated += r.applied ? 1 : 0;
                ev.holes += r.holes;
                applied += r.applied ? 1 : 0;
                break;
            }
            case ReconfigAction::Fail: {
                // No feasibility courtesy: the node is gone whether
                // or not its rings can be repaired.
                const bool forced =
                    elastic->nodeAlive(e.node) &&
                    !elastic->reconfig().canGate(e.node);
                const auto r = elastic->gate(e.node);
                ev.gated += r.applied ? 1 : 0;
                ev.failForced += (forced && r.applied) ? 1 : 0;
                ev.holes += r.holes;
                applied += r.applied ? 1 : 0;
                break;
            }
            case ReconfigAction::Join: {
                const auto r = elastic->ungate(e.node);
                ev.ungated += r.applied ? 1 : 0;
                applied += r.applied ? 1 : 0;
                break;
            }
            }
        }
        // One epoch per wave: the generation advances exactly once
        // no matter how many nodes the wave touched.
        if (applied > 0)
            net.onTopologyChanged();
#ifdef NDEBUG
        const bool validate = cfg.validateReconfig;
#else
        const bool validate = true;
#endif
        if (validate) {
            const std::string err =
                elastic->reconfig().checkInvariants();
            if (!err.empty())
                throw std::runtime_error(
                    "reconfig invariants violated mid-run: " + err);
        }
        ev.baselineP99 =
            last_window_valid
                ? last_window_p99
                : net.stats().totalLatencyLog.percentile(0.99);
        wave_drop_base = net.stats().droppedUnroutable;
        wave_esc_base = net.stats().escapeTransfers;
        active_wave =
            static_cast<int>(result.reconfigEvents.size());
        result.reconfigEvents.push_back(ev);
    };

    Cycle cycle = 0;
    for (; cycle < hard_end; ++cycle) {
        if (cycle == phases.warmup)
            delivered_at_measure_start =
                net.stats().deliveredPackets;
        if (cycle == measure_end) {
            delivered_at_measure_end = net.stats().deliveredPackets;
            // Measured samples stop here, so reconvergence cannot
            // be observed past this point: close any open wave.
            finalize_wave(measure_end);
        }

        // Degradation windows: at each fixed boundary, extract the
        // window's p99 from the log-bucket bin deltas and test the
        // active wave against the tolerance band (<= 1.25x the
        // pre-wave baseline). Pure functions of the event stream —
        // identical at every jobs/shards/route-cache setting.
        if (reconfiguring && cycle > 0 && cycle <= measure_end &&
            (cycle & (kReconvergeWindow - 1)) == 0) {
            const LogHistogram &log = net.stats().totalLatencyLog;
            if (log.countSince(window_snap) > 0) {
                const Cycle w =
                    log.percentileSince(window_snap, 0.99);
                if (active_wave >= 0) {
                    ReconfigEventStats &ev = result.reconfigEvents
                        [static_cast<std::size_t>(active_wave)];
                    ev.blipP99 = std::max(ev.blipP99, w);
                    if (w * 4 <= ev.baselineP99 * 5) {
                        ev.reconverged = true;
                        finalize_wave(cycle);
                    }
                }
                last_window_p99 = w;
                last_window_valid = true;
            }
            window_snap = log;
        }

        // Reconfig waves apply serially at the cycle barrier:
        // before injection, before the network steps.
        if (reconfiguring && next_ev < schedule->events.size() &&
            schedule->events[next_ev].at <= cycle)
            apply_wave(cycle);

        const bool in_measure =
            cycle >= phases.warmup && cycle < measure_end;
        // Serial, ascending-node injection order: the arrival
        // heap's push interleaving is load-bearing (ROADMAP
        // total-event-order constraint), so schedules drain in a
        // fixed order no matter how they were generated.
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            while (nextArrival[i] <= cycle) {
                nextArrival[i] = sources[i].next();
                const NodeId src = nodes[i];
                const NodeId dst = trafficDestination(
                    pattern, src, n_all, destRng[i]);
                // Gated sources and destinations skip the inject
                // but still consume their stream draws, so the
                // schedules of the surviving nodes are untouched
                // by who else is live.
                if (dst == src || !topo.nodeAlive(dst) ||
                    !topo.nodeAlive(src))
                    continue;
                net.inject(src, dst, cfg.packetFlits, kRequest,
                           cycle, 0, in_measure);
                measured_injected += in_measure ? 1 : 0;
            }
        }
        net.step(cycle);

        if ((cycle & 0xff) == 0 &&
            net.sourceQueueBacklog() > backlog_cap) {
            result.saturated = true;
            break;
        }
        if (cycle >= measure_end &&
            net.stats().measuredPackets + measured_dropped >=
                measured_injected)
            break;  // every measured packet delivered or dropped
    }
    if (cycle >= hard_end)
        result.saturated = true;
    finalize_wave(std::min(cycle, measure_end));

    fillMeasuredStats(result, net.stats());
    result.simulatedCycles = cycle;
    if (cycle > phases.warmup && !nodes.empty()) {
        const Cycle window_end = std::min<Cycle>(cycle, measure_end);
        const std::uint64_t delivered_in_window =
            (delivered_at_measure_end > 0
                 ? delivered_at_measure_end
                 : net.stats().deliveredPackets) -
            delivered_at_measure_start;
        const double window = static_cast<double>(
            window_end - phases.warmup);
        if (window > 0) {
            result.acceptedLoad =
                static_cast<double>(delivered_in_window) *
                cfg.packetFlits /
                (window * static_cast<double>(nodes.size()));
            result.realizedLoad =
                static_cast<double>(measured_injected) *
                cfg.packetFlits /
                (window * static_cast<double>(nodes.size()));
        }
    }
    return result;
}

} // namespace

RunResult
runOpenLoop(const net::Topology &topo, TrafficPattern pattern,
            const ArrivalConfig &arrivals, double rate,
            const SimConfig &cfg, const RunPhases &phases,
            Executor *executor)
{
    return runOpenLoopImpl(topo, pattern, arrivals, rate, cfg,
                           phases, executor, nullptr, nullptr);
}

RunResult
runElastic(core::StringFigure &topo, TrafficPattern pattern,
           const ArrivalConfig &arrivals, double rate,
           const ReconfigSchedule &schedule, const SimConfig &cfg,
           const RunPhases &phases, Executor *executor)
{
    return runOpenLoopImpl(topo, pattern, arrivals, rate, cfg,
                           phases, executor, &topo, &schedule);
}

double
zeroLoadLatency(const net::Topology &topo, const SimConfig &cfg,
                TrafficPattern pattern, Executor *executor)
{
    RunPhases phases;
    phases.warmup = 500;
    phases.measure = 4000;
    phases.drainLimit = 20000;
    const auto result =
        runSynthetic(topo, pattern, 0.002, cfg, phases, executor);
    return result.avgTotalLatency;
}

namespace {

/**
 * One step of walking the serial search against the known probe
 * outcomes: either the search finished with a value, or it is
 * blocked on the probe rate in `needs`.
 */
struct SearchWalk {
    bool done = false;
    double value = 0.0;
    double needs = 0.0;
};

/** Pseudo-rate standing for the zero-load calibration run. */
constexpr double kZeroLoadProbe = -1.0;

} // namespace

double
findSaturationRate(const net::Topology &topo, TrafficPattern pattern,
                   const SimConfig &cfg, const RunPhases &phases,
                   double tolerance, Executor *executor)
{
    Executor &exec = executor ? *executor : serialExecutor();

    // Memoised probe outcomes. A probe is a pure function of its
    // rate — the traffic RNG seeds from cfg.seed alone — so probes
    // may be evaluated in any order (including speculatively, in
    // parallel) without changing what the serial search would pick.
    std::map<double, RunResult> memo;
    double zero_load = -1.0; // < 0 until calibrated

    const auto interpret = [&](const RunResult &r) {
        const double latency_cap = std::max(3.0 * zero_load, 120.0);
        return r.saturated || r.avgTotalLatency > latency_cap;
    };

    // Walk the exact serial algorithm (geometric descent, then
    // bisection) against memoised outcomes; `assume` supplies
    // hypothetical outcomes so the speculation planner can explore
    // the decision tree past the blocking probe.
    const auto walk =
        [&](const std::map<double, bool> &assume) -> SearchWalk {
        const bool zero_load_known =
            zero_load >= 0.0 || assume.count(kZeroLoadProbe) > 0;
        if (!zero_load_known)
            return {false, 0.0, kZeroLoadProbe};
        bool blocked = false;
        double needs = 0.0;
        const auto sat = [&](double rate) {
            if (zero_load >= 0.0) {
                const auto it = memo.find(rate);
                if (it != memo.end())
                    return interpret(it->second);
            }
            const auto ia = assume.find(rate);
            if (ia != assume.end())
                return ia->second;
            blocked = true;
            needs = rate;
            return false;
        };

        const bool sat_full = sat(1.0);
        if (blocked)
            return {false, 0.0, needs};
        if (!sat_full)
            return {true, 1.0, 0.0};
        double hi = 1.0;
        double probe = 0.5;
        while (probe > 1e-4) {
            const bool s = sat(probe);
            if (blocked)
                return {false, 0.0, needs};
            if (!s)
                break;
            hi = probe;
            probe /= 4.0;
        }
        if (probe <= 1e-4)
            return {true, probe, 0.0};
        double lo = probe;
        while (hi / lo > 1.0 + tolerance) {
            const double mid = std::sqrt(hi * lo);
            const bool s = sat(mid);
            if (blocked)
                return {false, 0.0, needs};
            if (s)
                hi = mid;
            else
                lo = mid;
        }
        return {true, lo, 0.0};
    };

    while (true) {
        const SearchWalk step = walk({});
        if (step.done)
            return step.value;

        // The probe the serial search needs right now, plus — when
        // idle workers exist — the probes it may need next (BFS
        // over both outcomes of each pending probe). Speculation
        // only ever uses capacity that would otherwise idle.
        std::vector<double> batch{step.needs};
        const int width = exec.availableParallelism();
        if (width > 1) {
            std::deque<std::map<double, bool>> frontier;
            if (step.needs == kZeroLoadProbe) {
                frontier.push_back({{kZeroLoadProbe, true}});
            } else {
                frontier.push_back({{step.needs, true}});
                frontier.push_back({{step.needs, false}});
            }
            int expansions = 0;
            while (static_cast<int>(batch.size()) < width &&
                   !frontier.empty() && expansions < 8 * width) {
                ++expansions;
                const std::map<double, bool> assume =
                    std::move(frontier.front());
                frontier.pop_front();
                const SearchWalk spec = walk(assume);
                if (spec.done)
                    continue;
                if (std::find(batch.begin(), batch.end(),
                              spec.needs) == batch.end())
                    batch.push_back(spec.needs);
                std::map<double, bool> yes = assume;
                yes[spec.needs] = true;
                frontier.push_back(std::move(yes));
                if (spec.needs != kZeroLoadProbe) {
                    std::map<double, bool> no = assume;
                    no[spec.needs] = false;
                    frontier.push_back(std::move(no));
                }
            }
        }

        std::vector<RunResult> results(batch.size());
        double zero_load_result = -1.0;
        std::vector<std::function<void()>> tasks;
        tasks.reserve(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            tasks.push_back([&, i] {
                // Probes pass the executor through, so a probe's
                // own route plane may shard onto workers that are
                // not busy with sibling probes (nested batches).
                if (batch[i] == kZeroLoadProbe)
                    zero_load_result = zeroLoadLatency(
                        topo, cfg, pattern, executor);
                else
                    results[i] =
                        runSynthetic(topo, pattern, batch[i], cfg,
                                     phases, executor);
            });
        }
        exec.runAll(tasks);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (batch[i] == kZeroLoadProbe)
                zero_load = zero_load_result;
            else
                memo.emplace(batch[i], std::move(results[i]));
        }
    }
}

std::vector<SweepPoint>
latencySweep(const net::Topology &topo, TrafficPattern pattern,
             const std::vector<double> &rates, const SimConfig &cfg,
             const RunPhases &phases, Executor *executor)
{
    std::vector<SweepPoint> points;
    points.reserve(rates.size());
    for (const double rate : rates)
        points.push_back(SweepPoint{
            rate, runSynthetic(topo, pattern, rate, cfg, phases,
                               executor)});
    return points;
}

} // namespace sf::sim

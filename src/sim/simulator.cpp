#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

namespace sf::sim {

namespace {

/** Live-node list of a (possibly down-scaled) topology. */
std::vector<NodeId>
liveNodes(const net::Topology &topo)
{
    std::vector<NodeId> nodes;
    for (NodeId u = 0; u < topo.numNodes(); ++u) {
        if (topo.nodeAlive(u))
            nodes.push_back(u);
    }
    return nodes;
}

} // namespace

RunResult
runSynthetic(const net::Topology &topo, TrafficPattern pattern,
             double rate, const SimConfig &cfg,
             const RunPhases &phases)
{
    NetworkModel net(topo, cfg);
    Rng traffic_rng(cfg.seed * 0x9e3779b9ULL + 17);
    const auto nodes = liveNodes(topo);
    const auto n_all = topo.numNodes();

    RunResult result;
    result.offeredLoad = rate * cfg.packetFlits;

    const Cycle measure_end = phases.warmup + phases.measure;
    const Cycle hard_end = measure_end + phases.drainLimit;
    std::uint64_t measured_injected = 0;
    std::uint64_t delivered_at_measure_start = 0;
    std::uint64_t delivered_at_measure_end = 0;
    // Early-abort when source queues pile several packets deep per
    // node: the network is saturated, no need to keep simulating.
    const std::uint64_t backlog_cap = nodes.size() * 6;

    Cycle cycle = 0;
    for (; cycle < hard_end; ++cycle) {
        if (cycle == phases.warmup)
            delivered_at_measure_start =
                net.stats().deliveredPackets;
        if (cycle == measure_end)
            delivered_at_measure_end = net.stats().deliveredPackets;

        const bool in_measure =
            cycle >= phases.warmup && cycle < measure_end;
        for (const NodeId src : nodes) {
            if (!traffic_rng.chance(rate))
                continue;
            const NodeId dst = trafficDestination(
                pattern, src, n_all, traffic_rng);
            if (dst == src || !topo.nodeAlive(dst))
                continue;
            net.inject(src, dst, cfg.packetFlits, kRequest, cycle,
                       0, in_measure);
            measured_injected += in_measure ? 1 : 0;
        }
        net.step(cycle);

        if ((cycle & 0xff) == 0 &&
            net.sourceQueueBacklog() > backlog_cap) {
            result.saturated = true;
            break;
        }
        if (cycle >= measure_end &&
            net.stats().measuredPackets >= measured_injected)
            break;  // drained
    }
    if (cycle >= hard_end)
        result.saturated = true;

    const NetStats &stats = net.stats();
    result.avgTotalLatency = stats.totalLatency.mean();
    result.avgNetworkLatency = stats.networkLatency.mean();
    result.p50Latency = stats.totalLatency.percentile(0.50);
    result.p99Latency = stats.totalLatency.percentile(0.99);
    result.avgHops = stats.avgHops();
    result.measuredPackets = stats.measuredPackets;
    result.escapeTransfers = stats.escapeTransfers;
    result.flitHops = stats.flitHops;
    result.simulatedCycles = cycle;
    if (cycle > phases.warmup && !nodes.empty()) {
        const Cycle window_end = std::min<Cycle>(cycle, measure_end);
        const std::uint64_t delivered_in_window =
            (delivered_at_measure_end > 0
                 ? delivered_at_measure_end
                 : net.stats().deliveredPackets) -
            delivered_at_measure_start;
        const double window = static_cast<double>(
            window_end - phases.warmup);
        if (window > 0) {
            result.acceptedLoad =
                static_cast<double>(delivered_in_window) *
                cfg.packetFlits /
                (window * static_cast<double>(nodes.size()));
        }
    }
    return result;
}

double
zeroLoadLatency(const net::Topology &topo, const SimConfig &cfg,
                TrafficPattern pattern)
{
    RunPhases phases;
    phases.warmup = 500;
    phases.measure = 4000;
    phases.drainLimit = 20000;
    const auto result =
        runSynthetic(topo, pattern, 0.002, cfg, phases);
    return result.avgTotalLatency;
}

double
findSaturationRate(const net::Topology &topo, TrafficPattern pattern,
                   const SimConfig &cfg, const RunPhases &phases,
                   double tolerance)
{
    const double zero_load = zeroLoadLatency(topo, cfg, pattern);
    const double latency_cap = std::max(3.0 * zero_load, 120.0);

    const auto saturated_at = [&](double rate) {
        const auto r = runSynthetic(topo, pattern, rate, cfg,
                                    phases);
        return r.saturated || r.avgTotalLatency > latency_cap;
    };

    double lo = 0.0;          // known good
    double hi = 1.0;          // known bad (or max)
    if (!saturated_at(1.0))
        return 1.0;
    // Geometric descent to bracket, then bisection.
    double probe = 0.5;
    while (probe > 1e-4 && saturated_at(probe)) {
        hi = probe;
        probe /= 4.0;
    }
    if (probe <= 1e-4)
        return probe;
    lo = probe;
    while (hi / lo > 1.0 + tolerance) {
        const double mid = std::sqrt(hi * lo);
        if (saturated_at(mid))
            hi = mid;
        else
            lo = mid;
    }
    return lo;
}

std::vector<SweepPoint>
latencySweep(const net::Topology &topo, TrafficPattern pattern,
             const std::vector<double> &rates, const SimConfig &cfg,
             const RunPhases &phases)
{
    std::vector<SweepPoint> points;
    points.reserve(rates.size());
    for (const double rate : rates)
        points.push_back(
            SweepPoint{rate, runSynthetic(topo, pattern, rate, cfg,
                                          phases)});
    return points;
}

} // namespace sf::sim

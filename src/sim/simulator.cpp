#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

namespace sf::sim {

namespace {

/** Live-node list of a (possibly down-scaled) topology. */
std::vector<NodeId>
liveNodes(const net::Topology &topo)
{
    std::vector<NodeId> nodes;
    for (NodeId u = 0; u < topo.numNodes(); ++u) {
        if (topo.nodeAlive(u))
            nodes.push_back(u);
    }
    return nodes;
}

/** Per-node deterministic stream seed: mixes the run seed with the
 *  node id (and a stream tag) so every node owns an independent
 *  sequence that is still a pure function of cfg.seed. */
std::uint64_t
nodeStreamSeed(std::uint64_t seed, NodeId node, std::uint64_t tag)
{
    std::uint64_t h = seed + tag * 0x9e3779b97f4a7c15ULL +
                      (static_cast<std::uint64_t>(node) + 1) *
                          0xbf58476d1ce4e5b9ULL;
    h ^= h >> 30;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

/** Copy the measured-window statistics into @p result. */
void
fillMeasuredStats(RunResult &result, const NetStats &stats)
{
    result.avgTotalLatency = stats.totalLatency.mean();
    result.avgNetworkLatency = stats.networkLatency.mean();
    result.p50Latency = stats.totalLatency.percentile(0.50);
    result.p99Latency = stats.totalLatency.percentile(0.99);
    result.avgHops = stats.avgHops();
    result.measuredPackets = stats.measuredPackets;
    result.escapeTransfers = stats.escapeTransfers;
    result.flitHops = stats.flitHops;
    result.tailTotal = stats.totalLatencyLog.summary();
    result.tailNetwork = stats.networkLatencyLog.summary();
    result.wavefrontCycles = stats.wavefrontCycles;
    result.wavefrontMaxWalk = stats.wavefrontMaxWalk;
    result.wavefrontMaxDepth = stats.wavefrontMaxDepth;
    if (stats.wavefrontCycles > 0) {
        const double cycles =
            static_cast<double>(stats.wavefrontCycles);
        result.wavefrontAvgWalk =
            static_cast<double>(stats.wavefrontNodesWalked) /
            cycles;
        result.wavefrontAvgDepth =
            static_cast<double>(stats.wavefrontDepthSum) / cycles;
    }
}

} // namespace

RunResult
runSynthetic(const net::Topology &topo, TrafficPattern pattern,
             double rate, const SimConfig &cfg,
             const RunPhases &phases, Executor *executor)
{
    NetworkModel net(topo, cfg);
    // Synthetic runs never reconfigure the topology, which is the
    // precondition of both route planes (network.hpp): the sharded
    // one and the memoized one.
    net.setRouteExecutor(executor);
    net.enableRouteCache();
    Rng traffic_rng(cfg.seed * 0x9e3779b9ULL + 17);
    const auto nodes = liveNodes(topo);
    const auto n_all = topo.numNodes();

    RunResult result;
    result.offeredLoad = rate * cfg.packetFlits;

    const Cycle measure_end = phases.warmup + phases.measure;
    const Cycle hard_end = measure_end + phases.drainLimit;
    std::uint64_t measured_injected = 0;
    std::uint64_t delivered_at_measure_start = 0;
    std::uint64_t delivered_at_measure_end = 0;
    // Early-abort when source queues pile several packets deep per
    // node: the network is saturated, no need to keep simulating.
    const std::uint64_t backlog_cap = nodes.size() * 6;

    Cycle cycle = 0;
    for (; cycle < hard_end; ++cycle) {
        if (cycle == phases.warmup)
            delivered_at_measure_start =
                net.stats().deliveredPackets;
        if (cycle == measure_end)
            delivered_at_measure_end = net.stats().deliveredPackets;

        const bool in_measure =
            cycle >= phases.warmup && cycle < measure_end;
        for (const NodeId src : nodes) {
            if (!traffic_rng.chance(rate))
                continue;
            const NodeId dst = trafficDestination(
                pattern, src, n_all, traffic_rng);
            if (dst == src || !topo.nodeAlive(dst))
                continue;
            net.inject(src, dst, cfg.packetFlits, kRequest, cycle,
                       0, in_measure);
            measured_injected += in_measure ? 1 : 0;
        }
        net.step(cycle);

        if ((cycle & 0xff) == 0 &&
            net.sourceQueueBacklog() > backlog_cap) {
            result.saturated = true;
            break;
        }
        if (cycle >= measure_end &&
            net.stats().measuredPackets >= measured_injected)
            break;  // drained
    }
    if (cycle >= hard_end)
        result.saturated = true;

    fillMeasuredStats(result, net.stats());
    result.simulatedCycles = cycle;
    if (cycle > phases.warmup && !nodes.empty()) {
        const Cycle window_end = std::min<Cycle>(cycle, measure_end);
        const std::uint64_t delivered_in_window =
            (delivered_at_measure_end > 0
                 ? delivered_at_measure_end
                 : net.stats().deliveredPackets) -
            delivered_at_measure_start;
        const double window = static_cast<double>(
            window_end - phases.warmup);
        if (window > 0) {
            result.acceptedLoad =
                static_cast<double>(delivered_in_window) *
                cfg.packetFlits /
                (window * static_cast<double>(nodes.size()));
            result.realizedLoad =
                static_cast<double>(measured_injected) *
                cfg.packetFlits /
                (window * static_cast<double>(nodes.size()));
        }
    }
    return result;
}

RunResult
runOpenLoop(const net::Topology &topo, TrafficPattern pattern,
            const ArrivalConfig &arrivals, double rate,
            const SimConfig &cfg, const RunPhases &phases,
            Executor *executor)
{
    NetworkModel net(topo, cfg);
    // Open-loop runs never reconfigure the topology — the
    // precondition of both route planes, exactly as in
    // runSynthetic.
    net.setRouteExecutor(executor);
    net.enableRouteCache();
    const auto nodes = liveNodes(topo);
    const auto n_all = topo.numNodes();

    // Per-node arrival schedules and destination streams. Both are
    // pure functions of (cfg.seed, node), so the whole injection
    // sequence is fixed before the first cycle executes —
    // congestion cannot push back on the offered load, and no
    // execution knob (jobs, shards) can reach it.
    std::vector<OpenLoopSource> sources;
    std::vector<Rng> destRng;
    std::vector<Cycle> nextArrival;
    sources.reserve(nodes.size());
    destRng.reserve(nodes.size());
    nextArrival.reserve(nodes.size());
    for (const NodeId src : nodes) {
        sources.emplace_back(arrivals, rate,
                             nodeStreamSeed(cfg.seed, src, 1));
        destRng.emplace_back(nodeStreamSeed(cfg.seed, src, 2));
        nextArrival.push_back(sources.back().next());
    }

    RunResult result;
    result.offeredLoad = rate * cfg.packetFlits;

    const Cycle measure_end = phases.warmup + phases.measure;
    const Cycle hard_end = measure_end + phases.drainLimit;
    std::uint64_t measured_injected = 0;
    std::uint64_t delivered_at_measure_start = 0;
    std::uint64_t delivered_at_measure_end = 0;
    // Deeper early-abort cap than runSynthetic's: on/off arrival
    // processes legitimately pile transient bursts tens of packets
    // deep per node and then drain — only a backlog far beyond any
    // burst working set means the offered load exceeds capacity.
    const std::uint64_t backlog_cap = nodes.size() * 24;

    Cycle cycle = 0;
    for (; cycle < hard_end; ++cycle) {
        if (cycle == phases.warmup)
            delivered_at_measure_start =
                net.stats().deliveredPackets;
        if (cycle == measure_end)
            delivered_at_measure_end = net.stats().deliveredPackets;

        const bool in_measure =
            cycle >= phases.warmup && cycle < measure_end;
        // Serial, ascending-node injection order: the arrival
        // heap's push interleaving is load-bearing (ROADMAP
        // total-event-order constraint), so schedules drain in a
        // fixed order no matter how they were generated.
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            while (nextArrival[i] <= cycle) {
                nextArrival[i] = sources[i].next();
                const NodeId src = nodes[i];
                const NodeId dst = trafficDestination(
                    pattern, src, n_all, destRng[i]);
                if (dst == src || !topo.nodeAlive(dst))
                    continue;
                net.inject(src, dst, cfg.packetFlits, kRequest,
                           cycle, 0, in_measure);
                measured_injected += in_measure ? 1 : 0;
            }
        }
        net.step(cycle);

        if ((cycle & 0xff) == 0 &&
            net.sourceQueueBacklog() > backlog_cap) {
            result.saturated = true;
            break;
        }
        if (cycle >= measure_end &&
            net.stats().measuredPackets >= measured_injected)
            break;  // every measured packet delivered
    }
    if (cycle >= hard_end)
        result.saturated = true;

    fillMeasuredStats(result, net.stats());
    result.simulatedCycles = cycle;
    if (cycle > phases.warmup && !nodes.empty()) {
        const Cycle window_end = std::min<Cycle>(cycle, measure_end);
        const std::uint64_t delivered_in_window =
            (delivered_at_measure_end > 0
                 ? delivered_at_measure_end
                 : net.stats().deliveredPackets) -
            delivered_at_measure_start;
        const double window = static_cast<double>(
            window_end - phases.warmup);
        if (window > 0) {
            result.acceptedLoad =
                static_cast<double>(delivered_in_window) *
                cfg.packetFlits /
                (window * static_cast<double>(nodes.size()));
            result.realizedLoad =
                static_cast<double>(measured_injected) *
                cfg.packetFlits /
                (window * static_cast<double>(nodes.size()));
        }
    }
    return result;
}

double
zeroLoadLatency(const net::Topology &topo, const SimConfig &cfg,
                TrafficPattern pattern, Executor *executor)
{
    RunPhases phases;
    phases.warmup = 500;
    phases.measure = 4000;
    phases.drainLimit = 20000;
    const auto result =
        runSynthetic(topo, pattern, 0.002, cfg, phases, executor);
    return result.avgTotalLatency;
}

namespace {

/**
 * One step of walking the serial search against the known probe
 * outcomes: either the search finished with a value, or it is
 * blocked on the probe rate in `needs`.
 */
struct SearchWalk {
    bool done = false;
    double value = 0.0;
    double needs = 0.0;
};

/** Pseudo-rate standing for the zero-load calibration run. */
constexpr double kZeroLoadProbe = -1.0;

} // namespace

double
findSaturationRate(const net::Topology &topo, TrafficPattern pattern,
                   const SimConfig &cfg, const RunPhases &phases,
                   double tolerance, Executor *executor)
{
    Executor &exec = executor ? *executor : serialExecutor();

    // Memoised probe outcomes. A probe is a pure function of its
    // rate — the traffic RNG seeds from cfg.seed alone — so probes
    // may be evaluated in any order (including speculatively, in
    // parallel) without changing what the serial search would pick.
    std::map<double, RunResult> memo;
    double zero_load = -1.0; // < 0 until calibrated

    const auto interpret = [&](const RunResult &r) {
        const double latency_cap = std::max(3.0 * zero_load, 120.0);
        return r.saturated || r.avgTotalLatency > latency_cap;
    };

    // Walk the exact serial algorithm (geometric descent, then
    // bisection) against memoised outcomes; `assume` supplies
    // hypothetical outcomes so the speculation planner can explore
    // the decision tree past the blocking probe.
    const auto walk =
        [&](const std::map<double, bool> &assume) -> SearchWalk {
        const bool zero_load_known =
            zero_load >= 0.0 || assume.count(kZeroLoadProbe) > 0;
        if (!zero_load_known)
            return {false, 0.0, kZeroLoadProbe};
        bool blocked = false;
        double needs = 0.0;
        const auto sat = [&](double rate) {
            if (zero_load >= 0.0) {
                const auto it = memo.find(rate);
                if (it != memo.end())
                    return interpret(it->second);
            }
            const auto ia = assume.find(rate);
            if (ia != assume.end())
                return ia->second;
            blocked = true;
            needs = rate;
            return false;
        };

        const bool sat_full = sat(1.0);
        if (blocked)
            return {false, 0.0, needs};
        if (!sat_full)
            return {true, 1.0, 0.0};
        double hi = 1.0;
        double probe = 0.5;
        while (probe > 1e-4) {
            const bool s = sat(probe);
            if (blocked)
                return {false, 0.0, needs};
            if (!s)
                break;
            hi = probe;
            probe /= 4.0;
        }
        if (probe <= 1e-4)
            return {true, probe, 0.0};
        double lo = probe;
        while (hi / lo > 1.0 + tolerance) {
            const double mid = std::sqrt(hi * lo);
            const bool s = sat(mid);
            if (blocked)
                return {false, 0.0, needs};
            if (s)
                hi = mid;
            else
                lo = mid;
        }
        return {true, lo, 0.0};
    };

    while (true) {
        const SearchWalk step = walk({});
        if (step.done)
            return step.value;

        // The probe the serial search needs right now, plus — when
        // idle workers exist — the probes it may need next (BFS
        // over both outcomes of each pending probe). Speculation
        // only ever uses capacity that would otherwise idle.
        std::vector<double> batch{step.needs};
        const int width = exec.availableParallelism();
        if (width > 1) {
            std::deque<std::map<double, bool>> frontier;
            if (step.needs == kZeroLoadProbe) {
                frontier.push_back({{kZeroLoadProbe, true}});
            } else {
                frontier.push_back({{step.needs, true}});
                frontier.push_back({{step.needs, false}});
            }
            int expansions = 0;
            while (static_cast<int>(batch.size()) < width &&
                   !frontier.empty() && expansions < 8 * width) {
                ++expansions;
                const std::map<double, bool> assume =
                    std::move(frontier.front());
                frontier.pop_front();
                const SearchWalk spec = walk(assume);
                if (spec.done)
                    continue;
                if (std::find(batch.begin(), batch.end(),
                              spec.needs) == batch.end())
                    batch.push_back(spec.needs);
                std::map<double, bool> yes = assume;
                yes[spec.needs] = true;
                frontier.push_back(std::move(yes));
                if (spec.needs != kZeroLoadProbe) {
                    std::map<double, bool> no = assume;
                    no[spec.needs] = false;
                    frontier.push_back(std::move(no));
                }
            }
        }

        std::vector<RunResult> results(batch.size());
        double zero_load_result = -1.0;
        std::vector<std::function<void()>> tasks;
        tasks.reserve(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            tasks.push_back([&, i] {
                // Probes pass the executor through, so a probe's
                // own route plane may shard onto workers that are
                // not busy with sibling probes (nested batches).
                if (batch[i] == kZeroLoadProbe)
                    zero_load_result = zeroLoadLatency(
                        topo, cfg, pattern, executor);
                else
                    results[i] =
                        runSynthetic(topo, pattern, batch[i], cfg,
                                     phases, executor);
            });
        }
        exec.runAll(tasks);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (batch[i] == kZeroLoadProbe)
                zero_load = zero_load_result;
            else
                memo.emplace(batch[i], std::move(results[i]));
        }
    }
}

std::vector<SweepPoint>
latencySweep(const net::Topology &topo, TrafficPattern pattern,
             const std::vector<double> &rates, const SimConfig &cfg,
             const RunPhases &phases, Executor *executor)
{
    std::vector<SweepPoint> points;
    points.reserve(rates.size());
    for (const double rate : rates)
        points.push_back(SweepPoint{
            rate, runSynthetic(topo, pattern, rate, cfg, phases,
                               executor)});
    return points;
}

} // namespace sf::sim

/**
 * @file
 * The packet: unit of routing and buffering (virtual cut-through).
 */

#pragma once

#include <cstdint>

#include "net/topology.hpp"
#include "net/types.hpp"

namespace sf::sim {

/** Message class: split request/reply traffic onto disjoint VCs to
 *  break protocol (request-reply) deadlock cycles. */
enum MsgClass : std::uint8_t {
    kRequest = 0,
    kReply = 1,
    kNumMsgClasses = 2,
};

/** One packet moving through the network. */
struct Packet {
    std::uint64_t id = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    /** Packet length in flits (serialization + buffer occupancy). */
    std::uint16_t flits = 1;
    std::uint8_t msgClass = kRequest;
    /** Topology deadlock class (String Figure: coordinate order). */
    std::uint8_t vcClass = 0;

    Cycle createdAt = 0;        ///< Enqueued at the source.
    Cycle enteredNetworkAt = 0; ///< Left the source queue.
    std::uint16_t hops = 0;
    bool measured = false;      ///< Counted in the stats window.

    // Escape-channel state -----------------------------------------
    bool escape = false;        ///< Permanently on the escape VC.
    bool escapeUpPhase = true;  ///< Up*-down*: still may take up links.
    std::uint8_t escapeVcBit = 0;  ///< Ring escape: dateline parity.

    // Cached route decision (recomputed on becoming head) ----------
    static constexpr int kMaxCandidates =
        static_cast<int>(net::kMaxRouteCandidates);
    LinkId candidates[kMaxCandidates] = {kInvalidLink, kInvalidLink,
                                         kInvalidLink, kInvalidLink};
    std::uint8_t numCandidates = 0;
    bool routed = false;        ///< Candidates are valid.

    /** Opaque caller data (workload op id, address, ...). */
    std::uint64_t payload = 0;
};

} // namespace sf::sim

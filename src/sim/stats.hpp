/**
 * @file
 * Simulation statistics: latency distributions, throughput,
 * hop/flit-hop counters for the energy model, escape usage.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/types.hpp"

namespace sf::sim {

/** Latency histogram with fixed-width bins and overflow bucket. */
class LatencyHistogram
{
  public:
    explicit LatencyHistogram(std::size_t bins = 4096)
        : bins_(bins, 0)
    {
    }

    void
    record(Cycle latency)
    {
        ++count_;
        sum_ += latency;
        if (latency < bins_.size())
            ++bins_[latency];
        else
            ++overflow_;
    }

    std::uint64_t count() const { return count_; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                        static_cast<double>(count_)
                      : 0.0;
    }

    /** Latency at quantile @p q in [0, 1]. */
    Cycle
    percentile(double q) const
    {
        if (count_ == 0)
            return 0;
        const auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(count_ - 1));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < bins_.size(); ++i) {
            seen += bins_[i];
            if (seen > target)
                return static_cast<Cycle>(i);
        }
        return static_cast<Cycle>(bins_.size());  // overflowed
    }

    void
    reset()
    {
        std::fill(bins_.begin(), bins_.end(), 0ull);
        overflow_ = count_ = sum_ = 0;
    }

  private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

/** Counters accumulated by the network model. */
struct NetStats {
    std::uint64_t injectedPackets = 0;
    std::uint64_t deliveredPackets = 0;
    std::uint64_t injectedFlits = 0;
    std::uint64_t deliveredFlits = 0;

    /** Measured-window deliveries only. */
    std::uint64_t measuredPackets = 0;
    std::uint64_t measuredHops = 0;
    /** Flit-hops of measured packets (energy: bits x hops). */
    std::uint64_t measuredFlitHops = 0;
    LatencyHistogram totalLatency;    ///< create -> eject
    LatencyHistogram networkLatency;  ///< network entry -> eject

    /** All-time flit-hops (for whole-run energy accounting). */
    std::uint64_t flitHops = 0;

    std::uint64_t escapeTransfers = 0;  ///< packets forced to escape
    std::uint64_t escapeHops = 0;
    std::uint64_t droppedUnroutable = 0;  ///< dst gated mid-flight

    double
    avgHops() const
    {
        return measuredPackets
                   ? static_cast<double>(measuredHops) /
                     static_cast<double>(measuredPackets)
                   : 0.0;
    }
};

} // namespace sf::sim

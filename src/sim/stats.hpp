/**
 * @file
 * Simulation statistics: latency distributions (linear and
 * HDR-style log-bucket), throughput, hop/flit-hop counters for the
 * energy model, escape usage.
 */

#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "net/types.hpp"

namespace sf::sim {

/** Latency histogram with fixed-width bins and overflow bucket. */
class LatencyHistogram
{
  public:
    explicit LatencyHistogram(std::size_t bins = 4096)
        : bins_(bins, 0)
    {
    }

    void
    record(Cycle latency)
    {
        ++count_;
        sum_ += latency;
        max_ = std::max(max_, latency);
        if (latency < bins_.size())
            ++bins_[latency];
        else
            ++overflow_;
    }

    std::uint64_t count() const { return count_; }

    /** Samples folded into the terminal overflow bucket. */
    std::uint64_t overflow() const { return overflow_; }

    /** Largest recorded latency (exact, even for overflows). */
    Cycle max() const { return max_; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                        static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Latency at quantile @p q in [0, 1]. Samples beyond the linear
     * range live in a terminal overflow bucket; a quantile landing
     * there reports the observed maximum (the honest upper bound)
     * rather than the meaningless bin count.
     */
    Cycle
    percentile(double q) const
    {
        if (count_ == 0)
            return 0;
        const auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(count_ - 1));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < bins_.size(); ++i) {
            seen += bins_[i];
            if (seen > target)
                return static_cast<Cycle>(i);
        }
        return max_;  // quantile falls in the overflow bucket
    }

    void
    reset()
    {
        std::fill(bins_.begin(), bins_.end(), 0ull);
        overflow_ = count_ = sum_ = 0;
        max_ = 0;
    }

  private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    Cycle max_ = 0;
};

/** Percentile summary extracted from a latency distribution. */
struct LatencySummary {
    std::uint64_t count = 0;
    double mean = 0.0;
    Cycle p50 = 0;
    Cycle p95 = 0;
    Cycle p99 = 0;
    Cycle p999 = 0;
    Cycle max = 0;
};

/**
 * HDR-style log-bucket latency histogram: fixed-size storage whose
 * buckets grow geometrically, so any latency from 0 to 2^31 cycles
 * records in O(1) with no allocation and ~3% worst-case relative
 * value error (32 sub-buckets per power of two; values below 32
 * are exact). Designed for the simulator's measure-path: record()
 * is one array increment, and two histograms merge by element-wise
 * addition, which is associative and deterministic — shard- and
 * order-independent aggregation is correct by construction.
 *
 * Percentiles report the lower bound of the quantile's bucket
 * (clamped to the exact observed max), so the extraction is a pure
 * function of the recorded multiset: any event stream that fills
 * identical buckets reports identical p50/p95/p99/p999/max.
 */
class LogHistogram
{
  public:
    /** Sub-bucket resolution: 2^5 = 32 buckets per octave. */
    static constexpr int kSubBits = 5;
    static constexpr std::uint64_t kSub = 1ull << kSubBits;
    /** Octave groups: values < 2^31 bucket exactly; larger values
     *  clamp into the terminal bucket (max() stays exact). */
    static constexpr int kGroups = 27;
    static constexpr std::size_t kBuckets =
        static_cast<std::size_t>(kGroups) * kSub;

    /** Bucket index of @p v (total order, monotone in v). */
    static constexpr std::size_t
    bucketIndex(Cycle v)
    {
        if (v < kSub)
            return static_cast<std::size_t>(v);
        const int msb = std::bit_width(v) - 1;
        const int group = msb - kSubBits + 1;
        if (group >= kGroups)
            return kBuckets - 1;
        const std::uint64_t sub =
            (v >> (msb - kSubBits)) & (kSub - 1);
        return static_cast<std::size_t>(group) * kSub +
               static_cast<std::size_t>(sub);
    }

    /** Smallest value mapping to bucket @p index. */
    static constexpr Cycle
    bucketFloor(std::size_t index)
    {
        if (index < kSub)
            return static_cast<Cycle>(index);
        const std::size_t group = index >> kSubBits;
        const std::uint64_t sub = index & (kSub - 1);
        return (kSub + sub) << (group - 1);
    }

    void
    record(Cycle latency)
    {
        ++count_;
        sum_ += latency;
        max_ = std::max(max_, latency);
        ++bins_[bucketIndex(latency)];
    }

    /** Element-wise merge: associative, commutative, lossless. */
    void
    merge(const LogHistogram &other)
    {
        for (std::size_t i = 0; i < kBuckets; ++i)
            bins_[i] += other.bins_[i];
        count_ += other.count_;
        sum_ += other.sum_;
        max_ = std::max(max_, other.max_);
    }

    std::uint64_t count() const { return count_; }

    Cycle max() const { return max_; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                        static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Latency at quantile @p q in [0, 1]: the floor of the bucket
     * holding the target rank, clamped to the exact observed max
     * (so percentile(1.0) == max()).
     */
    Cycle
    percentile(double q) const
    {
        if (count_ == 0)
            return 0;
        const auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(count_ - 1));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += bins_[i];
            if (seen > target)
                return std::min(bucketFloor(i), max_);
        }
        return max_;
    }

    /**
     * Count of samples recorded after @p snapshot was copied from
     * this histogram (windowed counting for reconvergence telemetry).
     */
    std::uint64_t
    countSince(const LogHistogram &snapshot) const
    {
        return count_ - snapshot.count_;
    }

    /**
     * Latency at quantile @p q among only the samples recorded
     * after @p snapshot was copied from this histogram. Because
     * merge/record are element-wise, the bin deltas are exactly the
     * window's multiset — the windowed percentile is as
     * deterministic as the cumulative one. Returns 0 for an empty
     * window.
     */
    Cycle
    percentileSince(const LogHistogram &snapshot, double q) const
    {
        const std::uint64_t n = count_ - snapshot.count_;
        if (n == 0)
            return 0;
        const auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(n - 1));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += bins_[i] - snapshot.bins_[i];
            if (seen > target)
                return std::min(bucketFloor(i), max_);
        }
        return max_;
    }

    /** The standard reporting cut: p50/p95/p99/p999/max + mean. */
    LatencySummary
    summary() const
    {
        LatencySummary s;
        s.count = count_;
        s.mean = mean();
        s.p50 = percentile(0.50);
        s.p95 = percentile(0.95);
        s.p99 = percentile(0.99);
        s.p999 = percentile(0.999);
        s.max = max_;
        return s;
    }

    void
    reset()
    {
        bins_.fill(0);
        count_ = sum_ = 0;
        max_ = 0;
    }

  private:
    std::array<std::uint64_t, kBuckets> bins_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    Cycle max_ = 0;
};

/** Counters accumulated by the network model. */
struct NetStats {
    std::uint64_t injectedPackets = 0;
    std::uint64_t deliveredPackets = 0;
    std::uint64_t injectedFlits = 0;
    std::uint64_t deliveredFlits = 0;

    /** Measured-window deliveries only. */
    std::uint64_t measuredPackets = 0;
    std::uint64_t measuredHops = 0;
    /** Flit-hops of measured packets (energy: bits x hops). */
    std::uint64_t measuredFlitHops = 0;
    LatencyHistogram totalLatency;    ///< create -> eject
    LatencyHistogram networkLatency;  ///< network entry -> eject
    /** HDR-style log-bucket twins of the two linear histograms:
     *  full dynamic range (tail percentiles stay meaningful under
     *  overload) at fixed size, recorded on the same measure path. */
    LogHistogram totalLatencyLog;
    LogHistogram networkLatencyLog;

    /** All-time flit-hops (for whole-run energy accounting). */
    std::uint64_t flitHops = 0;

    std::uint64_t escapeTransfers = 0;  ///< packets forced to escape
    std::uint64_t escapeHops = 0;
    std::uint64_t droppedUnroutable = 0;  ///< dst gated mid-flight

    /**
     * Topology generations applied (onTopologyChanged calls); the
     * model's current epoch. Knob-independent: identical at every
     * job/shard/route-cache setting.
     */
    std::uint64_t topologyEpochs = 0;
    /**
     * Memoized route-plane retire-and-rebuild handoffs across epoch
     * boundaries. Proof that reconfiguration rebuilds the cache
     * instead of permanently retiring it; knob-*dependent* (0 with
     * the cache off), so tests assert it and reports must not.
     */
    std::uint64_t routeCacheRebuilds = 0;

    /**
     * Commit-wavefront cost model (SimConfig::profileWavefront):
     * the measured per-cycle structure of the serial arbitration
     * walk, collected so ROADMAP item 5 (out-of-order arbitration)
     * can be decided on data. Per profiled cycle with at least one
     * active node: the walk length (nodes arbitrated, including
     * re-visits from the swap-removal compaction) and the critical-
     * path depth of the walk's dependency chains — a node depends
     * on every graph-adjacent node (shared link state) arbitrated
     * earlier the same cycle, so `depth` is the minimum number of
     * sequential rounds any order-preserving parallel arbitration
     * schedule needs, and walked/depth is its maximum speedup.
     */
    std::uint64_t wavefrontCycles = 0;      ///< profiled cycles
    std::uint64_t wavefrontNodesWalked = 0; ///< sum of walk lengths
    std::uint64_t wavefrontMaxWalk = 0;     ///< max per-cycle walk
    std::uint64_t wavefrontDepthSum = 0;    ///< sum of chain depths
    std::uint64_t wavefrontMaxDepth = 0;    ///< max per-cycle depth

    /**
     * Per-phase wall-clock breakdown (SimConfig::profilePhases):
     * steady-clock nanoseconds accumulated in each of the five
     * cycle phases — Land (arrival heap drain + loopbacks),
     * Snapshot (congestion freeze), Route (pure route plane,
     * sharded or inline), Arbitrate-decide (per-node decisions and
     * own-state mutation), Commit (σ-order effect-set replay) —
     * over phaseProfiledCycles step() calls. Wall-clock only:
     * changes no simulated event and never lands in a report.
     */
    std::uint64_t phaseProfiledCycles = 0;
    std::uint64_t phaseLandNs = 0;
    std::uint64_t phaseSnapshotNs = 0;
    std::uint64_t phaseRouteNs = 0;
    std::uint64_t phaseDecideNs = 0;
    std::uint64_t phaseCommitNs = 0;

    double
    avgHops() const
    {
        return measuredPackets
                   ? static_cast<double>(measuredHops) /
                     static_cast<double>(measuredPackets)
                   : 0.0;
    }
};

} // namespace sf::sim

/**
 * @file
 * Minimal parallel-execution interface for nested simulator work.
 *
 * The saturation search wants to evaluate several candidate probe
 * rates concurrently, but the simulator layer must not depend on
 * the experiment engine that owns the worker threads. This tiny
 * interface inverts the dependency: the scheduler's work pool
 * implements it (exp::WorkPool), and simulator APIs accept an
 * optional Executor. Passing nothing (or serialExecutor()) keeps
 * every evaluation inline on the calling thread.
 */

#pragma once

#include <functional>
#include <vector>

namespace sf::sim {

/** Runs batches of independent tasks, possibly in parallel. */
class Executor {
  public:
    virtual ~Executor() = default;

    /**
     * Workers likely available right now, including the calling
     * thread (>= 1). A sizing hint for speculative work: callers
     * should only fan out wider than 1 when idle capacity exists,
     * so speculation never displaces required work.
     */
    virtual int availableParallelism() const { return 1; }

    /**
     * Run every task to completion, in any order, possibly on
     * other threads; returns when all have finished. A task
     * exception propagates to the caller (first one wins) after
     * the batch has drained. Must be safe to call from inside a
     * task running on this executor (nested batches).
     */
    virtual void
    runAll(std::vector<std::function<void()>> &tasks) = 0;
};

/** The shared inline executor (runs every task on the caller). */
Executor &serialExecutor();

} // namespace sf::sim

#include "sim/reconfig_schedule.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "core/string_figure.hpp"
#include "net/rng.hpp"

namespace sf::sim {

namespace {

/** Distinguishes schedule-victim draws from traffic streams. */
constexpr std::uint64_t kScheduleSalt = 0xe1a57c5c7ed01e5ULL;

/** Random victim the feasibility courtesy accepts right now. */
NodeId
pickGateable(const core::StringFigure &topo, Rng &rng)
{
    std::vector<NodeId> eligible;
    const auto n = topo.graph().numNodes();
    eligible.reserve(n);
    for (NodeId u = 0; u < n; ++u) {
        if (topo.nodeAlive(u) && topo.reconfig().canGate(u))
            eligible.push_back(u);
    }
    assert(!eligible.empty() && "full topology must have gateable nodes");
    return eligible[rng.below(eligible.size())];
}

} // namespace

bool
isReconfigSeverity(std::string_view name)
{
    return std::find(kAllReconfigSeverities.begin(),
                     kAllReconfigSeverities.end(),
                     name) != kAllReconfigSeverities.end();
}

ReconfigSchedule
planReconfigSchedule(std::string_view severity,
                     const core::SFParams &params, Cycle warmup,
                     Cycle measure, std::uint64_t seed)
{
    core::StringFigure scratch(params);
    Rng rng(seed ^ kScheduleSalt);
    ReconfigSchedule s;
    const auto at = [&](Cycle num, Cycle den) {
        return warmup + measure * num / den;
    };

    if (severity == "leave_join") {
        const NodeId victim = pickGateable(scratch, rng);
        s.events.push_back({at(1, 4), ReconfigAction::Leave, victim});
        s.events.push_back({at(5, 8), ReconfigAction::Join, victim});
    } else if (severity == "fail") {
        // Planned leave, then the victim canGate() is guaranteed to
        // refuse next: the gated node's static ring successor. Its
        // unplanned failure punches real holes.
        const NodeId planned = pickGateable(scratch, rng);
        const NodeId casualty = scratch.reconfig().liveNext(0, planned);
        s.events.push_back({at(1, 5), ReconfigAction::Leave, planned});
        s.events.push_back({at(2, 5), ReconfigAction::Fail, casualty});
        s.events.push_back({at(3, 5), ReconfigAction::Join, casualty});
        s.events.push_back({at(4, 5), ReconfigAction::Join, planned});
    } else if (severity == "cascade") {
        // Halving cascade: gate down to ~50% live in two waves, then
        // restore in two. Victims come from a scratch reduceTo, so
        // the same gate order is feasible at apply time (gate
        // feasibility depends only on liveness, never on traffic).
        const std::size_t n = params.numNodes;
        const std::vector<NodeId> victims =
            scratch.reduceTo(n - n / 2, rng);
        const std::size_t half = victims.size() / 2;
        for (std::size_t i = 0; i < victims.size(); ++i) {
            const Cycle when = i < half ? at(1, 8) : at(2, 8);
            s.events.push_back(
                {when, ReconfigAction::Leave, victims[i]});
        }
        // Rejoin in reverse gate order (ungate is always feasible;
        // reverse order restores the intermediate liveness states).
        for (std::size_t i = victims.size(); i > 0; --i) {
            const Cycle when = i > half ? at(4, 8) : at(5, 8);
            s.events.push_back(
                {when, ReconfigAction::Join, victims[i - 1]});
        }
    } else {
        throw std::invalid_argument(
            "unknown reconfig schedule severity: " +
            std::string(severity));
    }

    assert(std::is_sorted(s.events.begin(), s.events.end(),
                          [](const ReconfigEvent &a,
                             const ReconfigEvent &b) {
                              return a.at < b.at;
                          }));
    return s;
}

} // namespace sf::sim

#include "sim/traffic.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace sf::sim {

std::string
patternName(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::UniformRandom: return "uniform";
      case TrafficPattern::Tornado: return "tornado";
      case TrafficPattern::Hotspot: return "hotspot";
      case TrafficPattern::Opposite: return "opposite";
      case TrafficPattern::NearestNeighbor: return "neighbor";
      case TrafficPattern::Complement: return "complement";
      case TrafficPattern::Partition2: return "partition2";
    }
    return "?";
}

NodeId
trafficDestination(TrafficPattern pattern, NodeId src,
                   std::size_t n, Rng &rng)
{
    const auto nn = static_cast<NodeId>(n);
    switch (pattern) {
      case TrafficPattern::UniformRandom:
        return static_cast<NodeId>(rng.below(n));
      case TrafficPattern::Tornado:
        return static_cast<NodeId>((src + nn / 2) % nn);
      case TrafficPattern::Hotspot:
        // A single fixed destination; mid-id keeps it away from any
        // privileged corner in grid-based baselines.
        return nn / 2;
      case TrafficPattern::Opposite:
        return nn - 1 - src;
      case TrafficPattern::NearestNeighbor:
        return static_cast<NodeId>((src + 1) % nn);
      case TrafficPattern::Complement:
        // Bitwise complement within the id width (Table III); reduce
        // modulo n for non-power-of-two scales.
        return static_cast<NodeId>((src ^ (nn - 1)) % nn);
      case TrafficPattern::Partition2: {
        // Two halves; nodes pick random destinations in their half.
        const NodeId half = nn / 2;
        if (src < half)
            return static_cast<NodeId>(rng.below(half));
        return static_cast<NodeId>(half + rng.below(nn - half));
      }
    }
    return src;
}

// ------------------------------------------------------- open loop

std::string
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Bursty: return "bursty";
      case ArrivalProcess::SelfSimilar: return "selfsim";
    }
    return "?";
}

ArrivalProcess
parseArrivalProcess(std::string_view name)
{
    if (name == "poisson")
        return ArrivalProcess::Poisson;
    if (name == "bursty")
        return ArrivalProcess::Bursty;
    if (name == "selfsim")
        return ArrivalProcess::SelfSimilar;
    throw std::invalid_argument("unknown arrival process: " +
                                std::string(name));
}

OpenLoopSource::OpenLoopSource(const ArrivalConfig &config,
                               double rate, std::uint64_t seed)
    : cfg_(config),
      rng_(seed),
      onRate_(rate),
      modulated_(config.process != ArrivalProcess::Poisson)
{
    if (rate <= 0.0) {
        onRate_ = 0.0;
        return;
    }
    if (modulated_) {
        onRate_ = rate * cfg_.burstFactor;
        // Random initial phase: each node starts on with the duty
        // probability 1/B, so dwell states never align across the
        // network at cycle 0 (which would be a synchronized burst
        // no open-loop client fleet produces).
        const bool start_on = rng_.chance(1.0 / cfg_.burstFactor);
        on_ = !start_on;
        toggleState();  // flips into the sampled state and draws
                        // its initial dwell
    }
}

double
OpenLoopSource::expo(double mean)
{
    // Inverse CDF; 1 - u maps [0,1) onto (0,1] so log() is finite.
    return -mean * std::log(1.0 - rng_.uniform());
}

double
OpenLoopSource::pareto(double mean)
{
    // Pareto(xm, a) has mean xm * a / (a - 1); invert for xm.
    const double a = cfg_.paretoShape;
    const double xm = mean * (a - 1.0) / a;
    return xm / std::pow(1.0 - rng_.uniform(), 1.0 / a);
}

void
OpenLoopSource::toggleState()
{
    on_ = !on_;
    const double mean =
        on_ ? cfg_.onMean : cfg_.onMean * (cfg_.burstFactor - 1.0);
    const double dwell =
        cfg_.process == ArrivalProcess::SelfSimilar ? pareto(mean)
                                                    : expo(mean);
    stateEnd_ = time_ + dwell;
}

Cycle
OpenLoopSource::next()
{
    if (onRate_ <= 0.0)
        return std::numeric_limits<Cycle>::max();
    if (!modulated_) {
        time_ += expo(1.0 / onRate_);
        return static_cast<Cycle>(time_);
    }
    for (;;) {
        if (!on_) {
            time_ = stateEnd_;
            toggleState();
            continue;
        }
        const double dt = expo(1.0 / onRate_);
        if (time_ + dt <= stateEnd_) {
            time_ += dt;
            return static_cast<Cycle>(time_);
        }
        // The draw crosses the end of the on dwell: the residual
        // is discarded at the renewal boundary (negligible at the
        // configured dwell lengths; realized load is reported).
        time_ = stateEnd_;
        toggleState();
    }
}

} // namespace sf::sim

#include "sim/traffic.hpp"

namespace sf::sim {

std::string
patternName(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::UniformRandom: return "uniform";
      case TrafficPattern::Tornado: return "tornado";
      case TrafficPattern::Hotspot: return "hotspot";
      case TrafficPattern::Opposite: return "opposite";
      case TrafficPattern::NearestNeighbor: return "neighbor";
      case TrafficPattern::Complement: return "complement";
      case TrafficPattern::Partition2: return "partition2";
    }
    return "?";
}

NodeId
trafficDestination(TrafficPattern pattern, NodeId src,
                   std::size_t n, Rng &rng)
{
    const auto nn = static_cast<NodeId>(n);
    switch (pattern) {
      case TrafficPattern::UniformRandom:
        return static_cast<NodeId>(rng.below(n));
      case TrafficPattern::Tornado:
        return static_cast<NodeId>((src + nn / 2) % nn);
      case TrafficPattern::Hotspot:
        // A single fixed destination; mid-id keeps it away from any
        // privileged corner in grid-based baselines.
        return nn / 2;
      case TrafficPattern::Opposite:
        return nn - 1 - src;
      case TrafficPattern::NearestNeighbor:
        return static_cast<NodeId>((src + 1) % nn);
      case TrafficPattern::Complement:
        // Bitwise complement within the id width (Table III); reduce
        // modulo n for non-power-of-two scales.
        return static_cast<NodeId>((src ^ (nn - 1)) % nn);
      case TrafficPattern::Partition2: {
        // Two halves; nodes pick random destinations in their half.
        const NodeId half = nn / 2;
        if (src < half)
            return static_cast<NodeId>(rng.below(half));
        return static_cast<NodeId>(half + rng.below(nn - half));
      }
    }
    return src;
}

} // namespace sf::sim

/**
 * @file
 * Simulator configuration (paper Table I defaults).
 *
 * The network clock matches the memory-node clock: 312.5 MHz with
 * HMC-based nodes, i.e. one cycle = 3.2 ns. The per-hop SerDes delay
 * of 3.2 ns (1.6 ns each end) is one extra cycle per hop. Links are
 * one flit wide per cycle; a 64-byte cache line plus header rides in
 * five 16-byte flits.
 */

#pragma once

#include <cstdint>

#include "core/routing_policy.hpp"
#include "net/types.hpp"

namespace sf::sim {

/** Tunable parameters of one simulation. */
struct SimConfig {
    /** Buffer depth of each virtual channel, in flits. */
    int vcDepth = 16;
    /** Flits per data packet (header + 64B line in 16B flits). */
    int packetFlits = 5;
    /** Extra cycles per hop for SerDes (3.2 ns at 312.5 MHz). */
    Cycle serdesCycles = 1;
    /**
     * Head-of-line wait (cycles) before a packet transfers to the
     * escape virtual channel. High enough that ordinary congestion
     * rides it out; only a genuine cyclic stall escalates.
     */
    Cycle escapeThreshold = 256;
    /**
     * Adaptive routing: a port whose downstream buffer is filled
     * beyond this fraction is diverted around when an alternative
     * candidate exists (paper: user-defined threshold, e.g. 50%).
     */
    double adaptiveThreshold = 0.5;
    /** Enable congestion-aware selection among route candidates. */
    bool adaptive = true;
    /** Cycles without any forward progress that mean deadlock. */
    Cycle watchdogCycles = 50000;
    /** Bits per flit (16-byte flits). */
    int flitBits = 128;
    /** Traffic/selection randomness seed. */
    std::uint64_t seed = 1;
    /**
     * Route-plane shards (`sfx --shards`): number of spatial node
     * partitions whose head-packet route computations run
     * concurrently each cycle when the simulation also has an
     * Executor (see NetworkModel::setRouteExecutor). Routes are
     * pure functions of the immutable topology, so the report is
     * byte-identical at every shard count — 1 disables the phase
     * and runs the exact serial engine.
     */
    int shards = 1;
    /**
     * Memoized route plane (`sfx --route-cache`): cache the pure
     * greedy route computation per (current, dest) pair in compact
     * per-topology next-hop tables (core/route_cache.hpp). A cached
     * value is the same pure function's output, so results are
     * byte-identical on or off — an execution knob like jobs and
     * shards, kept for A/B benchmarking. The cache memoizes one
     * topology generation at a time: a mid-run reconfiguration
     * retires it and rebuilds it against the new epoch
     * (NetworkModel::onTopologyChanged), so it stays engaged across
     * elastic runs.
     */
    bool routeCache = true;
    /**
     * Routing policy (`sfx --policy`): which core::RoutingPolicy
     * answers route queries. Unlike shards/routeCache this is NOT
     * an execution knob — non-greedy policies change simulated
     * events (that is their purpose), so the experiment layer
     * records it in checkpoint metadata and reports. `greedy`
     * routes the incumbent topology routing through the seam with
     * zero behaviour change; adaptive policies read a congestion
     * snapshot frozen once per cycle at the route-plane barrier,
     * keeping every policy deterministic and shard-compatible.
     * The route cache only engages when the policy is cacheable
     * (greedy); adaptive decisions are congestion-dependent and
     * must never be memoized.
     */
    core::RoutingPolicyKind policy = core::RoutingPolicyKind::Greedy;
    /**
     * Commit-wavefront scheduler (`sfx --wavefront`): maximum
     * number of in-flight per-node decide stages the phase-pipeline
     * engine keeps ahead of the serial commit cursor when the
     * simulation also has an Executor (see
     * NetworkModel::setWavefrontExecutor). Decide stages run on
     * Executor workers as soon as every graph-adjacent σ-order
     * predecessor has committed; commits replay each node's
     * buffered effect set in exact serial walk order, so the report
     * is byte-identical at every wavefront width — 0 disables the
     * scheduler and runs the exact serial decide→commit loop. An
     * execution knob like shards/routeCache: never part of the
     * spec hash, allowed to change across checkpoint resumes.
     */
    int wavefront = 0;
    /**
     * Commit-wavefront cost-model instrumentation (ROADMAP item 5):
     * per-cycle counters for the serial arbitration walk length and
     * the dependency-chain depth across graph-adjacent nodes, the
     * bound on any deterministic out-of-order arbitration schedule.
     * Off by default — the profiling pass costs a neighbour scan
     * per arbitrated node. Changes no simulated event either way.
     */
    bool profileWavefront = false;
    /**
     * Per-phase wall-clock instrumentation: accumulate steady-clock
     * nanoseconds spent in each of the five cycle phases (land,
     * snapshot, route, arbitrate-decide, commit) into NetStats so
     * wavefront speedups — or their absence — are attributable.
     * Forces the serial arbitration walk (phase timings under
     * concurrent decides would be meaningless sums across threads)
     * and costs two clock reads per arbitrated node, so it is a
     * profiling knob, off by default. Changes no simulated event.
     */
    bool profilePhases = false;
    /**
     * Run ReconfigEngine::checkInvariants() after every mid-traffic
     * gate/ungate wave of an elastic run and throw on any
     * inconsistency. Always on in debug builds (!NDEBUG); this flag
     * opts Release test binaries in. Changes no simulated event.
     */
    bool validateReconfig = false;

    /** Nanoseconds per network cycle (312.5 MHz). */
    static constexpr double kNsPerCycle = 3.2;
};

} // namespace sf::sim

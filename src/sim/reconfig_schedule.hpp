/**
 * @file
 * Seeded, deterministic mid-run reconfiguration schedules: the
 * event stream that turns an open-loop serving run into an
 * *elastic* serving run (paper Section III-C under load).
 *
 * A schedule is a list of (cycle, action, node) events, sorted by
 * cycle. Events sharing a cycle form one *wave*: the simulator
 * applies the whole wave serially at that cycle's barrier (before
 * injection and before the network steps), then advances the
 * network model's topology generation exactly once — so routing
 * stays a pure per-epoch function and the event stream is
 * byte-identical at every job, shard, and route-cache setting.
 *
 * Actions:
 *  - Leave: planned down-scale. Applied through the feasibility
 *    courtesy (`canGate`); a refused victim is skipped and counted,
 *    never forced.
 *  - Fail: unplanned loss. Applied *without* the courtesy — the
 *    gate proceeds even where canGate would refuse, leaving ring
 *    holes and exercising the escalation and drop paths for
 *    in-flight packets whose destination vanished.
 *  - Join: up-scale (planned rejoin or repair completion).
 *
 * Schedules are pure functions of (severity, topology params,
 * phase lengths, seed): planning gates victims on a private
 * scratch StringFigure, never on the instance being simulated, so
 * planning is side-effect free and the apply-time outcome of every
 * Leave matches the plan exactly (gate feasibility depends only on
 * liveness, never on traffic).
 */

#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "core/params.hpp"
#include "net/types.hpp"

namespace sf::sim {

/** What a reconfiguration event does to its node. */
enum class ReconfigAction {
    Leave,  ///< planned gate, honours the canGate courtesy
    Join,   ///< ungate (rejoin)
    Fail,   ///< unplanned gate, no feasibility courtesy
};

/** One scheduled reconfiguration event. */
struct ReconfigEvent {
    Cycle at = 0;
    ReconfigAction action = ReconfigAction::Leave;
    NodeId node = kInvalidNode;
};

/** A planned event stream (events nondecreasing in `at`). */
struct ReconfigSchedule {
    std::vector<ReconfigEvent> events;

    bool empty() const { return events.empty(); }
};

/**
 * The named schedule severities the elastic_serving family sweeps
 * (and `sfx --reconfig-schedule` selects), mildest first:
 *  - "leave_join": one planned leave inside the measure window,
 *    one rejoin — the paper's elementary elastic cycle.
 *  - "fail": a planned leave followed by an *unplanned* failure of
 *    a statically adjacent node (exactly the victim canGate
 *    refuses), then staged rejoins — the degraded-mode story.
 *  - "cascade": a halving cascade — two waves gating down to ~50%
 *    live nodes, then two waves restoring — the paper's headline
 *    elasticity envelope, under load.
 */
inline constexpr std::array<std::string_view, 3>
    kAllReconfigSeverities{"leave_join", "fail", "cascade"};

/** Is @p name one of kAllReconfigSeverities? */
bool isReconfigSeverity(std::string_view name);

/**
 * Plan the @p severity schedule for a String Figure built from
 * @p params, with events placed inside the measure window
 * [@p warmup, @p warmup + @p measure). Victim selection draws from
 * @p seed on a scratch topology; the result is a pure function of
 * the arguments. Throws std::invalid_argument for an unknown
 * severity name.
 */
ReconfigSchedule planReconfigSchedule(std::string_view severity,
                                      const core::SFParams &params,
                                      Cycle warmup, Cycle measure,
                                      std::uint64_t seed);

} // namespace sf::sim

#include "sim/executor.hpp"

#include <exception>

namespace sf::sim {

namespace {

class SerialExecutor final : public Executor {
  public:
    void
    runAll(std::vector<std::function<void()>> &tasks) override
    {
        // Drain the whole batch even when a task throws (the
        // Executor contract): rethrow the first failure after.
        std::exception_ptr error;
        for (auto &task : tasks) {
            try {
                task();
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
    }
};

} // namespace

Executor &
serialExecutor()
{
    static SerialExecutor instance;
    return instance;
}

} // namespace sf::sim

/**
 * @file
 * Memory-node model: banked die-stacked DRAM behind each router.
 *
 * Each 8 GB node (HMC-like) models @c numBanks independent banks
 * with open-row policy and FCFS per-bank queueing. A request's
 * service latency is tCL on a row hit and tRP + tRCD + tCL on a row
 * miss (honouring tRAS minimum activate spacing), after any earlier
 * requests on the same bank complete.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "mem/dram_timing.hpp"
#include "net/types.hpp"

namespace sf::mem {

/** One memory node's DRAM stack. */
class MemoryNode
{
  public:
    /**
     * @param timing DRAM timing parameters.
     * @param num_banks Independent banks (HMC vault-like).
     * @param row_bytes Row-buffer coverage per bank.
     */
    explicit MemoryNode(const DramTiming &timing = {},
                        int num_banks = 16,
                        std::uint64_t row_bytes = 2048)
        : timing_(timing), rowBytes_(row_bytes),
          banks_(static_cast<std::size_t>(num_banks))
    {
    }

    /**
     * Issue an access to @p local_addr at @p now.
     *
     * @return Cycle at which the data is available (read) or the
     *         write commits.
     */
    Cycle
    access(std::uint64_t local_addr, bool is_write, Cycle now)
    {
        (void)is_write;  // same bank occupancy either way
        const std::uint64_t row = local_addr / rowBytes_;
        Bank &bank = banks_[row % banks_.size()];
        const Cycle start = std::max(now, bank.busyUntil);
        Cycle done;
        if (bank.rowOpen && bank.openRow == row) {
            done = start + timing_.cl();
            ++rowHits_;
        } else {
            // Precharge (honouring tRAS), activate, then column.
            const Cycle precharge_at =
                std::max(start, bank.lastActivate + timing_.ras());
            done = precharge_at + timing_.rp() + timing_.rcd() +
                   timing_.cl();
            bank.lastActivate = precharge_at + timing_.rp();
            bank.rowOpen = true;
            bank.openRow = row;
            ++rowMisses_;
        }
        bank.busyUntil = done;
        return done;
    }

    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }

  private:
    struct Bank {
        Cycle busyUntil = 0;
        Cycle lastActivate = 0;
        std::uint64_t openRow = 0;
        bool rowOpen = false;
    };

    DramTiming timing_;
    std::uint64_t rowBytes_;
    std::vector<Bank> banks_;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
};

} // namespace sf::mem

/**
 * @file
 * Memory-network power management (paper Sections III-C and VI).
 *
 * The power manager dynamically gates memory nodes to a target live
 * count. It follows the paper's constraints:
 *  - reconfigurations are rate-limited by the reconfiguration
 *    granularity (minimum 100 us between operations);
 *  - a victim is gated only when quiescent (the blocking phase of
 *    the atomic protocol: no traffic buffered at or in flight to
 *    it) and only when every ring it sits on can be re-closed;
 *  - gating charges the link sleep latency (680 ns) and ungating
 *    the wake-up latency (5 us) as unavailability windows.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/string_figure.hpp"
#include "mem/dram_timing.hpp"
#include "net/rng.hpp"
#include "sim/network.hpp"

namespace sf::mem {

/** Power-management timing constants (paper Section VI). */
struct PowerParams {
    double sleepLatencyNs = 680.0;
    double wakeLatencyNs = 5000.0;
    double reconfigGranularityNs = 100000.0;  ///< 100 us

    Cycle
    sleepCycles() const
    {
        return DramTiming::toCycles(sleepLatencyNs);
    }
    Cycle
    wakeCycles() const
    {
        return DramTiming::toCycles(wakeLatencyNs);
    }
    Cycle
    granularityCycles() const
    {
        return DramTiming::toCycles(reconfigGranularityNs);
    }
};

/** Drives dynamic scale changes of a StringFigure network. */
class PowerManager
{
  public:
    PowerManager(core::StringFigure &topo, sim::NetworkModel &net,
                 const PowerParams &params = {},
                 std::uint64_t seed = 1)
        : topo_(&topo), net_(&net), params_(params), rng_(seed)
    {
    }

    /** Ask for @p live_target live nodes (gating or waking). */
    void setTarget(std::size_t live_target)
    {
        target_ = live_target;
    }

    /** Nodes never selected as victims (socket attachments). */
    void
    setProtected(const std::vector<NodeId> &nodes)
    {
        protected_.assign(topo_->numNodes(), false);
        for (const NodeId u : nodes)
            protected_[u] = true;
    }

    /**
     * Advance power management by one cycle: at most one gate or
     * ungate per reconfiguration-granularity window, victims must
     * be quiescent and repairable.
     */
    void tick(Cycle now);

    /** Nodes gated so far, most recent last. */
    const std::vector<NodeId> &gatedNodes() const { return gated_; }

    /** Cumulative cycles spent in sleep/wake transitions. */
    Cycle transitionCycles() const { return transitionCycles_; }

    /** Reconfiguration operations performed. */
    std::uint64_t reconfigOps() const { return ops_; }

    /** True once the live count matches the target. */
    bool
    settled() const
    {
        return topo_->reconfig().numAlive() == target_;
    }

  private:
    core::StringFigure *topo_;
    sim::NetworkModel *net_;
    PowerParams params_;
    Rng rng_;
    std::size_t target_ = SIZE_MAX;
    std::vector<NodeId> gated_;
    std::vector<bool> protected_;
    Cycle nextAllowed_ = 0;
    Cycle transitionCycles_ = 0;
    std::uint64_t ops_ = 0;
};

} // namespace sf::mem

/**
 * @file
 * Physical-address to memory-node interleaving.
 *
 * Data is distributed across the live memory nodes by physical
 * address (paper Section V, Workloads) at page granularity. When the
 * network is down-scaled, the map rebuilds over the surviving nodes
 * (capacity shrinks; resident data is assumed migrated — see
 * DESIGN.md substitutions).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"

namespace sf::mem {

/** Page-interleaved address map over the live nodes. */
class AddressMap
{
  public:
    /**
     * @param interleave_bytes Contiguous bytes per node before the
     *        map moves to the next node (4 KB pages by default).
     */
    explicit AddressMap(const net::Topology &topo,
                        std::uint64_t interleave_bytes = 4096)
        : interleave_(interleave_bytes)
    {
        rebuild(topo);
    }

    /** Re-derive the live node list (after reconfiguration). */
    void
    rebuild(const net::Topology &topo)
    {
        nodes_.clear();
        for (NodeId u = 0; u < topo.numNodes(); ++u) {
            if (topo.nodeAlive(u))
                nodes_.push_back(u);
        }
    }

    /** Owning memory node of @p addr. */
    NodeId
    node(std::uint64_t addr) const
    {
        return nodes_[(addr / interleave_) % nodes_.size()];
    }

    /** Node-local address (dense within the node). */
    std::uint64_t
    localAddr(std::uint64_t addr) const
    {
        const std::uint64_t page = addr / interleave_;
        return (page / nodes_.size()) * interleave_ +
               addr % interleave_;
    }

    std::size_t numNodes() const { return nodes_.size(); }
    const std::vector<NodeId> &nodes() const { return nodes_; }

  private:
    std::uint64_t interleave_;
    std::vector<NodeId> nodes_;
};

} // namespace sf::mem

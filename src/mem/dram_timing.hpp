/**
 * @file
 * DRAM timing and energy parameters (paper Table I).
 */

#pragma once

#include "net/types.hpp"
#include "sim/sim_config.hpp"

namespace sf::mem {

/** Timing of the die-stacked DRAM in each memory node. */
struct DramTiming {
    double tRcdNs = 12.0;  ///< activate -> column command
    double tClNs = 6.0;    ///< column command -> data
    double tRpNs = 14.0;   ///< precharge
    double tRasNs = 33.0;  ///< activate -> precharge minimum

    /** Convert nanoseconds to (ceil) network cycles. */
    static Cycle
    toCycles(double ns)
    {
        return static_cast<Cycle>(
            (ns + sim::SimConfig::kNsPerCycle - 1e-9) /
            sim::SimConfig::kNsPerCycle);
    }

    Cycle rcd() const { return toCycles(tRcdNs); }
    Cycle cl() const { return toCycles(tClNs); }
    Cycle rp() const { return toCycles(tRpNs); }
    Cycle ras() const { return toCycles(tRasNs); }
};

/** Energy constants (paper Table I). */
struct EnergyParams {
    double networkPjPerBitHop = 5.0;   ///< 5 pJ/bit/hop
    double dramPjPerBit = 12.0;        ///< 12 pJ/bit read/write
    /**
     * Background (clocking/SerDes idle) energy per active node per
     * cycle, in pJ. Not in Table I: the paper's power-management
     * study implicitly charges powered-on routers something that
     * gating recovers. This knob makes Fig 9(b) reproducible;
     * bench/fig09b prints results for several values including 0
     * (see DESIGN.md, substitutions).
     */
    double idlePjPerNodeCycle = 10.0;
};

} // namespace sf::mem

/**
 * @file
 * Dynamic-energy accounting (paper Table I: 5 pJ/bit/hop network,
 * 12 pJ/bit DRAM) and energy-delay product.
 */

#pragma once

#include <cstdint>

#include "mem/dram_timing.hpp"
#include "sim/sim_config.hpp"

namespace sf::mem {

/** Accumulates energy over one run. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = {})
        : params_(params)
    {
    }

    /** Charge a packet movement: @p bits over @p hops hops. */
    void
    addNetwork(std::uint64_t bits, std::uint64_t hops)
    {
        networkPj_ += params_.networkPjPerBitHop *
                      static_cast<double>(bits) *
                      static_cast<double>(hops);
    }

    /** Charge network flit-hops directly (bits = flitHops x width). */
    void
    addFlitHops(std::uint64_t flit_hops, int flit_bits)
    {
        networkPj_ += params_.networkPjPerBitHop *
                      static_cast<double>(flit_hops) *
                      static_cast<double>(flit_bits);
    }

    /** Charge a DRAM access of @p bits. */
    void
    addDram(std::uint64_t bits)
    {
        dramPj_ += params_.dramPjPerBit * static_cast<double>(bits);
    }

    /** Charge background energy: @p node_cycles active node-cycles. */
    void
    addBackground(std::uint64_t node_cycles)
    {
        backgroundPj_ += params_.idlePjPerNodeCycle *
                         static_cast<double>(node_cycles);
    }

    double networkPj() const { return networkPj_; }
    double dramPj() const { return dramPj_; }
    double backgroundPj() const { return backgroundPj_; }
    double
    totalPj() const
    {
        return networkPj_ + dramPj_ + backgroundPj_;
    }

    /** Energy-delay product in joule-seconds. */
    double
    edp(Cycle runtime_cycles) const
    {
        const double joules = totalPj() * 1e-12;
        const double seconds = static_cast<double>(runtime_cycles) *
                               sim::SimConfig::kNsPerCycle * 1e-9;
        return joules * seconds;
    }

  private:
    EnergyParams params_;
    double networkPj_ = 0.0;
    double dramPj_ = 0.0;
    double backgroundPj_ = 0.0;
};

} // namespace sf::mem

#include "mem/power_manager.hpp"

#include <algorithm>
#include <numeric>

namespace sf::mem {

void
PowerManager::tick(Cycle now)
{
    if (target_ == SIZE_MAX || now < nextAllowed_ || settled())
        return;
    auto &reconfig = topo_->reconfig();

    if (reconfig.numAlive() > target_) {
        // Scale down: find a quiescent, repairable victim.
        std::vector<NodeId> order(topo_->numNodes());
        std::iota(order.begin(), order.end(), 0u);
        rng_.shuffle(order);
        for (const NodeId u : order) {
            if (!protected_.empty() && protected_[u])
                continue;
            if (!reconfig.alive(u) || !reconfig.canGate(u) ||
                !net_->nodeQuiescent(u))
                continue;
            topo_->gate(u);
            net_->onTopologyChanged();
            gated_.push_back(u);
            transitionCycles_ += params_.sleepCycles();
            ++ops_;
            nextAllowed_ = now + params_.granularityCycles();
            return;
        }
        // No victim this window; retry shortly rather than spinning
        // the search every cycle.
        nextAllowed_ = now + 64;
    } else {
        // Scale up: wake the most recently gated node (LIFO keeps
        // ring-repair nesting simple).
        if (gated_.empty()) {
            target_ = reconfig.numAlive();
            return;
        }
        const NodeId u = gated_.back();
        gated_.pop_back();
        topo_->ungate(u);
        net_->onTopologyChanged();
        transitionCycles_ += params_.wakeCycles();
        ++ops_;
        nextAllowed_ = now + params_.granularityCycles();
    }
}

} // namespace sf::mem

#include "core/string_figure.hpp"

#include <cassert>

#include "net/paths.hpp"

namespace sf::core {

StringFigure::StringFigure(const SFParams &params)
    : data_(buildTopologyData(params)), router_(data_, tables_)
{
    tables_.rebuildAll(data_.graph);
    reconfig_ = std::make_unique<ReconfigEngine>(data_, tables_);
}

std::size_t
StringFigure::routeCandidates(NodeId current, NodeId dest,
                              bool first_hop,
                              std::span<LinkId> out) const
{
    return router_.candidates(current, dest, first_hop, out);
}

LinkId
StringFigure::ringEscapeLink(NodeId current) const
{
    const NodeId next = reconfig_->liveNext(0, current);
    if (next == current)
        return kInvalidLink;
    // Both link modes register the clockwise direction in the wire
    // inventory (bidirectional wires register both directions).
    const LinkId fwd = data_.findWire(current, next);
    if (fwd != kInvalidLink && data_.graph.link(fwd).enabled)
        return fwd;
    return kInvalidLink;  // space-0 hole (ShortcutsOnly mode only)
}

int
StringFigure::vcClass(NodeId src, NodeId dst) const
{
    // Paper Section IV: one VC for packets travelling toward higher
    // space coordinates, the other toward lower. Space 0 orders the
    // comparison; node id breaks exact ties.
    const Coord a = data_.spaces.coord(src, 0);
    const Coord b = data_.spaces.coord(dst, 0);
    if (a != b)
        return a < b ? 0 : 1;
    return src < dst ? 0 : 1;
}

ReconfigResult
StringFigure::gate(NodeId u)
{
    const ReconfigResult r = reconfig_->gate(u);
    if (r.applied)
        invalidateFallback();
    return r;
}

ReconfigResult
StringFigure::ungate(NodeId u)
{
    const ReconfigResult r = reconfig_->ungate(u);
    if (r.applied)
        invalidateFallback();
    return r;
}

std::vector<NodeId>
StringFigure::reduceTo(std::size_t live_target, Rng &rng)
{
    std::vector<NodeId> gated;
    if (reconfig_->numAlive() <= live_target)
        return gated;
    gated = reconfig_->gateRandom(
        reconfig_->numAlive() - live_target, rng);
    invalidateFallback();
    return gated;
}

void
StringFigure::invalidateFallback()
{
    const std::lock_guard<std::mutex> lock(fallbackMutex_);
    fallbackValid_.store(false, std::memory_order_release);
    fallbackNextLink_.clear();
}

LinkId
StringFigure::escapeLink(NodeId current, NodeId dest) const
{
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t n = numNodes();
    if (!fallbackValid_.load(std::memory_order_acquire))
        buildFallbackTable();
    return fallbackNextLink_[current * n + dest];
}

void
StringFigure::buildFallbackTable() const
{
    const std::lock_guard<std::mutex> lock(fallbackMutex_);
    if (fallbackValid_.load(std::memory_order_relaxed))
        return;
    const std::size_t n = numNodes();
    // Next-hop table from per-destination reverse BFS: for each
    // destination column, a node's entry is any enabled out-link
    // that decreases the BFS distance to the destination.
    fallbackNextLink_.assign(n * n, kInvalidLink);
    net::Graph reversed(n);
    const net::Graph &g = data_.graph;
    for (LinkId id = 0; id < static_cast<LinkId>(g.numLinks());
         ++id) {
        const net::Link &l = g.link(id);
        if (l.enabled)
            reversed.addLink(l.dst, l.src);
    }
    for (NodeId dst = 0; dst < n; ++dst) {
        if (!reconfig_->alive(dst))
            continue;
        const auto dist = net::bfsDistances(
            reversed, dst, reconfig_->aliveMask());
        for (NodeId u = 0; u < n; ++u) {
            if (u == dst || dist[u] == net::kUnreachable)
                continue;
            for (LinkId id : g.outLinks(u)) {
                const net::Link &l = g.link(id);
                if (l.enabled &&
                    dist[l.dst] != net::kUnreachable &&
                    dist[l.dst] < dist[u]) {
                    fallbackNextLink_[u * n + dst] = id;
                    break;
                }
            }
        }
    }
    fallbackValid_.store(true, std::memory_order_release);
}

} // namespace sf::core

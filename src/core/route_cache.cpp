#include "core/route_cache.hpp"

#include <algorithm>

namespace sf::core {

RouteCache::RouteCache(const net::Topology &topo)
    : topo_(&topo), n_(topo.numNodes()), committed_(n_),
      firstHop_(n_)
{
    // The one-byte committed encoding reserves three sentinels, so
    // out-link indices must stay below kNoRoute. Every topology in
    // this library has out-degree under 16; a hypothetical denser
    // one simply runs uncached.
    active_ = true;
    const net::Graph &g = topo.graph();
    for (NodeId u = 0; u < n_; ++u) {
        if (g.outLinks(u).size() >= kNoRoute) {
            active_ = false;
            break;
        }
    }
}

std::size_t
RouteCache::committedRows() const
{
    std::size_t rows = 0;
    for (const auto &row : committed_)
        rows += row ? 1 : 0;
    return rows;
}

std::size_t
RouteCache::firstHopRows() const
{
    std::size_t rows = 0;
    for (const auto &row : firstHop_)
        rows += row ? 1 : 0;
    return rows;
}

int
RouteCache::outIndexOf(NodeId current, LinkId link) const
{
    const std::vector<LinkId> &out =
        topo_->graph().outLinks(current);
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i] == link)
            return static_cast<int>(i);
    }
    return -1;
}

std::size_t
RouteCache::candidates(NodeId current, NodeId dest, bool first_hop,
                       std::span<LinkId> out)
{
    return first_hop ? firstHopLookup(current, dest, out)
                     : committedLookup(current, dest, out);
}

std::size_t
RouteCache::committedLookup(NodeId current, NodeId dest,
                            std::span<LinkId> out)
{
    std::unique_ptr<std::uint8_t[]> &row = committed_[current];
    if (!row) {
        row = std::make_unique<std::uint8_t[]>(n_);
        std::fill_n(row.get(), n_, kUnfilled);
    }
    std::uint8_t &entry = row[dest];
    if (entry == kUnfilled) {
        LinkId buf[net::kMaxRouteCandidates];
        const std::size_t count =
            topo_->routeCandidates(current, dest, false, buf);
        if (count == 0) {
            entry = kNoRoute;
        } else if (count == 1) {
            const int idx = outIndexOf(current, buf[0]);
            entry = idx >= 0 ? static_cast<std::uint8_t>(idx)
                             : kUncacheable;
        } else {
            // Multiple committed candidates (a topology that widens
            // regardless of first_hop — mesh parallel wires,
            // table-routed equal-cost sets): one byte cannot hold
            // the set, so this pair stays on the direct call.
            entry = kUncacheable;
        }
        // Serve the fill from the just-computed value.
        const std::size_t emit = std::min(count, out.size());
        std::copy_n(buf, emit, out.begin());
        return emit;
    }
    if (entry == kNoRoute)
        return 0;
    if (entry == kUncacheable)
        return topo_->routeCandidates(current, dest, false, out);
    if (out.empty())
        return 0;
    out[0] = topo_->graph().outLinks(current)[entry];
    return 1;
}

std::size_t
RouteCache::firstHopLookup(NodeId current, NodeId dest,
                           std::span<LinkId> out)
{
    std::unique_ptr<FirstHopEntry[]> &row = firstHop_[current];
    if (!row)
        row = std::make_unique<FirstHopEntry[]>(n_);
    FirstHopEntry &entry = row[dest];
    if (entry.count == kUnfilled) {
        LinkId buf[net::kMaxRouteCandidates];
        const std::size_t count =
            topo_->routeCandidates(current, dest, true, buf);
        std::uint8_t encoded =
            static_cast<std::uint8_t>(count);
        std::uint8_t idx[net::kMaxRouteCandidates] = {};
        for (std::size_t i = 0; i < count; ++i) {
            const int j = outIndexOf(current, buf[i]);
            if (j < 0) {
                encoded = kUncacheable;
                break;
            }
            idx[i] = static_cast<std::uint8_t>(j);
        }
        if (encoded != kUncacheable)
            std::copy_n(idx, net::kMaxRouteCandidates, entry.idx);
        entry.count = encoded;
        const std::size_t emit = std::min(count, out.size());
        std::copy_n(buf, emit, out.begin());
        return emit;
    }
    if (entry.count == kUncacheable)
        return topo_->routeCandidates(current, dest, true, out);
    const std::vector<LinkId> &links =
        topo_->graph().outLinks(current);
    const std::size_t emit =
        std::min<std::size_t>(entry.count, out.size());
    for (std::size_t i = 0; i < emit; ++i)
        out[i] = links[entry.idx[i]];
    return emit;
}

} // namespace sf::core

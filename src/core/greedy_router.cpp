#include "core/greedy_router.hpp"

#include <algorithm>
#include <cassert>

namespace sf::core {

Coord
GreedyRouter::distance(NodeId u, NodeId t) const
{
    const VirtualSpaces &vs = data_->spaces;
    const bool directed =
        data_->params.linkMode == LinkMode::Unidirectional;
    Coord best = 2.0;
    for (int s = 0; s < vs.numSpaces(); ++s) {
        const Coord cu = vs.coord(u, s);
        const Coord ct = vs.coord(t, s);
        const Coord d = directed ? clockwiseDistance(cu, ct)
                                 : circularDistance(cu, ct);
        if (d < best)
            best = d;
    }
    return best;
}

void
GreedyRouter::candidates(NodeId current, NodeId dest, bool widen,
                         std::vector<LinkId> &out) const
{
    assert(current != dest);
    const RoutingTable &table = tables_->table(current);
    const Coord md_here = distance(current, dest);

    // Plans per first-hop link: the best MD reachable within the
    // table horizon through that link. A plan qualifies when its
    // target strictly improves on this node's MD — either the
    // one-hop neighbour itself (classic greediest) or a two-hop
    // entry reached through it (lookahead). Forwarding along plans
    // terminates: the plan value never increases across a hop, and
    // the directed/symmetric ring lemma guarantees every non-
    // destination node has a strictly improving successor, so the
    // value strictly decreases at least every second hop (formal
    // argument in docs/greedy_routing.md).
    struct Ranked {
        LinkId via;
        NodeId node;      ///< first-hop neighbour
        Coord oneHopMd;
        Coord planValue;  ///< best MD in this plan
        bool qualifies;   ///< some target strictly improves
    };
    // Routing tables hold at most p(p+1) entries; the candidate set
    // is tiny, so a local vector is fine.
    std::vector<Ranked> plans;
    for (const TableEntry &e : table.entries()) {
        if (e.hops != 1 || !e.usable())
            continue;
        if (e.node == dest) {
            // Direct delivery always wins outright.
            out.clear();
            out.push_back(e.viaLink);
            return;
        }
        const Coord md = distance(e.node, dest);
        plans.push_back(
            Ranked{e.viaLink, e.node, md, md, md < md_here});
    }

    // Two-hop lookahead: fold each two-hop entry into the plan of
    // its first-hop link.
    if (data_->params.twoHopTable) {
        for (const TableEntry &e : table.entries()) {
            if (e.hops != 2 || !e.usable())
                continue;
            const Coord md = distance(e.node, dest);
            for (Ranked &plan : plans) {
                if (plan.via != e.viaLink)
                    continue;
                if (md < plan.planValue)
                    plan.planValue = md;
                if (md < md_here)
                    plan.qualifies = true;
            }
        }
    }

    std::erase_if(plans,
                  [](const Ranked &p) { return !p.qualifies; });
    if (plans.empty()) {
        out.clear();
        return;
    }

    std::sort(plans.begin(), plans.end(),
              [](const Ranked &a, const Ranked &b) {
                  if (a.planValue != b.planValue)
                      return a.planValue < b.planValue;
                  if (a.oneHopMd != b.oneHopMd)
                      return a.oneHopMd < b.oneHopMd;
                  return a.node < b.node;  // deterministic ties
              });

    out.clear();
    const std::size_t count = widen ? plans.size() : 1;
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(plans[i].via);
}

} // namespace sf::core

#include "core/greedy_router.hpp"

#include <algorithm>
#include <cassert>

namespace sf::core {

Coord
GreedyRouter::distance(NodeId u, NodeId t) const
{
    const VirtualSpaces &vs = data_->spaces;
    const bool directed =
        data_->params.linkMode == LinkMode::Unidirectional;
    // One row fetch per node, not one per space: this runs a few
    // hundred times per forwarding decision.
    const std::vector<Coord> &cu = vs.coords(u);
    const std::vector<Coord> &ct = vs.coords(t);
    const std::size_t spaces = cu.size();
    Coord best = 2.0;
    for (std::size_t s = 0; s < spaces; ++s) {
        const Coord d = directed ? clockwiseDistance(cu[s], ct[s])
                                 : circularDistance(cu[s], ct[s]);
        if (d < best)
            best = d;
    }
    return best;
}

std::size_t
GreedyRouter::candidates(NodeId current, NodeId dest, bool widen,
                         std::span<LinkId> out) const
{
    assert(current != dest);
    if (out.empty())
        return 0;
    const RoutingTable &table = tables_->table(current);
    const Coord md_here = distance(current, dest);

    // Plans per first-hop link: the best MD reachable within the
    // table horizon through that link. A plan qualifies when its
    // target strictly improves on this node's MD — either the
    // one-hop neighbour itself (classic greediest) or a two-hop
    // entry reached through it (lookahead). Forwarding along plans
    // terminates: the plan value never increases across a hop, and
    // the directed/symmetric ring lemma guarantees every non-
    // destination node has a strictly improving successor, so the
    // value strictly decreases at least every second hop (formal
    // argument in docs/greedy_routing.md).
    struct Ranked {
        LinkId via;
        NodeId node;      ///< first-hop neighbour
        Coord oneHopMd;
        Coord planValue;  ///< best MD in this plan
        bool qualifies;   ///< some target strictly improves
    };
    // One plan per one-hop entry: a fixed stack array keeps the
    // per-hop fast path allocation-free.
    Ranked plans[kMaxPlans];
    std::size_t num_plans = 0;
    for (const TableEntry &e : table.entries()) {
        if (e.hops != 1 || !e.usable())
            continue;
        if (e.node == dest) {
            // Direct delivery always wins outright.
            out[0] = e.viaLink;
            return 1;
        }
        assert(num_plans < kMaxPlans);
        if (num_plans >= kMaxPlans)
            continue;
        const Coord md = distance(e.node, dest);
        plans[num_plans++] =
            Ranked{e.viaLink, e.node, md, md, md < md_here};
    }

    // Two-hop lookahead: fold each two-hop entry into the plan of
    // its first-hop link. (Nothing to fold into when no one-hop
    // plan exists, so the distance evaluations are skipped.)
    if (data_->params.twoHopTable && num_plans > 0) {
        for (const TableEntry &e : table.entries()) {
            if (e.hops != 2 || !e.usable())
                continue;
            const Coord md = distance(e.node, dest);
            for (std::size_t i = 0; i < num_plans; ++i) {
                Ranked &plan = plans[i];
                if (plan.via != e.viaLink)
                    continue;
                if (md < plan.planValue)
                    plan.planValue = md;
                if (md < md_here)
                    plan.qualifies = true;
            }
        }
    }

    num_plans = static_cast<std::size_t>(
        std::remove_if(plans, plans + num_plans,
                       [](const Ranked &p) {
                           return !p.qualifies;
                       }) -
        plans);
    if (num_plans == 0)
        return 0;

    std::sort(plans, plans + num_plans,
              [](const Ranked &a, const Ranked &b) {
                  if (a.planValue != b.planValue)
                      return a.planValue < b.planValue;
                  if (a.oneHopMd != b.oneHopMd)
                      return a.oneHopMd < b.oneHopMd;
                  return a.node < b.node;  // deterministic ties
              });

    const std::size_t count =
        std::min(widen ? num_plans : std::size_t{1}, out.size());
    for (std::size_t i = 0; i < count; ++i)
        out[i] = plans[i].via;
    return count;
}

} // namespace sf::core

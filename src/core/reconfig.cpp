#include "core/reconfig.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>
#include <unordered_set>

namespace sf::core {

namespace {

/** Canonical link id of a wire (collapses bidirectional pairs). */
LinkId
canonicalId(const net::Graph &g, LinkId id)
{
    const LinkId pair = g.link(id).pairId;
    return (pair != kInvalidLink && pair < id) ? pair : id;
}

} // namespace

ReconfigEngine::ReconfigEngine(SFTopologyData &data,
                               RoutingTables &tables)
    : data_(&data), tables_(&tables)
{
    const std::size_t n = data_->params.numNodes;
    const int spaces = data_->spaces.numSpaces();
    alive_.assign(n, true);
    numAlive_ = n;
    liveNext_.assign(spaces, std::vector<NodeId>(n));
    livePrev_.assign(spaces, std::vector<NodeId>(n));
    for (int s = 0; s < spaces; ++s) {
        const auto &ring = data_->spaces.ring(s);
        for (std::size_t i = 0; i < n; ++i) {
            liveNext_[s][ring[i]] = ring[(i + 1) % n];
            livePrev_[s][ring[(i + 1) % n]] = ring[i];
        }
    }
    if (tables_->numNodes() != n)
        tables_->rebuildAll(data_->graph);
}

bool
ReconfigEngine::bidir() const
{
    return data_->params.linkMode == LinkMode::Bidirectional;
}

bool
ReconfigEngine::wireEnabled(LinkId id) const
{
    return data_->graph.link(id).enabled;
}

bool
ReconfigEngine::ringUse(NodeId a, NodeId b) const
{
    for (const auto &next : liveNext_) {
        if (next[a] == b)
            return true;
    }
    return false;
}

bool
ReconfigEngine::wireDesired(LinkId id) const
{
    const net::Link &l = data_->graph.link(id);
    if (!alive_[l.src] || !alive_[l.dst] || l.src == l.dst)
        return false;
    if (ringUse(l.src, l.dst))
        return true;
    if (bidir() && ringUse(l.dst, l.src))
        return true;
    if (l.kind == net::LinkKind::Pairing)
        return true;
    if (l.kind == net::LinkKind::Shortcut) {
        // Shortcuts activated at build time for throughput come back
        // whenever both endpoints are live and ports allow.
        const auto &tp = data_->throughputShortcuts;
        const LinkId canon = canonicalId(data_->graph, id);
        if (std::find(tp.begin(), tp.end(), canon) != tp.end())
            return true;
    }
    return false;
}

void
ReconfigEngine::enableWire(LinkId id)
{
    const net::Link &l = data_->graph.link(id);
    assert(!l.enabled);
    data_->graph.setWireEnabled(id, true);
    ++data_->portsUsed[l.src];
    ++data_->portsUsed[l.dst];
}

void
ReconfigEngine::disableWire(LinkId id)
{
    const net::Link &l = data_->graph.link(id);
    assert(l.enabled);
    data_->graph.setWireEnabled(id, false);
    --data_->portsUsed[l.src];
    --data_->portsUsed[l.dst];
}

bool
ReconfigEngine::freePortAt(NodeId x, bool dry_run)
{
    const int budget = data_->portBudget();
    if (data_->portsUsed[x] < budget)
        return true;
    // The topology switch can re-target a port: drop an enabled
    // non-ring wire (pairing or throughput shortcut) whose loss
    // costs path diversity but never ring connectivity.
    const net::Graph &g = data_->graph;
    const auto try_links = [&](const std::vector<LinkId> &ids)
        -> LinkId {
        for (LinkId id : ids) {
            const net::Link &l = g.link(id);
            if (!l.enabled)
                continue;
            if (l.kind != net::LinkKind::Pairing &&
                l.kind != net::LinkKind::Shortcut)
                continue;
            if (ringUse(l.src, l.dst) ||
                (bidir() && ringUse(l.dst, l.src)))
                continue;  // currently load-bearing for a ring
            return id;
        }
        return kInvalidLink;
    };
    LinkId victim = try_links(g.outLinks(x));
    if (victim == kInvalidLink)
        victim = try_links(g.inLinks(x));
    if (victim == kInvalidLink)
        return false;
    if (!dry_run) {
        disableWire(canonicalId(g, victim));
        ++stats_.portsStolen;
    }
    return true;
}

void
ReconfigEngine::settleWires(const std::vector<LinkId> &candidates,
                            ReconfigResult &result)
{
    // Dedupe to canonical wire handles.
    std::vector<LinkId> wires;
    for (LinkId id : candidates) {
        const LinkId canon = canonicalId(data_->graph, id);
        if (std::find(wires.begin(), wires.end(), canon) ==
            wires.end())
            wires.push_back(canon);
    }

    // Pass 1: drop wires that lost their purpose (frees ports).
    for (LinkId id : wires) {
        if (wireEnabled(id) && !wireDesired(id)) {
            disableWire(id);
            ++result.wiresDisabled;
        }
    }

    // Pass 2: bring up desired wires, ring repairs first so that
    // scarce ports go to connectivity before throughput extras.
    std::stable_sort(wires.begin(), wires.end(),
                     [&](LinkId a, LinkId b) {
                         const auto rank = [&](LinkId id) {
                             const net::Link &l =
                                 data_->graph.link(id);
                             const bool ring =
                                 alive_[l.src] && alive_[l.dst] &&
                                 (ringUse(l.src, l.dst) ||
                                  (bidir() &&
                                   ringUse(l.dst, l.src)));
                             if (ring)
                                 return 0;
                             return l.kind == net::LinkKind::Pairing
                                        ? 1 : 2;
                         };
                         return rank(a) < rank(b);
                     });
    const int budget = data_->portBudget();
    for (LinkId id : wires) {
        const net::Link &l = data_->graph.link(id);
        if (wireEnabled(id) || !wireDesired(id))
            continue;
        const bool is_ring_repair =
            ringUse(l.src, l.dst) ||
            (bidir() && ringUse(l.dst, l.src));
        if (data_->portsUsed[l.src] >= budget ||
            data_->portsUsed[l.dst] >= budget) {
            // Ring repairs may steal a port from a non-ring wire
            // (the topology switch re-targets the port); throughput
            // extras never do.
            if (!is_ring_repair)
                continue;
            if (!freePortAt(l.src, true) || !freePortAt(l.dst, true))
                continue;  // genuinely starved; stays dormant
            if (!freePortAt(l.src, false) ||
                !freePortAt(l.dst, false))
                continue;
        }
        enableWire(id);
        ++result.wiresEnabled;
        if (l.kind == net::LinkKind::Shortcut ||
            l.kind == net::LinkKind::Repair) {
            ++result.closuresEnabled;
            ++stats_.closuresEnabled;
        }
    }
}

std::vector<LinkId>
ReconfigEngine::incidentWires(const std::vector<NodeId> &nodes) const
{
    const net::Graph &g = data_->graph;
    std::vector<LinkId> wires;
    for (NodeId x : nodes) {
        wires.insert(wires.end(), g.outLinks(x).begin(),
                     g.outLinks(x).end());
        wires.insert(wires.end(), g.inLinks(x).begin(),
                     g.inLinks(x).end());
    }
    return wires;
}

std::vector<NodeId>
ReconfigEngine::tableScope(const std::vector<NodeId> &changed) const
{
    const net::Graph &g = data_->graph;
    std::unordered_set<NodeId> scope;
    const auto add_sources = [&](NodeId c, auto &&self,
                                 int depth) -> void {
        scope.insert(c);
        if (depth == 0)
            return;
        for (LinkId id : g.inLinks(c)) {
            if (g.link(id).enabled)
                self(g.link(id).src, self, depth - 1);
        }
    };
    for (NodeId c : changed)
        add_sources(c, add_sources, 2);
    return {scope.begin(), scope.end()};
}

void
ReconfigEngine::rebuildTables(const std::vector<NodeId> &scope,
                              ReconfigResult &result)
{
    for (NodeId x : scope) {
        tables_->rebuildNode(x, data_->graph);
        ++result.tablesRebuilt;
        ++stats_.tableRebuilds;
    }
}

bool
ReconfigEngine::canGate(NodeId u) const
{
    if (!alive_[u] || numAlive_ <= 2)
        return false;
    for (std::size_t s = 0; s < liveNext_.size(); ++s) {
        const NodeId a = livePrev_[s][u];
        const NodeId b = liveNext_[s][u];
        if (a == u || a == b)
            continue;  // degenerate tiny ring
        if (data_->wireExists(a, b))
            continue;
        if (bidir() && data_->wireExists(b, a))
            continue;
        return false;  // no fabricated wire spans the hole
    }
    return true;
}

ReconfigResult
ReconfigEngine::gate(NodeId u)
{
    ReconfigResult result;
    if (!alive_[u])
        return result;
    result.applied = true;
    ++stats_.gateOps;
    const net::Graph &g = data_->graph;
    const int spaces = data_->spaces.numSpaces();

    // Nodes whose wires may change state: the victim, its wire
    // partners, and the hole edges of every space.
    std::vector<NodeId> changed{u};
    const auto note_node = [&](NodeId x) {
        if (std::find(changed.begin(), changed.end(), x) ==
            changed.end())
            changed.push_back(x);
    };
    for (LinkId id : g.outLinks(u))
        note_node(g.link(id).dst);
    for (LinkId id : g.inLinks(u))
        note_node(g.link(id).src);

    // Phase 1: block every table entry that refers to the victim.
    const auto pre_scope = tableScope(changed);
    for (NodeId x : pre_scope) {
        if (x != u) {
            tables_->table(x).setBlocking(u, true);
            ++stats_.entriesBlocked;
        }
    }

    // Phase 2a: unlink the victim from every live ring.
    struct Hole { NodeId a; NodeId b; };
    std::vector<Hole> holes;
    for (int s = 0; s < spaces; ++s) {
        const NodeId a = livePrev_[s][u];
        const NodeId b = liveNext_[s][u];
        liveNext_[s][a] = b;
        livePrev_[s][b] = a;
        if (a != u && a != b) {
            holes.push_back(Hole{a, b});
            note_node(a);
            note_node(b);
        }
    }
    alive_[u] = false;
    --numAlive_;

    // Phase 2b: drop the victim's wires, raise the spare wires.
    settleWires(incidentWires(changed), result);

    // Count rings this operation left open.
    for (const Hole &h : holes) {
        LinkId id = data_->findWire(h.a, h.b);
        if (bidir() && (id == kInvalidLink || !wireEnabled(id))) {
            const LinkId rev = data_->findWire(h.b, h.a);
            if (rev != kInvalidLink)
                id = rev;
        }
        if (id == kInvalidLink || !wireEnabled(id)) {
            ++result.holes;
            ++stats_.holesCreated;
        }
    }

    // Phases 3 + 4: re-validate (rebuild) every affected table;
    // fresh entries carry cleared blocking bits, which unblocks.
    auto scope = tableScope(changed);
    scope.insert(scope.end(), pre_scope.begin(), pre_scope.end());
    std::sort(scope.begin(), scope.end());
    scope.erase(std::unique(scope.begin(), scope.end()), scope.end());
    rebuildTables(scope, result);
    return result;
}

ReconfigResult
ReconfigEngine::ungate(NodeId u)
{
    ReconfigResult result;
    if (alive_[u])
        return result;
    result.applied = true;
    ++stats_.ungateOps;
    const net::Graph &g = data_->graph;
    const int spaces = data_->spaces.numSpaces();

    std::vector<NodeId> changed{u};
    const auto note_node = [&](NodeId x) {
        if (std::find(changed.begin(), changed.end(), x) ==
            changed.end())
            changed.push_back(x);
    };
    for (LinkId id : g.outLinks(u))
        note_node(g.link(id).dst);
    for (LinkId id : g.inLinks(u))
        note_node(g.link(id).src);
    const auto pre_scope = tableScope(changed);

    // Re-insert into every live ring between the nearest live
    // static neighbours; the old closure wire (if any) becomes a
    // candidate for removal.
    alive_[u] = true;
    ++numAlive_;
    for (int s = 0; s < spaces; ++s) {
        if (numAlive_ == 1) {
            liveNext_[s][u] = u;
            livePrev_[s][u] = u;
            continue;
        }
        NodeId a = u;
        for (std::size_t k = 1;; ++k) {
            a = data_->spaces.ringBehind(u, s, k);
            if (alive_[a])
                break;
        }
        const NodeId b = liveNext_[s][a];
        liveNext_[s][a] = u;
        livePrev_[s][u] = a;
        liveNext_[s][u] = b;
        livePrev_[s][b] = u;
        note_node(a);
        note_node(b);
    }

    settleWires(incidentWires(changed), result);

    // Holes left around the revived node (wire missing or starved).
    for (int s = 0; s < spaces; ++s) {
        for (const auto &[from, to] :
             {std::pair{livePrev_[s][u], u},
              std::pair{u, liveNext_[s][u]}}) {
            if (from == to)
                continue;
            LinkId id = data_->findWire(from, to);
            if (bidir() && (id == kInvalidLink || !wireEnabled(id))) {
                const LinkId rev = data_->findWire(to, from);
                if (rev != kInvalidLink)
                    id = rev;
            }
            if (id == kInvalidLink || !wireEnabled(id)) {
                ++result.holes;
                ++stats_.holesCreated;
            }
        }
    }

    auto scope = tableScope(changed);
    scope.insert(scope.end(), pre_scope.begin(), pre_scope.end());
    std::sort(scope.begin(), scope.end());
    scope.erase(std::unique(scope.begin(), scope.end()), scope.end());
    rebuildTables(scope, result);
    return result;
}

std::vector<NodeId>
ReconfigEngine::gateRandom(std::size_t target, Rng &rng)
{
    std::vector<NodeId> order(data_->params.numNodes);
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);

    std::vector<NodeId> gated;
    for (NodeId u : order) {
        if (gated.size() >= target || numAlive_ <= 8)
            break;
        if (!alive_[u] || !canGate(u))
            continue;
        const ReconfigResult r = gate(u);
        if (r.applied)
            gated.push_back(u);
    }
    return gated;
}

int
ReconfigEngine::currentHoles() const
{
    int holes = 0;
    for (std::size_t s = 0; s < liveNext_.size(); ++s) {
        for (NodeId a = 0; a < alive_.size(); ++a) {
            if (!alive_[a])
                continue;
            const NodeId b = liveNext_[s][a];
            if (b == a)
                continue;
            LinkId id = data_->findWire(a, b);
            if (id == kInvalidLink || !wireEnabled(id)) {
                if (bidir()) {
                    const LinkId rev = data_->findWire(b, a);
                    if (rev != kInvalidLink && wireEnabled(rev))
                        continue;
                }
                ++holes;
            }
        }
    }
    return holes;
}

std::string
ReconfigEngine::checkInvariants() const
{
    const net::Graph &g = data_->graph;
    std::ostringstream os;

    // Port accounting matches enabled wires; budgets respected.
    std::vector<int> ports(alive_.size(), 0);
    for (LinkId id = 0;
         id < static_cast<LinkId>(g.numLinks()); ++id) {
        const net::Link &l = g.link(id);
        if (!l.enabled || canonicalId(g, id) != id)
            continue;
        ++ports[l.src];
        ++ports[l.dst];
    }
    for (NodeId u = 0; u < alive_.size(); ++u) {
        if (ports[u] != data_->portsUsed[u]) {
            os << "port count mismatch at node " << u << ": "
               << ports[u] << " vs " << data_->portsUsed[u];
            return os.str();
        }
        if (ports[u] > data_->portBudget()) {
            os << "port budget exceeded at node " << u;
            return os.str();
        }
        if (!alive_[u] && ports[u] != 0) {
            os << "gated node " << u << " still has enabled wires";
            return os.str();
        }
    }

    // Every enabled wire serves a purpose.
    for (LinkId id = 0;
         id < static_cast<LinkId>(g.numLinks()); ++id) {
        const net::Link &l = g.link(id);
        if (!l.enabled || canonicalId(g, id) != id)
            continue;
        if (!wireDesired(id) &&
            !(l.pairId != kInvalidLink && wireDesired(l.pairId))) {
            os << "enabled wire " << id << " (" << l.src << "->"
               << l.dst << ") serves no purpose";
            return os.str();
        }
    }

    // Live ring lists are permutations of the live set.
    for (std::size_t s = 0; s < liveNext_.size(); ++s) {
        NodeId start = kInvalidNode;
        for (NodeId u = 0; u < alive_.size(); ++u) {
            if (alive_[u]) {
                start = u;
                break;
            }
        }
        if (start == kInvalidNode)
            continue;
        std::size_t count = 0;
        NodeId at = start;
        do {
            if (!alive_[at]) {
                os << "dead node " << at << " on live ring " << s;
                return os.str();
            }
            if (livePrev_[s][liveNext_[s][at]] != at) {
                os << "ring list corrupt at node " << at
                   << " space " << s;
                return os.str();
            }
            at = liveNext_[s][at];
            ++count;
        } while (at != start && count <= alive_.size());
        if (count != numAlive_) {
            os << "live ring " << s << " visits " << count
               << " nodes, expected " << numAlive_;
            return os.str();
        }
    }
    return {};
}

} // namespace sf::core

/**
 * @file
 * Elastic network reconfiguration (paper Section III-C).
 *
 * Gating a node follows the paper's four-phase atomic protocol:
 *  1. block the routing-table entries that refer to the victim,
 *  2. disable its wires and enable spare (shortcut/repair) wires
 *     that re-close each virtual-space ring across the hole,
 *  3. re-validate the affected routing-table entries,
 *  4. unblock.
 * Ungating runs the same steps in reverse. Wires are enabled or
 * disabled against the per-router port budget; a ring that cannot be
 * re-closed (no fabricated spare wire spans the hole, or no port is
 * free) is recorded as a *hole* — greedy routing then loses its
 * delivery guarantee for some pairs and the owning facade falls back
 * to a precomputed next-hop (counted, see StringFigure).
 *
 * Because spare wires span two or four static ring hops, a node can
 * be gated only if, in every space, the hole it creates or extends
 * spans a fabricated wire: sequential gating therefore refuses
 * victims statically adjacent to an already-gated node. Halving
 * patterns (gate every other node) are fully supported, and a second
 * halving rides the 4-hop wires, so a deployment can elastically run
 * at 100%, ~50%, or ~25% scale, or any sparser pattern in between —
 * exactly the shortcut-based down-scaling the paper motivates.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/routing_table.hpp"
#include "core/topology_builder.hpp"
#include "net/rng.hpp"

namespace sf::core {

/** Outcome of one gate/ungate operation. */
struct ReconfigResult {
    bool applied = false;  ///< False if the victim state was a no-op.
    int closuresEnabled = 0;  ///< Spare wires switched on.
    int wiresDisabled = 0;
    int wiresEnabled = 0;
    int holes = 0;         ///< Rings left open by this operation.
    int tablesRebuilt = 0;
};

/** Tracks liveness, live rings, and wire activation. */
class ReconfigEngine
{
  public:
    ReconfigEngine(SFTopologyData &data, RoutingTables &tables);

    /** Liveness of @p u. */
    bool alive(NodeId u) const { return alive_[u]; }

    /** Liveness mask over all nodes. */
    const std::vector<bool> &aliveMask() const { return alive_; }

    /** Number of live nodes. */
    std::size_t numAlive() const { return numAlive_; }

    /**
     * Cheap feasibility check: every ring hole that gating @p u
     * would create is spanned by a fabricated wire. Ports are not
     * checked; gate() reports the authoritative result.
     */
    bool canGate(NodeId u) const;

    /** Power-gate @p u (dynamic reduction). */
    ReconfigResult gate(NodeId u);

    /** Bring @p u back (dynamic expansion). */
    ReconfigResult ungate(NodeId u);

    /**
     * Greedily gate up to @p target nodes chosen in random order,
     * refusing victims that would leave an unrepairable hole.
     *
     * @return The victims actually gated (may be fewer than target).
     */
    std::vector<NodeId> gateRandom(std::size_t target, Rng &rng);

    /** Number of live-ring adjacencies currently missing a wire. */
    int currentHoles() const;

    /** Live clockwise successor of live node @p u in space @p s. */
    NodeId liveNext(int s, NodeId u) const { return liveNext_[s][u]; }

    /** Live clockwise predecessor of live node @p u in space @p s. */
    NodeId livePrev(int s, NodeId u) const { return livePrev_[s][u]; }

    /** Cumulative statistics. */
    struct Stats {
        std::uint64_t gateOps = 0;
        std::uint64_t ungateOps = 0;
        std::uint64_t closuresEnabled = 0;
        std::uint64_t tableRebuilds = 0;
        std::uint64_t entriesBlocked = 0;
        std::uint64_t holesCreated = 0;
        /**
         * Non-ring wires (pairing / throughput shortcuts) dropped by
         * the topology switch to free a port for a ring repair.
         */
        std::uint64_t portsStolen = 0;
    };
    const Stats &stats() const { return stats_; }

    /**
     * Debug/test helper: verify that the enabled wire set matches
     * the desired state derived from liveness, that port budgets are
     * respected, and that live ring lists are consistent.
     *
     * @return Empty string when consistent, else a description.
     */
    std::string checkInvariants() const;

  private:
    bool bidir() const;
    /** Desired activation of the wire carried by link @p id. */
    bool wireDesired(LinkId id) const;
    /** Any space where the live ring runs a -> b. */
    bool ringUse(NodeId a, NodeId b) const;
    void enableWire(LinkId id);
    void disableWire(LinkId id);
    bool wireEnabled(LinkId id) const;
    /**
     * Make a port available at @p x for a ring repair, dropping a
     * non-ring wire (pairing / throughput shortcut) if needed.
     *
     * @param dry_run Only report feasibility, change nothing.
     * @return True when a port is (or would be) available.
     */
    bool freePortAt(NodeId x, bool dry_run);
    /** Nodes whose tables can reference any node in @p changed. */
    std::vector<NodeId>
    tableScope(const std::vector<NodeId> &changed) const;
    /** All fabricated wires touching any node in @p nodes. */
    std::vector<LinkId>
    incidentWires(const std::vector<NodeId> &nodes) const;
    void rebuildTables(const std::vector<NodeId> &scope,
                       ReconfigResult &result);
    /** Re-evaluate candidate wires; disables first, then enables. */
    void settleWires(const std::vector<LinkId> &candidates,
                     ReconfigResult &result);

    SFTopologyData *data_;
    RoutingTables *tables_;
    std::vector<bool> alive_;
    std::size_t numAlive_ = 0;
    /** liveNext_[space][node], valid only for live nodes. */
    std::vector<std::vector<NodeId>> liveNext_;
    std::vector<std::vector<NodeId>> livePrev_;
    Stats stats_;
};

} // namespace sf::core

/**
 * @file
 * StringFigure: the public facade tying together topology
 * construction, greediest routing, routing tables, and elastic
 * reconfiguration behind the generic net::Topology interface.
 *
 * Quick start:
 * @code
 *   sf::core::SFParams params;
 *   params.numNodes = 1296;
 *   params.routerPorts = 8;
 *   sf::core::StringFigure network(params);
 *   int hops = sf::net::routedHops(network, 3, 977);
 *   network.gate(42);    // power-gate a memory node
 *   network.ungate(42);  // and bring it back
 * @endcode
 */

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/greedy_router.hpp"
#include "core/params.hpp"
#include "core/reconfig.hpp"
#include "core/routing_table.hpp"
#include "core/topology_builder.hpp"
#include "net/topology.hpp"

namespace sf::core {

/** A deployed String Figure memory network. */
class StringFigure : public net::Topology
{
  public:
    /** Build and deploy a network from @p params. */
    explicit StringFigure(const SFParams &params);

    // net::Topology interface -------------------------------------
    std::string name() const override { return "SF"; }
    const net::Graph &graph() const override { return data_.graph; }
    int routerPorts() const override { return data_.params.routerPorts; }
    std::size_t routeCandidates(NodeId current, NodeId dest,
                                bool first_hop,
                                std::span<LinkId> out) const override;
    LinkId escapeLink(NodeId current, NodeId dest) const override;
    net::EscapeScheme escapeScheme() const override
    {
        return net::EscapeScheme::Ring;
    }
    LinkId ringEscapeLink(NodeId current) const override;
    std::uint32_t ringPosition(NodeId u) const override
    {
        return static_cast<std::uint32_t>(
            data_.spaces.ringIndex(u, 0));
    }
    int numVcClasses() const override { return 2; }
    int vcClass(NodeId src, NodeId dst) const override;
    bool nodeAlive(NodeId u) const override
    {
        return reconfig_->alive(u);
    }
    net::TopologyFeatures
    features() const override
    {
        return net::TopologyFeatures{
            .requiresHighRadix = false,
            .portCountScales = false,
            .reconfigurable = true,
        };
    }

    // String Figure specifics --------------------------------------
    const SFParams &params() const { return data_.params; }
    const SFTopologyData &data() const { return data_; }
    const VirtualSpaces &spaces() const { return data_.spaces; }
    const RoutingTables &tables() const { return tables_; }
    const GreedyRouter &router() const { return router_; }
    ReconfigEngine &reconfig() { return *reconfig_; }
    const ReconfigEngine &reconfig() const { return *reconfig_; }

    /** Power-gate node @p u (dynamic down-scale). */
    ReconfigResult gate(NodeId u);

    /** Re-activate node @p u (dynamic up-scale). */
    ReconfigResult ungate(NodeId u);

    /**
     * Gate random repairable victims until only @p live_target nodes
     * remain (static reduction / deploy-subset). Returns the gated
     * victims; may stop early when no repairable victim is left.
     */
    std::vector<NodeId> reduceTo(std::size_t live_target, Rng &rng);

    /**
     * Times the escape table was consulted because greedy routing
     * found no strictly improving neighbour (only possible in
     * degraded reconfiguration states; always 0 on the full
     * topology).
     */
    std::uint64_t fallbackCount() const
    {
        return fallbacks_.load(std::memory_order_relaxed);
    }

  private:
    void invalidateFallback();
    void buildFallbackTable() const;

    SFTopologyData data_;
    RoutingTables tables_;
    GreedyRouter router_;
    std::unique_ptr<ReconfigEngine> reconfig_;

    /**
     * Lazily built fallback next-hop table (link id per (u, dst)).
     * Shared const instances may route from many threads, so the
     * build is double-checked under the mutex and the counter is
     * atomic. Gating (non-const) invalidates; shared instances are
     * never gated.
     */
    mutable std::mutex fallbackMutex_;
    mutable std::vector<LinkId> fallbackNextLink_;
    mutable std::atomic<bool> fallbackValid_{false};
    mutable std::atomic<std::uint64_t> fallbacks_{0};
};

} // namespace sf::core

/**
 * @file
 * The greediest routing protocol (paper Section III-B).
 *
 * At node s with a packet for t, consider every usable one-hop table
 * entry w. The progress set W contains the w whose distance to t is
 * strictly smaller than s's own distance; by the ring property of
 * the topology W is non-empty on the full topology (Lemma 1/2), and
 * picking from W makes the distance strictly decrease every hop, so
 * paths are loop-free (Proposition 3). Candidates are ranked by a
 * two-hop lookahead: the best distance reachable through w using the
 * two-hop table entries (paper: "we compute MD with both one- and
 * two-hop neighbor information"). Restricting the choice to W keeps
 * the proof intact; the lookahead only reorders W.
 *
 * The distance is the minimum circular distance MD over all virtual
 * spaces; in unidirectional mode the per-space distance is the
 * clockwise distance (wires only run clockwise), in bidirectional
 * mode the symmetric circular distance.
 *
 * Adaptive routing (paper): only the first hop exposes the whole
 * ranked set W so the source router can pick a lightly loaded port;
 * every later hop commits to the top candidate.
 */

#pragma once

#include <span>

#include "core/routing_table.hpp"
#include "core/topology_builder.hpp"

namespace sf::core {

/** Stateless forwarding-decision engine reading the routing tables. */
class GreedyRouter
{
  public:
    /**
     * Upper bound on simultaneous first-hop plans: one per one-hop
     * table entry, i.e. per router out-port. Far above any
     * configuration this library builds (routerPorts tops out well
     * below 16 even counting repair wires).
     */
    static constexpr std::size_t kMaxPlans = 64;

    GreedyRouter(const SFTopologyData &data,
                 const RoutingTables &tables)
        : data_(&data), tables_(&tables)
    {
    }

    /** MD from node @p u to node @p t under the configured metric. */
    Coord distance(NodeId u, NodeId t) const;

    /**
     * Ranked progress set at @p current for destination @p dest,
     * written into the caller-provided @p out (at most out.size()
     * entries, best first; allocation-free). Zero means no strictly
     * improving neighbour exists (possible only in degraded
     * reconfiguration states, never on the full topology).
     *
     * @param widen When false, at most one candidate is emitted
     *        (non-adaptive hops commit to the greediest choice).
     * @return Number of link ids written.
     */
    std::size_t candidates(NodeId current, NodeId dest, bool widen,
                           std::span<LinkId> out) const;

  private:
    const SFTopologyData *data_;
    const RoutingTables *tables_;
};

} // namespace sf::core

#include "core/coordinates.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace sf::core {

VirtualSpaces
VirtualSpaces::generate(std::size_t num_nodes, int num_spaces,
                        Rng &rng, CoordMode mode)
{
    assert(num_nodes >= 2);
    assert(num_spaces >= 1);

    VirtualSpaces vs;
    vs.coords_.assign(num_nodes, std::vector<Coord>(
        static_cast<std::size_t>(num_spaces), 0.0));

    for (int s = 0; s < num_spaces; ++s) {
        if (mode == CoordMode::UniformRandom) {
            for (NodeId u = 0; u < num_nodes; ++u)
                vs.coords_[u][s] = rng.uniform();
        } else {
            // Balanced: evenly spaced slots, random node-to-slot
            // permutation. Equal arc lengths keep per-link load
            // balanced while the permutation provides the uniform
            // randomness of the ring order.
            std::vector<NodeId> perm(num_nodes);
            std::iota(perm.begin(), perm.end(), 0u);
            rng.shuffle(perm);
            const Coord step = 1.0 / static_cast<Coord>(num_nodes);
            for (std::size_t slot = 0; slot < num_nodes; ++slot)
                vs.coords_[perm[slot]][s] =
                    static_cast<Coord>(slot) * step;
        }
    }

    vs.rings_.resize(static_cast<std::size_t>(num_spaces));
    vs.ringIndex_.resize(static_cast<std::size_t>(num_spaces));
    vs.rebuildRings();
    return vs;
}

void
VirtualSpaces::rebuildRings()
{
    const std::size_t n = coords_.size();
    for (std::size_t s = 0; s < rings_.size(); ++s) {
        auto &ring = rings_[s];
        ring.resize(n);
        std::iota(ring.begin(), ring.end(), 0u);
        std::sort(ring.begin(), ring.end(),
                  [&](NodeId a, NodeId b) {
                      const Coord ca = coords_[a][s];
                      const Coord cb = coords_[b][s];
                      // Node id breaks coordinate ties so quantised
                      // rings stay well defined.
                      return ca != cb ? ca < cb : a < b;
                  });
        auto &index = ringIndex_[s];
        index.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            index[ring[i]] = static_cast<std::uint32_t>(i);
    }
}

void
VirtualSpaces::quantize(int bits)
{
    assert(bits >= 1 && bits <= 32);
    const Coord levels = std::ldexp(1.0, bits);  // 2^bits
    for (auto &node_coords : coords_) {
        for (Coord &c : node_coords)
            c = std::floor(c * levels) / levels;
    }
    rebuildRings();
}

} // namespace sf::core
